"""Unit conversion helpers."""

import math

import pytest

from repro import units


def test_thermal_voltage_at_room_temperature():
    assert units.thermal_voltage() == pytest.approx(0.02585, rel=1e-2)


def test_thermal_voltage_scales_with_temperature():
    assert units.thermal_voltage(600.0) == pytest.approx(
        2.0 * units.thermal_voltage(300.0))


def test_power_round_trip():
    assert units.nw_to_watts(units.watts_to_nw(1.5)) == pytest.approx(1.5)


def test_current_round_trip():
    assert units.ma_to_amps(units.amps_to_ma(0.25)) == pytest.approx(0.25)


def test_time_round_trip():
    assert units.ns_to_seconds(units.seconds_to_ns(3e-9)) == pytest.approx(3e-9)


def test_pretty_power_selects_prefix():
    assert units.pretty_power(0.5) == "500.000 pW"
    assert units.pretty_power(5.0).endswith("nW")
    assert units.pretty_power(5e3).endswith("uW")
    assert units.pretty_power(5e6).endswith("mW")
    assert units.pretty_power(0.0) == "0 nW"


def test_pretty_time():
    assert units.pretty_time(1.5) == "1.500 ns"
    assert units.pretty_time(0.25).endswith("ps")


def test_db10():
    assert units.db10(10.0) == pytest.approx(10.0)
    assert units.db10(1.0) == pytest.approx(0.0)
    assert units.db10(0.0) == -math.inf


def test_elmore_unit_consistency():
    # kOhm * pF must equal ns for the Elmore math to need no scaling.
    assert units.KOHM * units.PF == pytest.approx(units.NS)


def test_ir_drop_unit_consistency():
    # mA * kOhm must equal volts.
    assert units.MA * units.KOHM == pytest.approx(1.0)
