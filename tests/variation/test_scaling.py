"""Physical scaling laws: nominal identity, signs, monotonicity."""

import math

import pytest

from repro.variation.scaling import (
    OperatingPoint,
    delay_factor,
    drive_current_factor,
    effective_vth,
    leakage_factor,
    local_delay_factor,
    local_leakage_factor,
)

HOT = 398.15
COLD = 233.15


def nominal_point(tech):
    return OperatingPoint.nominal(tech)


class TestNominalIdentity:
    def test_all_factors_exactly_one(self, tech):
        point = nominal_point(tech)
        for vth in (tech.vth_low, tech.vth_high):
            assert delay_factor(tech, vth, point) == 1.0
            assert leakage_factor(tech, vth, point) == 1.0
            assert drive_current_factor(tech, vth, point) == 1.0
            assert effective_vth(tech, vth, point) == vth

    def test_local_factors_identity_at_zero_shift(self, tech):
        assert local_leakage_factor(tech, 0.0) == 1.0
        assert local_delay_factor(tech, tech.vth_low, 0.0) == 1.0


class TestEffectiveVth:
    def test_temperature_lowers_vth(self, tech):
        hot = OperatingPoint(tech.vdd, HOT)
        assert effective_vth(tech, tech.vth_low, hot) < tech.vth_low

    def test_dibl_lowers_vth_at_high_vdd(self, tech):
        boosted = OperatingPoint(tech.vdd * 1.1, tech.temperature_k)
        assert effective_vth(tech, tech.vth_low, boosted) < tech.vth_low

    def test_process_shift_is_additive(self, tech):
        slow = OperatingPoint(tech.vdd, tech.temperature_k,
                              vth_shift_v=0.045)
        assert effective_vth(tech, tech.vth_low, slow) == pytest.approx(
            tech.vth_low + 0.045)


class TestDelayMonotonicity:
    def test_delay_increases_as_vdd_drops(self, tech):
        for vth in (tech.vth_low, tech.vth_high):
            factors = [delay_factor(tech, vth,
                                    OperatingPoint(scale * tech.vdd,
                                                   tech.temperature_k))
                       for scale in (1.1, 1.05, 1.0, 0.95, 0.9)]
            assert factors == sorted(factors)
            assert factors[0] < 1.0 < factors[-1]

    def test_delay_increases_ss_to_ff_decreases(self, tech):
        """Slow (higher-Vth) samples are slower: SS > TT > FF."""
        ss, tt, ff = (delay_factor(
            tech, tech.vth_low,
            OperatingPoint(tech.vdd, tech.temperature_k, shift))
            for shift in (+0.045, 0.0, -0.045))
        assert ss > tt > ff

    def test_hot_is_slower_at_nominal_vdd(self, tech):
        hot = delay_factor(tech, tech.vth_low,
                           OperatingPoint(tech.vdd, HOT))
        cold = delay_factor(tech, tech.vth_low,
                            OperatingPoint(tech.vdd, COLD))
        assert cold < 1.0 < hot


class TestLeakageMonotonicity:
    def test_strictly_increasing_with_temperature(self, tech):
        temps = [COLD, 273.15, tech.temperature_k, 350.0, HOT]
        for vth in (tech.vth_low, tech.vth_high):
            values = [leakage_factor(tech, vth,
                                     OperatingPoint(tech.vdd, t))
                      for t in temps]
            assert values == sorted(values)
            assert values[0] < values[-1]

    def test_process_ordering_ss_tt_ff(self, tech):
        """Fast (lower-Vth) samples leak exponentially more:
        SS < TT < FF at fixed VDD and temperature."""
        ss, tt, ff = (leakage_factor(
            tech, tech.vth_low,
            OperatingPoint(tech.vdd, tech.temperature_k, shift))
            for shift in (+0.045, 0.0, -0.045))
        assert ss < tt < ff
        # Exponential sensitivity: the swing between the corners is
        # the library's design space, so it must be large.
        assert ff / ss > 5.0

    def test_high_vth_more_temperature_sensitive(self, tech):
        """The exponential makes the *ratio* grow with Vth."""
        hot = OperatingPoint(tech.vdd, HOT)
        assert leakage_factor(tech, tech.vth_high, hot) \
            > leakage_factor(tech, tech.vth_low, hot)


class TestLocalFactors:
    def test_leakage_factor_is_exponential_in_shift(self, tech):
        swing = tech.subthreshold_swing()
        assert local_leakage_factor(tech, swing) == pytest.approx(
            1.0 / math.e)
        assert local_leakage_factor(tech, -swing) == pytest.approx(math.e)

    def test_gaussian_maps_to_lognormal_median(self, tech):
        # exp(-X/swing) for X ~ N(0, s): median is exp(0) = 1.
        up = local_leakage_factor(tech, 0.02)
        down = local_leakage_factor(tech, -0.02)
        assert up * down == pytest.approx(1.0)

    def test_delay_factor_monotone_in_shift(self, tech):
        shifts = (-0.06, -0.03, 0.0, 0.03, 0.06)
        values = [local_delay_factor(tech, tech.vth_low, s)
                  for s in shifts]
        assert values == sorted(values)
