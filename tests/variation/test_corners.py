"""PVT corner registry and corner-library derivation contract."""

import pytest

from repro.errors import FlowError
from repro.liberty.library import CellKind, VthClass
from repro.variation.corners import (
    DEFAULT_SIGNOFF_CORNERS,
    PvtCorner,
    corner_scales,
    derive_corner_library,
    nominal_corner,
    resolve_corner,
    standard_corners,
)


class TestRegistry:
    def test_grid_is_27_plus_nominal(self, tech):
        corners = standard_corners(tech)
        assert len(corners) == 28
        assert "tt_nom" in corners
        for name, corner in corners.items():
            assert corner.name == name

    def test_default_signoff_corners_resolve(self, tech):
        for name in DEFAULT_SIGNOFF_CORNERS:
            assert resolve_corner(name, tech).name == name

    def test_default_signoff_corners_follow_the_technology(self):
        from repro.device.process import Technology
        from repro.variation.corners import default_signoff_corners

        low_v = Technology(vdd=1.0)
        names = default_signoff_corners(low_v)
        assert names[0] == "tt_nom"
        for name in names:
            assert resolve_corner(name, low_v).name == name
        assert "1.10v" in names[1]  # ff at +10 % of the 1.0 V supply

    def test_unknown_corner_rejected(self, tech):
        with pytest.raises(FlowError, match="unknown corner"):
            resolve_corner("tt_9.99v_25c", tech)

    def test_unknown_process_letter_rejected(self):
        with pytest.raises(FlowError, match="process letter"):
            PvtCorner(name="xx", process="xx", vdd=1.2,
                      temperature_k=300.0)

    def test_negative_temperature_naming(self, tech):
        assert f"ss_{tech.vdd * 0.9:.2f}v_m40c" in standard_corners(tech)


class TestScales:
    def test_nominal_scales_are_exactly_one(self, tech):
        scales = corner_scales(tech, nominal_corner(tech))
        assert scales.delay_low == scales.delay_high == 1.0
        assert scales.leakage_low == scales.leakage_high == 1.0

    def test_leakage_ordering_across_process(self, tech):
        """At fixed VDD/temp, leakage is monotone SS < TT < FF."""
        vdd = tech.vdd
        by_process = [
            corner_scales(tech, resolve_corner(f"{p}_{vdd:.2f}v_125c",
                                               tech))
            for p in ("ss", "tt", "ff")]
        lows = [s.leakage_low for s in by_process]
        highs = [s.leakage_high for s in by_process]
        assert lows == sorted(lows) and lows[0] < lows[-1]
        assert highs == sorted(highs) and highs[0] < highs[-1]

    def test_leakage_ordering_across_temperature(self, tech):
        vdd = tech.vdd
        temps = [corner_scales(tech, resolve_corner(
            f"tt_{vdd:.2f}v_{label}", tech))
            for label in ("m40c", "25c", "125c")]
        values = [s.leakage_low for s in temps]
        assert values == sorted(values) and values[0] < values[-1]

    def test_delay_ordering_across_vdd(self, tech):
        labels = [f"tt_{tech.vdd * scale:.2f}v_25c"
                  for scale in (1.1, 1.0, 0.9)]
        values = [corner_scales(tech, resolve_corner(label, tech)).delay_low
                  for label in labels]
        assert values == sorted(values)  # delay grows as VDD drops


class TestDerivedLibrary:
    def test_nominal_library_not_mutated(self, library, tech):
        cell = library.cell("NAND2_X1_LVT")
        arc = cell.pins["Z"].timing_arcs[0]
        before_lut = arc.cell_rise.values
        before_leak = cell.default_leakage_nw
        derive_corner_library(library, resolve_corner("ff_1.32v_125c",
                                                      tech))
        assert cell.pins["Z"].timing_arcs[0].cell_rise.values == before_lut
        assert cell.default_leakage_nw == before_leak

    def test_tt_nominal_is_bit_identical(self, library, tech):
        derived = derive_corner_library(library, nominal_corner(tech))
        assert len(derived) == len(library)
        for cell in library:
            twin = derived.cell(cell.name)
            assert twin is not cell
            assert twin.area == cell.area
            assert twin.default_leakage_nw == cell.default_leakage_nw
            assert [s.value_nw for s in twin.leakage_states] \
                == [s.value_nw for s in cell.leakage_states]
            for pin_name, pin in cell.pins.items():
                twin_pin = twin.pins[pin_name]
                assert twin_pin.capacitance == pin.capacitance
                for arc, twin_arc in zip(pin.timing_arcs,
                                         twin_pin.timing_arcs):
                    for table in ("cell_rise", "cell_fall",
                                  "rise_transition", "fall_transition",
                                  "rise_constraint", "fall_constraint"):
                        lut = getattr(arc, table)
                        twin_lut = getattr(twin_arc, table)
                        assert (lut is None) == (twin_lut is None)
                        if lut is not None:
                            assert twin_lut.values == lut.values

    def test_hot_fast_corner_scales_tables(self, library, tech):
        corner = resolve_corner("ff_1.32v_125c", tech)
        scales = corner_scales(tech, corner)
        derived = derive_corner_library(library, corner)
        cell = library.cell("NAND2_X1_LVT")
        twin = derived.cell("NAND2_X1_LVT")
        assert twin.default_leakage_nw == pytest.approx(
            cell.default_leakage_nw * scales.leakage_low)
        lut = cell.pins["Z"].timing_arcs[0].cell_rise
        twin_lut = twin.pins["Z"].timing_arcs[0].cell_rise
        assert twin_lut.values[0][0] == pytest.approx(
            lut.values[0][0] * scales.delay_low)

    def test_standby_high_vth_leakage_classes(self, library, tech):
        """MT / switch / holder leakage scales with the high-Vth law."""
        corner = resolve_corner("ss_1.08v_125c", tech)
        scales = corner_scales(tech, corner)
        derived = derive_corner_library(library, corner)
        for name in ("NAND2_X1_MTV", "NAND2_X1_CMT", "HOLDER_X1"):
            cell = library.cell(name)
            twin = derived.cell(name)
            assert twin.default_leakage_nw == pytest.approx(
                cell.default_leakage_nw * scales.leakage_high)
        switch = library.switch_cells()[0]
        assert derived.cell(switch.name).default_leakage_nw \
            == pytest.approx(switch.default_leakage_nw
                             * scales.leakage_high)

    def test_corner_technology_is_adjusted(self, library, tech):
        corner = resolve_corner("ss_1.08v_125c", tech)
        derived = derive_corner_library(library, corner)
        assert derived.tech.vdd == pytest.approx(corner.vdd)
        assert derived.tech.temperature_k == pytest.approx(
            corner.temperature_k)
        assert derived.tech.vth_low == pytest.approx(
            tech.vth_low + corner.vth_shift_v)
        assert derived.mt_assumed_bounce_v == pytest.approx(
            library.mt_assumed_bounce_v * corner.vdd / tech.vdd)
        # Classification survives derivation.
        assert derived.cell("SWITCH_X4").kind == CellKind.SWITCH
        assert derived.cell("NAND2_X1_HVT").vth_class == VthClass.HIGH

    def test_derivation_requires_technology(self, tech):
        from repro.liberty.library import Library

        with pytest.raises(FlowError, match="technology"):
            derive_corner_library(Library("bare"), nominal_corner(tech))
