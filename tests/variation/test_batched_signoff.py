"""Batched corner signoff: per-corner bit-identity vs the loop.

``evaluate_corners_batched`` promises every corner's (wns, hold_wns,
leakage_nw) triple matches the sequential ``evaluate_corners`` loop
bit-for-bit — the batched path is an *evaluation strategy*, never a
numerical approximation.  These tests drive real flow results (derates,
CTS arrivals, parasitics all live) over random corner subsets on both
backends.
"""

import random

import pytest

from repro.benchcircuits.suite import load_circuit
from repro.config import FlowConfig, Technique
from repro.core.flow import SelectiveMtFlow
from repro.variation.corners import (
    corner_memo_stats,
    default_signoff_corners,
    reset_corner_memo,
)
from repro.variation.signoff import (
    evaluate_corners,
    evaluate_corners_batched,
)

np = pytest.importorskip("numpy")


@pytest.fixture(scope="module", params=["c432", "s298"])
def flowed(request, library):
    """A finished improved-SMT flow (one combinational, one sequential)."""
    config = FlowConfig(timing_margin=0.10)
    result = SelectiveMtFlow(load_circuit(request.param), library,
                             Technique.IMPROVED_SMT, config).run()
    return result


def signoff_kwargs(result):
    return dict(
        parasitics=result.parasitics,
        network=result.network,
        clock_arrivals=result.cts.clock_arrivals if result.cts else None)


def corner_subsets(tech, seed=7, draws=4):
    """Random corner subsets of the full signoff grid (plus tt_nom)."""
    grid = list(default_signoff_corners(tech))
    rng = random.Random(seed)
    subsets = [tuple(grid)]  # the full grid
    for _ in range(draws):
        size = rng.randint(2, len(grid))
        subsets.append(tuple(rng.sample(grid, size)))
    return subsets


class TestBitIdentity:
    def test_full_grid_and_random_subsets_numpy(self, flowed, library):
        for names in corner_subsets(library.tech):
            loop = evaluate_corners(
                flowed.netlist, library, names, flowed.constraints,
                compute_backend="numpy", **signoff_kwargs(flowed))
            batched = evaluate_corners_batched(
                flowed.netlist, library, names, flowed.constraints,
                compute_backend="numpy", **signoff_kwargs(flowed))
            assert tuple(batched) == names  # order preserved
            for name in names:
                a, b = loop[name], batched[name]
                assert b.wns == a.wns, name
                assert b.hold_wns == a.hold_wns, name
                assert b.leakage_nw == a.leakage_nw, name
                assert b.corner == a.corner
                assert b.delay_scale_low == a.delay_scale_low

    def test_python_backend_delegates_to_loop(self, flowed, library):
        names = ("tt_nom", "ff_1.32v_125c", "ss_1.08v_m40c")
        loop = evaluate_corners(
            flowed.netlist, library, names, flowed.constraints,
            compute_backend="python", **signoff_kwargs(flowed))
        batched = evaluate_corners_batched(
            flowed.netlist, library, names, flowed.constraints,
            compute_backend="python", **signoff_kwargs(flowed))
        for name in names:
            assert batched[name] == loop[name]

    def test_cross_backend_equivalence(self, flowed, library):
        """numpy batched vs the scalar python loop: 1e-9 relative.

        (Bit-identity is a *within-backend* promise — the scalar
        backend's reduction order differs from numpy's in the last
        ulp, exactly as in the existing cross-backend suite.)
        """
        def close(a, b):
            return a == b or abs(a - b) <= 1e-9 * max(1.0, abs(a),
                                                      abs(b))

        names = tuple(default_signoff_corners(library.tech))
        python = evaluate_corners(
            flowed.netlist, library, names, flowed.constraints,
            compute_backend="python", **signoff_kwargs(flowed))
        batched = evaluate_corners_batched(
            flowed.netlist, library, names, flowed.constraints,
            compute_backend="numpy", **signoff_kwargs(flowed))
        for name in names:
            assert close(batched[name].wns, python[name].wns), name
            assert close(batched[name].hold_wns,
                         python[name].hold_wns), name
            assert close(batched[name].leakage_nw,
                         python[name].leakage_nw), name

    def test_single_corner_and_bare_netlist(self, library, c17):
        """Degenerate inputs ride the delegation path."""
        from repro.timing.constraints import Constraints

        constraints = Constraints(clock_period=2000.0)
        loop = evaluate_corners(c17, library, ("tt_nom",), constraints)
        batched = evaluate_corners_batched(c17, library, ("tt_nom",),
                                           constraints)
        assert batched["tt_nom"] == loop["tt_nom"]
        assert evaluate_corners_batched(c17, library, (),
                                        constraints) == {}


class TestCornerMemo:
    def test_one_signoff_derives_each_corner_at_most_once(self, flowed,
                                                          library):
        names = tuple(default_signoff_corners(library.tech))
        reset_corner_memo()
        evaluate_corners_batched(
            flowed.netlist, library, names, flowed.constraints,
            compute_backend="numpy", **signoff_kwargs(flowed))
        stats = corner_memo_stats()
        assert stats["misses"] == len(names)
        assert stats["hits"] == 0
        # A second signoff of the same grid derives nothing at all.
        evaluate_corners_batched(
            flowed.netlist, library, names, flowed.constraints,
            compute_backend="numpy", **signoff_kwargs(flowed))
        stats = corner_memo_stats()
        assert stats["misses"] == len(names)
        assert stats["hits"] == len(names)

    def test_memo_is_keyed_on_library_content(self, library):
        from repro.variation.corners import (
            derive_corner_library_cached,
            resolve_corner,
        )

        reset_corner_memo()
        corner = resolve_corner("ff_1.32v_125c", library.tech)
        first = derive_corner_library_cached(library, corner)
        again = derive_corner_library_cached(library, corner)
        assert again is first
        stats = corner_memo_stats()
        assert stats == {"hits": 1, "misses": 1, "evictions": 0}
