"""Corner signoff: flow integration and nominal bit-identity."""

import pytest

from repro.benchcircuits.suite import load_circuit
from repro.config import FlowConfig, Technique
from repro.core.flow import SelectiveMtFlow
from repro.errors import FlowError
from repro.timing.constraints import Constraints
from repro.timing.sta import TimingAnalyzer
from repro.variation.signoff import evaluate_corners

SIGNOFF = ("tt_nom", "ff_1.32v_125c", "ss_1.08v_125c")


@pytest.fixture(scope="module")
def signed_off(library):
    """One improved-SMT flow on c432 with corner signoff enabled."""
    config = FlowConfig(timing_margin=0.10, signoff_corners=SIGNOFF)
    return SelectiveMtFlow(load_circuit("c432"), library,
                           Technique.IMPROVED_SMT, config).run()


class TestFlowIntegration:
    def test_result_carries_all_corners(self, signed_off):
        assert tuple(signed_off.corners) == SIGNOFF

    def test_stage_report_emitted(self, signed_off):
        report = signed_off.stage("corner_signoff")
        assert report.details["corners"] == len(SIGNOFF)
        assert report.details["worst_leakage_corner"] == "ff_1.32v_125c"

    def test_nominal_corner_bit_identical(self, signed_off):
        """tt_nom signoff == the single-point flow result, exactly."""
        nominal = signed_off.corners["tt_nom"]
        assert nominal.leakage_nw == signed_off.leakage_nw
        assert nominal.wns == signed_off.timing.wns
        assert nominal.hold_wns == signed_off.timing.hold_wns

    def test_corner_orderings(self, signed_off):
        nominal = signed_off.corners["tt_nom"]
        hot_fast = signed_off.corners["ff_1.32v_125c"]
        slow_low = signed_off.corners["ss_1.08v_125c"]
        assert hot_fast.leakage_nw > nominal.leakage_nw
        assert slow_low.wns < nominal.wns

    def test_empty_config_is_single_point(self, library):
        result = SelectiveMtFlow(
            load_circuit("c17"), library, Technique.DUAL_VTH,
            FlowConfig(timing_margin=0.2)).run()
        assert result.corners == {}
        assert all(s.name != "corner_signoff" for s in result.stages)

    def test_unknown_corner_fails_fast(self, library):
        config = FlowConfig(timing_margin=0.2,
                            signoff_corners=("no_such_corner",))
        with pytest.raises(FlowError, match="unknown corner"):
            SelectiveMtFlow(load_circuit("c17"), library,
                            Technique.DUAL_VTH, config).run()


class TestEvaluateCorners:
    def test_standalone_on_mapped_netlist(self, library, c17):
        probe = TimingAnalyzer(c17, library,
                               Constraints(clock_period=1000.0)).run()
        constraints = Constraints(
            clock_period=(1000.0 - probe.wns) * 1.2)
        results = evaluate_corners(c17, library, SIGNOFF, constraints)
        assert tuple(results) == SIGNOFF
        nominal = results["tt_nom"]
        fresh = TimingAnalyzer(c17, library, constraints).run()
        assert nominal.wns == fresh.wns
        # Scale metadata rides along for reporting.
        assert nominal.delay_scale_low == 1.0
        assert results["ss_1.08v_125c"].delay_scale_low > 1.0
        payload = results["ff_1.32v_125c"].as_dict()
        assert payload["corner"] == "ff_1.32v_125c"
        assert payload["temperature_c"] == pytest.approx(125.0)
        assert set(payload) >= {"leakage_nw", "wns", "hold_wns",
                                "delay_scale_low", "leakage_scale_high"}
