"""Monte-Carlo engine: determinism, distribution shape, technique gap."""

import pytest

from repro.benchcircuits.suite import load_circuit
from repro.config import FlowConfig, Technique
from repro.core.flow import SelectiveMtFlow
from repro.errors import FlowError
from repro.variation.jobs import build_engine
from repro.variation.montecarlo import (
    McConfig,
    McSample,
    MonteCarloEngine,
    percentile,
    summarize,
)


@pytest.fixture(scope="module")
def c432_results(library):
    """Dual-Vth and improved-SMT flows on c432 (shared across tests)."""
    config = FlowConfig(timing_margin=0.10)
    return {
        technique: SelectiveMtFlow(load_circuit("c432"), library,
                                   technique, config).run()
        for technique in (Technique.DUAL_VTH, Technique.IMPROVED_SMT)
    }


class TestDeterminism:
    def test_same_seed_reproduces_samples(self, library, c17):
        config = McConfig(samples=8, seed=11, timing=False)
        first = MonteCarloEngine(c17, library, config=config).run()
        second = MonteCarloEngine(c17, library, config=config).run()
        assert [(s.leakage_nw, s.global_dvth_v) for s in first] \
            == [(s.leakage_nw, s.global_dvth_v) for s in second]

    def test_chunking_does_not_change_samples(self, library, c17):
        config = McConfig(samples=9, seed=2, timing=False)
        whole = MonteCarloEngine(c17, library, config=config).run()
        engine = MonteCarloEngine(c17, library, config=config)
        chunked = engine.run(0, 3) + engine.run(3, 3) + engine.run(6, 3)
        assert [s.leakage_nw for s in whole] \
            == [s.leakage_nw for s in chunked]

    def test_different_seeds_differ(self, library, c17):
        a = MonteCarloEngine(c17, library,
                             config=McConfig(samples=4, seed=1,
                                             timing=False)).run()
        b = MonteCarloEngine(c17, library,
                             config=McConfig(samples=4, seed=2,
                                             timing=False)).run()
        assert [s.leakage_nw for s in a] != [s.leakage_nw for s in b]

    def test_study_independent_of_jobs(self, library):
        """run_montecarlo(jobs=1) == run_montecarlo(jobs=3), exactly."""
        from repro.experiments import run_montecarlo

        kwargs = dict(circuit="c17", samples=6, seed=5, timing=True,
                      techniques=(Technique.DUAL_VTH,),
                      config=FlowConfig(timing_margin=0.2),
                      library=library)
        serial = run_montecarlo(jobs=1, **kwargs)
        parallel = run_montecarlo(jobs=3, **kwargs)
        assert serial.as_dict() == parallel.as_dict()


class TestDistribution:
    def test_lognormal_shape(self, library, c17):
        config = McConfig(samples=120, seed=3, timing=False,
                          sigma_global_v=0.04)
        samples = MonteCarloEngine(c17, library, config=config).run()
        stats = summarize(samples)
        assert stats.min_nw > 0.0
        # Exponential Vth->leakage mapping skews right: mean > median.
        assert stats.mean_nw > stats.p50_nw
        assert stats.p50_nw < stats.p95_nw < stats.p99_nw <= stats.max_nw

    def test_zero_sigma_collapses_to_nominal(self, library, c17):
        config = McConfig(samples=3, seed=1, timing=False,
                          sigma_global_v=0.0, sigma_local_v=0.0)
        engine = MonteCarloEngine(c17, library, config=config)
        for sample in engine.run():
            assert sample.leakage_nw == pytest.approx(
                engine.nominal_leakage_nw, rel=1e-12)

    def test_timing_samples_track_global_shift(self, library, c432_results):
        """Slow samples (positive global dVth) have worse WNS."""
        result = c432_results[Technique.DUAL_VTH]
        engine = build_engine(result, library,
                              McConfig(samples=16, seed=9, timing=True))
        samples = engine.run()
        slow = [s for s in samples if s.global_dvth_v > 0.02]
        fast = [s for s in samples if s.global_dvth_v < -0.02]
        assert slow and fast
        assert max(s.wns for s in slow) < min(s.wns for s in fast)


class TestStatistics:
    def test_percentile_interpolates(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 4.0
        assert percentile(values, 0.5) == pytest.approx(2.5)
        assert percentile([7.0], 0.95) == 7.0
        with pytest.raises(FlowError):
            percentile([], 0.5)

    def test_yields(self):
        samples = [McSample(index=i, global_dvth_v=0.0,
                            leakage_nw=float(i + 1),
                            wns=0.1 - 0.05 * i) for i in range(4)]
        stats = summarize(samples, leakage_budget_nw=2.5)
        assert stats.leakage_yield == pytest.approx(0.5)
        assert stats.timing_yield == pytest.approx(0.75)  # wns: .1,.05,0,-.05
        assert stats.worst_wns == pytest.approx(-0.05)

    def test_summarize_rejects_empty(self):
        with pytest.raises(FlowError):
            summarize([])

    def test_config_validation(self):
        with pytest.raises(FlowError):
            McConfig(samples=0)
        with pytest.raises(FlowError):
            McConfig(sigma_global_v=-0.1)

    def test_timing_needs_constraints(self, library, c17):
        with pytest.raises(FlowError, match="constraints"):
            MonteCarloEngine(c17, library,
                             config=McConfig(samples=1, timing=True))


class TestTechniqueRobustness:
    """The paper-level claim under variation: the improved technique
    is better in mean *and* spread, at nominal and at every corner."""

    CORNERS = (None, "tt_nom", "ff_1.32v_125c", "ss_1.08v_125c")

    def test_improved_beats_dual_vth_across_corners(self, library,
                                                    c432_results):
        mc = McConfig(samples=40, seed=17, timing=False)
        for corner in self.CORNERS:
            stats = {}
            for technique, result in c432_results.items():
                engine = build_engine(result, library, mc,
                                      corner_name=corner)
                stats[technique] = summarize(engine.run())
            dual = stats[Technique.DUAL_VTH]
            improved = stats[Technique.IMPROVED_SMT]
            assert improved.mean_nw < dual.mean_nw, corner
            assert improved.std_nw < dual.std_nw, corner
