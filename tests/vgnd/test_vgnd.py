"""Virtual-ground network: bounce, clustering, sizing, EM."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SizingError, VgndError
from repro.liberty.library import VARIANT_MTV
from repro.netlist.techmap import technology_map
from repro.netlist.transform import swap_variant
from repro.placement.legalize import legalize
from repro.placement.placer import GlobalPlacer
from repro.vgnd.bounce import (
    cluster_bounce,
    cluster_current,
    rail_resistance_far,
    simultaneity_factor,
    switch_on_resistance,
)
from repro.vgnd.cluster import ClusterConfig, MtClusterer
from repro.vgnd.em import check_em
from repro.vgnd.sizing import SwitchSizer


@pytest.fixture()
def placed_mt_design(library):
    """A placed c432 stand-in with every logic cell as an MTV cell."""
    from repro.benchcircuits.suite import load_circuit

    netlist = load_circuit("c432")
    technology_map(netlist, library)
    placement = GlobalPlacer(netlist, library).run()
    legalize(placement, netlist, library)
    for inst in list(netlist.instances.values()):
        cell = library.cell(inst.cell_name)
        if library.has_variant(cell, VARIANT_MTV):
            swap_variant(netlist, inst, library, VARIANT_MTV)
    mt_names = [i.name for i in netlist.instances.values()
                if library.cell(i.cell_name).is_improved_mt]
    return netlist, placement, mt_names


class TestBounce:
    def test_simultaneity_bounds(self):
        assert simultaneity_factor(1) == 1.0
        assert simultaneity_factor(4) == pytest.approx(0.5)
        assert simultaneity_factor(10000) == pytest.approx(0.25)
        assert simultaneity_factor(0) == 0.0

    def test_cluster_current_scales_sublinearly(self, placed_mt_design,
                                                library):
        netlist, _placement, mt_names = placed_mt_design
        few = cluster_current(mt_names[:4], netlist, library)
        many = cluster_current(mt_names[:16], netlist, library)
        assert many > few
        assert many < 4.0 * few  # simultaneity discount kicks in

    def test_bounce_formula(self):
        assert cluster_bounce(1.0, 0.05, 0.01) == pytest.approx(0.06)

    def test_rail_resistance(self, library):
        tech = library.tech
        assert rail_resistance_far(100.0, tech) == pytest.approx(
            50.0 * tech.vgnd_res_per_um)

    def test_switch_on_resistance_matches_width(self, library):
        r4 = switch_on_resistance(library, "SWITCH_X4")
        r8 = switch_on_resistance(library, "SWITCH_X8")
        assert r4 == pytest.approx(2.0 * r8)


class TestClusterer:
    def test_constraints_respected(self, placed_mt_design, library):
        netlist, placement, mt_names = placed_mt_design
        config = ClusterConfig(bounce_limit_v=0.048,
                               max_rail_length_um=300.0,
                               max_cells_per_switch=24)
        clusterer = MtClusterer(netlist, library, placement, config)
        network = clusterer.build(mt_names)
        assert network.mt_cell_count == len(mt_names)
        for cluster in network.clusters:
            assert cluster.size <= 24
            assert cluster.rail_length_um <= 300.0 + 1e-6

    def test_every_cell_in_exactly_one_cluster(self, placed_mt_design,
                                               library):
        netlist, placement, mt_names = placed_mt_design
        network = MtClusterer(netlist, library, placement,
                              ClusterConfig()).build(mt_names)
        assigned = [m for c in network.clusters for m in c.members]
        assert sorted(assigned) == sorted(mt_names)

    def test_tighter_caps_make_more_clusters(self, placed_mt_design,
                                             library):
        netlist, placement, mt_names = placed_mt_design
        loose = MtClusterer(netlist, library, placement,
                            ClusterConfig(max_cells_per_switch=64)
                            ).build(mt_names)
        tight = MtClusterer(netlist, library, placement,
                            ClusterConfig(max_cells_per_switch=8)
                            ).build(mt_names)
        assert len(tight.clusters) > len(loose.clusters)

    def test_empty_input(self, placed_mt_design, library):
        netlist, placement, _names = placed_mt_design
        network = MtClusterer(netlist, library, placement,
                              ClusterConfig()).build([])
        assert not network.clusters

    def test_config_validation(self):
        with pytest.raises(VgndError):
            ClusterConfig(bounce_limit_v=0.0)
        with pytest.raises(VgndError):
            ClusterConfig(max_rail_length_um=-1.0)
        with pytest.raises(VgndError):
            ClusterConfig(max_cells_per_switch=0)


class TestSizer:
    def test_sized_network_meets_bounce(self, placed_mt_design, library):
        netlist, placement, mt_names = placed_mt_design
        config = ClusterConfig(bounce_limit_v=0.048)
        network = MtClusterer(netlist, library, placement,
                              config).build(mt_names)
        sizer = SwitchSizer(library, config.bounce_limit_v)
        outcome = sizer.size_network(network)
        assert network.bounce_ok()
        assert outcome.worst_bounce_v <= config.bounce_limit_v + 1e-9
        for cluster in network.clusters:
            assert cluster.switch_cell is not None

    def test_smaller_limit_means_wider_switches(self, placed_mt_design,
                                                library):
        netlist, placement, mt_names = placed_mt_design
        def total_width(limit):
            config = ClusterConfig(bounce_limit_v=limit)
            network = MtClusterer(netlist, library, placement,
                                  config).build(mt_names)
            SwitchSizer(library, limit).size_network(network)
            return network.total_switch_width(library)

        assert total_width(0.024) >= total_width(0.06)

    def test_unsizeable_reported_not_raised(self, placed_mt_design,
                                            library):
        netlist, placement, mt_names = placed_mt_design
        config = ClusterConfig(bounce_limit_v=0.048)
        network = MtClusterer(netlist, library, placement,
                              config).build(mt_names)
        sizer = SwitchSizer(library, 1e-6)  # impossible limit
        outcome = sizer.size_network(network, strict=False)
        assert outcome.unsizeable_clusters
        with pytest.raises(SizingError):
            sizer.size_network(network, strict=True)

    def test_reoptimize_with_measured_rails(self, placed_mt_design,
                                            library):
        netlist, placement, mt_names = placed_mt_design
        config = ClusterConfig(bounce_limit_v=0.048)
        network = MtClusterer(netlist, library, placement,
                              config).build(mt_names)
        sizer = SwitchSizer(library, config.bounce_limit_v)
        sizer.size_network(network)
        # Pretend routing halved every rail: switches may shrink.
        measured = {c.index: c.rail_length_um * 0.5
                    for c in network.clusters}
        outcome = sizer.reoptimize(network, measured)
        assert network.bounce_ok()
        assert not outcome.unsizeable_clusters


class TestEm:
    def test_clean_network(self, placed_mt_design, library):
        netlist, placement, mt_names = placed_mt_design
        config = ClusterConfig(bounce_limit_v=0.048)
        network = MtClusterer(netlist, library, placement,
                              config).build(mt_names)
        SwitchSizer(library, config.bounce_limit_v).size_network(network)
        assert check_em(network, library,
                        config.max_cells_per_switch) == []

    def test_cell_count_violation(self, placed_mt_design, library):
        netlist, placement, mt_names = placed_mt_design
        network = MtClusterer(netlist, library, placement,
                              ClusterConfig()).build(mt_names)
        SwitchSizer(library, 0.048).size_network(network)
        violations = check_em(network, library, max_cells_per_switch=1)
        assert violations
        assert any(v.rule == "cell_count" for v in violations)

    def test_current_violation_detected(self, placed_mt_design, library):
        netlist, placement, mt_names = placed_mt_design
        network = MtClusterer(netlist, library, placement,
                              ClusterConfig()).build(mt_names)
        SwitchSizer(library, 0.048).size_network(network)
        # Force undersized switches.
        for cluster in network.clusters:
            cluster.switch_cell = "SWITCH_X1"
            cluster.current_ma = 100.0
        violations = check_em(network, library, 64)
        assert any(v.rule == "current" for v in violations)
        assert "exceeds" in violations[0].render()


class TestDerates:
    def test_derates_cover_members(self, placed_mt_design, library):
        netlist, placement, mt_names = placed_mt_design
        config = ClusterConfig(bounce_limit_v=0.048)
        network = MtClusterer(netlist, library, placement,
                              config).build(mt_names)
        SwitchSizer(library, config.bounce_limit_v).size_network(network)
        derates = network.derates(netlist, library, 0.024)
        assert set(derates) == set(mt_names)
        for value in derates.values():
            assert 0.9 < value < 1.1


class TestSimultaneityConfig:
    """ClusterConfig/FlowConfig overrides of the simultaneity model."""

    def test_cluster_config_validates_ranges(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError) as excinfo:
            ClusterConfig(simultaneity_exponent=1.5)
        assert excinfo.value.field == "simultaneity_exponent"
        with pytest.raises(ConfigError) as excinfo:
            ClusterConfig(simultaneity_floor=0.0)
        assert excinfo.value.field == "simultaneity_floor"
        with pytest.raises(ConfigError):
            ClusterConfig(simultaneity_floor=1.5)

    def test_flow_config_validates_ranges(self):
        from repro.config import FlowConfig
        from repro.errors import ConfigError

        with pytest.raises(ConfigError) as excinfo:
            FlowConfig(simultaneity_exponent=-0.1)
        assert excinfo.value.field == "simultaneity_exponent"
        with pytest.raises(ConfigError):
            FlowConfig(simultaneity_floor=2.0)

    def test_defaults_match_module_constants(self):
        from repro.config import FlowConfig
        from repro.vgnd.bounce import (
            SIMULTANEITY_EXPONENT,
            SIMULTANEITY_FLOOR,
        )

        cluster = ClusterConfig()
        flow = FlowConfig()
        assert cluster.simultaneity_exponent == SIMULTANEITY_EXPONENT
        assert cluster.simultaneity_floor == SIMULTANEITY_FLOOR
        assert flow.simultaneity_exponent == SIMULTANEITY_EXPONENT
        assert flow.simultaneity_floor == SIMULTANEITY_FLOOR

    def test_floor_one_disables_the_discount(self, placed_mt_design,
                                             library):
        """floor=1.0 makes every cluster current the plain sum."""
        netlist, placement, mt_names = placed_mt_design
        config = ClusterConfig(simultaneity_floor=1.0)
        network = MtClusterer(netlist, library, placement,
                              config).build(mt_names)
        defaults = MtClusterer(netlist, library, placement,
                               ClusterConfig()).build(mt_names)
        for cluster in network.clusters:
            expected = cluster_current(cluster.members, netlist, library,
                                       exponent=0.5, floor=1.0)
            assert cluster.current_ma == pytest.approx(expected)
        worst = max(c.current_ma / max(c.size, 1)
                    for c in network.clusters)
        worst_default = max(c.current_ma / max(c.size, 1)
                            for c in defaults.clusters)
        assert worst >= worst_default

    def test_flow_threads_overrides_into_clustering(self, library):
        """A pessimistic floor reaches the built switch structure."""
        from repro.benchcircuits.suite import load_circuit
        from repro.config import FlowConfig, Technique
        from repro.core.flow import SelectiveMtFlow

        netlist = load_circuit("c17")
        # A roomier die: the pessimistic floor grows the switch, and
        # c17's default floorplan has no slack for it.
        tuned = SelectiveMtFlow(
            netlist, library, Technique.IMPROVED_SMT,
            FlowConfig(timing_margin=0.2, utilization=0.4,
                       simultaneity_floor=0.8)).run()
        default = SelectiveMtFlow(
            netlist, library, Technique.IMPROVED_SMT,
            FlowConfig(timing_margin=0.2, utilization=0.4)).run()
        assert tuned.network is not None
        tuned_current = sum(c.current_ma
                            for c in tuned.network.clusters)
        default_current = sum(c.current_ma
                              for c in default.network.clusters)
        assert tuned_current >= default_current
