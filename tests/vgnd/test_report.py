"""VGND network report rendering and refinement."""

import pytest

from repro.errors import VgndError
from repro.liberty.library import VARIANT_MTV
from repro.netlist.techmap import technology_map
from repro.netlist.transform import swap_variant
from repro.netlist.validate import check_netlist
from repro.placement.legalize import legalize
from repro.placement.placer import GlobalPlacer
from repro.vgnd.cluster import ClusterConfig, MtClusterer
from repro.vgnd.refine import repair_unsizeable, split_cluster
from repro.vgnd.report import render_network_table
from repro.vgnd.sizing import SwitchSizer


@pytest.fixture()
def sized_network(library):
    from repro.benchcircuits.suite import load_circuit

    netlist = load_circuit("c499")
    technology_map(netlist, library)
    placement = GlobalPlacer(netlist, library).run()
    legalize(placement, netlist, library)
    mt_names = []
    for inst in list(netlist.instances.values()):
        cell = library.cell(inst.cell_name)
        if library.has_variant(cell, VARIANT_MTV):
            swap_variant(netlist, inst, library, VARIANT_MTV)
            mt_names.append(inst.name)
    config = ClusterConfig()
    network = MtClusterer(netlist, library, placement,
                          config).build(mt_names)
    sizer = SwitchSizer(library, config.bounce_limit_v)
    sizer.size_network(network)
    # Materialize switches in the netlist so splitting can rewire them.
    from repro.netlist.core import PinDirection

    netlist.add_input("MTE")
    for cluster in network.clusters:
        vgnd_net = netlist.get_or_create_net(cluster.net_name)
        name = netlist.unique_name(f"vgnd_switch_{cluster.index}")
        inst = netlist.add_instance(name, cluster.switch_cell)
        netlist.connect(inst, "VGND", vgnd_net, PinDirection.INOUT,
                        keeper=True)
        netlist.connect(inst, "MTE", "MTE", PinDirection.INPUT)
        cluster.switch_instance = name
        for member in cluster.members:
            pin = netlist.instances[member].pins.get("VGND")
            if pin is not None and pin.net is None:
                netlist.connect(netlist.instances[member], "VGND",
                                vgnd_net, PinDirection.INOUT, keeper=True)
    return netlist, placement, network, sizer


def test_render_table(library, sized_network):
    _netlist, _placement, network, _sizer = sized_network
    text = render_network_table(network, library)
    assert "VGND switch structure" in text
    assert "worst bounce" in text
    for cluster in network.clusters:
        assert cluster.switch_cell in text


def test_split_cluster_preserves_membership(library, sized_network):
    netlist, placement, network, sizer = sized_network
    target = max(network.clusters, key=lambda c: c.size)
    before_members = set(target.members)
    before_count = len(network.clusters)
    first, second = split_cluster(netlist, library, placement, network,
                                  target)
    assert len(network.clusters) == before_count + 1
    assert set(first.members) | set(second.members) == before_members
    assert not set(first.members) & set(second.members)
    # Rewired rails are consistent.
    sizer.size_cluster(first)
    sizer.size_cluster(second)
    for half in (first, second):
        for member in half.members:
            pin = netlist.instances[member].pins["VGND"]
            assert pin.net.name == half.net_name


def test_split_single_cell_cluster_rejected(library, sized_network):
    netlist, placement, network, _sizer = sized_network
    from repro.vgnd.network import VgndCluster

    lonely = VgndCluster(index=999, members=[network.clusters[0].members[0]],
                         net_name="vgnd_999")
    network.clusters.append(lonely)
    with pytest.raises(VgndError):
        split_cluster(netlist, library, placement, network, lonely)


def test_repair_unsizeable_splits_until_clean(library, sized_network):
    netlist, placement, network, _sizer = sized_network
    # A tighter sizer that cannot serve the biggest cluster as-is.
    target = max(network.clusters, key=lambda c: c.current_ma)
    tight_limit = target.current_ma * 0.9 * SwitchSizer(
        library, 0.048).ron(library.switch_cells()[-1])
    tight_sizer = SwitchSizer(library, max(tight_limit, 1e-3))
    outcome = tight_sizer.size_network(network, strict=False)
    if outcome.unsizeable_clusters:
        splits = repair_unsizeable(netlist, library, placement, network,
                                   tight_sizer,
                                   outcome.unsizeable_clusters)
        assert splits > 0
    final = tight_sizer.size_network(network)
    assert not final.unsizeable_clusters
    assert network.worst_bounce_v() <= tight_sizer.bounce_limit_v + 1e-9
