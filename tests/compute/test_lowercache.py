"""Persistent lowering cache: round-trip, versioning, corruption, eviction.

The contract of :mod:`repro.compute.lowercache`: a rehydrated
:class:`NetlistArrayView` is indistinguishable from a freshly lowered
one (identical arrays, identical kernel outputs), and NOTHING that can
happen to the cache directory — truncation, garbage bytes, format
bumps, key collisions, deletion — can ever corrupt a result: every bad
entry degrades to a miss plus a fresh lowering.
"""

from __future__ import annotations

import os

import pytest

np = pytest.importorskip("numpy")

from repro.compute import lowercache
from repro.compute.kernels import backward, forward
from repro.compute.view import NetlistArrayView
from repro.timing.constraints import Constraints
from repro.timing.delay import NetModel


@pytest.fixture()
def cache_env(tmp_path, monkeypatch):
    monkeypatch.setenv(lowercache.ENV_VAR, str(tmp_path))
    lowercache.reset_stats()
    return tmp_path


@pytest.fixture()
def lowered(library, s27):
    """A built view over the sequential s27 (FF endpoints, clocks)."""
    constraints = Constraints(clock_period=2000.0)
    net_model = NetModel(s27, library, constraints)
    view = NetlistArrayView(s27, library, constraints, net_model)
    view.ensure()
    return s27, constraints, net_model, view


def assert_same_kernels(view_a, view_b):
    derates = np.ones((2, len(view_a.inst_names)))
    derates[1] *= 1.05
    fwd_a, fwd_b = forward(view_a, derates), forward(view_b, derates)
    for slot in ("arr_rise", "arr_fall", "min_rise", "min_fall",
                 "slew_rise", "slew_fall"):
        a, b = getattr(fwd_a, slot), getattr(fwd_b, slot)
        assert np.array_equal(a, b), slot
    req_rise_a, req_fall_a = backward(view_a, fwd_a, derates)
    req_rise_b, req_fall_b = backward(view_b, fwd_b, derates)
    assert np.array_equal(req_rise_a, req_rise_b)
    assert np.array_equal(req_fall_a, req_fall_b)


class TestRoundTrip:
    def test_state_round_trips_exactly(self, lowered):
        netlist, constraints, net_model, view = lowered
        state = view.export_state()
        clone = NetlistArrayView.from_state(
            dict(state), netlist, view.library, constraints, net_model)
        assert list(clone.node_names) == list(view.node_names)
        assert list(clone.inst_names) == list(view.inst_names)
        assert len(clone.luts) == len(view.luts)
        assert np.array_equal(clone.luts.scale_classes(),
                              view.luts.scale_classes())
        assert_same_kernels(view, clone)

    def test_store_then_load_hits(self, cache_env, lowered, library):
        netlist, constraints, net_model, view = lowered
        key = lowercache.view_key(netlist, library, constraints)
        assert lowercache.store_view(view, key)
        loaded = lowercache.load_view(key, netlist, library,
                                      constraints, net_model)
        assert loaded is not None
        assert lowercache.stats()["hits"] == 1
        assert_same_kernels(view, loaded)

    def test_cached_view_cold_then_warm(self, cache_env, lowered,
                                        library):
        netlist, constraints, net_model, _view = lowered
        first = lowercache.cached_view(netlist, library, constraints,
                                       net_model)
        second = lowercache.cached_view(netlist, library, constraints,
                                        net_model)
        stats = lowercache.stats()
        assert stats["misses"] == 1 and stats["stores"] == 1
        assert stats["hits"] == 1 and stats["errors"] == 0
        assert_same_kernels(first, second)

    def test_disabled_means_plain_view(self, monkeypatch, lowered,
                                       library):
        netlist, constraints, net_model, _view = lowered
        for off in ("", "0", "off", "NONE", "Disabled"):
            monkeypatch.setenv(lowercache.ENV_VAR, off)
            assert lowercache.cache_dir() is None
        lowercache.reset_stats()
        view = lowercache.cached_view(netlist, library, constraints,
                                      net_model)
        assert isinstance(view, NetlistArrayView)
        assert lowercache.stats() == {"hits": 0, "misses": 0,
                                      "stores": 0, "evictions": 0,
                                      "errors": 0}

    def test_loaded_view_rejects_structural_reuse(self, cache_env,
                                                  lowered, library):
        """A rehydrated view is frozen: table registration raises."""
        from repro.errors import TimingError

        netlist, constraints, net_model, view = lowered
        key = lowercache.view_key(netlist, library, constraints)
        lowercache.store_view(view, key)
        loaded = lowercache.load_view(key, netlist, library,
                                      constraints, net_model)
        with pytest.raises(TimingError):
            loaded.luts.register(object())


class TestInvalidation:
    def test_format_version_bump_invalidates(self, cache_env, lowered,
                                             library, monkeypatch):
        netlist, constraints, net_model, view = lowered
        key = lowercache.view_key(netlist, library, constraints)
        lowercache.store_view(view, key)
        monkeypatch.setattr(lowercache, "FORMAT_VERSION",
                            lowercache.FORMAT_VERSION + 1)
        # Same key string, newer reader: the entry must not load.
        assert lowercache.load_view(key, netlist, library, constraints,
                                    net_model) is None
        assert lowercache.stats()["errors"] == 1
        # The poisoned entry was dropped on the spot.
        assert not list(cache_env.glob("lower-*.npz"))

    def test_key_changes_with_content(self, lowered, library):
        netlist, constraints, _net_model, _view = lowered
        base = lowercache.view_key(netlist, library, constraints)
        assert lowercache.view_key(
            netlist, library,
            Constraints(clock_period=1999.0)) != base
        assert lowercache.view_key(
            netlist, library, constraints,
            clock_arrivals={"ff1": 10.0}) != base
        # Stable across calls.
        assert lowercache.view_key(netlist, library, constraints) == base

    def test_fingerprint_mismatch_misses(self, cache_env, lowered,
                                         library):
        """A different netlist computes a different key => plain miss."""
        netlist, constraints, net_model, view = lowered
        lowercache.store_view(
            view, lowercache.view_key(netlist, library, constraints))
        edited = netlist.clone("edited")
        edited.add_input("spare")
        other_key = lowercache.view_key(edited, library, constraints)
        assert other_key != lowercache.view_key(netlist, library,
                                                constraints)
        assert lowercache.load_view(other_key, edited, library,
                                    constraints, net_model) is None
        assert lowercache.stats()["misses"] == 1
        assert lowercache.stats()["errors"] == 0

    def test_truncated_file_falls_back_cleanly(self, cache_env, lowered,
                                               library):
        netlist, constraints, net_model, view = lowered
        key = lowercache.view_key(netlist, library, constraints)
        lowercache.store_view(view, key)
        path = next(cache_env.glob("lower-*.npz"))
        path.write_bytes(path.read_bytes()[:128])
        assert lowercache.load_view(key, netlist, library, constraints,
                                    net_model) is None
        assert not path.exists()
        stats = lowercache.stats()
        assert stats["errors"] == 1 and stats["misses"] == 1
        # cached_view recovers end-to-end: rebuild + restore.
        fresh = lowercache.cached_view(netlist, library, constraints,
                                       net_model)
        assert_same_kernels(view, fresh)

    def test_garbage_bytes_fall_back_cleanly(self, cache_env, lowered,
                                             library):
        netlist, constraints, net_model, view = lowered
        key = lowercache.view_key(netlist, library, constraints)
        path = lowercache._entry_path(cache_env, key)
        path.write_bytes(b"this is not an npz archive")
        assert lowercache.load_view(key, netlist, library, constraints,
                                    net_model) is None
        assert not path.exists()


class TestEviction:
    def test_cap_evicts_oldest_first(self, cache_env, lowered, library,
                                     monkeypatch):
        monkeypatch.setenv(lowercache.ENV_MAX_ENTRIES, "3")
        netlist, constraints, net_model, view = lowered
        keys = [f"{'%064x' % k}" for k in range(5)]
        for index, key in enumerate(keys):
            lowercache.store_view(view, key)
            # Deterministic mtime order without sleeping.
            os.utime(lowercache._entry_path(cache_env, key),
                     (1_000_000 + index, 1_000_000 + index))
            lowercache._evict(cache_env)
        remaining = {p.name for p in cache_env.glob("lower-*.npz")}
        assert remaining == {f"lower-{k}.npz" for k in keys[-3:]}
        assert lowercache.stats()["evictions"] == 2

    def test_hit_refreshes_mtime(self, cache_env, lowered, library):
        netlist, constraints, net_model, view = lowered
        key = lowercache.view_key(netlist, library, constraints)
        lowercache.store_view(view, key)
        path = lowercache._entry_path(cache_env, key)
        os.utime(path, (1_000_000, 1_000_000))
        before = path.stat().st_mtime
        assert lowercache.load_view(key, netlist, library, constraints,
                                    net_model) is not None
        assert path.stat().st_mtime > before
