"""Cross-backend property suite: python vs numpy on random circuits.

The equivalence contract of :mod:`repro.compute`: for randomized
generated circuits and randomized tracked edit scripts (variant swaps,
derate updates, buffer insertions), the two compute backends agree on

* every endpoint slack, WNS/TNS (setup and hold) to 1e-9 relative,
* total standby leakage to 1e-9 relative,
* report ordering **bit-identically** (endpoint check list and
  node-timing dict insertion order).

Three session flavors are compared against the scalar reference: a
numpy session left to its own full/incremental policy (numpy full
runs composed with scalar dirty-cone re-propagation) and a numpy
session forced to full-run every report (``full_threshold=0`` — every
step exercises the array kernels and the view invalidation).
"""

from __future__ import annotations

import random

import pytest

np = pytest.importorskip("numpy")

from repro.benchcircuits.generator import GeneratorConfig, generate_circuit
from repro.liberty.library import VARIANT_HVT, VARIANT_LVT
from repro.netlist.techmap import technology_map
from repro.power.leakage import LeakageAnalyzer
from repro.timing.constraints import Constraints
from repro.timing.session import TimingSession
from repro.timing.sta import TimingAnalyzer
from repro.variation.montecarlo import McConfig, MonteCarloEngine

REL = 1e-9


def close(a: float, b: float) -> bool:
    if a == b:
        return True
    return abs(a - b) <= REL * max(1.0, abs(a), abs(b))


def assert_reports_equivalent(reference, candidate, context: str,
                              node_order: bool = False):
    assert [(c.endpoint, c.kind) for c in reference.endpoint_checks] \
        == [(c.endpoint, c.kind) for c in candidate.endpoint_checks], \
        f"endpoint ordering diverged ({context})"
    if node_order:
        # Fresh full runs produce the canonical insertion order on both
        # backends.  (Incremental sessions keep historical order, so
        # this is only asserted fresh-vs-fresh.)
        assert list(reference.node_timing) == list(candidate.node_timing), \
            f"node ordering diverged ({context})"
    else:
        assert set(reference.node_timing) == set(candidate.node_timing), \
            f"node domain diverged ({context})"
    for name, node in reference.node_timing.items():
        other = candidate.node_timing[name]
        assert close(node.slack, other.slack) \
            and close(node.arrival, other.arrival), \
            f"node {name} diverged ({context})"
    for ref, cand in zip(reference.endpoint_checks,
                         candidate.endpoint_checks):
        assert close(ref.slack, cand.slack), \
            f"slack {ref.endpoint}/{ref.kind}: {ref.slack} vs " \
            f"{cand.slack} ({context})"
    for field in ("wns", "tns", "hold_wns", "hold_tns"):
        assert close(getattr(reference, field), getattr(candidate, field)), \
            f"{field} diverged ({context})"
    assert reference.critical_endpoint == candidate.critical_endpoint, context


def _mapped_circuit(config: GeneratorConfig, library):
    netlist = generate_circuit(f"prop_{config.style}_{config.seed}", config)
    technology_map(netlist, library, VARIANT_LVT)
    return netlist


CIRCUITS = [
    GeneratorConfig(n_gates=300, n_inputs=12, n_outputs=8, n_ffs=6,
                    depth=10, style="layered", seed=21),
    GeneratorConfig(n_gates=400, n_inputs=16, n_outputs=8, n_ffs=0,
                    depth=14, style="tapered", seed=22),
    GeneratorConfig(n_gates=360, n_inputs=20, n_outputs=6, n_ffs=8,
                    depth=12, style="grid", seed=23),
]


@pytest.mark.parametrize("config", CIRCUITS,
                         ids=[c.style for c in CIRCUITS])
def test_random_edit_scripts_agree(config, library):
    """Swaps/derates/buffers: every report equivalent on both backends."""
    reference_netlist = _mapped_circuit(config, library)
    constraints = Constraints(clock_period=2.0)
    scalar = TimingSession(reference_netlist, library, constraints,
                           compute_backend="python")
    mixed = TimingSession(reference_netlist.clone(), library, constraints,
                          compute_backend="numpy")
    forced = TimingSession(reference_netlist.clone(), library, constraints,
                           compute_backend="numpy", full_threshold=0.0)
    sessions = (scalar, mixed, forced)
    rng = random.Random(config.seed * 7)
    instance_names = sorted(reference_netlist.instances)

    for step in range(20):
        roll = rng.random()
        if roll < 0.45:
            name = rng.choice(instance_names)
            variant = rng.choice([VARIANT_LVT, VARIANT_HVT])
            for session in sessions:
                inst = session.netlist.instances.get(name)
                if inst is None:
                    continue
                cell = library.cell(inst.cell_name)
                if cell.is_sequential or not library.has_variant(
                        cell, variant):
                    continue
                session.swap_variant(inst, variant)
        elif roll < 0.75:
            derates = {rng.choice(instance_names): 1.0 + rng.random() * 0.25
                       for _ in range(6)}
            for session in sessions:
                session.set_derates(dict(derates))
        else:
            nets = sorted(name for name, net
                          in scalar.netlist.nets.items() if net.sinks)
            name = rng.choice(nets)
            for session in sessions:
                session.insert_buffer(session.netlist.nets[name],
                                      "BUF_X4_LVT")
        reference = scalar.report()
        assert_reports_equivalent(reference, mixed.report(),
                                  f"{config.style} step {step} mixed")
        assert_reports_equivalent(reference, forced.report(),
                                  f"{config.style} step {step} forced")

    # The forced session must have exercised the numpy kernels (some
    # reports are served from cache when an edit was a no-op).
    assert forced.stats.full_runs >= 10
    assert forced.stats.incremental_runs == 0
    # Editing composed with the view: at least one in-place patch or
    # rebuild happened beyond the initial build.
    view = forced._view
    assert view is not None and (view.rebuilds + view.patches) >= 2

    # And a from-scratch analysis agrees on both backends, including
    # the canonical node insertion order.
    fresh_scalar = TimingAnalyzer(scalar.netlist, library, constraints,
                                  derates=scalar.derates,
                                  compute_backend="python").run()
    fresh_vector = TimingAnalyzer(scalar.netlist, library, constraints,
                                  derates=scalar.derates,
                                  compute_backend="numpy").run()
    assert_reports_equivalent(fresh_scalar, fresh_vector,
                              "fresh-vs-fresh", node_order=True)
    assert_reports_equivalent(fresh_scalar, scalar.report(),
                              "fresh-vs-scalar")
    assert_reports_equivalent(fresh_scalar, forced.report(),
                              "fresh-vs-forced")


@pytest.mark.parametrize("config", CIRCUITS,
                         ids=[c.style for c in CIRCUITS])
def test_leakage_totals_agree(config, library):
    """Total + per-category leakage equivalent after random swaps."""
    netlist = _mapped_circuit(config, library)
    rng = random.Random(config.seed)
    for name in rng.sample(sorted(netlist.instances),
                           len(netlist.instances) // 3):
        inst = netlist.instances[name]
        cell = library.cell(inst.cell_name)
        if not cell.is_sequential and library.has_variant(cell, VARIANT_HVT):
            from repro.netlist.transform import swap_variant

            swap_variant(netlist, inst, library, VARIANT_HVT)
    scalar = LeakageAnalyzer(netlist, library,
                             compute_backend="python").standby_leakage()
    vector = LeakageAnalyzer(netlist, library,
                             compute_backend="numpy").standby_leakage()
    assert close(scalar.total_nw, vector.total_nw)
    for category in scalar.CATEGORIES:
        assert close(getattr(scalar, category), getattr(vector, category))
    assert scalar.instance_count == vector.instance_count
    assert list(scalar.per_instance) == list(vector.per_instance)
    assert scalar.per_instance == vector.per_instance


def test_montecarlo_chunks_agree(library):
    """One batched (samples x instances) pass == k scalar samples."""
    config = GeneratorConfig(n_gates=250, n_inputs=10, n_outputs=6,
                             n_ffs=5, depth=9, seed=31)
    netlist = _mapped_circuit(config, library)
    constraints = Constraints(clock_period=2.2)
    mc = McConfig(samples=10, seed=9, timing=True)
    scalar = MonteCarloEngine(netlist, library, mc, constraints=constraints,
                              compute_backend="python")
    vector = MonteCarloEngine(netlist.clone(), library, mc,
                              constraints=constraints,
                              compute_backend="numpy")
    assert close(scalar.nominal_wns, vector.nominal_wns)
    assert close(scalar.nominal_leakage_nw, vector.nominal_leakage_nw)
    scalar_samples = scalar.run()
    vector_samples = vector.run()
    for a, b in zip(scalar_samples, vector_samples):
        assert a.index == b.index
        # Identical seeded draws on both backends — exact equality.
        assert a.global_dvth_v == b.global_dvth_v
        assert close(a.leakage_nw, b.leakage_nw)
        assert close(a.wns, b.wns)
    # Chunking invariance on the vector path (start offsets line up).
    tail = vector.run(start=4, count=3)
    assert [s.index for s in tail] == [4, 5, 6]
    for a, b in zip(vector_samples[4:7], tail):
        assert a.leakage_nw == b.leakage_nw and a.wns == b.wns


def test_single_sample_dispatch(library):
    """engine.sample() routes through the batch kernel on numpy."""
    config = GeneratorConfig(n_gates=120, n_inputs=8, n_outputs=4,
                             depth=8, seed=41)
    netlist = _mapped_circuit(config, library)
    mc = McConfig(samples=4, seed=3, timing=False)
    scalar = MonteCarloEngine(netlist, library, mc,
                              compute_backend="python")
    vector = MonteCarloEngine(netlist, library, mc,
                              compute_backend="numpy")
    a = scalar.sample(2)
    b = vector.sample(2)
    assert a.index == b.index == 2
    assert a.global_dvth_v == b.global_dvth_v
    assert close(a.leakage_nw, b.leakage_nw)
    assert a.wns is None and b.wns is None
