"""LutStore / lut_lookup bit-equivalence with the scalar Lut.lookup.

The vectorized table lookup must reproduce the scalar bilinear
interpolation *exactly* — same segment choice, same expressions — over
the characterized window, under linear extrapolation beyond it, and on
degenerate (singleton-axis, constant) tables.
"""

from __future__ import annotations

import random

import pytest

np = pytest.importorskip("numpy")

from repro.compute.kernels import lut_lookup
from repro.compute.view import LutStore
from repro.liberty.library import Lut


def random_lut(rng: random.Random) -> Lut:
    shape = rng.choice([(1, 1), (1, 4), (4, 1), (3, 3), (4, 4), (2, 5)])
    rows, cols = shape
    axis1 = sorted(rng.uniform(0.001, 0.5) for _ in range(rows))
    axis2 = sorted(rng.uniform(0.0001, 0.05) for _ in range(cols))
    values = [[rng.uniform(0.01, 2.0) for _ in range(cols)]
              for _ in range(rows)]
    return Lut(axis1, axis2, values)


def test_lookup_matches_scalar_bitwise():
    rng = random.Random(17)
    luts = [random_lut(rng) for _ in range(40)]
    luts.append(Lut.constant(0.125))
    store = LutStore()
    ids = [store.register(lut) for lut in luts]
    probes = []
    for lut in luts:
        lo1, hi1 = lut.index_1[0], lut.index_1[-1]
        lo2, hi2 = lut.index_2[0], lut.index_2[-1]
        # Inside, on-grid, and extrapolating on both sides.
        probes.append((rng.uniform(lo1, hi1), rng.uniform(lo2, hi2)))
        probes.append((lo1, hi2))
        probes.append((hi1 * 1.7 + 0.01, hi2 * 2.3 + 0.01))
        probes.append((max(lo1 - 0.1, 0.0) - 0.05, lo2 * 0.5))
    id_vec, x1_vec, x2_vec, expected = [], [], [], []
    for lut, lut_id in zip(luts, ids):
        for slew, load in probes:
            id_vec.append(lut_id)
            x1_vec.append(slew)
            x2_vec.append(load)
            expected.append(lut.lookup(slew, load))
    got = lut_lookup(store.arrays(), np.array(id_vec),
                     np.array(x1_vec), np.array(x2_vec))
    assert got.tolist() == expected  # bit-identical, not approx


def test_missing_table_is_zero():
    store = LutStore()
    store.register(Lut.constant(3.0))
    got = lut_lookup(store.arrays(), np.array([-1, 0]),
                     np.array([0.1, 0.1]), np.array([0.01, 0.01]))
    assert got.tolist() == [0.0, 3.0]


def test_register_deduplicates_by_identity():
    store = LutStore()
    lut = Lut.constant(1.0)
    assert store.register(lut) == store.register(lut)
    assert store.register(None) == -1
    assert len(store) == 1


def test_store_grows_after_arrays_built():
    """Registering after a lookup pass (variant-swap patch) works."""
    rng = random.Random(3)
    store = LutStore()
    first = random_lut(rng)
    store.register(first)
    store.arrays()
    second = random_lut(rng)
    new_id = store.register(second)
    got = lut_lookup(store.arrays(), np.array([new_id]),
                     np.array([0.02]), np.array([0.004]))
    assert got.tolist() == [second.lookup(0.02, 0.004)]
