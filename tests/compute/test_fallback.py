"""Backend resolution and the graceful scalar fallback.

``numpy`` is an optional extra (``pip install .[fast]``): requesting
it on a machine without the dependency must quietly degrade to the
scalar reference implementation at every entry point, never error.
"""

from __future__ import annotations

import pytest

import repro.compute as compute
from repro.config import FlowConfig
from repro.errors import FlowError
from repro.power.leakage import LeakageAnalyzer
from repro.timing.constraints import Constraints
from repro.timing.session import TimingSession
from repro.variation.montecarlo import McConfig, MonteCarloEngine


@pytest.fixture()
def no_numpy(monkeypatch):
    """Simulate an environment without the optional numpy extra."""
    monkeypatch.setattr(compute, "numpy_available", lambda: False)


def test_resolve_backend_validates():
    assert compute.resolve_backend("python") == "python"
    with pytest.raises(FlowError):
        compute.resolve_backend("fortran")


def test_resolve_backend_falls_back(no_numpy):
    assert compute.resolve_backend("numpy") == "python"


def test_default_backend_env(monkeypatch):
    monkeypatch.delenv(compute.BACKEND_ENV_VAR, raising=False)
    assert compute.default_backend() == "python"
    monkeypatch.setenv(compute.BACKEND_ENV_VAR, "numpy")
    assert compute.default_backend() == compute.resolve_backend("numpy")
    monkeypatch.setenv(compute.BACKEND_ENV_VAR, "weird")
    with pytest.raises(FlowError):
        compute.default_backend()


def test_default_backend_env_without_numpy(no_numpy, monkeypatch):
    monkeypatch.setenv(compute.BACKEND_ENV_VAR, "numpy")
    assert compute.default_backend() == "python"


def test_flow_config_validates_backend():
    assert FlowConfig(compute_backend="numpy").compute_backend == "numpy"
    with pytest.raises(FlowError):
        FlowConfig(compute_backend="cuda")


def test_session_falls_back_to_scalar(no_numpy, half_adder, library):
    session = TimingSession(half_adder, library,
                            Constraints(clock_period=1.0),
                            compute_backend="numpy")
    assert session.compute_backend == "python"
    report = session.report()
    reference = TimingSession(half_adder, library,
                              Constraints(clock_period=1.0),
                              compute_backend="python").report()
    assert report.wns == reference.wns
    assert session._view is None  # never built an array view


def test_leakage_falls_back_to_scalar(no_numpy, c17, library):
    analyzer = LeakageAnalyzer(c17, library, compute_backend="numpy")
    assert analyzer.compute_backend == "python"
    reference = LeakageAnalyzer(c17, library, compute_backend="python")
    assert analyzer.standby_leakage().total_nw \
        == reference.standby_leakage().total_nw


def test_montecarlo_falls_back_to_scalar(no_numpy, c17, library):
    mc = McConfig(samples=4, seed=1, timing=True)
    constraints = Constraints(clock_period=2.0)
    engine = MonteCarloEngine(c17, library, mc, constraints=constraints,
                              compute_backend="numpy")
    assert engine.compute_backend == "python"
    assert engine._session is not None and engine._view is None
    reference = MonteCarloEngine(c17, library, mc, constraints=constraints,
                                 compute_backend="python")
    for a, b in zip(engine.run(), reference.run()):
        assert a.leakage_nw == b.leakage_nw and a.wns == b.wns


def test_cli_backend_flag(capsys):
    from repro.cli import build_parser

    args = build_parser().parse_args(
        ["flow", "--circuit", "c17", "--backend", "numpy"])
    assert args.backend == "numpy"
    args = build_parser().parse_args(["flow", "--circuit", "c17"])
    assert args.backend is None
