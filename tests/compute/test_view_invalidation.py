"""Array-view invalidation: patches vs rebuilds, load refreshes.

The view must stay consistent with the netlist through the session's
edit taxonomy, and must take the cheap path when it is sound: a
variant swap between same-base siblings patches LUT ids in place; a
structural edit rebuilds.
"""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy")

from repro.compute.sta import run_full
from repro.compute.view import NetlistArrayView
from repro.liberty.library import VARIANT_HVT, VARIANT_LVT
from repro.netlist import transform
from repro.timing.constraints import Constraints
from repro.timing.delay import NetModel
from repro.timing.sta import TimingAnalyzer


def make_view(netlist, library, constraints):
    net_model = NetModel(netlist, library, constraints)
    return NetlistArrayView(netlist, library, constraints, net_model)


def reference_wns(netlist, library, constraints, view):
    nodes, checks = run_full(view, {})
    fresh = TimingAnalyzer(netlist, library, constraints,
                           compute_backend="python").run()
    got = min(c.slack for c in checks if c.kind in ("output", "setup"))
    assert got == fresh.wns
    return got


def test_swap_patches_in_place(c17, library):
    constraints = Constraints(clock_period=2.0)
    view = make_view(c17, library, constraints)
    view.ensure()
    assert view.rebuilds == 1
    name = sorted(c17.instances)[0]
    inst = c17.instances[name]
    transform.swap_variant(c17, inst, library, VARIANT_HVT)
    view.touch_instance(name)
    for pin in inst.pins.values():
        if pin.net is not None:
            view.net_model.invalidate(pin.net)
            view.touch_net(pin.net.name)
    view.ensure()
    assert view.rebuilds == 1        # no rebuild...
    assert view.patches >= 1         # ...the swap was patched in place
    reference_wns(c17, library, constraints, view)


def test_structural_edit_rebuilds(c17, library):
    constraints = Constraints(clock_period=2.0)
    view = make_view(c17, library, constraints)
    view.ensure()
    net = next(net for net in c17.nets.values() if net.sinks)
    transform.insert_buffer(c17, net, "BUF_X4_LVT")
    view.touch_structural()
    view.net_model.invalidate()
    view.ensure()
    assert view.rebuilds == 2
    reference_wns(c17, library, constraints, view)


def test_unknown_dirty_instance_forces_rebuild(c17, library):
    constraints = Constraints(clock_period=2.0)
    view = make_view(c17, library, constraints)
    view.ensure()
    view.touch_instance("no_such_instance")
    view.ensure()
    assert view.rebuilds == 2


def test_load_refresh_without_rebuild(half_adder, library):
    constraints = Constraints(clock_period=1.0)
    view = make_view(half_adder, library, constraints)
    view.ensure()
    loads_before = view.loads.copy()
    # Output load constraint change on a sink port net.
    constraints.output_loads["s"] = 0.02
    net = half_adder.nets["s"]
    view.net_model.invalidate(net)
    view.touch_net("s")
    view.ensure()
    assert view.rebuilds == 1
    idx = view.node_index["s"]
    assert view.loads[idx] != loads_before[idx]
    assert view.loads[idx] == view.net_model.total_load(net)


def test_session_derate_updates_do_not_rebuild(c17, library):
    from repro.timing.session import TimingSession

    constraints = Constraints(clock_period=2.0)
    session = TimingSession(c17, library, constraints,
                            compute_backend="numpy")
    session.report()
    view = session._view
    assert view is not None and view.rebuilds == 1
    for round_index in range(4):
        session.set_derates({name: 1.0 + 0.01 * round_index
                             for name in c17.instances})
        session.report()
    assert view.rebuilds == 1 and view.patches == 0
