"""Technology mapping: binding and wide-gate decomposition."""

import pytest

from repro.errors import NetlistError
from repro.liberty.library import VARIANT_HVT, VARIANT_LVT
from repro.netlist.bench_io import parse_bench
from repro.netlist.techmap import technology_map
from repro.netlist.validate import check_netlist
from repro.sim.equivalence import check_equivalence


def test_simple_binding(library, c17_generic):
    technology_map(c17_generic, library, VARIANT_LVT)
    assert c17_generic.cell_names() == {"NAND2_X1_LVT"}


def test_flipflops_bind_to_hvt_by_default(library):
    nl = parse_bench("INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n")
    technology_map(nl, library, VARIANT_LVT)
    assert nl.instance("ff_q").cell_name == "DFF_X1_HVT"


def test_flipflop_variant_override(library):
    nl = parse_bench("INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n")
    technology_map(nl, library, VARIANT_LVT, sequential_variant=VARIANT_LVT)
    assert nl.instance("ff_q").cell_name == "DFF_X1_LVT"


def test_already_bound_left_alone(library, c17):
    before = dict((i.name, i.cell_name) for i in c17.instances.values())
    technology_map(c17, library, VARIANT_HVT)
    after = dict((i.name, i.cell_name) for i in c17.instances.values())
    assert before == after  # bound cells are not re-bound


def test_wide_gate_decomposition_preserves_function(library):
    text = ("INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\nINPUT(f)\n"
            "OUTPUT(y)\ny = NAND(a, b, c, d, e, f)\n")
    golden = parse_bench(text, name="wide")
    technology_map(golden, library)
    # Reference: direct AND-tree + INV built by hand.
    reference = parse_bench(
        "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\nINPUT(f)\n"
        "OUTPUT(y)\n"
        "t1 = AND(a, b)\nt2 = AND(c, d)\nt3 = AND(e, f)\n"
        "t4 = AND(t1, t2)\nt5 = AND(t4, t3)\ny = NOT(t5)\n",
        name="ref")
    technology_map(reference, library)
    report = check_equivalence(golden, reference, library)
    assert report.equivalent, report.mismatches[:3]


def test_wide_or_and_xor_decompose(library):
    for gate, width in (("OR", 5), ("XOR", 4), ("NOR", 6), ("XNOR", 5),
                        ("AND", 7)):
        inputs = "\n".join(f"INPUT(i{k})" for k in range(width))
        operand_list = ", ".join(f"i{k}" for k in range(width))
        nl = parse_bench(f"{inputs}\nOUTPUT(y)\ny = {gate}({operand_list})\n",
                         name=f"wide_{gate}")
        technology_map(nl, library)
        assert not check_netlist(nl, library)
        # Every instance resolves in the library.
        for inst in nl.instances.values():
            assert inst.cell_name in library


def test_wide_gate_maps_to_widest_library_cell(library):
    nl = parse_bench("INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(y)\n"
                     "y = NAND(a, b, c, d)\n")
    technology_map(nl, library)
    assert nl.instance("g_y").cell_name == "NAND4_X1_LVT"


def test_unknown_generic_rejected(library):
    from repro.netlist.core import Netlist, PinDirection

    nl = Netlist("bad")
    nl.add_input("a")
    nl.add_output("y")
    g = nl.add_instance("g", "FROB3")
    nl.connect(g, "A", "a", PinDirection.INPUT)
    nl.connect(g, "Z", "y", PinDirection.OUTPUT)
    with pytest.raises(NetlistError):
        technology_map(nl, library)


def test_decomposed_netlist_validates(library):
    text = ("INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\n"
            "OUTPUT(y)\ny = NOR(a, b, c, d, e)\n")
    nl = parse_bench(text)
    technology_map(nl, library)
    assert check_netlist(nl, library) == []
