"""ISCAS .bench reader/writer."""

import pytest

from repro.benchcircuits.iscas85 import C17_BENCH
from repro.benchcircuits.iscas89 import S27_BENCH
from repro.errors import ParseError
from repro.netlist.bench_io import parse_bench, write_bench


class TestC17:
    def test_structure(self):
        nl = parse_bench(C17_BENCH, name="c17")
        assert len(nl.instances) == 6
        assert len(nl.input_ports()) == 5
        assert len(nl.output_ports()) == 2

    def test_all_gates_are_nand2(self):
        nl = parse_bench(C17_BENCH)
        assert nl.cell_names() == {"NAND2"}

    def test_connectivity(self):
        nl = parse_bench(C17_BENCH)
        g22 = nl.instance("g_N22")
        fanin_nets = {p.net.name for p in g22.input_pins()}
        assert fanin_nets == {"N10", "N16"}


class TestS27:
    def test_structure(self):
        nl = parse_bench(S27_BENCH, name="s27")
        dffs = [i for i in nl.instances.values() if i.cell_name == "DFF"]
        assert len(dffs) == 3

    def test_clock_created(self):
        nl = parse_bench(S27_BENCH)
        assert "CLK" in nl.ports
        clk_net = nl.net("CLK")
        assert len(clk_net.sinks) == 3  # one CK pin per DFF


class TestParsing:
    def test_gate_arity_in_name(self):
        nl = parse_bench("INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\n"
                         "y = NAND(a, b, c)\n")
        assert nl.instance("g_y").cell_name == "NAND3"

    def test_not_and_buf(self):
        nl = parse_bench("INPUT(a)\nOUTPUT(y)\nOUTPUT(z)\n"
                         "y = NOT(a)\nz = BUFF(a)\n")
        assert nl.instance("g_y").cell_name == "INV"
        assert nl.instance("g_z").cell_name == "BUF"

    def test_comments_and_blank_lines(self):
        nl = parse_bench("# header\n\nINPUT(a)  # trailing\nOUTPUT(y)\n"
                         "y = NOT(a)\n")
        assert len(nl.instances) == 1

    def test_names_sanitized(self):
        nl = parse_bench("INPUT(a[0])\nOUTPUT(y.z)\ny.z = NOT(a[0])\n")
        assert "a_0_" in nl.ports

    def test_unknown_gate_rejected(self):
        with pytest.raises(ParseError):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = MAJ3(a, a, a)\n")

    def test_malformed_line_rejected(self):
        with pytest.raises(ParseError):
            parse_bench("INPUT(a)\nthis is not bench\n")

    def test_not_with_two_operands_rejected(self):
        with pytest.raises(ParseError):
            parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NOT(a, b)\n")

    def test_dff_single_operand(self):
        with pytest.raises(ParseError):
            parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = DFF(a, b)\n")

    def test_output_that_is_also_input(self):
        nl = parse_bench("INPUT(a)\nOUTPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")
        assert "a_out" in nl.ports


class TestRoundTrip:
    def test_c17_round_trip(self):
        nl = parse_bench(C17_BENCH, name="c17")
        text = write_bench(nl)
        again = parse_bench(text, name="c17b")
        assert again.stats() == nl.stats()
        assert again.cell_names() == nl.cell_names()

    def test_s27_round_trip(self):
        nl = parse_bench(S27_BENCH, name="s27")
        again = parse_bench(write_bench(nl), name="s27b")
        assert len(again.instances) == len(nl.instances)
        dffs = [i for i in again.instances.values()
                if i.cell_name == "DFF"]
        assert len(dffs) == 3
