"""Design statistics."""

import pytest

from repro.netlist.stats import design_stats


def test_c17_stats(library, c17):
    stats = design_stats(c17, library)
    assert stats.instance_count == 6
    assert stats.input_count == 5
    assert stats.output_count == 2
    assert stats.sequential_count == 0
    assert stats.depth == 3
    assert stats.by_variant == {"LVT": 6}
    assert stats.total_area == pytest.approx(
        6 * library.cell("NAND2_X1_LVT").area)


def test_sequential_counted(library, s27):
    stats = design_stats(s27, library)
    assert stats.sequential_count == 3
    assert stats.by_kind["sequential"] == 3


def test_variants_and_special_cells(library, c17):
    from repro.liberty.library import VARIANT_MTV
    from repro.netlist.core import PinDirection
    from repro.netlist.transform import swap_variant

    inst = next(iter(c17.instances.values()))
    swap_variant(c17, inst, library, VARIANT_MTV)
    holder = c17.add_instance("h1", "HOLDER_X1")
    c17.connect(holder, "Z", "N22", PinDirection.INOUT, keeper=True)
    stats = design_stats(c17, library)
    assert stats.by_variant["MTV"] == 1
    assert stats.by_variant["HOLDER"] == 1
    assert stats.by_variant["LVT"] == 5


def test_render(library, s27):
    text = design_stats(s27, library).render()
    assert "s27" in text
    assert "FFs" in text
    assert "um^2" in text


def test_fanout_metrics(library, c17):
    stats = design_stats(c17, library)
    assert stats.max_fanout >= 2   # N16 feeds two gates
    assert stats.average_fanout > 0


def test_unbound_cells_labelled(library, c17_generic):
    stats = design_stats(c17_generic, library)
    assert stats.by_variant.get("UNBOUND") == 6
