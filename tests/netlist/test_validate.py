"""Netlist validation rules."""

import pytest

from repro.errors import ValidationError
from repro.netlist.core import Netlist, PinDirection
from repro.netlist.validate import check_netlist


def test_clean_netlist(c17, library):
    assert check_netlist(c17, library) == []


def test_floating_input_flagged(library):
    nl = Netlist("float")
    nl.add_input("a")
    nl.add_output("y")
    g = nl.add_instance("g", "NAND2_X1_LVT")
    nl.connect(g, "A", "a", PinDirection.INPUT)
    nl.connect(g, "Z", "y", PinDirection.OUTPUT)
    problems = check_netlist(nl, library)
    assert any("required pin B" in p for p in problems)


def test_undriven_net_flagged():
    nl = Netlist("undriven")
    nl.add_output("y")
    g = nl.add_instance("g", "INV_X1_LVT")
    nl.connect(g, "A", "ghost", PinDirection.INPUT)
    nl.connect(g, "Z", "y", PinDirection.OUTPUT)
    problems = check_netlist(nl)
    assert any("ghost" in p for p in problems)


def test_unknown_cell_flagged(library):
    nl = Netlist("unknown")
    nl.add_input("a")
    nl.add_output("y")
    g = nl.add_instance("g", "NO_SUCH_CELL")
    nl.connect(g, "A", "a", PinDirection.INPUT)
    nl.connect(g, "Z", "y", PinDirection.OUTPUT)
    problems = check_netlist(nl, library)
    assert any("unknown cell" in p for p in problems)


def test_wrong_pin_name_flagged(library):
    nl = Netlist("badpin")
    nl.add_input("a")
    nl.add_output("y")
    g = nl.add_instance("g", "INV_X1_LVT")
    nl.connect(g, "A", "a", PinDirection.INPUT)
    nl.connect(g, "ZZ", "y", PinDirection.OUTPUT)
    problems = check_netlist(nl, library)
    assert any("no such pin" in p for p in problems)


def test_direction_mismatch_flagged(library):
    nl = Netlist("baddir")
    nl.add_input("a")
    g = nl.add_instance("g", "INV_X1_LVT")
    # Treat the library output Z as an input sink.
    nl.connect(g, "Z", "a", PinDirection.INPUT)
    nl.connect(g, "A", "n1", PinDirection.OUTPUT)
    problems = check_netlist(nl, library)
    assert any("direction mismatch" in p for p in problems)


def test_dangling_mte_vgnd_allowed_midflow(library):
    nl = Netlist("midflow")
    nl.add_input("a")
    nl.add_input("b")
    nl.add_output("y")
    g = nl.add_instance("g", "NAND2_X1_MTV")
    nl.connect(g, "A", "a", PinDirection.INPUT)
    nl.connect(g, "B", "b", PinDirection.INPUT)
    nl.connect(g, "Z", "y", PinDirection.OUTPUT)
    # VGND left dangling: fine mid-flow, flagged in strict mode.
    assert check_netlist(nl, library) == []


def test_raise_on_error(library):
    nl = Netlist("boom")
    nl.add_output("y")
    g = nl.add_instance("g", "INV_X1_LVT")
    nl.connect(g, "A", "ghost", PinDirection.INPUT)
    nl.connect(g, "Z", "y", PinDirection.OUTPUT)
    with pytest.raises(ValidationError):
        check_netlist(nl, library, raise_on_error=True)


def test_combinational_loop_reported(library):
    nl = Netlist("loop")
    g1 = nl.add_instance("g1", "INV_X1_LVT")
    g2 = nl.add_instance("g2", "INV_X1_LVT")
    nl.connect(g1, "A", "n2", PinDirection.INPUT)
    nl.connect(g1, "Z", "n1", PinDirection.OUTPUT)
    nl.connect(g2, "A", "n1", PinDirection.INPUT)
    nl.connect(g2, "Z", "n2", PinDirection.OUTPUT)
    problems = check_netlist(nl, library)
    assert any("loop" in p for p in problems)
