"""Netlist transforms: variant swaps, buffering."""

import pytest

from repro.errors import NetlistError
from repro.liberty.library import (
    VARIANT_CMT,
    VARIANT_HVT,
    VARIANT_LVT,
    VARIANT_MTV,
)
from repro.netlist.core import PinDirection
from repro.netlist.transform import (
    count_by_cell,
    insert_buffer,
    remove_buffer,
    swap_variant,
)
from repro.netlist.validate import check_netlist
from repro.sim.equivalence import check_equivalence


class TestSwapVariant:
    def test_lvt_to_hvt_keeps_pins(self, library, c17):
        inst = next(iter(c17.instances.values()))
        pins_before = set(inst.pins)
        swap_variant(c17, inst, library, VARIANT_HVT)
        assert inst.cell_name == "NAND2_X1_HVT"
        assert set(inst.pins) == pins_before
        assert check_netlist(c17, library) == []

    def test_to_mtv_adds_vgnd(self, library, c17):
        inst = next(iter(c17.instances.values()))
        swap_variant(c17, inst, library, VARIANT_MTV)
        assert "VGND" in inst.pins
        assert inst.pins["VGND"].net is None

    def test_to_cmt_adds_mte(self, library, c17):
        inst = next(iter(c17.instances.values()))
        swap_variant(c17, inst, library, VARIANT_CMT)
        assert "MTE" in inst.pins

    def test_mtv_back_to_lvt_drops_vgnd(self, library, c17):
        inst = next(iter(c17.instances.values()))
        swap_variant(c17, inst, library, VARIANT_MTV)
        c17.connect(inst, "VGND", "vgnd_0", PinDirection.INOUT, keeper=True)
        swap_variant(c17, inst, library, VARIANT_LVT)
        assert "VGND" not in inst.pins
        assert not c17.net("vgnd_0").keepers

    def test_swap_is_noop_for_same_variant(self, library, c17):
        inst = next(iter(c17.instances.values()))
        name = inst.cell_name
        swap_variant(c17, inst, library, VARIANT_LVT)
        assert inst.cell_name == name

    def test_swap_preserves_function(self, library, c17):
        golden = c17.clone("golden")
        for inst in c17.instances.values():
            swap_variant(c17, inst, library, VARIANT_HVT)
        report = check_equivalence(golden, c17, library)
        assert report.equivalent


class TestInsertBuffer:
    def test_buffer_all_sinks(self, library, c17):
        net = c17.net("N16")  # feeds two NAND gates in c17
        fanout_before = len(net.sinks)
        buf = insert_buffer(c17, net, "BUF_X2_LVT")
        assert len(net.sinks) == 1  # only the buffer remains
        assert len(buf.pin("Z").net.sinks) == fanout_before
        assert check_netlist(c17, library) == []

    def test_buffer_subset(self, library, c17):
        net = c17.net("N16")
        first_sink = net.sinks[0]
        buf = insert_buffer(c17, net, "BUF_X1_LVT", sinks=[first_sink])
        assert first_sink.net is buf.pin("Z").net
        assert check_netlist(c17, library) == []

    def test_buffer_preserves_function(self, library, c17):
        golden = c17.clone("golden")
        insert_buffer(c17, c17.net("N11"), "BUF_X1_LVT")
        report = check_equivalence(golden, c17, library)
        assert report.equivalent

    def test_foreign_sink_rejected(self, library, c17):
        net_a = c17.net("N10")
        net_b = c17.net("N16")
        with pytest.raises(NetlistError):
            insert_buffer(c17, net_a, "BUF_X1_LVT", sinks=[net_b.sinks[0]])

    def test_remove_buffer_restores(self, library, c17):
        golden = c17.clone("golden")
        buf = insert_buffer(c17, c17.net("N11"), "BUF_X1_LVT")
        remove_buffer(c17, buf)
        assert check_netlist(c17, library) == []
        assert check_equivalence(golden, c17, library).equivalent
        assert c17.stats() == golden.stats()


def test_count_by_cell(c17):
    assert count_by_cell(c17) == {"NAND2_X1_LVT": 6}
