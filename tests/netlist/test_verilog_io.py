"""Structural Verilog reader/writer."""

import pytest

from repro.errors import ParseError
from repro.netlist.verilog_io import parse_verilog, write_verilog

SAMPLE = """
// half adder
module half_adder (a, b, s, c);
  input a, b;
  output s, c;
  XOR2_X1_LVT g1 (.A(a), .B(b), .Z(s));
  AND2_X1_LVT g2 (.A(a), .B(b), .Z(c));
endmodule
"""


def test_parse_sample(library):
    nl = parse_verilog(SAMPLE, library=library)
    assert nl.name == "half_adder"
    assert len(nl.instances) == 2
    assert len(nl.input_ports()) == 2
    assert len(nl.output_ports()) == 2


def test_directions_from_library(library):
    nl = parse_verilog(SAMPLE, library=library)
    g1 = nl.instance("g1")
    assert g1.pin("Z").net.name == "s"
    assert nl.net("s").driver is g1.pin("Z")


def test_directions_heuristic_without_library():
    nl = parse_verilog(SAMPLE)
    assert nl.net("s").driver.instance.name == "g1"


def test_wire_declarations():
    text = """
    module m (a, y);
      input a;
      output y;
      wire n1;
      INV_X1_LVT g1 (.A(a), .Z(n1));
      INV_X1_LVT g2 (.A(n1), .Z(y));
    endmodule
    """
    nl = parse_verilog(text)
    assert "n1" in nl.nets
    assert len(nl.instances) == 2


def test_block_comments_stripped():
    text = "/* c */ module m (a, y); input a; output y;\n" \
           "INV_X1_LVT g (.A(a), .Z(y)); endmodule"
    nl = parse_verilog(text)
    assert len(nl.instances) == 1


def test_positional_connections_rejected():
    text = "module m (a, y); input a; output y;\n" \
           "INV_X1_LVT g (a, y); endmodule"
    with pytest.raises(ParseError):
        parse_verilog(text)


def test_missing_endmodule_rejected():
    with pytest.raises(ParseError):
        parse_verilog("module m (a); input a;")


def test_undeclared_header_port_rejected():
    with pytest.raises(ParseError):
        parse_verilog("module m (a, ghost); input a; endmodule")


def test_empty_source_rejected():
    with pytest.raises(ParseError):
        parse_verilog("   ")


def test_round_trip(library, c17):
    text = write_verilog(c17)
    again = parse_verilog(text, library=library)
    assert again.stats() == c17.stats()
    assert again.cell_names() == c17.cell_names()
    # Connectivity spot check: same driver for a primary output.
    port = c17.output_ports()[0]
    original_driver = port.net.driver.instance.name
    assert again.ports[port.name].net.driver.instance.name \
        == original_driver


def test_round_trip_with_holders(library, c17):
    """Keeper (holder) connections survive the round trip."""
    from repro.netlist.core import PinDirection

    net = c17.output_ports()[0].net
    holder = c17.add_instance("h1", "HOLDER_X1")
    c17.connect(holder, "Z", net, PinDirection.INOUT, keeper=True)
    c17.connect(holder, "MTE", "MTE", PinDirection.INPUT)
    text = write_verilog(c17)
    again = parse_verilog(text, library=library)
    again_net = again.ports[c17.output_ports()[0].name].net
    assert len(again_net.keepers) == 1
    assert again_net.driver is not None
