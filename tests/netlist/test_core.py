"""Netlist data structure invariants."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import NetlistError, ValidationError
from repro.netlist.core import Netlist, PinDirection, PortDirection


def build_simple():
    nl = Netlist("simple")
    nl.add_input("a")
    nl.add_input("b")
    nl.add_output("y")
    g1 = nl.add_instance("g1", "NAND2_X1_LVT")
    nl.connect(g1, "A", "a", PinDirection.INPUT)
    nl.connect(g1, "B", "b", PinDirection.INPUT)
    nl.connect(g1, "Z", "y", PinDirection.OUTPUT)
    return nl


class TestConstruction:
    def test_ports_create_nets(self):
        nl = build_simple()
        assert nl.net("a").driver_port is nl.ports["a"]
        assert nl.ports["y"] in nl.net("y").sink_ports

    def test_duplicate_port_rejected(self):
        nl = build_simple()
        with pytest.raises(NetlistError):
            nl.add_input("a")

    def test_duplicate_instance_rejected(self):
        nl = build_simple()
        with pytest.raises(NetlistError):
            nl.add_instance("g1", "INV_X1_LVT")

    def test_single_driver_enforced(self):
        nl = build_simple()
        g2 = nl.add_instance("g2", "INV_X1_LVT")
        with pytest.raises(NetlistError):
            nl.connect(g2, "Z", "y", PinDirection.OUTPUT)

    def test_keeper_does_not_count_as_driver(self):
        nl = build_simple()
        holder = nl.add_instance("h1", "HOLDER_X1")
        pin = nl.connect(holder, "Z", "y", PinDirection.INOUT, keeper=True)
        assert pin in nl.net("y").keepers
        assert nl.net("y").driver.instance.name == "g1"

    def test_pin_reconnect_requires_disconnect(self):
        nl = build_simple()
        g1 = nl.instance("g1")
        with pytest.raises(NetlistError):
            nl.connect(g1, "A", "b", PinDirection.INPUT)
        nl.disconnect(g1.pin("A"))
        nl.connect(g1, "A", "b", PinDirection.INPUT)
        assert g1.pin("A").net.name == "b"

    def test_remove_instance_cleans_nets(self):
        nl = build_simple()
        nl.remove_instance("g1")
        assert "g1" not in nl.instances
        assert nl.net("y").driver is None
        assert not nl.net("a").sinks

    def test_unique_name(self):
        nl = build_simple()
        n1 = nl.unique_name("buf")
        nl.add_instance(n1, "BUF_X1_LVT")
        n2 = nl.unique_name("buf")
        assert n1 != n2


class TestQueries:
    def test_fanin_fanout(self):
        nl = build_simple()
        g2 = nl.add_instance("g2", "INV_X1_LVT")
        nl.connect(g2, "A", "y", PinDirection.INPUT)
        nl.connect(g2, "Z", "w", PinDirection.OUTPUT)
        g1 = nl.instance("g1")
        assert g2 in g1.fanout_instances()
        assert g1 in g2.fanin_instances()

    def test_stats(self):
        stats = build_simple().stats()
        assert stats == {"instances": 1, "nets": 3, "inputs": 2,
                         "outputs": 1}

    def test_missing_lookups(self):
        nl = build_simple()
        with pytest.raises(NetlistError):
            nl.net("ghost")
        with pytest.raises(NetlistError):
            nl.instance("ghost")
        with pytest.raises(NetlistError):
            nl.instance("g1").pin("Q")


class TestTopology:
    def test_topological_order_simple_chain(self):
        nl = Netlist("chain")
        nl.add_input("a")
        prev = "a"
        for i in range(5):
            g = nl.add_instance(f"g{i}", "INV_X1_LVT")
            nl.connect(g, "A", prev, PinDirection.INPUT)
            prev = f"n{i}"
            nl.connect(g, "Z", prev, PinDirection.OUTPUT)
        order = [i.name for i in nl.topological_order()]
        assert order == [f"g{i}" for i in range(5)]

    def test_combinational_loop_detected(self):
        nl = Netlist("loop")
        g1 = nl.add_instance("g1", "INV_X1_LVT")
        g2 = nl.add_instance("g2", "INV_X1_LVT")
        nl.connect(g1, "A", "n2", PinDirection.INPUT)
        nl.connect(g1, "Z", "n1", PinDirection.OUTPUT)
        nl.connect(g2, "A", "n1", PinDirection.INPUT)
        nl.connect(g2, "Z", "n2", PinDirection.OUTPUT)
        with pytest.raises(ValidationError):
            nl.topological_order()

    def test_ff_breaks_loops(self):
        nl = Netlist("seq_loop")
        nl.add_input("CLK")
        ff = nl.add_instance("ff1", "DFF_X1_LVT")
        inv = nl.add_instance("g1", "INV_X1_LVT")
        nl.connect(ff, "D", "n1", PinDirection.INPUT)
        nl.connect(ff, "CK", "CLK", PinDirection.INPUT)
        nl.connect(ff, "Q", "q1", PinDirection.OUTPUT)
        nl.connect(inv, "A", "q1", PinDirection.INPUT)
        nl.connect(inv, "Z", "n1", PinDirection.OUTPUT)
        order = nl.topological_order()
        assert len(order) == 2

    def test_combinational_depth(self):
        nl = Netlist("depth")
        nl.add_input("a")
        prev = "a"
        for i in range(7):
            g = nl.add_instance(f"g{i}", "INV_X1_LVT")
            nl.connect(g, "A", prev, PinDirection.INPUT)
            prev = f"n{i}"
            nl.connect(g, "Z", prev, PinDirection.OUTPUT)
        assert nl.combinational_depth() == 7


class TestClone:
    def test_clone_is_deep(self):
        nl = build_simple()
        copy = nl.clone("copy")
        copy.remove_instance("g1")
        assert "g1" in nl.instances
        assert nl.net("y").driver is not None

    def test_clone_preserves_structure(self):
        nl = build_simple()
        copy = nl.clone()
        assert copy.stats() == nl.stats()
        assert copy.net("y").driver.instance.name == "g1"

    def test_clone_preserves_keepers(self):
        nl = build_simple()
        holder = nl.add_instance("h1", "HOLDER_X1")
        nl.connect(holder, "Z", "y", PinDirection.INOUT, keeper=True)
        copy = nl.clone()
        assert len(copy.net("y").keepers) == 1
        assert copy.net("y").driver.instance.name == "g1"


@given(st.integers(min_value=1, max_value=40))
def test_property_chain_topo_order_length(n):
    nl = Netlist("chain")
    nl.add_input("a")
    prev = "a"
    for i in range(n):
        g = nl.add_instance(f"g{i}", "INV_X1_LVT")
        nl.connect(g, "A", prev, PinDirection.INPUT)
        prev = f"n{i}"
        nl.connect(g, "Z", prev, PinDirection.OUTPUT)
    assert len(nl.topological_order()) == n
    assert nl.combinational_depth() == n
