"""Facade, service and flow-stage integration of the policy engine."""

from __future__ import annotations

import dataclasses

import pytest

from repro.api import PolicyRequest, StandbyRequest, Workspace, schemas
from repro.config import FlowConfig
from repro.errors import ConfigError, FlowError
from repro.policy.traces import IdleTrace, trace_scenario

SMALL_CLUSTERS = dict(max_cells_per_switch=4, max_rail_length_um=120.0)


@pytest.fixture(scope="module")
def workspace():
    return Workspace(config=FlowConfig(**SMALL_CLUSTERS))


def _trace_payload(name="measured"):
    trace = IdleTrace(
        name=name, active_ns=300.0,
        intervals_ns=tuple(float(v) for v in range(100, 6000, 120)))
    return trace_scenario(trace, quantile_points=8)


def test_facade_policy_is_cached(workspace):
    request = PolicyRequest(scenarios=("mostly_idle",),
                            corners=("tt_nom",), candidates=48)
    first = workspace.policy("c432", request)
    assert first.candidates >= 48
    before = dict(workspace.stats.as_dict()["policy"])
    again = workspace.policy("c432", request)
    assert again is first
    after = workspace.stats.as_dict()["policy"]
    assert after["hits"] == before["hits"] + 1


def test_policy_with_trace_payloads(workspace):
    request = PolicyRequest(scenario_payloads=(_trace_payload(),),
                            corners=("tt_nom",), candidates=32)
    result = workspace.policy("c432", request)
    # Payload-only requests sweep exactly the given workloads.
    assert result.scenarios == ("measured",)
    schemas.check_round_trip(result)


def test_standby_accepts_scenario_payloads(workspace):
    payload = _trace_payload("trace_idle")
    request = StandbyRequest(scenarios=("mostly_idle",),
                             scenario_payloads=(payload,),
                             corners=("tt_nom",))
    result = workspace.standby("c432", request)
    assert result.scenarios == ("mostly_idle", "trace_idle")
    assert {o.scenario for o in result.outcomes} \
        == {"mostly_idle", "trace_idle"}
    schemas.check_round_trip(result)


def test_duplicate_payload_names_rejected():
    payload = _trace_payload("mostly_idle")
    with pytest.raises(ConfigError, match="duplicate"):
        StandbyRequest(scenarios=("mostly_idle",),
                       scenario_payloads=(payload,))
    with pytest.raises(ConfigError, match="duplicate"):
        PolicyRequest(scenario_payloads=(_trace_payload("x"),
                                         _trace_payload("x")))
    with pytest.raises(ConfigError, match="PowerModeScenario"):
        StandbyRequest(scenario_payloads=("mostly_idle",))


def test_policy_needs_the_switch_network(workspace):
    from repro.config import Technique

    with pytest.raises(FlowError, match="improved_smt"):
        workspace.policy("c432", PolicyRequest(
            technique=Technique.DUAL_VTH, corners=("tt_nom",),
            candidates=8))


def test_flow_stage_result_is_reused():
    config = FlowConfig(standby_scenarios=("mostly_idle",),
                        signoff_corners=("tt_nom",),
                        policy_candidates=24, **SMALL_CLUSTERS)
    workspace = Workspace(config=config)
    design = workspace.design("c432")
    flow = design.flow_result("improved_smt")
    assert flow.policy is not None
    report = flow.stage("policy_signoff")
    assert report.details["candidates"] >= 24
    # The facade with matching defaults hands back the stage result.
    assert design.policy() is flow.policy


def test_requests_round_trip_and_service_kind():
    from repro.api.service import JOB_KINDS

    assert JOB_KINDS["policy"] is PolicyRequest
    request = PolicyRequest(
        scenarios=("bursty",), scenario_payloads=(_trace_payload(),),
        corners=("tt_nom",), candidates=64, max_domains=3)
    payload = schemas.check_round_trip(request)
    assert payload["schema"] == "policy_request"
    rebuilt = schemas.from_dict(payload)
    assert rebuilt == request


def test_execute_kind_dispatches_policy(workspace):
    from repro.api.shards import execute_kind

    design = workspace.design("c432")
    request = PolicyRequest(scenarios=("mostly_idle",),
                            corners=("tt_nom",), candidates=48)
    result = execute_kind(design, "policy", request)
    assert result is workspace.policy("c432", request)


def test_policy_request_validation():
    with pytest.raises(ConfigError):
        PolicyRequest(candidates=0)
    with pytest.raises(ConfigError):
        PolicyRequest(max_domains=0)
    with pytest.raises(ConfigError):
        PolicyRequest(rush_budget_ma=-1.0)
    with pytest.raises(ConfigError):
        PolicyRequest(settle_fraction=0.9)
    with pytest.raises(ConfigError):
        PolicyRequest(scenarios=("",))


def test_empirical_scenario_schema_round_trips():
    scenario = _trace_payload()
    payload = schemas.check_round_trip(scenario)
    assert payload["schema"] == "standby_scenario"
    assert payload["distribution"] == "empirical"
    rebuilt = schemas.from_dict(payload)
    assert rebuilt.points == scenario.points


def test_empirical_scenario_validation():
    from repro.standby.scenario import PowerModeScenario

    with pytest.raises(ConfigError, match="points"):
        PowerModeScenario(name="e", active_ns=1.0, idle_ns=2.0,
                          distribution="empirical")
    with pytest.raises(ConfigError, match="points"):
        PowerModeScenario(name="f", active_ns=1.0, idle_ns=2.0,
                          distribution="fixed",
                          points=((2.0, 1.0),))
    with pytest.raises(ConfigError, match="weights"):
        PowerModeScenario(name="e", active_ns=1.0, idle_ns=2.0,
                          distribution="empirical",
                          points=((2.0, 0.4), (3.0, 0.4)))


def test_backends_agree_through_the_facade():
    pytest.importorskip("numpy")
    request = PolicyRequest(scenarios=("mostly_idle", "bursty"),
                            corners=("tt_nom", "ss_1.08v_125c"),
                            candidates=64)
    results = {}
    for backend in ("python", "numpy"):
        workspace = Workspace(config=FlowConfig(
            compute_backend=backend, **SMALL_CLUSTERS))
        results[backend] = workspace.policy("c432", request)
    assert dataclasses.replace(results["numpy"],
                               compute_backend="python") \
        == results["python"]
