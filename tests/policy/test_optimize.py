"""The batched optimizer: bit-identity, Pareto invariants, the oracle."""

from __future__ import annotations

import dataclasses
import math

import pytest

from repro.errors import StandbyError
from repro.policy.optimize import PolicyOptimizer
from repro.standby.scenario import resolve_scenario

CORNERS = ("tt_nom", "ss_1.08v_125c")


def _optimizer(policy_design, library, backend, candidates=120,
               **kwargs):
    netlist, network = policy_design
    scenarios = [resolve_scenario("mostly_idle"),
                 resolve_scenario("bursty")]
    return PolicyOptimizer(
        netlist, library, network, scenarios, corners=CORNERS,
        candidates=candidates, compute_backend=backend, **kwargs)


@pytest.fixture(scope="module")
def scalar_result(policy_design, library):
    return _optimizer(policy_design, library, "python").run()


def test_numpy_path_is_bit_identical(policy_design, library,
                                     scalar_result):
    pytest.importorskip("numpy")
    numpy_result = _optimizer(policy_design, library, "numpy").run()
    assert numpy_result.compute_backend == "numpy"
    assert dataclasses.replace(numpy_result,
                               compute_backend="python") \
        == scalar_result


def test_sweep_is_deterministic(policy_design, library, scalar_result):
    again = _optimizer(policy_design, library, "python").run()
    assert again == scalar_result


def test_candidate_quota_is_a_floor(scalar_result):
    assert scalar_result.candidates >= 120
    # All four plan families of the >=4-cluster fixture are swept.
    assert "unified" in scalar_result.plans
    assert "per-cluster" in scalar_result.plans


def test_pareto_front_invariants(scalar_result):
    front = scalar_result.pareto
    assert front  # never empty: some candidate survives
    for point in front:
        assert point.net_savings_pj \
            <= scalar_result.oracle_net_savings_pj + 1e-9
        assert len(point.thresholds_ns) == len(point.domains)
        assert point.sleeping_domains == sum(
            1 for t in point.thresholds_ns if math.isfinite(t))
    # No point dominates another (dominance = >= on savings, <= on
    # wake and rush, strict somewhere).
    for a in front:
        for b in front:
            if a is b:
                continue
            dominates = (
                a.net_savings_pj >= b.net_savings_pj
                and a.worst_wake_latency_ns <= b.worst_wake_latency_ns
                and a.peak_rush_ma <= b.peak_rush_ma
                and (a.net_savings_pj > b.net_savings_pj
                     or a.worst_wake_latency_ns
                     < b.worst_wake_latency_ns
                     or a.peak_rush_ma < b.peak_rush_ma))
            assert not dominates
    # Deterministic ordering: savings-first, then wake, rush, id.
    keys = [(-p.net_savings_pj, p.worst_wake_latency_ns,
             p.peak_rush_ma, p.policy_id) for p in front]
    assert keys == sorted(keys)
    assert scalar_result.best is front[0]


def test_all_awake_policy_is_the_origin(scalar_result):
    # The sweep always contains a never-sleep candidate; if it made
    # the front it sits at exactly (0, 0, 0).
    for point in scalar_result.pareto:
        if point.sleeping_domains == 0:
            assert point.net_savings_pj == 0.0
            assert point.worst_wake_latency_ns == 0.0
            assert point.peak_rush_ma == 0.0


def test_point_lookup(scalar_result):
    first = scalar_result.pareto[0]
    assert scalar_result.point(first.policy_id) is first
    with pytest.raises(KeyError):
        scalar_result.point(-1)


def test_result_round_trips(scalar_result):
    from repro.api import schemas

    payload = schemas.check_round_trip(scalar_result)
    assert payload["schema"] == "policy_result"
    assert scalar_result.as_dict() == payload


def test_rejects_bad_inputs(policy_design, library):
    netlist, network = policy_design
    with pytest.raises(StandbyError):
        PolicyOptimizer(netlist, library, network, [])
    with pytest.raises(StandbyError):
        _optimizer(policy_design, library, "python", candidates=0)
