"""Hierarchical power domains: partitions and characterization."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigError
from repro.policy.domains import (
    characterize_plan,
    plan_name,
    plan_partitions,
)
from repro.policy.model import break_even_ns, threshold_factors
from repro.standby.schedule import default_rush_budget_ma


def test_partitions_cover_the_cluster_space(transients):
    indices = sorted(tr.cluster_index for tr in transients)
    partitions = plan_partitions(transients, max_domains=4)
    for partition in partitions:
        flat = sorted(i for group in partition for i in group)
        assert flat == indices           # every cluster exactly once
        for group in partition:
            assert list(group) == sorted(group)
    sizes = [len(p) for p in partitions]
    assert sizes == sorted(set(sizes))   # one plan per domain count
    assert sizes[0] == 1                 # unified always swept
    assert sizes[-1] == len(indices)     # per-cluster always swept


def test_partitions_are_deterministic(transients):
    assert plan_partitions(transients, 4) == \
        plan_partitions(transients, 4)
    assert plan_partitions(list(reversed(transients)), 4) == \
        plan_partitions(transients, 4)
    with pytest.raises(ConfigError):
        plan_partitions(transients, 0)
    with pytest.raises(ConfigError):
        plan_partitions([], 2)


def test_plan_names():
    assert plan_name(((0, 1),), 2) == "unified"
    assert plan_name(((0,), (1,)), 2) == "per-cluster"
    assert plan_name(((0,), (1, 2)), 3) == "domains-2"


def test_characterized_domains_use_the_scheduler(transients):
    budget = default_rush_budget_ma(transients)
    for partition in plan_partitions(transients, 3):
        plan, overheads = characterize_plan(partition, transients,
                                            budget)
        assert len(plan.domains) == len(partition)
        assert len(overheads) == len(transients)
        for domain in plan.domains:
            # Scheduler-derived, not summed: bounded by the serial
            # daisy-chain and by the di/dt budget.
            assert domain.wake_latency_ns \
                <= domain.serial_wake_latency_ns + 1e-12
            assert domain.peak_rush_ma <= budget + 1e-9
            assert domain.bins >= 1
        # A domain's sleep entry waits for its slowest member.
        by_index = {tr.cluster_index: tr for tr in transients}
        for members, domain in zip(partition, plan.domains):
            entry = max(by_index[i].sleep_latency_ns for i in members)
            assert domain.sleep_latency_ns == entry


def test_unified_break_even_matches_closed_form(transients):
    budget = default_rush_budget_ma(transients)
    partition = plan_partitions(transients, 1)[0]
    plan, _ = characterize_plan(partition, transients, budget)
    (domain,) = plan.domains
    expected = break_even_ns(
        domain.leakage_savings_nw,
        domain.sleep_latency_ns + domain.wake_latency_ns,
        domain.cycle_energy_pj)
    assert domain.break_even_ns == expected


def test_overheads_bound_below_by_own_transition(transients):
    # A domain can only add overhead over the member's own sleep
    # entry (group entry waits for the slowest member).
    budget = default_rush_budget_ma(transients)
    for partition in plan_partitions(transients, 4):
        _, overheads = characterize_plan(partition, transients, budget)
        for tr, overhead in zip(transients, overheads):
            assert overhead >= tr.sleep_latency_ns - 1e-12


def test_threshold_factors_grid():
    factors = threshold_factors(9)
    assert len(factors) == 9
    assert factors[0] == 0.25
    assert math.isclose(factors[-1], 8.0, rel_tol=1e-12)
    assert list(factors) == sorted(factors)
    assert threshold_factors(1) == (math.sqrt(0.25 * 8.0),)
    with pytest.raises(ConfigError):
        threshold_factors(0)
    with pytest.raises(ConfigError):
        threshold_factors(3, lo=0.0)


def test_break_even_closed_form():
    assert break_even_ns(1000.0, 5.0, 2.0) == 5.0 + 2.0 / 1e-3
    assert break_even_ns(0.0, 5.0, 2.0) == math.inf
    assert break_even_ns(-1.0, 5.0, 2.0) == math.inf
