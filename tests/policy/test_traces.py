"""Trace ingestion: parsing, quantile-grid reduction, bootstrap.

The hypothesis block pins the reduction's contract: deterministic,
insensitive to input order, and total-idle-time preserving — the
properties that let an empirical scenario ride the batched kernel
without any per-backend trace handling.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.policy.traces import (
    IdleTrace,
    bootstrap_grids,
    confidence_band,
    load_trace,
    parse_trace,
    quantile_grid,
    trace_scenario,
)

INTERVALS = st.lists(
    st.floats(min_value=1.0, max_value=1e6,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=200)


# --- quantile-grid properties (hypothesis) -----------------------------------


@given(INTERVALS, st.integers(min_value=1, max_value=32))
@settings(max_examples=200, deadline=None)
def test_grid_deterministic_and_order_insensitive(intervals, points):
    grid = quantile_grid(intervals, points)
    assert grid == quantile_grid(intervals, points)
    assert grid == quantile_grid(list(reversed(intervals)), points)
    assert grid == quantile_grid(sorted(intervals), points)


@given(INTERVALS, st.integers(min_value=1, max_value=32))
@settings(max_examples=200, deadline=None)
def test_grid_preserves_total_idle_time(intervals, points):
    grid = quantile_grid(intervals, points)
    # Weighted grid mean * population == sum of intervals: the trace's
    # total idle time survives the reduction to float rounding.
    total = sum(d * w for d, w in grid) * len(intervals)
    assert math.isclose(total, sum(intervals),
                        rel_tol=1e-9, abs_tol=1e-9)


@given(INTERVALS, st.integers(min_value=1, max_value=32))
@settings(max_examples=200, deadline=None)
def test_grid_shape_invariants(intervals, points):
    grid = quantile_grid(intervals, points)
    assert len(grid) == min(points, len(intervals))
    assert math.isclose(sum(w for _, w in grid), 1.0, rel_tol=1e-9)
    durations = [d for d, _ in grid]
    assert durations == sorted(durations)  # quantiles ascend
    assert all(w > 0.0 for _, w in grid)


def test_grid_rejects_empty_and_bad_points():
    with pytest.raises(ConfigError):
        quantile_grid([])
    with pytest.raises(ConfigError):
        quantile_grid([1.0], points=0)


# --- parsing -----------------------------------------------------------------


def test_line_format_with_comments_and_blanks():
    trace = parse_trace("# header\n100\n\n 200 # inline\n300\n",
                        name="t")
    assert trace.intervals_ns == (100.0, 200.0, 300.0)
    assert trace.name == "t"
    assert trace.active_ns == 0.0


def test_line_format_error_names_the_line():
    with pytest.raises(ConfigError, match="line 3"):
        parse_trace("100\n200\nnot-a-number\n")


def test_json_format_with_run_length_pairs():
    trace = parse_trace(
        '{"name": "hot", "active_ns": 50.0,'
        ' "intervals_ns": [100.0, [250.0, 3], 400.0]}')
    assert trace.name == "hot"
    assert trace.active_ns == 50.0
    assert trace.intervals_ns == (100.0, 250.0, 250.0, 250.0, 400.0)


def test_json_format_rejects_bad_entries():
    with pytest.raises(ConfigError, match="run-length count"):
        parse_trace('{"intervals_ns": [[100.0, 0]]}')
    with pytest.raises(ConfigError, match="pairs"):
        parse_trace('{"intervals_ns": [[100.0, 2, 3]]}')
    with pytest.raises(ConfigError, match="intervals_ns"):
        parse_trace('{"name": "empty"}')
    with pytest.raises(ConfigError, match="invalid trace JSON"):
        parse_trace("{not json")


def test_load_trace_uses_file_stem(tmp_path):
    path = tmp_path / "bursty.trace"
    path.write_text("10\n20\n30\n", encoding="utf-8")
    trace = load_trace(path)
    assert trace.name == "bursty"
    assert trace.intervals_ns == (10.0, 20.0, 30.0)
    with pytest.raises(ConfigError, match="cannot read"):
        load_trace(tmp_path / "missing.trace")


def test_trace_validation():
    with pytest.raises(ConfigError):
        IdleTrace(name="t", intervals_ns=())
    with pytest.raises(ConfigError):
        IdleTrace(name="t", intervals_ns=(0.0,))
    with pytest.raises(ConfigError):
        IdleTrace(name="t", intervals_ns=(1.0,), active_ns=-1.0)


# --- scenario bridge ---------------------------------------------------------


def test_trace_scenario_is_empirical():
    trace = IdleTrace(name="t", intervals_ns=tuple(
        float(v) for v in range(100, 200)), active_ns=50.0)
    scenario = trace_scenario(trace, quantile_points=8)
    assert scenario.distribution == "empirical"
    assert scenario.idle_points() == scenario.points
    assert len(scenario.points) == 8
    assert math.isclose(scenario.idle_ns, trace.mean_idle_ns,
                        rel_tol=1e-9)
    assert scenario.active_ns == 50.0


def test_trace_scenario_needs_an_active_burst():
    trace = IdleTrace(name="t", intervals_ns=(100.0, 200.0))
    with pytest.raises(ConfigError, match="active"):
        trace_scenario(trace)
    scenario = trace_scenario(trace, active_ns=25.0)
    assert scenario.active_ns == 25.0


# --- bootstrap ---------------------------------------------------------------


def test_bootstrap_is_seeded_and_order_insensitive():
    intervals = tuple(float(v) for v in range(50, 150))
    trace = IdleTrace(name="t", intervals_ns=intervals)
    shuffled = IdleTrace(
        name="t", intervals_ns=tuple(reversed(intervals)))
    grids = bootstrap_grids(trace, resamples=16, seed=7)
    assert grids == bootstrap_grids(trace, resamples=16, seed=7)
    assert grids == bootstrap_grids(shuffled, resamples=16, seed=7)
    assert grids != bootstrap_grids(trace, resamples=16, seed=8)
    assert all(len(g) == len(grids[0]) for g in grids)


def test_confidence_band_brackets_per_point():
    trace = IdleTrace(name="t", intervals_ns=tuple(
        float(v) for v in range(10, 300, 7)))
    band = confidence_band(trace, resamples=32, seed=3,
                           quantile_points=8)
    assert len(band.low_ns) == len(band.grid)
    assert len(band.high_ns) == len(band.grid)
    for low, high in zip(band.low_ns, band.high_ns):
        assert low <= high
    with pytest.raises(ConfigError):
        confidence_band(trace, confidence=1.5)
