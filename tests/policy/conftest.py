"""Shared fixtures for the sleep-policy suite."""

from __future__ import annotations

import pytest

from repro.liberty.library import VARIANT_MTV
from repro.netlist.techmap import technology_map
from repro.netlist.transform import swap_variant
from repro.placement.legalize import legalize
from repro.placement.placer import GlobalPlacer
from repro.standby.transient import TransientSolver
from repro.vgnd.cluster import ClusterConfig, MtClusterer
from repro.vgnd.sizing import SwitchSizer


@pytest.fixture(scope="session")
def policy_design(library):
    """A placed c432 with every cell MTV, clustered and sized.

    Same construction as the standby suite's fixture (session-scoped,
    never mutated); the small cluster caps give the many-cluster
    network that makes multi-domain plans non-trivial.
    """
    from repro.benchcircuits.suite import load_circuit

    netlist = load_circuit("c432")
    technology_map(netlist, library)
    placement = GlobalPlacer(netlist, library).run()
    legalize(placement, netlist, library)
    mt_names = []
    for inst in list(netlist.instances.values()):
        cell = library.cell(inst.cell_name)
        if library.has_variant(cell, VARIANT_MTV):
            swap_variant(netlist, inst, library, VARIANT_MTV)
            mt_names.append(inst.name)
    config = ClusterConfig(max_cells_per_switch=16,
                           max_rail_length_um=220.0)
    network = MtClusterer(netlist, library, placement,
                          config).build(mt_names)
    SwitchSizer(library, config.bounce_limit_v).size_network(network)
    assert len(network.clusters) >= 4  # multi-domain plans need a grid
    return netlist, network


@pytest.fixture(scope="session")
def transients(policy_design, library):
    """Nominal-corner cluster transients of the fixture network."""
    netlist, network = policy_design
    return TransientSolver(network, netlist, library).solve()
