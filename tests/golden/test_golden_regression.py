"""Golden regression fixtures: both backends reproduce frozen numbers.

``scripts/make_golden.py`` froze one Table 1 comparison (c432, s298)
and one Monte-Carlo percentile set (c432) as produced by the python
reference backend.  These tests assert that *both* compute backends
keep reproducing them, so a kernel change that silently drifts the
paper's numbers fails CI instead of shipping.

Tolerance: 1e-9 relative on continuous quantities (the cross-backend
equivalence contract); integer structure counts (MT-cells, switches,
holders) must match exactly — a drifted slack that flips an assignment
decision changes those first.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.benchcircuits.suite import load_circuit
from repro.compute import numpy_available
from repro.config import FlowConfig
from repro.core.compare import compare_techniques
from repro.liberty.library import VARIANT_LVT
from repro.netlist.techmap import technology_map
from repro.timing.constraints import Constraints
from repro.variation.montecarlo import McConfig, MonteCarloEngine, summarize

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent

BACKENDS = ["python"] + (["numpy"] if numpy_available() else [])

#: Must mirror scripts/make_golden.py.
TABLE1_CONFIG = dict(timing_margin=0.12, placement_seed=1)
MC_CLOCK_PERIOD_NS = 1.8
MC_CONFIG = dict(samples=48, seed=7, sigma_global_v=0.03,
                 sigma_local_v=0.015, timing=True)


def load_golden(name: str) -> dict:
    return json.loads((GOLDEN_DIR / name).read_text(encoding="utf-8"))


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("circuit", ["c432", "s298"])
def test_table1_golden(circuit, backend, library):
    golden = load_golden("table1_c432_s298.json")[circuit]
    comparison = compare_techniques(
        load_circuit(circuit), library,
        FlowConfig(compute_backend=backend, **TABLE1_CONFIG),
        circuit_name=circuit)
    for row in comparison.rows:
        expected = golden[row.technique.value]
        for field in ("area_um2", "leakage_nw", "area_pct", "leakage_pct"):
            assert getattr(row, field) == pytest.approx(
                expected[field], rel=1e-9), \
                f"{circuit}/{row.technique.value}/{field} drifted " \
                f"on {backend}"
        for field in ("mt_cells", "switches", "holders"):
            assert getattr(row, field) == expected[field], \
                f"{circuit}/{row.technique.value}/{field} drifted " \
                f"on {backend}"


@pytest.mark.parametrize("backend", BACKENDS)
def test_mc_percentiles_golden(backend, library):
    golden = load_golden("mc_percentiles_c432.json")
    netlist = load_circuit(golden["circuit"])
    technology_map(netlist, library, VARIANT_LVT)
    engine = MonteCarloEngine(
        netlist, library, McConfig(**MC_CONFIG),
        constraints=Constraints(clock_period=MC_CLOCK_PERIOD_NS),
        compute_backend=backend)
    assert engine.nominal_leakage_nw == pytest.approx(
        golden["nominal_leakage_nw"], rel=1e-9)
    assert engine.nominal_wns == pytest.approx(
        golden["nominal_wns"], rel=1e-9)
    stats = summarize(engine.run(),
                      leakage_budget_nw=2.0 * engine.nominal_leakage_nw)
    for key, expected in golden["statistics"].items():
        got = stats.as_dict()[key]
        if key == "samples":
            assert got == expected
        else:
            assert got == pytest.approx(expected, rel=1e-9), \
                f"MC statistic {key} drifted on {backend}"
