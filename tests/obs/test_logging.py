"""The ``repro`` logging hierarchy and its opt-in configuration."""

import io
import logging

import pytest

from repro.obs import configure_logging, get_logger
from repro.obs.logconf import (
    _HANDLER_NAME,
    ENV_VAR,
    resolve_level,
    root_logger,
)


@pytest.fixture(autouse=True)
def pristine_repro_logger():
    """Strip obs-owned handlers and level changes after each test."""
    yield
    for handler in list(root_logger.handlers):
        if handler.name == _HANDLER_NAME:
            root_logger.removeHandler(handler)
    root_logger.setLevel(logging.NOTSET)


def _obs_handlers():
    return [h for h in root_logger.handlers if h.name == _HANDLER_NAME]


def test_import_is_silent_null_handler_only():
    assert any(isinstance(h, logging.NullHandler)
               for h in root_logger.handlers)
    assert not _obs_handlers()


def test_get_logger_normalizes_names():
    assert get_logger().name == "repro"
    assert get_logger("repro.api.service").name == "repro.api.service"
    assert get_logger("scripts.smoke").name == "repro.scripts.smoke"


def test_resolve_level_accepts_names_numbers_and_env(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    assert resolve_level(None) is None
    assert resolve_level("debug") == logging.DEBUG
    assert resolve_level("INFO") == logging.INFO
    assert resolve_level(25) == 25
    assert resolve_level("30") == 30
    monkeypatch.setenv(ENV_VAR, "warning")
    assert resolve_level(None) == logging.WARNING
    with pytest.raises(ValueError, match="unknown log level"):
        resolve_level("loudest")


def test_configure_logging_noop_without_level(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    assert configure_logging() is False
    assert not _obs_handlers()


def test_configure_logging_routes_messages():
    stream = io.StringIO()
    assert configure_logging("INFO", stream=stream) is True
    get_logger("api.service").info("job %s done", "job-1")
    text = stream.getvalue()
    assert "job job-1 done" in text
    assert "repro.api.service" in text


def test_configure_logging_replaces_not_stacks():
    configure_logging("INFO", stream=io.StringIO())
    configure_logging("DEBUG", stream=io.StringIO())
    assert len(_obs_handlers()) == 1
    assert root_logger.level == logging.DEBUG


def test_env_var_drives_configuration(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "ERROR")
    stream = io.StringIO()
    assert configure_logging(stream=stream) is True
    get_logger("x").warning("hidden")
    get_logger("x").error("shown")
    assert "hidden" not in stream.getvalue()
    assert "shown" in stream.getvalue()
