"""Metrics registry: counters, gauges, histograms, cache sources."""

import pytest

from repro.api import schemas
from repro.obs import (
    MetricsRegistry,
    MetricsSnapshot,
    install_builtin_sources,
)


@pytest.fixture()
def registry():
    return MetricsRegistry()


def test_counters_accumulate(registry):
    registry.inc("jobs")
    registry.inc("jobs", 2)
    assert registry.counter("jobs") == 3
    assert registry.counter("never") == 0


def test_gauges_keep_last_value(registry):
    registry.set_gauge("queue_depth", 4)
    registry.set_gauge("queue_depth", 1)
    assert registry.gauge("queue_depth") == 1
    assert registry.gauge("missing", default=-1.0) == -1.0


def test_histogram_summarizes(registry):
    for value in (0.5, 2.0, 1.0):
        registry.observe("latency_s", value)
    hist = registry.snapshot()["histograms"]["latency_s"]
    assert hist == {"count": 3, "sum": 3.5, "min": 0.5, "max": 2.0}


def test_snapshot_polls_sources_live(registry):
    counts = {"hits": 0}
    registry.register_source("cache", lambda: counts)
    assert registry.snapshot()["caches"]["cache"] == {"hits": 0}
    counts["hits"] = 7
    assert registry.snapshot()["caches"]["cache"] == {"hits": 7}


def test_dead_source_reports_error_not_crash(registry):
    def boom():
        raise RuntimeError("gone")

    registry.register_source("dead", boom)
    assert registry.snapshot()["caches"]["dead"] == {"error": 1}


def test_register_source_replaces_silently(registry):
    registry.register_source("ws", lambda: {"old": 1})
    registry.register_source("ws", lambda: {"new": 1})
    assert registry.snapshot()["caches"]["ws"] == {"new": 1}
    registry.unregister_source("ws")
    registry.unregister_source("ws")  # idempotent
    assert registry.snapshot()["caches"] == {}


def test_builtin_sources_cover_the_library_caches(registry):
    install_builtin_sources(registry)
    caches = registry.snapshot()["caches"]
    assert set(caches) == {"corner_memo", "lowering"}
    assert "hits" in caches["corner_memo"]


def test_snapshot_is_a_copy(registry):
    registry.inc("n")
    snap = registry.snapshot()
    snap["counters"]["n"] = 99
    assert registry.counter("n") == 1


def test_metrics_snapshot_schema_round_trip(registry):
    registry.inc("service.jobs.analyze")
    registry.set_gauge("service.queue_depth", 0)
    registry.observe("service.job_latency_s", 0.25)
    registry.register_source("workspace",
                             lambda: {"flow": {"hits": 1, "misses": 2,
                                               "hit_rate": 1 / 3}})
    snapshot = MetricsSnapshot.from_registry(registry)
    payload = schemas.check_round_trip(snapshot)
    assert payload[schemas.SCHEMA_KEY] == "metrics_snapshot"
    decoded = schemas.from_dict(payload)
    assert decoded == snapshot
    assert decoded.caches["workspace"]["flow"]["hits"] == 1


def test_reset_clears_everything(registry):
    registry.inc("a")
    registry.set_gauge("b", 1)
    registry.observe("c", 1.0)
    registry.register_source("d", dict)
    registry.reset()
    assert registry.snapshot() == {"counters": {}, "gauges": {},
                                   "histograms": {}, "caches": {}}
