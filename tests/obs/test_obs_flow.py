"""Tracing across the real flow: stage coverage, pool propagation."""

import os

from repro.api import Workspace
from repro.config import FlowConfig, Technique
from repro.core.stages import PIPELINES
from repro.obs import TraceResult, enable, take_records
from repro.runner import ExperimentRunner, FlowJob

CONFIG = FlowConfig(timing_margin=0.2)


def test_flow_trace_covers_every_pipeline_stage(library):
    enable()
    technique = Technique.IMPROVED_SMT
    Workspace(library=library, config=CONFIG) \
        .design("c17").flow_result(technique)
    trace = TraceResult.from_records(take_records())
    names = trace.span_names()
    assert "api.flow" in names
    assert "flow.run" in names
    for key in PIPELINES[technique]:
        assert f"stage.{key}" in names, f"stage {key} left untraced"
    # Nesting: the stages sit under flow.run, not as stray roots.
    roots = [node.name for node in trace.spans]
    assert all(not name.startswith("stage.") for name in roots)
    # The STA engine traced its runs somewhere inside the flow.
    assert "sta.full_run" in names


def test_stage_report_timings_unchanged_by_tracing(library):
    """StageReport.elapsed_s comes from the same perf_counter pair
    whether or not spans are recorded."""
    baseline = Workspace(library=library, config=CONFIG) \
        .design("c17").flow_result(Technique.DUAL_VTH)
    enable()
    traced = Workspace(library=library, config=CONFIG) \
        .design("c17").flow_result(Technique.DUAL_VTH)
    take_records()
    assert [report.name for report in traced.stages] == \
        [report.name for report in baseline.stages]
    assert all(report.elapsed_s >= 0.0 for report in traced.stages)
    # The numbers themselves stay bit-identical run to run.
    assert traced.leakage_nw == baseline.leakage_nw
    assert traced.total_area == baseline.total_area


def test_pool_ships_worker_spans_back_to_the_parent(library):
    enable()
    runner = ExperimentRunner(jobs=2, library=library)
    jobs = [FlowJob(circuit=circuit, technique=Technique.DUAL_VTH,
                    config=CONFIG)
            for circuit in ("c17", "s27")]
    outcomes = runner.run(jobs)
    assert all(outcome.ok for outcome in outcomes)
    # The spans crossed the process boundary and were re-adopted here;
    # the outcome objects themselves arrive drained.
    assert all(outcome.spans == () for outcome in outcomes)
    records = take_records()
    flow_jobs = [record for root in records for record in root.walk()
                 if record.name == "runner.flow_job"]
    assert len(flow_jobs) >= 2
    assert {record.attributes["circuit"] for record in flow_jobs} == \
        {"c17", "s27"}
    # At least one was measured in a pool worker, not this process.
    assert any(record.pid != os.getpid() for record in flow_jobs)
    # And the flow itself traced inside the job span, worker-side.
    assert any(child.name == "flow.run"
               for record in flow_jobs
               for child in record.children)


def test_serial_runner_traces_identically_shaped_jobs(library):
    enable()
    runner = ExperimentRunner(jobs=1, library=library)
    job = FlowJob(circuit="c17", technique=Technique.DUAL_VTH,
                  config=CONFIG)
    assert runner.run([job])[0].ok
    records = take_records()
    names = [record.name for root in records
             for record in root.walk()]
    assert "runner.flow_job" in names
    assert "flow.run" in names
