"""Fixtures for the observability suite: a clean tracer per test."""

import pytest

from repro.obs import spans


@pytest.fixture(autouse=True)
def clean_tracer():
    """Spans collected (or left enabled) by one test never leak into
    the next — or into the rest of the suite."""
    spans.reset()
    spans.disable()
    yield
    spans.reset()
    spans.disable()
