"""Exporters: Chrome trace-event JSON and schema round-trips."""

import json

from repro.api import schemas  # registers the obs schemas (results.py)
from repro.obs import (
    SpanNode,
    TraceResult,
    chrome_trace_events,
    enable,
    span,
    take_records,
    write_chrome_trace,
)
from repro.obs.export import _clean_attrs
from repro.obs.spans import SpanRecord


def _sample_records():
    enable()
    with span("flow.run", circuit="c17"):
        with span("stage.a", cells=3):
            pass
        with span("stage.b"):
            pass
    return take_records()


# --- chrome trace events ----------------------------------------------------


def test_chrome_events_flatten_the_tree():
    events = chrome_trace_events(_sample_records())
    assert [event["name"] for event in events] == \
        ["flow.run", "stage.a", "stage.b"]
    for event in events:
        assert event["ph"] == "X"
        assert event["dur"] >= 0.0
        assert isinstance(event["pid"], int)
    root, stage_a, _ = events
    assert root["args"] == {"circuit": "c17"}
    assert stage_a["args"] == {"cells": 3}
    # Microsecond timestamps: children start inside the parent.
    assert stage_a["ts"] >= root["ts"]


def test_write_chrome_trace_is_loadable_strict_json(tmp_path):
    path = write_chrome_trace(tmp_path / "trace.json",
                              _sample_records())
    payload = json.loads(path.read_text(encoding="utf-8"),
                         parse_constant=lambda _: (_ for _ in ()).throw(
                             ValueError("non-strict JSON constant")))
    assert payload["displayTimeUnit"] == "ms"
    assert len(payload["traceEvents"]) == 3


def test_clean_attrs_coerces_non_scalars_and_non_finite():
    cleaned = _clean_attrs({
        "ok": 1, "name": "x", "flag": True, "nothing": None,
        "obj": object(), "inf": float("inf"), "nan": float("nan"),
    })
    assert cleaned["ok"] == 1 and cleaned["flag"] is True
    assert cleaned["nothing"] is None
    assert cleaned["obj"].startswith("<object object")
    assert cleaned["inf"] == "inf"
    assert cleaned["nan"] == "nan"
    json.dumps(cleaned, allow_nan=False)  # strict-JSON safe


# --- schema round-trips -----------------------------------------------------


def test_trace_result_round_trips_through_the_registry():
    result = TraceResult.from_records(_sample_records())
    payload = schemas.check_round_trip(result)
    assert payload[schemas.SCHEMA_KEY] == "trace_result"
    decoded = schemas.from_dict(payload)
    assert decoded == result
    assert decoded.span_names() == \
        ("flow.run", "stage.a", "stage.b")


def test_span_node_nests_recursively():
    record = SpanRecord(
        name="outer", start_s=0.0, duration_s=2.0, pid=1, tid=2,
        attributes={"deep": object()},
        children=[SpanRecord(name="inner", start_s=0.5, duration_s=1.0,
                             pid=1, tid=2)])
    node = SpanNode.from_record(record)
    assert [n.name for n in node.walk()] == ["outer", "inner"]
    assert isinstance(node.attributes["deep"], str)  # repr()'d
    payload = schemas.to_dict(node)
    assert payload["children"][0]["name"] == "inner"
    assert schemas.from_dict(payload) == node


def test_empty_trace_is_valid():
    result = TraceResult()
    assert schemas.from_dict(schemas.check_round_trip(result)) == result
    assert result.span_names() == ()
