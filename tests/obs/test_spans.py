"""Span collection: nesting, determinism, no-op fast path, adoption."""

import os
import threading

from repro.obs import spans
from repro.obs.spans import (
    SpanRecord,
    adopt,
    disable,
    dropped_roots,
    enable,
    is_enabled,
    span,
    take_records,
    timed_span,
)


# --- disabled fast path -----------------------------------------------------


def test_disabled_span_is_shared_noop():
    assert not is_enabled()
    first = span("anything", key=1)
    second = span("else")
    assert first is second  # one shared null object, no allocation
    with first as sp:
        sp.set(ignored=True)
    assert take_records() == []


def test_timed_span_measures_even_when_disabled():
    sp = timed_span("stage.x")
    with sp:
        pass
    assert sp.elapsed_s >= 0.0
    assert take_records() == []  # measured, not recorded


# --- nesting and attributes -------------------------------------------------


def test_spans_nest_into_one_tree():
    enable()
    with span("outer", level=0):
        with span("inner.a"):
            with span("leaf"):
                pass
        with span("inner.b") as sp:
            sp.set(marked=True)
    roots = take_records()
    assert len(roots) == 1
    outer = roots[0]
    assert outer.name == "outer"
    assert outer.attributes == {"level": 0}
    assert [child.name for child in outer.children] == \
        ["inner.a", "inner.b"]
    assert outer.children[0].children[0].name == "leaf"
    assert outer.children[1].attributes == {"marked": True}
    assert outer.pid == os.getpid()


def test_attributes_set_mid_span_are_snapshotted_at_exit():
    enable()
    sp = span("s", fixed=1)
    with sp:
        sp.set(late=2)
    record = take_records()[0]
    assert record.attributes == {"fixed": 1, "late": 2}
    sp.set(after=3)  # mutating the handle after exit changes nothing
    assert record.attributes == {"fixed": 1, "late": 2}


def test_durations_are_ordered_and_contained():
    enable()
    with span("outer"):
        with span("inner"):
            pass
    outer = take_records()[0]
    inner = outer.children[0]
    assert outer.duration_s >= inner.duration_s >= 0.0
    assert outer.start_s <= inner.start_s


# --- determinism ------------------------------------------------------------


def _do_work():
    with span("run", circuit="c17"):
        for key in ("a", "b"):
            with span(f"stage.{key}") as sp:
                sp.set(cells=3)


def test_shape_is_deterministic_across_runs():
    enable()
    _do_work()
    first = [record.shape() for record in take_records()]
    _do_work()
    second = [record.shape() for record in take_records()]
    assert first == second
    assert first[0][0] == "run"


# --- adoption (process-pool graft) ------------------------------------------


def _shipped() -> SpanRecord:
    """A record as a pool worker would ship it back."""
    return SpanRecord(name="worker.flow", start_s=0.0, duration_s=1.0,
                      pid=99999, tid=1)


def test_adopt_under_open_span_becomes_a_child():
    enable()
    with span("parent"):
        adopt([_shipped()])
    parent = take_records()[0]
    assert [child.name for child in parent.children] == ["worker.flow"]
    assert parent.children[0].pid == 99999


def test_adopt_without_open_span_lands_as_roots():
    enable()
    adopt([_shipped(), _shipped()])
    assert [record.name for record in take_records()] == \
        ["worker.flow", "worker.flow"]


def test_adopt_is_noop_when_disabled():
    adopt([_shipped()])
    assert take_records() == []


def test_adopt_ignores_non_records():
    enable()
    adopt(["garbage", None, 42])
    assert take_records() == []


# --- thread isolation and the root cap --------------------------------------


def test_threads_keep_separate_stacks():
    enable()
    done = threading.Event()

    def other():
        with span("thread.other"):
            pass
        done.set()

    with span("thread.main"):
        worker = threading.Thread(target=other)
        worker.start()
        worker.join()
        assert done.wait(5)
    roots = {record.name for record in take_records()}
    # The other thread's span is a sibling root, never a child of the
    # span that happened to be open on the main thread.
    assert roots == {"thread.main", "thread.other"}


def test_root_cap_drops_and_counts(monkeypatch):
    monkeypatch.setattr(spans, "MAX_ROOTS", 2)
    enable()
    for index in range(4):
        with span(f"s{index}"):
            pass
    assert len(take_records()) == 2
    assert dropped_roots() == 2


def test_disable_keeps_collected_records():
    enable()
    with span("kept"):
        pass
    disable()
    assert [record.name for record in take_records()] == ["kept"]
