"""The persistent result store: keys, robustness contract, eviction."""

import json
import os
import time

from repro.api.resultstore import (
    FORMAT_VERSION,
    ResultStore,
    work_key,
)

PAYLOAD = {"schema": "optimize_result", "schema_version": 1,
           "leakage_nw": 12.5, "circuit": "c432"}
FP = "a" * 64
CONFIG = {"schema": "flow_config", "timing_margin": 0.12}
REQUEST = {"schema": "optimize_request", "technique": "improved_smt"}


def _key(**overrides):
    kwargs = dict(kind="optimize", fingerprint=FP,
                  request_payload=REQUEST, config_payload=CONFIG)
    kwargs.update(overrides)
    return work_key(kwargs["kind"], kwargs["fingerprint"],
                    kwargs["request_payload"], kwargs["config_payload"])


# --- keys -------------------------------------------------------------------


def test_key_is_content_addressed_and_sensitive():
    base = _key()
    assert base == _key()  # deterministic
    assert base != _key(kind="signoff")
    assert base != _key(fingerprint="b" * 64)
    assert base != _key(request_payload=None)
    assert base != _key(request_payload={**REQUEST,
                                         "technique": "dual_vth"})
    assert base != _key(config_payload={**CONFIG, "timing_margin": 0.2})


def test_key_ignores_dict_ordering():
    shuffled = dict(reversed(list(REQUEST.items())))
    assert _key() == _key(request_payload=shuffled)


# --- round trip -------------------------------------------------------------


def test_store_load_round_trip(tmp_path):
    store = ResultStore(tmp_path)
    key = _key()
    assert store.load(key) is None  # cold: a miss
    assert store.store(key, PAYLOAD)
    assert store.load(key) == PAYLOAD
    assert store.stats() == {"hits": 1, "misses": 1, "stores": 1,
                             "evictions": 0, "errors": 0}


def test_second_store_instance_reads_the_first_ones_entries(tmp_path):
    ResultStore(tmp_path).store(_key(), PAYLOAD)
    fresh = ResultStore(tmp_path)  # a restarted service
    assert fresh.load(_key()) == PAYLOAD
    assert fresh.stats()["hits"] == 1


# --- corruption safety ------------------------------------------------------


def test_corrupt_entry_is_a_miss_and_is_unlinked(tmp_path):
    store = ResultStore(tmp_path)
    key = _key()
    store.store(key, PAYLOAD)
    path = store._entry_path(key)
    path.write_text("{truncated", encoding="utf-8")
    assert store.load(key) is None
    assert not path.exists()
    stats = store.stats()
    assert stats["errors"] == 1 and stats["misses"] == 1


def test_format_version_mismatch_is_a_miss(tmp_path):
    store = ResultStore(tmp_path)
    key = _key()
    store.store(key, PAYLOAD)
    path = store._entry_path(key)
    entry = json.loads(path.read_text(encoding="utf-8"))
    entry["format_version"] = FORMAT_VERSION + 1
    path.write_text(json.dumps(entry), encoding="utf-8")
    assert store.load(key) is None
    assert not path.exists()


def test_key_mismatch_is_a_miss(tmp_path):
    store = ResultStore(tmp_path)
    key, other = _key(), _key(kind="signoff")
    store.store(key, PAYLOAD)
    os.replace(store._entry_path(key), store._entry_path(other))
    assert store.load(other) is None


def test_non_object_payload_is_a_miss(tmp_path):
    store = ResultStore(tmp_path)
    key = _key()
    path = store._entry_path(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps({"format_version": FORMAT_VERSION,
                                "key": key, "payload": [1, 2]}),
                    encoding="utf-8")
    assert store.load(key) is None


def test_store_failure_is_counted_not_raised(tmp_path):
    target = tmp_path / "blocked"
    target.write_text("a file, not a directory", encoding="utf-8")
    store = ResultStore(target)
    assert store.store(_key(), PAYLOAD) is False
    assert store.stats()["errors"] == 1


def test_no_temp_files_left_behind(tmp_path):
    store = ResultStore(tmp_path)
    store.store(_key(), PAYLOAD)
    assert not list(tmp_path.glob("*.tmp"))


# --- eviction ---------------------------------------------------------------


def test_eviction_drops_oldest_mtime_first(tmp_path):
    store = ResultStore(tmp_path, max_entries=2)
    keys = [_key(fingerprint=c * 64) for c in "abc"]
    for index, key in enumerate(keys):
        store.store(key, PAYLOAD)
        # Backdate each entry well into the past, oldest first, so the
        # eviction order is unambiguous regardless of fs timestamp
        # resolution.
        mtime = time.time() - 100 + index
        os.utime(store._entry_path(key), (mtime, mtime))
        store._evict()
    assert store.stats()["evictions"] == 1
    assert store.load(keys[0]) is None  # the oldest went
    assert store.load(keys[1]) == PAYLOAD
    assert store.load(keys[2]) == PAYLOAD


def test_hit_refreshes_mtime_so_hot_entries_survive(tmp_path):
    store = ResultStore(tmp_path, max_entries=2)
    old, hot, new = (_key(fingerprint=c * 64) for c in "abc")
    now = time.time()
    store.store(hot, PAYLOAD)
    os.utime(store._entry_path(hot), (now - 100, now - 100))
    store.store(old, PAYLOAD)
    os.utime(store._entry_path(old), (now - 50, now - 50))
    assert store.load(hot) == PAYLOAD  # refreshes its age
    store.store(new, PAYLOAD)  # evicts one: must be `old`, not `hot`
    assert store.load(old) is None
    assert store.load(hot) == PAYLOAD
