"""The serialization registry: round-trips, versioning, dispatch."""

import dataclasses
import json

import pytest

import repro.api  # noqa: F401 — loads every registration
from repro.api import schemas
from repro.api.requests import (
    AnalyzeRequest,
    MonteCarloRequest,
    OptimizeRequest,
    SignoffRequest,
    SweepRequest,
)
from repro.config import FlowConfig, Technique
from repro.errors import SchemaError


def test_every_request_round_trips():
    requests = [
        AnalyzeRequest(variant="hvt"),
        OptimizeRequest(technique=Technique.DUAL_VTH),
        SignoffRequest(technique=Technique.IMPROVED_SMT,
                       corners=("tt_nom", "ss_1.08v_125c")),
        MonteCarloRequest(samples=16, seed=3, corner="tt_nom",
                          leakage_budget_nw=12.5),
        SweepRequest(techniques=(Technique.DUAL_VTH,
                                 Technique.IMPROVED_SMT)),
    ]
    for request in requests:
        payload = schemas.check_round_trip(request)
        assert payload[schemas.SCHEMA_KEY].endswith("_request")
        assert payload[schemas.VERSION_KEY] == 1
        # Payloads survive an actual JSON hop, not just a dict copy.
        rebuilt = schemas.from_dict(json.loads(json.dumps(payload)))
        assert rebuilt == request


def test_flow_config_round_trips_through_json():
    config = FlowConfig(timing_margin=0.123456789,
                        signoff_corners=("tt_nom", "ff_1.32v_125c"),
                        placement_seed=7)
    payload = schemas.check_round_trip(config)
    rebuilt = schemas.from_dict(json.loads(json.dumps(payload)))
    assert rebuilt == config
    assert isinstance(rebuilt.signoff_corners, tuple)


def test_from_dict_rejects_unknown_schema():
    with pytest.raises(SchemaError, match="unknown schema"):
        schemas.from_dict({"schema": "nope", "schema_version": 1})


def test_from_dict_rejects_missing_schema_key():
    with pytest.raises(SchemaError, match="no 'schema' field"):
        schemas.from_dict({"x": 1})


def test_from_dict_rejects_non_dict():
    with pytest.raises(SchemaError, match="must be a dict"):
        schemas.from_dict([1, 2, 3])


def test_from_dict_rejects_newer_version():
    payload = schemas.to_dict(AnalyzeRequest())
    payload[schemas.VERSION_KEY] = 999
    with pytest.raises(SchemaError, match="newer"):
        schemas.from_dict(payload)


def test_from_dict_rejects_missing_required_field():
    from repro.api.results import SweepRow

    payload = schemas.to_dict(SweepRow(
        circuit="c17", technique=Technique.DUAL_VTH, area_um2=1.0,
        leakage_nw=1.0, area_pct=100.0, leakage_pct=100.0,
        mt_cells=0, switches=0, holders=0))
    del payload["circuit"]
    with pytest.raises(SchemaError, match="missing field 'circuit'"):
        schemas.from_dict(payload)


def test_missing_optional_field_falls_back_to_default():
    """Additive optional fields must not invalidate older payloads."""
    payload = schemas.to_dict(MonteCarloRequest(samples=8))
    del payload["leakage_budget_nw"]
    del payload["technique"]
    rebuilt = schemas.from_dict(payload)
    assert rebuilt.samples == 8
    assert rebuilt.leakage_budget_nw is None
    assert rebuilt.technique == Technique.IMPROVED_SMT


def test_unregistered_type_is_an_error():
    class Stray:
        pass

    with pytest.raises(SchemaError, match="no registered schema"):
        schemas.to_dict(Stray())


def test_duplicate_registration_is_an_error():
    with pytest.raises(SchemaError, match="registered twice"):
        schemas.register("analyze_request", 1, object,
                         lambda o: {}, lambda p: object())


def test_check_round_trip_catches_lossy_codecs():
    @dataclasses.dataclass(frozen=True)
    class Lossy:
        value: int

    schemas.register("test_lossy", 1, Lossy,
                     lambda obj: {"value": 0},  # drops the value
                     lambda payload: Lossy(value=payload["value"]))
    try:
        assert schemas.check_round_trip(Lossy(value=0))  # faithful here
        with pytest.raises(SchemaError, match="does not round-trip"):
            schemas.check_round_trip(Lossy(value=7))
    finally:
        schemas._BY_NAME.pop("test_lossy")
        schemas._BY_TYPE.pop(Lossy)


def test_non_finite_floats_stay_strict_json():
    from repro.api.results import SignoffCornerRow

    row = SignoffCornerRow(corner="tt_nom", leakage_nw=1.0,
                           wns=0.25, hold_wns=float("inf"))
    payload = schemas.check_round_trip(row)
    assert payload["hold_wns"] == "inf"
    # Strict JSON: no Infinity literal anywhere in the document.
    text = json.dumps(payload, allow_nan=False)
    rebuilt = schemas.from_dict(json.loads(text))
    assert rebuilt.hold_wns == float("inf")
    assert rebuilt == row


def test_nan_fields_pass_the_round_trip_gate():
    from repro.api.results import SignoffCornerRow

    row = SignoffCornerRow(corner="tt_nom", leakage_nw=1.0,
                           wns=float("nan"), hold_wns=0.0)
    payload = schemas.check_round_trip(row)  # NaN == NaN structurally
    assert payload["wns"] == "nan"
    import math

    assert math.isnan(schemas.from_dict(payload).wns)


def test_legacy_corner_result_payload_shape(library):
    """CornerResult keeps its historical flattened keys + the stamp."""
    from repro.timing.constraints import Constraints
    from repro.variation.corners import resolve_corner
    from repro.variation.signoff import evaluate_corner

    from repro.benchcircuits.suite import load_circuit
    from repro.netlist.techmap import technology_map

    netlist = load_circuit("c17")
    technology_map(netlist, library)
    corner = resolve_corner("ff_1.32v_125c", library.tech)
    result = evaluate_corner(netlist, library, corner,
                             Constraints(clock_period=5.0))
    payload = result.as_dict()
    assert payload["corner"] == "ff_1.32v_125c"
    assert payload["process"] == "ff"
    assert payload[schemas.SCHEMA_KEY] == "corner_result"
    assert payload[schemas.VERSION_KEY] == 1
    assert schemas.from_dict(json.loads(json.dumps(payload))) == result


def test_leakage_breakdown_round_trips(library, c17):
    from repro.power.leakage import LeakageAnalyzer

    breakdown = LeakageAnalyzer(c17, library).standby_leakage()
    payload = schemas.check_round_trip(breakdown)
    assert payload[schemas.SCHEMA_KEY] == "leakage_breakdown"
    assert set(payload["shares_pct"]) == set(breakdown.CATEGORIES)
    assert len(payload["per_instance"]) == breakdown.instance_count


def test_export_manifest_round_trips(tmp_path):
    from repro.core.artifacts import ExportManifest

    manifest = ExportManifest(directory=str(tmp_path), design="d",
                              technique="improved_smt",
                              files={"verilog": "d.v"})
    payload = schemas.check_round_trip(manifest)
    assert payload[schemas.SCHEMA_KEY] == "export_manifest"
