"""Workspace/Design facade: caching, fingerprints, legacy equivalence."""

import pytest

from repro.api import Workspace, netlist_fingerprint, schemas
from repro.benchcircuits.suite import load_circuit
from repro.config import FlowConfig, Technique

CONFIG = FlowConfig(timing_margin=0.2)


@pytest.fixture(scope="module")
def workspace(library):
    return Workspace(library=library, config=CONFIG)


@pytest.fixture(scope="module")
def design(workspace):
    return workspace.design("c17")


# --- fingerprints -----------------------------------------------------------


def test_fingerprint_is_content_keyed():
    original = load_circuit("c17")
    assert netlist_fingerprint(original) == \
        netlist_fingerprint(load_circuit("c17"))
    assert netlist_fingerprint(original) == \
        netlist_fingerprint(original.clone(name="renamed"))
    assert netlist_fingerprint(original) != \
        netlist_fingerprint(load_circuit("c432"))


def test_designs_share_state_by_content(workspace, design):
    assert workspace.design("c17") is design
    adopted = workspace.adopt(load_circuit("c17"), name="alias17")
    assert adopted is design  # same fingerprint + config -> same handle


def test_config_changes_the_design_handle(workspace, design):
    other = workspace.design("c17", FlowConfig(timing_margin=0.3))
    assert other is not design


# --- caching ----------------------------------------------------------------


def test_analyze_is_cached(workspace, design):
    first = design.analyze()
    before = dict(workspace.stats.hits)
    again = design.analyze()
    assert again == first
    assert workspace.stats.hits.get("analyze", 0) == \
        before.get("analyze", 0) + 1
    assert first.circuit == "c17"
    assert first.instances == 6
    assert first.leakage_nw > 0
    assert first.clock_period_ns > 0
    schemas.check_round_trip(first)


def test_analyze_variants_are_distinct(design):
    lvt = design.analyze()
    hvt = design.analyze(variant="hvt")
    assert hvt.variant == "hvt"
    # HVT mapping leaks less and runs slower than LVT.
    assert hvt.leakage_nw < lvt.leakage_nw


def test_flow_result_cached_and_shared_with_optimize(workspace, design):
    flow = design.flow_result(Technique.IMPROVED_SMT)
    assert design.flow_result(Technique.IMPROVED_SMT) is flow
    optimized = design.optimize(technique="improved_smt")
    assert optimized.area_um2 == flow.total_area
    assert optimized.leakage_nw == flow.leakage_nw
    assert optimized.wns == flow.timing.wns
    assert "physical_synthesis" in optimized.stages
    schemas.check_round_trip(optimized)


def test_request_plus_kwargs_is_rejected(design):
    from repro.api.requests import MonteCarloRequest, SignoffRequest
    from repro.errors import ConfigError

    with pytest.raises(ConfigError, match="not both"):
        design.signoff(SignoffRequest(technique=Technique.DUAL_VTH),
                       corners=("tt_nom",))
    with pytest.raises(ConfigError, match="not both"):
        design.montecarlo(MonteCarloRequest(samples=4), samples=8)


def test_adopting_registry_identical_content_keeps_by_name_loading(
        library):
    ws = Workspace(library=library, config=CONFIG)
    original = ws.netlist("c17")
    ws.adopt(original.clone(), name="c17")
    assert "c17" not in ws._adopted
    # Different content under the same name must ship.
    from repro.benchcircuits.generator import (
        GeneratorConfig,
        generate_circuit,
    )

    ws.adopt(generate_circuit("c17", GeneratorConfig(
        n_gates=10, n_inputs=2, n_outputs=1, n_ffs=0, depth=3, seed=9)),
        name="c17")
    assert "c17" in ws._adopted


def test_corner_library_is_cached(workspace):
    first = workspace.corner_library("ff_1.32v_125c")
    assert workspace.corner_library("ff_1.32v_125c") is first


# --- legacy equivalence -----------------------------------------------------


def test_optimize_matches_direct_flow(library, design):
    from repro.core.flow import SelectiveMtFlow

    direct = SelectiveMtFlow(load_circuit("c17"), library,
                             Technique.IMPROVED_SMT, CONFIG).run()
    optimized = design.optimize(technique=Technique.IMPROVED_SMT)
    assert optimized.area_um2 == direct.total_area
    assert optimized.leakage_nw == direct.leakage_nw
    assert optimized.wns == direct.timing.wns
    assert optimized.hold_wns == direct.timing.hold_wns


def test_signoff_matches_legacy_corner_job(library, design):
    """Post-hoc facade signoff == the flow's corner_signoff stage."""
    from repro.variation.jobs import CornerJob, run_corner_job

    corners = ("tt_nom", "ff_1.32v_125c", "ss_1.08v_125c")
    legacy = run_corner_job(
        CornerJob(circuit="c17", technique=Technique.IMPROVED_SMT,
                  config=CONFIG, corners=corners), library)
    assert legacy.ok, legacy.error
    result = design.signoff(technique=Technique.IMPROVED_SMT,
                            corners=corners)
    assert result.corners == corners
    assert result.area_um2 == legacy.area_um2
    assert result.nominal_leakage_nw == legacy.nominal_leakage_nw
    assert result.nominal_wns == legacy.nominal_wns
    for row in legacy.rows:
        ours = result.row(row.corner)
        assert ours.leakage_nw == row.leakage_nw
        assert ours.wns == row.wns
        assert ours.hold_wns == row.hold_wns
    # tt_nom reproduces the nominal single-point numbers exactly.
    assert result.row("tt_nom").leakage_nw == result.nominal_leakage_nw
    schemas.check_round_trip(result)


def test_montecarlo_matches_legacy_study(workspace, design):
    from repro.api.studies import montecarlo_study

    study = montecarlo_study(workspace, circuit="c17",
                             techniques=(Technique.DUAL_VTH,),
                             samples=6, seed=11, timing=True,
                             config=CONFIG, jobs=1)
    legacy = study.result(Technique.DUAL_VTH)
    result = design.montecarlo(technique=Technique.DUAL_VTH, samples=6,
                               seed=11, timing=True)
    assert result.statistics == legacy.statistics
    assert list(result.sample_values) == list(legacy.samples)
    assert result.nominal_leakage_nw == legacy.nominal_leakage_nw
    assert result.nominal_wns == legacy.nominal_wns
    payload = schemas.check_round_trip(result)
    # Per-die samples stay in-process; payloads carry the statistics.
    assert "sample_values" not in payload
    assert "sample_values" not in study.as_dict()["results"]["dual_vth"]


def test_montecarlo_parallel_matches_serial(workspace, design):
    serial = design.montecarlo(technique=Technique.DUAL_VTH, samples=6,
                               seed=4, timing=False)
    parallel = design.montecarlo(
        jobs=3, request=None, technique=Technique.DUAL_VTH, samples=6,
        seed=4, timing=False)
    # Same request -> cache hit; force a distinct request via seed to
    # prove the parallel path itself agrees.
    assert parallel == serial  # served from cache (same request)
    fresh = Workspace(library=design.library, config=CONFIG, jobs=3) \
        .design("c17") \
        .montecarlo(technique=Technique.DUAL_VTH, samples=6, seed=4,
                    timing=False)
    assert fresh.statistics == serial.statistics
    assert fresh.sample_values == serial.sample_values


def test_sweep_matches_compare_techniques(library, workspace, design):
    import warnings

    from repro.core.compare import compare_techniques

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        direct = compare_techniques(load_circuit("c17"), library, CONFIG,
                                    circuit_name="c17")
    swept = design.sweep()
    for row in direct.rows:
        ours = swept.row("c17", row.technique)
        assert ours.area_pct == row.area_pct
        assert ours.leakage_pct == row.leakage_pct
        assert (ours.mt_cells, ours.switches, ours.holders) == \
            (row.mt_cells, row.switches, row.holders)
    schemas.check_round_trip(swept)
    assert "c17" in swept.render()


def test_sweep_parallel_matches_serial_on_registry_circuit(workspace):
    """Parallel sweep loads registry circuits by name in the workers
    (regression: shipping the netlist graph blew the pickle recursion
    limit on non-trivial circuits like c432)."""
    design = workspace.design("c432")
    serial = design.sweep(techniques=(Technique.DUAL_VTH,
                                      Technique.IMPROVED_SMT))
    parallel = design.sweep(techniques=(Technique.DUAL_VTH,
                                        Technique.IMPROVED_SMT), jobs=2)
    assert parallel.rows == serial.rows


def test_sweep_parallel_ships_adopted_netlists(workspace):
    """Adopted ad-hoc netlists are not worker-loadable by name, so the
    grid jobs carry the object itself."""
    from repro.benchcircuits.generator import (
        GeneratorConfig,
        generate_circuit,
    )

    adhoc = generate_circuit("adhoc", GeneratorConfig(
        n_gates=30, n_inputs=4, n_outputs=3, n_ffs=0, depth=6, seed=42))
    design = workspace.adopt(adhoc, name="adhoc")
    serial = design.sweep(techniques=(Technique.DUAL_VTH,
                                      Technique.IMPROVED_SMT))
    parallel = design.sweep(techniques=(Technique.DUAL_VTH,
                                        Technique.IMPROVED_SMT), jobs=2)
    assert parallel.rows == serial.rows


def test_montecarlo_parallel_on_adopted_design(library):
    """MC grid jobs ship adopted netlists to the workers (regression:
    workers tried load_circuit() on a non-registry name)."""
    from repro.benchcircuits.generator import (
        GeneratorConfig,
        generate_circuit,
    )

    spec = GeneratorConfig(n_gates=30, n_inputs=4, n_outputs=3,
                           n_ffs=0, depth=6, seed=42)
    serial = Workspace(library=library, config=CONFIG) \
        .adopt(generate_circuit("adhoc", spec), name="adhoc") \
        .montecarlo(technique=Technique.DUAL_VTH, samples=4, seed=2,
                    timing=False, jobs=1)
    parallel = Workspace(library=library, config=CONFIG) \
        .adopt(generate_circuit("adhoc", spec), name="adhoc") \
        .montecarlo(technique=Technique.DUAL_VTH, samples=4, seed=2,
                    timing=False, jobs=2)
    assert parallel.statistics == serial.statistics
    assert parallel.sample_values == serial.sample_values


def test_workspace_sweep_grid_is_one_pool(library):
    """Workspace.sweep(jobs>1) fans the whole circuits x techniques
    grid through one runner and matches the serial rows exactly."""
    ws = Workspace(library=library, config=CONFIG)
    serial = ws.sweep(["c17", "s27"],
                      techniques=(Technique.DUAL_VTH,
                                  Technique.IMPROVED_SMT), jobs=1)
    parallel = ws.sweep(["c17", "s27"],
                        techniques=(Technique.DUAL_VTH,
                                    Technique.IMPROVED_SMT), jobs=4)
    assert parallel.rows == serial.rows


def test_workspace_sweep_spans_circuits(workspace):
    result = workspace.sweep(["c17", "s27"],
                             techniques=(Technique.DUAL_VTH,))
    assert result.circuits() == ("c17", "s27")
    assert len(result.rows) == 2


def test_cache_stats_shape(workspace):
    stats = workspace.cache_stats()
    assert "flow" in stats
    assert set(stats["flow"]) == {"hits", "misses"}
    assert stats["flow"]["misses"] >= 1


def test_stats_tree_unifies_every_cache_layer(workspace):
    tree = workspace.stats_tree()
    assert set(tree) == {"workspace", "corner_memo", "lowering"}
    flow = tree["workspace"]["flow"]
    assert set(flow) == {"hits", "misses", "hit_rate"}
    assert 0.0 <= flow["hit_rate"] <= 1.0
    total = flow["hits"] + flow["misses"]
    assert flow["hit_rate"] == (flow["hits"] / total if total else 0.0)
    assert "hits" in tree["corner_memo"]


def test_cache_stats_is_a_view_of_the_tree(workspace):
    """The legacy flat dict and the unified tree agree exactly."""
    stats = workspace.cache_stats()
    tree = workspace.stats_tree()
    for cache, counts in tree["workspace"].items():
        assert stats[cache]["hits"] == counts["hits"]
        assert stats[cache]["misses"] == counts["misses"]
    assert stats["corner_memo"] == tree["corner_memo"]
    if tree["lowering"]:
        assert stats["lowering"] == tree["lowering"]
    else:
        assert "lowering" not in stats


def test_empty_cache_stats_tree_has_zero_hit_rates(library):
    tree = Workspace(library=library).stats_tree()
    for counts in tree["workspace"].values():
        assert counts["hit_rate"] == 0.0
