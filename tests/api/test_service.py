"""Job-service mode: live-server end-to-end, cancel, malformed requests."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.api import ServiceClient, Workspace, schemas
from repro.api.results import AnalyzeResult, OptimizeResult, SignoffResult
from repro.api.requests import SignoffRequest
from repro.api.service import JobService, ServiceServer
from repro.config import FlowConfig, Technique
from repro.errors import ServiceError

CONFIG = {"timing_margin": 0.2}


@pytest.fixture(scope="module")
def server(library):
    """A live service on an ephemeral port (workers running)."""
    service = JobService(
        workspace=Workspace(library=library)).start()
    server = ServiceServer(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    service.close()


@pytest.fixture(scope="module")
def client(server):
    return ServiceClient(server.address)


# --- end to end -------------------------------------------------------------


def test_health(client):
    payload = client.health()
    assert payload["status"] == "ok"
    assert "cache_stats" in payload
    assert payload["queue_depth"] == 0
    assert isinstance(payload["jobs_by_kind"], dict)


def test_metrics_endpoint_is_schema_stamped(client):
    payload = client.metrics()
    assert payload[schemas.SCHEMA_KEY] == "metrics_snapshot"
    for section in ("counters", "gauges", "histograms", "caches"):
        assert section in payload
    # The unified cache tree includes the live workspace and the
    # process-wide sources.
    assert "workspace" in payload["caches"]
    assert "corner_memo" in payload["caches"]
    assert "lowering" in payload["caches"]


def test_metrics_count_jobs_and_latency(client):
    from repro.obs import MetricsSnapshot

    before = client.metrics_snapshot().counters.get(
        "service.jobs.analyze", 0)
    client.run("analyze", "c17", config=CONFIG)
    snap = client.metrics_snapshot()
    assert isinstance(snap, MetricsSnapshot)
    assert snap.counters.get("service.jobs.analyze", 0) == before + 1
    latency = snap.histograms.get("service.job_latency_s", {})
    assert latency.get("count", 0) >= 1
    assert latency["max"] >= latency["min"] >= 0.0
    assert snap.gauges.get("service.queue_depth") == 0
    health = client.health()
    assert health["jobs_by_kind"].get("analyze", 0) >= 1


def test_schemas_endpoint(client):
    names = client.schema_names()
    assert "analyze_result" in names
    assert "corner_signoff_report" in names


def test_submit_poll_result_analyze(client, library):
    job_id = client.submit("analyze", "c17", config=CONFIG)
    status = client.wait(job_id)
    assert status["status"] == "done"
    result = client.result(job_id)
    assert isinstance(result, AnalyzeResult)
    # The service result is bit-identical to the in-process facade.
    local = Workspace(library=library,
                      config=FlowConfig(**CONFIG)).design("c17").analyze()
    assert result == local


def test_optimize_then_signoff_hits_flow_cache(client):
    opt = client.run("optimize", "c17", config=CONFIG)
    assert isinstance(opt, OptimizeResult)
    flow_stats = client.health()["cache_stats"].get("flow", {})
    request = SignoffRequest(technique=Technique.IMPROVED_SMT,
                             corners=("tt_nom",))
    signoff = client.run("signoff", "c17", request=request, config=CONFIG)
    assert isinstance(signoff, SignoffResult)
    # tt_nom signoff reproduces the nominal flow numbers.
    assert signoff.row("tt_nom").leakage_nw == opt.leakage_nw
    after = client.health()["cache_stats"]["flow"]
    assert after["hits"] > flow_stats.get("hits", 0)


def test_typed_request_payload_round_trips_over_http(client):
    request = SignoffRequest(technique=Technique.DUAL_VTH,
                             corners=("tt_nom", "ff_1.32v_125c"))
    result = client.run("signoff", "c17", request=request, config=CONFIG)
    assert result.technique == Technique.DUAL_VTH
    assert result.corners == ("tt_nom", "ff_1.32v_125c")
    payload = client.result_payload(
        client.jobs()[-1]["job_id"])
    assert payload[schemas.SCHEMA_KEY] == "signoff_result"
    assert schemas.from_dict(payload) == result


# --- cancel -----------------------------------------------------------------


def test_cancel_queued_job_deterministically(library):
    """Cancel before any worker starts: fully deterministic."""
    service = JobService(workspace=Workspace(library=library))  # no start
    server = ServiceServer(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        client = ServiceClient(server.address)
        kept = client.submit("analyze", "c17", config=CONFIG)
        doomed = client.submit("analyze", "s27", config=CONFIG)
        cancelled = client.cancel(doomed)
        assert cancelled["status"] == "cancelled"
        with pytest.raises(ServiceError) as excinfo:
            client.result(doomed)
        assert excinfo.value.status == 409
        # Cancelling twice is a conflict, not a success.
        with pytest.raises(ServiceError) as excinfo:
            client.cancel(doomed)
        assert excinfo.value.status == 409
        service.start()
        assert client.wait(kept)["status"] == "done"
        assert client.status(doomed)["status"] == "cancelled"
    finally:
        server.shutdown()
        service.close()


def test_concurrent_workers_share_one_workspace(library):
    """--workers N: jobs race-free on the shared workspace (per-design
    locks), identical results for every duplicate job."""
    import time

    service = JobService(workspace=Workspace(library=library),
                         workers=3).start()
    try:
        ids = [service.submit({"kind": "analyze",
                               "circuit": circuit,
                               "config": CONFIG})
               .job_id
               for circuit in ("c17", "s27", "c17", "s27", "c17", "c17")]
        deadline = time.monotonic() + 120
        while any(service.status(i).status in ("queued", "running")
                  for i in ids):
            assert time.monotonic() < deadline, "jobs did not finish"
            time.sleep(0.02)
        for job_id in ids:
            assert service.status(job_id).status == "done", \
                service.status(job_id).error
        payloads = [service.result(i) for i in ids]
        assert payloads[0] == payloads[2] == payloads[4] == payloads[5]
        assert payloads[1] == payloads[3]
    finally:
        service.close()


def test_keep_alive_connection_survives_body_bearing_cancel(library):
    """Routes that ignore the request body must still drain it, or the
    leftover bytes corrupt the next request on a keep-alive
    connection (regression: health after cancel returned 501)."""
    import http.client

    service = JobService(workspace=Workspace(library=library))  # queued
    server = ServiceServer(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        host, port = server.server_address[:2]
        conn = http.client.HTTPConnection(host, port)
        conn.request("POST", "/v1/jobs",
                     body=json.dumps({"kind": "analyze",
                                      "circuit": "c17"}),
                     headers={"Content-Type": "application/json"})
        job = json.loads(conn.getresponse().read())
        conn.request("POST", f"/v1/jobs/{job['job_id']}/cancel",
                     body="{}",
                     headers={"Content-Type": "application/json"})
        assert json.loads(conn.getresponse().read())["status"] == \
            "cancelled"
        conn.request("GET", "/v1/health")
        response = conn.getresponse()
        assert response.status == 200
        assert json.loads(response.read())["status"] == "ok"
        conn.close()
    finally:
        server.shutdown()
        service.close()


def test_cancel_finished_job_is_conflict(client):
    job_id = client.submit("analyze", "c17", config=CONFIG)
    client.wait(job_id)
    with pytest.raises(ServiceError) as excinfo:
        client.cancel(job_id)
    assert excinfo.value.status == 409


# --- malformed requests (4xx-equivalent payloads) ---------------------------


def _post_raw(server, path, body: bytes):
    request = urllib.request.Request(
        f"{server.address}{path}", data=body, method="POST",
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def test_malformed_json_body_is_400(server):
    status, payload = _post_raw(server, "/v1/jobs", b"{not json")
    assert status == 400
    assert "not valid JSON" in payload["error"]["message"]


def test_unknown_kind_is_400(client):
    with pytest.raises(ServiceError) as excinfo:
        client.submit("frobnicate", "c17")
    assert excinfo.value.status == 400
    assert "unknown job kind" in str(excinfo.value)


def test_unknown_circuit_is_400(client):
    with pytest.raises(ServiceError) as excinfo:
        client.submit("analyze", "not_a_circuit")
    assert excinfo.value.status == 400


def test_mismatched_request_schema_is_400(client):
    from repro.api.requests import OptimizeRequest

    with pytest.raises(ServiceError) as excinfo:
        client.submit("signoff", "c17",
                      request=OptimizeRequest())
    assert excinfo.value.status == 400
    assert "signoff_request" in str(excinfo.value)


def test_bad_config_override_is_400(client):
    with pytest.raises(ServiceError) as excinfo:
        client.submit("analyze", "c17", config={"timing_margin": -1})
    assert excinfo.value.status == 400
    assert "timing_margin" in str(excinfo.value)


def test_bad_enum_in_request_payload_is_400(client):
    """A schema-valid envelope with a bad field value is a 400, not a
    dropped connection (regression: ValueError escaped the handler)."""
    with pytest.raises(ServiceError) as excinfo:
        client.submit("optimize", "c17",
                      request={"schema": "optimize_request",
                               "schema_version": 1,
                               "technique": "bogus"})
    assert excinfo.value.status == 400
    assert "failed to decode" in str(excinfo.value)
    # The connection/server is still healthy afterwards.
    assert client.health()["status"] == "ok"


def test_finished_jobs_are_evicted_past_the_retention_cap(library):
    service = JobService(workspace=Workspace(library=library),
                         retain=2).start()
    try:
        import time

        ids = [service.submit({"kind": "analyze", "circuit": "c17",
                               "config": CONFIG}).job_id
               for _ in range(3)]
        deadline = time.monotonic() + 60
        while any(service.status(i).status in ("queued", "running")
                  for i in ids
                  if i in {s.job_id for s in service.jobs()}):
            assert time.monotonic() < deadline
            time.sleep(0.02)
        # A fourth submission pushes the oldest finished job out.
        service.submit({"kind": "analyze", "circuit": "s27",
                        "config": CONFIG})
        retained = {status.job_id for status in service.jobs()}
        assert ids[0] not in retained
        with pytest.raises(ServiceError) as excinfo:
            service.status(ids[0])
        assert excinfo.value.status == 404
    finally:
        service.close()


def test_unknown_config_field_is_400(client):
    with pytest.raises(ServiceError) as excinfo:
        client.submit("analyze", "c17", config={"bogus_knob": 1})
    assert excinfo.value.status == 400


def test_unknown_job_is_404(client):
    with pytest.raises(ServiceError) as excinfo:
        client.status("job-99999")
    assert excinfo.value.status == 404


def test_unknown_path_is_404(client):
    with pytest.raises(ServiceError) as excinfo:
        client._call("GET", "/v2/nope")
    assert excinfo.value.status == 404


def test_execution_failure_lands_on_the_job(client):
    from repro.api.requests import MonteCarloRequest

    job_id = client.submit(
        "montecarlo", "c17",
        request=MonteCarloRequest(samples=2, corner="bogus_corner"),
        config=CONFIG)
    status = client.wait(job_id)
    assert status["status"] == "failed"
    assert "bogus_corner" in status["error"]
    with pytest.raises(ServiceError) as excinfo:
        client.result(job_id)
    assert excinfo.value.status == 409


def test_result_of_unfinished_job_is_409(library):
    service = JobService(workspace=Workspace(library=library))  # no start
    try:
        status = service.submit({"kind": "analyze", "circuit": "c17"})
        with pytest.raises(ServiceError) as excinfo:
            service.result(status.job_id)
        assert excinfo.value.status == 409
        assert "queued" in str(excinfo.value)
    finally:
        service.close()
