"""The rebuilt service tier: coalescing, shards, back-pressure,
persistent results — and the service-layer bugfix regressions."""

import contextlib
import json
import os
import signal
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.api import ServiceClient, Workspace, schemas
from repro.api.requests import MonteCarloRequest
from repro.api.service import JobService, ServiceServer
from repro.api.shards import shard_index
from repro.config import FlowConfig
from repro.errors import ServiceError
from repro.obs import REGISTRY

CONFIG = {"timing_margin": 0.2}


@contextlib.contextmanager
def live_server(service):
    server = ServiceServer(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        service.close()


def _drain(service, job_ids, timeout=120.0):
    deadline = time.monotonic() + timeout
    while any(service.status(job_id).status in ("queued", "running")
              for job_id in job_ids):
        assert time.monotonic() < deadline, "jobs did not finish"
        time.sleep(0.01)


# --- bugfix: unexpected exceptions answer as JSON 500 ------------------------


def test_unexpected_handler_error_is_json_500_not_dropped_connection(
        library):
    """Regression: a non-ServiceError escaping a route handler used to
    drop the connection; it must answer a JSON 500 and leave the
    server healthy."""
    service = JobService(workspace=Workspace(library=library))
    with live_server(service) as server:
        def explode():
            raise RuntimeError("cache stats backend fell over")

        service.cache_stats = explode  # fault-inject the health route
        request = urllib.request.Request(f"{server.address}/v1/health")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 500
        payload = json.loads(excinfo.value.read())
        assert payload["error"]["status"] == 500
        assert "internal server error" in payload["error"]["message"]
        assert "cache stats backend fell over" in \
            payload["error"]["message"]
        # The server survives and serves the next request normally.
        del service.cache_stats
        client = ServiceClient(server.address)
        assert client.health()["status"] == "ok"


# --- bugfix: shutdown races --------------------------------------------------


def test_close_resolves_queued_jobs_as_cancelled(library):
    """Regression: close() used to leave queued jobs 'queued' forever
    for clients to poll."""
    service = JobService(workspace=Workspace(library=library))  # no start
    ids = [service.submit({"kind": "analyze", "circuit": "c17",
                           "config": CONFIG}).job_id
           for _ in range(2)]
    service.close()
    for job_id in ids:
        status = service.status(job_id)
        assert status.status == "cancelled"
        assert "closed" in status.error
    assert service.queue_depth() == 0


def test_submit_after_close_is_409(library):
    service = JobService(workspace=Workspace(library=library))
    service.close()
    with pytest.raises(ServiceError) as excinfo:
        service.submit({"kind": "analyze", "circuit": "c17"})
    assert excinfo.value.status == 409
    assert "shutting down" in str(excinfo.value)


def test_submits_racing_close_never_strand_a_queued_job(library):
    """Regression: submit() read _closed outside the lock, so a submit
    racing close() could enqueue a job nobody would ever run."""
    service = JobService(workspace=Workspace(library=library))
    service.workspace.fingerprint("c17")  # pre-warm outside the race
    accepted, rejected = [], []
    start = threading.Barrier(5)

    def hammer():
        start.wait()
        for _ in range(50):
            try:
                status = service.submit({"kind": "analyze",
                                         "circuit": "c17",
                                         "config": CONFIG})
                accepted.append(status.job_id)
            except ServiceError as exc:
                assert exc.status == 409
                rejected.append(exc)

    threads = [threading.Thread(target=hammer) for _ in range(4)]
    for thread in threads:
        thread.start()
    start.wait()
    time.sleep(0.002)
    service.close()
    for thread in threads:
        thread.join()
    # Every accepted job must have been resolved by close(); none may
    # be stranded 'queued' on a service that will never run it.
    for job_id in accepted:
        assert service.status(job_id).status == "cancelled"
    assert service.queue_depth() == 0
    assert REGISTRY.gauge("service.queue_depth") == 0


# --- bugfix: queue-depth gauge consistency -----------------------------------


def test_queue_depth_gauge_tracks_submit_cancel_and_drain(library):
    """Regression: submit() never updated the gauge and the
    cancelled-while-queued path in _work() skipped the refresh."""
    service = JobService(workspace=Workspace(library=library))  # no start
    try:
        first = service.submit({"kind": "analyze", "circuit": "c17",
                                "config": CONFIG})
        second = service.submit({"kind": "analyze", "circuit": "s27",
                                 "config": CONFIG})
        assert REGISTRY.gauge("service.queue_depth") == 2
        service.cancel(second.job_id)
        assert REGISTRY.gauge("service.queue_depth") == 1
        service.start()
        _drain(service, [first.job_id])
        assert service.queue_depth() == 0
        assert REGISTRY.gauge("service.queue_depth") == 0
    finally:
        service.close()


# --- bugfix: client ----------------------------------------------------------


def test_wait_names_eviction_instead_of_bare_404(library):
    """Regression: a job evicted (or unknown) mid-poll surfaced as a
    bare 'unknown job' 404 with no hint about the retention cap."""
    service = JobService(workspace=Workspace(library=library))
    with live_server(service) as server:
        client = ServiceClient(server.address)
        with pytest.raises(ServiceError) as excinfo:
            client.wait("job-424242", timeout=2)
        assert excinfo.value.status == 404
        assert "evicted or is unknown" in str(excinfo.value)
        assert "retention" in str(excinfo.value)


def test_submit_sends_explicit_empty_config():
    """Regression: submit(config={}) silently dropped the empty dict
    (`if config:`), so 'the default FlowConfig' never reached the
    service."""
    captured = {}
    client = ServiceClient("http://unused.invalid")

    def fake_call(method, path, body=None):
        captured["body"] = body
        return {"job_id": "job-1"}

    client._call = fake_call
    client.submit("analyze", "c17", config={})
    assert captured["body"]["config"] == {}
    client.submit("analyze", "c17")
    assert "config" not in captured["body"]
    client.submit("analyze", "c17", config={"timing_margin": 0.2})
    assert captured["body"]["config"] == {"timing_margin": 0.2}


# --- request coalescing ------------------------------------------------------


def test_identical_concurrent_submissions_execute_exactly_once(library):
    """N racing submissions of the same (kind, circuit, request,
    config) collapse onto one computation with N-1 subscribers."""
    service = JobService(workspace=Workspace(library=library))  # no start
    service.workspace.fingerprint("c17")
    coalesced0 = REGISTRY.counter("service.coalesced")
    executed0 = REGISTRY.counter("service.jobs.analyze")
    ids = []
    ids_lock = threading.Lock()
    start = threading.Barrier(6)

    def submit_one():
        start.wait()
        status = service.submit({"kind": "analyze", "circuit": "c17",
                                 "config": CONFIG})
        with ids_lock:
            ids.append(status.job_id)

    threads = [threading.Thread(target=submit_one) for _ in range(6)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    try:
        assert len(ids) == 6
        # Exactly one queue slot: the other five ride it for free.
        assert service.queue_depth() == 1
        assert REGISTRY.counter("service.coalesced") - coalesced0 == 5
        service.start()
        _drain(service, ids)
        payloads = [service.result(job_id) for job_id in ids]
        for payload in payloads[1:]:
            assert payload == payloads[0]
        # The computation ran exactly once.
        assert REGISTRY.counter("service.jobs.analyze") - executed0 == 1
    finally:
        service.close()


def test_failure_propagates_to_coalesced_subscribers(library):
    service = JobService(workspace=Workspace(library=library))  # no start
    request = schemas.to_dict(
        MonteCarloRequest(samples=2, corner="bogus_corner"))
    body = {"kind": "montecarlo", "circuit": "c17",
            "request": request, "config": CONFIG}
    primary = service.submit(dict(body))
    subscriber = service.submit(dict(body))
    try:
        assert service.queue_depth() == 1  # the duplicate coalesced
        service.start()
        _drain(service, [primary.job_id, subscriber.job_id])
        for job_id in (primary.job_id, subscriber.job_id):
            status = service.status(job_id)
            assert status.status == "failed"
            assert "bogus_corner" in status.error
    finally:
        service.close()


def test_cancelling_the_primary_promotes_a_subscriber(library):
    """Cancelling the job that owns the computation must not cancel
    its riders: the oldest live subscriber takes over the slot."""
    service = JobService(workspace=Workspace(library=library))  # no start
    body = {"kind": "analyze", "circuit": "c17", "config": CONFIG}
    primary = service.submit(dict(body))
    subscriber = service.submit(dict(body))
    try:
        service.cancel(primary.job_id)
        assert service.status(primary.job_id).status == "cancelled"
        assert service.status(subscriber.job_id).status == "queued"
        assert service.queue_depth() == 1  # the promoted subscriber
        service.start()
        _drain(service, [subscriber.job_id])
        assert service.status(subscriber.job_id).status == "done"
        assert service.result(subscriber.job_id)[schemas.SCHEMA_KEY] == \
            "analyze_result"
    finally:
        service.close()


def test_cancelling_a_subscriber_leaves_the_primary_running(library):
    service = JobService(workspace=Workspace(library=library))  # no start
    body = {"kind": "analyze", "circuit": "c17", "config": CONFIG}
    primary = service.submit(dict(body))
    subscriber = service.submit(dict(body))
    try:
        service.cancel(subscriber.job_id)
        assert service.status(subscriber.job_id).status == "cancelled"
        assert service.status(primary.job_id).status == "queued"
        service.start()
        _drain(service, [primary.job_id])
        assert service.status(primary.job_id).status == "done"
    finally:
        service.close()


# --- back-pressure: 429 + Retry-After + client backoff -----------------------


def test_queue_limit_rejects_with_429_and_retry_after(library):
    service = JobService(workspace=Workspace(library=library),
                         queue_limit=1)  # no start: the queue stays full
    try:
        service.submit({"kind": "analyze", "circuit": "c17",
                        "config": CONFIG})
        with pytest.raises(ServiceError) as excinfo:
            service.submit({"kind": "analyze", "circuit": "s27",
                            "config": CONFIG})
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after == JobService.RETRY_AFTER_S
        assert "queue is full" in str(excinfo.value)
        assert REGISTRY.counter("service.rejected") >= 1
    finally:
        service.close()


def test_http_429_carries_json_body_and_retry_after_header(library):
    service = JobService(workspace=Workspace(library=library),
                         queue_limit=1)
    with live_server(service) as server:
        service.submit({"kind": "analyze", "circuit": "c17",
                        "config": CONFIG})
        request = urllib.request.Request(
            f"{server.address}/v1/jobs",
            data=json.dumps({"kind": "analyze", "circuit": "s27",
                             "config": CONFIG}).encode(),
            method="POST",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 429
        assert excinfo.value.headers.get("Retry-After") == \
            str(JobService.RETRY_AFTER_S)
        payload = json.loads(excinfo.value.read())
        assert payload["error"]["status"] == 429
        assert payload["error"]["retry_after"] == \
            JobService.RETRY_AFTER_S


def test_client_retries_429_with_backoff_until_capacity_frees(library):
    """The client's bounded exponential backoff rides out a full
    queue: once a worker drains it, the retried submit succeeds."""
    service = JobService(workspace=Workspace(library=library),
                         queue_limit=1)  # no start yet
    with live_server(service) as server:
        blocker = service.submit({"kind": "analyze", "circuit": "c17",
                                  "config": CONFIG})
        client = ServiceClient(server.address, retries=20,
                               backoff_s=0.02, max_backoff_s=0.1)
        submit_calls = []
        original = client._call_once

        def counting(method, path, body=None):
            if path == "/v1/jobs" and method == "POST":
                submit_calls.append(path)
            return original(method, path, body)

        client._call_once = counting
        # Free capacity shortly after the client starts retrying.
        threading.Timer(0.15, service.start).start()
        job_id = client.submit("analyze", "s27", config=CONFIG)
        assert len(submit_calls) > 1  # at least one 429 was retried
        assert client.wait(job_id)["status"] == "done"
        assert client.wait(blocker.job_id)["status"] == "done"


def test_client_with_retries_exhausted_raises_the_429(library):
    service = JobService(workspace=Workspace(library=library),
                         queue_limit=1)
    with live_server(service) as server:
        service.submit({"kind": "analyze", "circuit": "c17",
                        "config": CONFIG})
        client = ServiceClient(server.address, retries=1,
                               backoff_s=0.01, max_backoff_s=0.02)
        with pytest.raises(ServiceError) as excinfo:
            client.submit("analyze", "s27", config=CONFIG)
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after == JobService.RETRY_AFTER_S
    # live_server closed the (never-started) service for us.


# --- sharded execution tier --------------------------------------------------


def test_shard_routing_is_deterministic():
    fingerprint = "deadbeef" * 8
    assert shard_index(fingerprint, 4) == shard_index(fingerprint, 4)
    assert shard_index(fingerprint, 1) == 0
    # Routing reads the *leading* 64 bits, so vary those.
    spread = {shard_index(f"{value:016x}" + "0" * 48, 4)
              for value in range(32)}
    assert len(spread) > 1  # routing actually distributes designs


def test_sharded_results_match_the_in_process_tier(library):
    service = JobService(workspace=Workspace(library=library),
                         shards=2).start()
    try:
        job = service.submit({"kind": "optimize", "circuit": "c17",
                              "config": CONFIG})
        _drain(service, [job.job_id])
        status = service.status(job.job_id)
        assert status.status == "done", status.error
        payload = service.result(job.job_id)
    finally:
        service.close()
    local = Workspace(library=library, config=FlowConfig(**CONFIG)) \
        .design("c17").optimize()
    assert payload == schemas.check_round_trip(local)


def test_killed_shard_worker_fails_the_job_and_the_shard_recovers(
        library):
    """A shard process dying mid-job must land the job 'failed' with a
    useful error — not leave it 'running' forever — and the rebuilt
    shard must serve the next job."""
    service = JobService(workspace=Workspace(library=library),
                         shards=1).start()
    try:
        # Warm the shard so its worker process exists.
        warm = service.submit({"kind": "analyze", "circuit": "c17",
                               "config": CONFIG})
        _drain(service, [warm.job_id])
        assert service.status(warm.job_id).status == "done"
        pids = service._pool.worker_pids()
        assert pids and pids[0], "shard worker did not spawn"
        victim_pid = pids[0][0]
        # A few seconds of Monte Carlo to kill mid-flight.
        doomed = service.submit({
            "kind": "montecarlo", "circuit": "c17",
            "request": schemas.to_dict(MonteCarloRequest(samples=8000)),
            "config": CONFIG})
        deadline = time.monotonic() + 60
        while service.status(doomed.job_id).status == "queued":
            assert time.monotonic() < deadline
            time.sleep(0.005)
        time.sleep(0.2)  # let the work reach the shard process
        os.kill(victim_pid, signal.SIGKILL)
        _drain(service, [doomed.job_id])
        status = service.status(doomed.job_id)
        assert status.status == "failed"
        assert "shard 0" in status.error
        assert "died" in status.error
        # The shard was rebuilt: the next job on it succeeds.
        retry = service.submit({"kind": "analyze", "circuit": "s27",
                                "config": CONFIG})
        _drain(service, [retry.job_id])
        assert service.status(retry.job_id).status == "done"
        fresh = service._pool.worker_pids()
        assert fresh and fresh[0] and fresh[0][0] != victim_pid
    finally:
        service.close()


# --- persistent result store -------------------------------------------------


def test_restarted_service_serves_prior_results_from_the_store(
        library, tmp_path):
    store_dir = tmp_path / "results"
    body = {"kind": "optimize", "circuit": "c17", "config": CONFIG}
    first = JobService(workspace=Workspace(library=library),
                       result_store=store_dir).start()
    try:
        job = first.submit(dict(body))
        _drain(first, [job.job_id])
        assert first.status(job.job_id).status == "done"
        payload = first.result(job.job_id)
    finally:
        first.close()
    assert list(store_dir.glob("result-*.json"))

    hits0 = REGISTRY.counter("service.result_store_hits")
    second = JobService(workspace=Workspace(library=library),
                        result_store=store_dir).start()
    try:
        job = second.submit(dict(body))
        _drain(second, [job.job_id])
        assert second.status(job.job_id).status == "done"
        assert second.result(job.job_id) == payload
        assert REGISTRY.counter("service.result_store_hits") == hits0 + 1
        assert second.cache_stats()["result_store"]["hits"] == 1
    finally:
        second.close()


def test_different_config_misses_the_store(library, tmp_path):
    store_dir = tmp_path / "results"
    service = JobService(workspace=Workspace(library=library),
                         result_store=store_dir).start()
    try:
        first = service.submit({"kind": "analyze", "circuit": "c17",
                                "config": CONFIG})
        other = service.submit({"kind": "analyze", "circuit": "c17",
                                "config": {"timing_margin": 0.25}})
        _drain(service, [first.job_id, other.job_id])
        stats = service.cache_stats()["result_store"]
        assert stats["stores"] == 2  # distinct keys: both computed
        assert stats["hits"] == 0
    finally:
        service.close()
