"""Cross-module integration tests.

These exercise the whole stack the way the paper's evaluation does:
full flows on real/synthetic ISCAS circuits, with functional
equivalence and standby behaviour verified on the final layouts.
"""

import pytest

from repro.config import FlowConfig, Technique
from repro.core.flow import SelectiveMtFlow
from repro.experiments import PAPER_TABLE1, table1_config
from repro.power.leakage import LeakageAnalyzer
from repro.sim.equivalence import check_equivalence
from repro.sim.logic import FLOATING, Simulator


@pytest.fixture(scope="module")
def s344_improved(library):
    from repro.benchcircuits.suite import load_circuit

    netlist = load_circuit("s344")
    config = FlowConfig(timing_margin=0.15)
    flow = SelectiveMtFlow(netlist, library, Technique.IMPROVED_SMT, config)
    return netlist, flow.run()


def test_sequential_improved_flow_complete(library, s344_improved):
    _source, result = s344_improved
    assert result.network is not None
    assert result.cts is not None
    assert result.timing.hold_met
    assert result.timing.wns >= -0.01 * result.constraints.clock_period


def test_standby_mode_no_floating_powered_inputs(library, s344_improved):
    """The holder rule guarantees no powered gate sees Z in standby."""
    _source, result = s344_improved
    sim = Simulator(result.netlist, library)
    state = {ff.name: 1 for ff in sim.flip_flops()}
    vector = {p.name: 0 for p in result.netlist.input_ports()}
    outcome = sim.evaluate(vector, state, standby=True)
    assert outcome.floating_input_pins == []


def test_standby_then_wake_preserves_function(library, s344_improved):
    from repro.netlist.techmap import technology_map

    raw_source, result = s344_improved
    source = technology_map(raw_source.clone("golden"), library)
    sim = Simulator(result.netlist, library)
    golden_sim = Simulator(source, library)
    state = {ff.name: 0 for ff in sim.flip_flops()}
    golden_state = {ff.name: 0 for ff in golden_sim.flip_flops()}
    vector = {p.name: 1 for p in source.input_ports()}
    # Sleep (state retained), then wake and compare next states.
    _r, state = sim.step(vector, state, standby=True)
    woke, state = sim.step(vector, state)
    golden, golden_state = golden_sim.step(vector, golden_state)
    for name, value in golden.next_state.items():
        assert woke.next_state[name] == value


def test_improved_leakage_breakdown_shape(library, s344_improved):
    """In standby, MT logic residual is tiny; switches+holders small
    relative to what the same cells would leak as LVT."""
    _source, result = s344_improved
    breakdown = result.leakage
    assert breakdown.lvt_logic_nw == 0.0          # no LVT cells remain
    assert breakdown.mt_residual_nw < breakdown.total_nw * 0.05
    gating_overhead = breakdown.switch_nw + breakdown.holder_nw
    assert gating_overhead < breakdown.total_nw


def test_mini_table1_single_circuit(library):
    """Table 1 orderings hold on a small circuit in one run."""
    from repro.core.compare import compare_techniques
    from repro.benchcircuits.suite import load_circuit

    netlist = load_circuit("c880")
    comparison = compare_techniques(netlist, library,
                                    FlowConfig(timing_margin=0.10))
    dual = comparison.row(Technique.DUAL_VTH)
    conventional = comparison.row(Technique.CONVENTIONAL_SMT)
    improved = comparison.row(Technique.IMPROVED_SMT)
    # Leakage: both SMT variants far below Dual-Vth; improved lowest.
    assert conventional.leakage_pct < 60.0
    assert improved.leakage_pct <= conventional.leakage_pct
    # Area: conventional pays the most; improved in between.
    assert dual.area_pct < improved.area_pct < conventional.area_pct
    text = comparison.render()
    assert "dual_vth" in text


def test_paper_reference_numbers_loaded():
    assert PAPER_TABLE1[("A", Technique.CONVENTIONAL_SMT)]["area"] \
        == pytest.approx(164.84)
    assert PAPER_TABLE1[("B", Technique.IMPROVED_SMT)]["leakage"] \
        == pytest.approx(12.21)
    assert table1_config("A").timing_margin < table1_config("B").timing_margin
