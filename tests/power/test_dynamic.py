"""Dynamic power estimation."""

import pytest

from repro.power.dynamic import DynamicPowerEstimator
from repro.timing.constraints import Constraints


def test_power_positive(library, c17):
    estimator = DynamicPowerEstimator(
        c17, library, Constraints(clock_period=2.0))
    assert estimator.total_power_nw() > 0


def test_power_scales_with_frequency(library, c17):
    slow = DynamicPowerEstimator(
        c17, library, Constraints(clock_period=4.0)).total_power_nw()
    fast = DynamicPowerEstimator(
        c17, library, Constraints(clock_period=2.0)).total_power_nw()
    assert fast == pytest.approx(2.0 * slow, rel=1e-6)


def test_power_scales_with_activity(library, c17):
    low = DynamicPowerEstimator(
        c17, library, Constraints(clock_period=2.0),
        activity=0.05).total_power_nw()
    high = DynamicPowerEstimator(
        c17, library, Constraints(clock_period=2.0),
        activity=0.2).total_power_nw()
    assert high == pytest.approx(4.0 * low, rel=1e-6)


def test_activity_validation(library, c17):
    with pytest.raises(ValueError):
        DynamicPowerEstimator(c17, library, Constraints(clock_period=2.0),
                              activity=1.5)


def test_vdd_quadratic(library, c17):
    estimator = DynamicPowerEstimator(
        c17, library, Constraints(clock_period=2.0))
    p1 = estimator.total_power_nw(vdd=1.0)
    p2 = estimator.total_power_nw(vdd=2.0)
    assert p2 == pytest.approx(4.0 * p1, rel=1e-6)


def test_per_net_energy(library, c17):
    estimator = DynamicPowerEstimator(
        c17, library, Constraints(clock_period=2.0))
    energy = estimator.per_net_energy_fj("N10")
    assert energy > 0
