"""Standby leakage analysis."""

import pytest

from repro.liberty.library import (
    VARIANT_CMT,
    VARIANT_HVT,
    VARIANT_MTV,
)
from repro.netlist.builder import NetlistBuilder
from repro.netlist.core import PinDirection
from repro.netlist.transform import swap_variant
from repro.power.leakage import LeakageAnalyzer
from repro.power.report import render_leakage_table


def test_all_lvt_dominated_by_lvt_category(library, c17):
    breakdown = LeakageAnalyzer(c17, library).standby_leakage()
    assert breakdown.lvt_logic_nw == pytest.approx(breakdown.total_nw)
    assert breakdown.instance_count == 6


def test_hvt_swap_reduces_leakage(library, c17):
    before = LeakageAnalyzer(c17, library).standby_leakage().total_nw
    for inst in c17.instances.values():
        swap_variant(c17, inst, library, VARIANT_HVT)
    after = LeakageAnalyzer(c17, library).standby_leakage().total_nw
    assert after < before / 10.0


def test_mtv_cells_nearly_leakless(library, c17):
    for inst in c17.instances.values():
        swap_variant(c17, inst, library, VARIANT_MTV)
    breakdown = LeakageAnalyzer(c17, library).standby_leakage()
    assert breakdown.mt_residual_nw == pytest.approx(breakdown.total_nw)
    # Residual is tiny compared to even an all-HVT netlist.
    assert breakdown.total_nw < 0.1


def test_cmt_leaks_through_embedded_switch(library, c17):
    for inst in c17.instances.values():
        swap_variant(c17, inst, library, VARIANT_CMT)
    breakdown = LeakageAnalyzer(c17, library).standby_leakage()
    assert breakdown.conventional_mt_nw == pytest.approx(breakdown.total_nw)


def test_switches_and_holders_categorized(library):
    builder = NetlistBuilder("mixed")
    builder.inputs("a", "MTE")
    builder.outputs("y")
    builder.gate("INV_X1_MTV", "g1", A="a", Z="y")
    nl = builder.build()
    switch = nl.add_instance("sw1", "SWITCH_X4")
    nl.connect(switch, "MTE", "MTE", PinDirection.INPUT)
    nl.connect(switch, "VGND", "vgnd_0", PinDirection.INOUT, keeper=True)
    holder = nl.add_instance("h1", "HOLDER_X1")
    nl.connect(holder, "Z", "y", PinDirection.INOUT, keeper=True)
    nl.connect(holder, "MTE", "MTE", PinDirection.INPUT)
    breakdown = LeakageAnalyzer(nl, library).standby_leakage()
    assert breakdown.switch_nw > 0
    assert breakdown.holder_nw > 0
    assert breakdown.total_nw == pytest.approx(
        breakdown.switch_nw + breakdown.holder_nw
        + breakdown.mt_residual_nw)


def test_state_dependent_analysis(library, c17):
    analyzer = LeakageAnalyzer(c17, library)
    averaged = analyzer.standby_leakage().total_nw
    vectors = [
        {"N1": 0, "N2": 0, "N3": 0, "N6": 0, "N7": 0},
        {"N1": 1, "N2": 1, "N3": 1, "N6": 1, "N7": 1},
        {"N1": 1, "N2": 0, "N3": 1, "N6": 0, "N7": 1},
    ]
    values = [analyzer.standby_leakage(v).total_nw for v in vectors]
    assert all(v > 0 for v in values)
    assert len({round(v, 6) for v in values}) > 1  # states differ
    # Every state-specific total stays within the physical envelope.
    assert min(values) < 3.0 * averaged
    assert max(values) > averaged / 3.0


def test_active_leakage_restores_mt_to_lvt_level(library, c17):
    analyzer = LeakageAnalyzer(c17, library)
    lvt_total = analyzer.active_leakage()
    for inst in c17.instances.values():
        swap_variant(c17, inst, library, VARIANT_MTV)
    mt_active = LeakageAnalyzer(c17, library).active_leakage()
    assert mt_active == pytest.approx(lvt_total, rel=1e-6)


def test_total_area(library, c17):
    area = LeakageAnalyzer(c17, library).total_area()
    expected = 6 * library.cell("NAND2_X1_LVT").area
    assert area == pytest.approx(expected)


def test_render_table(library, c17):
    breakdown = LeakageAnalyzer(c17, library).standby_leakage()
    text = render_leakage_table(breakdown)
    assert "Low-Vth logic" in text
    assert "Total" in text


def test_sequential_category(library, s27):
    breakdown = LeakageAnalyzer(s27, library).standby_leakage()
    assert breakdown.sequential_nw > 0
