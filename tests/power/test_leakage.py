"""Standby leakage analysis."""

import pytest

from repro.liberty.library import (
    VARIANT_CMT,
    VARIANT_HVT,
    VARIANT_MTV,
)
from repro.netlist.builder import NetlistBuilder
from repro.netlist.core import PinDirection
from repro.netlist.transform import swap_variant
from repro.power.leakage import LeakageAnalyzer
from repro.power.report import render_leakage_table


def test_all_lvt_dominated_by_lvt_category(library, c17):
    breakdown = LeakageAnalyzer(c17, library).standby_leakage()
    assert breakdown.lvt_logic_nw == pytest.approx(breakdown.total_nw)
    assert breakdown.instance_count == 6


def test_hvt_swap_reduces_leakage(library, c17):
    before = LeakageAnalyzer(c17, library).standby_leakage().total_nw
    for inst in c17.instances.values():
        swap_variant(c17, inst, library, VARIANT_HVT)
    after = LeakageAnalyzer(c17, library).standby_leakage().total_nw
    assert after < before / 10.0


def test_mtv_cells_nearly_leakless(library, c17):
    for inst in c17.instances.values():
        swap_variant(c17, inst, library, VARIANT_MTV)
    breakdown = LeakageAnalyzer(c17, library).standby_leakage()
    assert breakdown.mt_residual_nw == pytest.approx(breakdown.total_nw)
    # Residual is tiny compared to even an all-HVT netlist.
    assert breakdown.total_nw < 0.1


def test_cmt_leaks_through_embedded_switch(library, c17):
    for inst in c17.instances.values():
        swap_variant(c17, inst, library, VARIANT_CMT)
    breakdown = LeakageAnalyzer(c17, library).standby_leakage()
    assert breakdown.conventional_mt_nw == pytest.approx(breakdown.total_nw)


def test_switches_and_holders_categorized(library):
    builder = NetlistBuilder("mixed")
    builder.inputs("a", "MTE")
    builder.outputs("y")
    builder.gate("INV_X1_MTV", "g1", A="a", Z="y")
    nl = builder.build()
    switch = nl.add_instance("sw1", "SWITCH_X4")
    nl.connect(switch, "MTE", "MTE", PinDirection.INPUT)
    nl.connect(switch, "VGND", "vgnd_0", PinDirection.INOUT, keeper=True)
    holder = nl.add_instance("h1", "HOLDER_X1")
    nl.connect(holder, "Z", "y", PinDirection.INOUT, keeper=True)
    nl.connect(holder, "MTE", "MTE", PinDirection.INPUT)
    breakdown = LeakageAnalyzer(nl, library).standby_leakage()
    assert breakdown.switch_nw > 0
    assert breakdown.holder_nw > 0
    assert breakdown.total_nw == pytest.approx(
        breakdown.switch_nw + breakdown.holder_nw
        + breakdown.mt_residual_nw)


def test_state_dependent_analysis(library, c17):
    analyzer = LeakageAnalyzer(c17, library)
    averaged = analyzer.standby_leakage().total_nw
    vectors = [
        {"N1": 0, "N2": 0, "N3": 0, "N6": 0, "N7": 0},
        {"N1": 1, "N2": 1, "N3": 1, "N6": 1, "N7": 1},
        {"N1": 1, "N2": 0, "N3": 1, "N6": 0, "N7": 1},
    ]
    values = [analyzer.standby_leakage(v).total_nw for v in vectors]
    assert all(v > 0 for v in values)
    assert len({round(v, 6) for v in values}) > 1  # states differ
    # Every state-specific total stays within the physical envelope.
    assert min(values) < 3.0 * averaged
    assert max(values) > averaged / 3.0


def test_active_leakage_restores_mt_to_lvt_level(library, c17):
    analyzer = LeakageAnalyzer(c17, library)
    lvt_total = analyzer.active_leakage()
    for inst in c17.instances.values():
        swap_variant(c17, inst, library, VARIANT_MTV)
    mt_active = LeakageAnalyzer(c17, library).active_leakage()
    assert mt_active == pytest.approx(lvt_total, rel=1e-6)


def test_total_area(library, c17):
    area = LeakageAnalyzer(c17, library).total_area()
    expected = 6 * library.cell("NAND2_X1_LVT").area
    assert area == pytest.approx(expected)


def test_render_table(library, c17):
    breakdown = LeakageAnalyzer(c17, library).standby_leakage()
    text = render_leakage_table(breakdown)
    assert "Low-Vth logic" in text
    assert "Total" in text


def test_sequential_category(library, s27):
    breakdown = LeakageAnalyzer(s27, library).standby_leakage()
    assert breakdown.sequential_nw > 0


def test_as_dict_is_self_describing(library, c17):
    breakdown = LeakageAnalyzer(c17, library).standby_leakage()
    payload = breakdown.as_dict()
    assert payload["instance_count"] == 6
    assert payload["total_nw"] == pytest.approx(breakdown.total_nw)
    shares = payload["shares_pct"]
    assert set(shares) == set(breakdown.CATEGORIES)
    assert sum(shares.values()) == pytest.approx(100.0)
    assert shares["lvt_logic_nw"] == pytest.approx(100.0)


def test_as_dict_zero_total_has_zero_shares():
    from repro.power.leakage import LeakageBreakdown

    payload = LeakageBreakdown().as_dict()
    assert payload["instance_count"] == 0
    assert all(v == 0.0 for v in payload["shares_pct"].values())


def _floating_input_fixture(library):
    """An MTV inverter feeding a powered LVT NAND with no holder:
    in standby the MTV output floats into the powered gate."""
    builder = NetlistBuilder("float_into_powered")
    builder.inputs("a", "b")
    builder.outputs("y")
    builder.gate("INV_X1_MTV", "g_mt", A="a", Z="n1")
    builder.gate("NAND2_X1_LVT", "g_pow", A="n1", B="b", Z="y")
    return builder.build()


def test_floating_input_uses_worst_leakage(library):
    netlist = _floating_input_fixture(library)
    analyzer = LeakageAnalyzer(netlist, library)
    breakdown = analyzer.standby_leakage(input_vector={"a": 0, "b": 1})
    nand = library.cell("NAND2_X1_LVT")
    # The powered gate saw a floating input: worst-case leakage, which
    # is strictly above the state-averaged default.
    assert breakdown.per_instance["g_pow"] == nand.worst_leakage_nw()
    assert nand.worst_leakage_nw() > nand.default_leakage_nw


def test_floating_hazard_removed_by_holder(library):
    netlist = _floating_input_fixture(library)
    holder = netlist.add_instance("h1", "HOLDER_X1")
    netlist.connect(holder, "Z", "n1", PinDirection.INOUT, keeper=True)
    netlist.connect(holder, "MTE", "MTE", PinDirection.INPUT)
    breakdown = LeakageAnalyzer(netlist, library).standby_leakage()
    vector = LeakageAnalyzer(netlist, library).standby_leakage(
        input_vector={"a": 0, "b": 0})
    nand = library.cell("NAND2_X1_LVT")
    # Held net: the powered gate sees a solid 1 on A (and 0 on B), a
    # characterized state instead of the floating worst case.
    assert vector.per_instance["g_pow"] != nand.worst_leakage_nw()
    assert vector.per_instance["g_pow"] \
        == nand.leakage_nw({"A": 1, "B": 0})
    assert breakdown.holder_nw > 0


def test_missing_net_falls_back_to_default(library):
    """An input pin with no net cannot be state-evaluated: the
    instance contributes its state-averaged default."""
    from repro.netlist.core import Pin

    builder = NetlistBuilder("dangling")
    builder.inputs("a")
    builder.outputs("y")
    builder.gate("INV_X1_LVT", "g0", A="a", Z="n0")
    netlist = builder.build()
    nand = netlist.add_instance("g1", "NAND2_X1_LVT")
    netlist.connect(nand, "A", "n0", PinDirection.INPUT)
    netlist.connect(nand, "Z", "y", PinDirection.OUTPUT)
    # Pin B exists but its net was never attached (post-transform
    # dangling pin).
    nand.pins["B"] = Pin(nand, "B", PinDirection.INPUT)
    breakdown = LeakageAnalyzer(netlist, library).standby_leakage(
        input_vector={"a": 1})
    cell = library.cell("NAND2_X1_LVT")
    assert breakdown.per_instance["g1"] == cell.default_leakage_nw


def test_vector_vs_vectorless_consistency(library, c17):
    """Vectorless totals equal the state-averaged defaults; any full
    input vector lands on characterized states, and cells without
    leakage states contribute their default either way."""
    analyzer = LeakageAnalyzer(c17, library)
    vectorless = analyzer.standby_leakage()
    for name, value in vectorless.per_instance.items():
        cell = library.cell(c17.instances[name].cell_name)
        assert value == cell.default_leakage_nw
    vector = analyzer.standby_leakage(
        input_vector={"N1": 1, "N2": 0, "N3": 1, "N6": 0, "N7": 1})
    for name, value in vector.per_instance.items():
        cell = library.cell(c17.instances[name].cell_name)
        characterized = {s.value_nw for s in cell.leakage_states}
        characterized.add(cell.default_leakage_nw)
        assert value in characterized
    assert vector.instance_count == vectorless.instance_count
