"""Accumulation-order stability of LeakageBreakdown totals.

Regression for the latent float-accumulation-order hazard: totals used
to be accumulated in netlist insertion order, so two logically
identical netlists built in different orders could report totals
differing in the last ulps — enough to flip equality-based comparisons
between flows.  Both backends now sum in stable index-sorted
(instance-name) order, so totals are a pure function of the design.
"""

from __future__ import annotations

import random

import pytest

from repro.benchcircuits.generator import GeneratorConfig, generate_circuit
from repro.liberty.library import VARIANT_LVT
from repro.netlist.core import Netlist
from repro.netlist.techmap import technology_map
from repro.power.leakage import LeakageAnalyzer


def shuffled_clone(netlist: Netlist, seed: int) -> Netlist:
    """A logically identical netlist built in shuffled insertion order."""
    rng = random.Random(seed)
    clone = Netlist(f"{netlist.name}_shuffled{seed}")
    for port in netlist.ports.values():
        clone.add_port(port.name, port.direction)
    names = list(netlist.instances)
    rng.shuffle(names)
    for name in names:
        inst = netlist.instances[name]
        clone.add_instance(name, inst.cell_name).attributes = \
            dict(inst.attributes)
    for name in names:
        inst = netlist.instances[name]
        new_inst = clone.instances[name]
        for pin in inst.pins.values():
            if pin.net is None:
                continue
            clone.connect(new_inst, pin.name, pin.net.name, pin.direction,
                          keeper=pin in pin.net.keepers)
    return clone


@pytest.fixture(scope="module")
def big_circuit(library):
    config = GeneratorConfig(n_gates=10_000, n_inputs=64, n_outputs=32,
                             n_ffs=32, depth=25, seed=6)
    netlist = generate_circuit("leak10k", config)
    technology_map(netlist, library, VARIANT_LVT)
    return netlist


@pytest.mark.parametrize("backend", ["python", "numpy"])
def test_totals_independent_of_insertion_order(big_circuit, library,
                                               backend):
    if backend == "numpy":
        pytest.importorskip("numpy")
    analyzer = LeakageAnalyzer(big_circuit, library,
                               compute_backend=backend)
    baseline = analyzer.standby_leakage()
    assert baseline.instance_count == len(big_circuit.instances)
    for seed in (1, 2):
        shuffled = shuffled_clone(big_circuit, seed)
        other = LeakageAnalyzer(shuffled, library,
                                compute_backend=backend).standby_leakage()
        # Bit-identical, not approximately equal: the sort fixed the
        # accumulation order.
        assert other.total_nw == baseline.total_nw
        assert other.category_values() == baseline.category_values()
        assert list(other.per_instance) == list(baseline.per_instance)


def test_backends_agree_on_big_circuit(big_circuit, library):
    pytest.importorskip("numpy")
    scalar = LeakageAnalyzer(big_circuit, library,
                             compute_backend="python").standby_leakage()
    vector = LeakageAnalyzer(big_circuit, library,
                             compute_backend="numpy").standby_leakage()
    assert vector.total_nw == pytest.approx(scalar.total_nw, rel=1e-9)
    for category, value in scalar.category_values().items():
        assert getattr(vector, category) == pytest.approx(value, rel=1e-9)


def test_per_instance_order_is_sorted(c17, library):
    breakdown = LeakageAnalyzer(c17, library).standby_leakage()
    assert list(breakdown.per_instance) == sorted(breakdown.per_instance)
