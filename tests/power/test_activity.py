"""Signal-probability / activity propagation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.netlist.builder import NetlistBuilder
from repro.power.activity import ActivityEstimator
from repro.timing.constraints import Constraints


def test_inverter_probability(library):
    nl = NetlistBuilder("inv").inputs("a").outputs("y") \
        .gate("INV_X1_LVT", "g1", A="a", Z="y").build()
    probs = ActivityEstimator(nl, library,
                              input_probability=0.8).signal_probabilities()
    assert probs["y"] == pytest.approx(0.2)


def test_nand_probability(library):
    nl = NetlistBuilder("nand").inputs("a", "b").outputs("y") \
        .gate("NAND2_X1_LVT", "g1", A="a", B="b", Z="y").build()
    probs = ActivityEstimator(nl, library,
                              input_probability=0.5).signal_probabilities()
    assert probs["y"] == pytest.approx(0.75)  # 1 - 0.25


def test_xor_probability(library):
    nl = NetlistBuilder("xor").inputs("a", "b").outputs("y") \
        .gate("XOR2_X1_LVT", "g1", A="a", B="b", Z="y").build()
    probs = ActivityEstimator(nl, library,
                              input_probability=0.5).signal_probabilities()
    assert probs["y"] == pytest.approx(0.5)


def test_per_input_probabilities(library):
    nl = NetlistBuilder("and").inputs("a", "b").outputs("y") \
        .gate("AND2_X1_LVT", "g1", A="a", B="b", Z="y").build()
    probs = ActivityEstimator(
        nl, library,
        input_probabilities={"a": 1.0, "b": 0.25}).signal_probabilities()
    assert probs["y"] == pytest.approx(0.25)


def test_activity_peaks_at_half(library):
    nl = NetlistBuilder("buf").inputs("a").outputs("y") \
        .gate("BUF_X1_LVT", "g1", A="a", Z="y").build()
    mid = ActivityEstimator(nl, library, 0.5).activities()["y"]
    skewed = ActivityEstimator(nl, library, 0.9).activities()["y"]
    assert mid == pytest.approx(0.5)
    assert skewed < mid


def test_constant_input_means_zero_activity(library, c17):
    estimator = ActivityEstimator(c17, library, input_probability=1.0)
    activities = estimator.activities()
    for name, value in activities.items():
        assert value == pytest.approx(0.0, abs=1e-12), name


def test_ff_outputs_assumed_half(library, s27):
    probs = ActivityEstimator(s27, library).signal_probabilities()
    for inst in s27.instances.values():
        if inst.cell_name.startswith("DFF"):
            q_net = inst.pins["Q"].net.name
            assert probs[q_net] == pytest.approx(0.5)


def test_dynamic_power_positive_and_below_uniform_worstcase(library, c17):
    from repro.power.dynamic import DynamicPowerEstimator

    cons = Constraints(clock_period=2.0)
    activity_power = ActivityEstimator(c17, library).dynamic_power_nw(cons)
    worst_case = DynamicPowerEstimator(c17, library, cons,
                                       activity=0.5).total_power_nw()
    assert 0 < activity_power <= worst_case * 1.0001


def test_input_probability_validation(library, c17):
    with pytest.raises(ValueError):
        ActivityEstimator(c17, library, input_probability=1.5)


@settings(max_examples=25, deadline=None)
@given(p=st.floats(min_value=0.0, max_value=1.0))
def test_property_probabilities_in_unit_interval(p):
    from repro.liberty.synth import build_default_library
    from repro.benchcircuits.suite import load_circuit
    from repro.netlist.techmap import technology_map

    library = build_default_library()
    nl = load_circuit("c17")
    technology_map(nl, library)
    probs = ActivityEstimator(nl, library,
                              input_probability=p).signal_probabilities()
    for value in probs.values():
        assert -1e-9 <= value <= 1.0 + 1e-9
