"""Exception hierarchy and error formatting."""

import pytest

from repro import errors


def test_hierarchy():
    assert issubclass(errors.ParseError, errors.ReproError)
    assert issubclass(errors.LibertyError, errors.ParseError)
    assert issubclass(errors.ValidationError, errors.NetlistError)
    assert issubclass(errors.SizingError, errors.VgndError)
    for name in ("TimingError", "PowerError", "PlacementError",
                 "RoutingError", "FlowError", "EquivalenceError"):
        assert issubclass(getattr(errors, name), errors.ReproError)


def test_parse_error_location_formatting():
    err = errors.ParseError("bad token", filename="x.lib", line=4, column=7)
    assert str(err) == "x.lib:4:7: bad token"
    assert err.line == 4 and err.column == 7


def test_parse_error_partial_location():
    assert str(errors.ParseError("oops", line=2)) == "2: oops"
    assert str(errors.ParseError("oops", filename="f")) == "f: oops"
    assert str(errors.ParseError("oops")) == "oops"


def test_single_catch_point():
    with pytest.raises(errors.ReproError):
        raise errors.SizingError("nope")


def test_config_error_hierarchy_and_field():
    assert issubclass(errors.ConfigError, errors.FlowError)
    err = errors.ConfigError("timing_margin", "must be non-negative")
    assert err.field == "timing_margin"
    assert str(err) == "invalid timing_margin: must be non-negative"


def test_flow_config_validation_raises_typed_config_error():
    from repro.config import FlowConfig

    cases = {
        "timing_margin": dict(timing_margin=-0.1),
        "clock_period_ns": dict(clock_period_ns=0.0),
        "utilization": dict(utilization=1.5),
        "bounce_limit_fraction": dict(bounce_limit_fraction=0.9),
        "compute_backend": dict(compute_backend="fortran"),
    }
    for field, kwargs in cases.items():
        with pytest.raises(errors.ConfigError) as excinfo:
            FlowConfig(**kwargs)
        assert excinfo.value.field == field
        assert field in str(excinfo.value)
    # Still catchable as the historical FlowError.
    with pytest.raises(errors.FlowError):
        FlowConfig(timing_margin=-1)


def test_mc_config_validation_raises_typed_config_error():
    from repro.variation.montecarlo import McConfig

    for field, kwargs in {
        "samples": dict(samples=0),
        "sigma_global_v": dict(sigma_global_v=-0.1),
        "sigma_local_v": dict(sigma_local_v=-0.1),
    }.items():
        with pytest.raises(errors.ConfigError) as excinfo:
            McConfig(**kwargs)
        assert excinfo.value.field == field


def test_api_request_validation_raises_typed_config_error():
    from repro.api.requests import AnalyzeRequest, SweepRequest

    with pytest.raises(errors.ConfigError) as excinfo:
        AnalyzeRequest(variant="mvt")
    assert excinfo.value.field == "variant"
    with pytest.raises(errors.ConfigError) as excinfo:
        SweepRequest(techniques=())
    assert excinfo.value.field == "techniques"


def test_service_error_carries_status():
    err = errors.ServiceError("nope", status=404)
    assert err.status == 404
    assert issubclass(errors.ServiceError, errors.ReproError)
    assert issubclass(errors.SchemaError, errors.ReproError)
