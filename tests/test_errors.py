"""Exception hierarchy and error formatting."""

import pytest

from repro import errors


def test_hierarchy():
    assert issubclass(errors.ParseError, errors.ReproError)
    assert issubclass(errors.LibertyError, errors.ParseError)
    assert issubclass(errors.ValidationError, errors.NetlistError)
    assert issubclass(errors.SizingError, errors.VgndError)
    for name in ("TimingError", "PowerError", "PlacementError",
                 "RoutingError", "FlowError", "EquivalenceError"):
        assert issubclass(getattr(errors, name), errors.ReproError)


def test_parse_error_location_formatting():
    err = errors.ParseError("bad token", filename="x.lib", line=4, column=7)
    assert str(err) == "x.lib:4:7: bad token"
    assert err.line == 4 and err.column == 7


def test_parse_error_partial_location():
    assert str(errors.ParseError("oops", line=2)) == "2: oops"
    assert str(errors.ParseError("oops", filename="f")) == "f: oops"
    assert str(errors.ParseError("oops")) == "oops"


def test_single_catch_point():
    with pytest.raises(errors.ReproError):
        raise errors.SizingError("nope")
