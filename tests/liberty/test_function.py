"""Liberty boolean function parser and three-valued evaluation."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ParseError
from repro.liberty.function import (
    BooleanFunction,
    X,
    logic_and,
    logic_not,
    logic_or,
    logic_xor,
    parse_function,
)


class TestPrimitives:
    def test_not(self):
        assert logic_not(0) == 1
        assert logic_not(1) == 0
        assert logic_not(X) == X

    def test_and(self):
        assert logic_and(1, 1) == 1
        assert logic_and(0, X) == 0  # dominant zero
        assert logic_and(1, X) == X

    def test_or(self):
        assert logic_or(0, 0) == 0
        assert logic_or(1, X) == 1  # dominant one
        assert logic_or(0, X) == X

    def test_xor(self):
        assert logic_xor(1, 0) == 1
        assert logic_xor(1, 1) == 0
        assert logic_xor(1, X) == X


class TestParsing:
    def test_simple_and(self):
        fn = parse_function("A * B")
        assert fn.inputs == {"A", "B"}
        assert fn.evaluate({"A": 1, "B": 1}) == 1
        assert fn.evaluate({"A": 1, "B": 0}) == 0

    def test_nand_with_postfix_quote(self):
        fn = parse_function("(A * B)'")
        assert fn.evaluate({"A": 1, "B": 1}) == 0
        assert fn.evaluate({"A": 0, "B": 1}) == 1

    def test_prefix_not(self):
        fn = parse_function("!(A + B)")
        assert fn.evaluate({"A": 0, "B": 0}) == 1
        assert fn.evaluate({"A": 1, "B": 0}) == 0

    def test_juxtaposition_is_and(self):
        assert parse_function("A B") == parse_function("A * B")

    def test_ampersand_and_pipe(self):
        assert parse_function("A & B") == parse_function("A * B")
        assert parse_function("A | B") == parse_function("A + B")

    def test_xor_precedence_between_or_and_and(self):
        # A + B ^ C * D  parses as  A + (B ^ (C * D))
        fn = parse_function("A + B ^ C * D")
        assert fn.evaluate({"A": 0, "B": 1, "C": 1, "D": 1}) == 0
        assert fn.evaluate({"A": 0, "B": 1, "C": 0, "D": 1}) == 1

    def test_double_negation(self):
        fn = parse_function("A''")
        assert fn.evaluate({"A": 1}) == 1

    def test_constants(self):
        assert parse_function("1").evaluate({}) == 1
        assert parse_function("0 + A").evaluate({"A": 1}) == 1

    def test_mux_function(self):
        fn = parse_function("(A * !S) + (B * S)")
        assert fn.evaluate({"A": 1, "B": 0, "S": 0}) == 1
        assert fn.evaluate({"A": 1, "B": 0, "S": 1}) == 0

    def test_empty_rejected(self):
        with pytest.raises(ParseError):
            parse_function("")

    def test_unbalanced_rejected(self):
        with pytest.raises(ParseError):
            parse_function("(A * B")

    def test_bad_character_rejected(self):
        with pytest.raises(ParseError):
            parse_function("A % B")

    def test_missing_input_raises_keyerror(self):
        fn = parse_function("A * B")
        with pytest.raises(KeyError):
            fn.evaluate({"A": 1})


class TestSemantics:
    def test_truth_table_nand(self):
        table = parse_function("(A B)'").truth_table()
        assert table == {(0, 0): 1, (0, 1): 1, (1, 0): 1, (1, 1): 0}

    def test_x_propagation_through_nand(self):
        fn = parse_function("(A B)'")
        assert fn.evaluate({"A": 0, "B": X}) == 1   # controlled
        assert fn.evaluate({"A": 1, "B": X}) == X   # uncontrolled

    def test_equality_is_semantic(self):
        assert parse_function("!(A + B)") == parse_function("!A * !B")
        assert parse_function("A ^ B") == parse_function("(A !B) + (!A B)")
        assert parse_function("A * B") != parse_function("A + B")

    def test_to_liberty_round_trip(self):
        for text in ("(A * B)'", "!(A + B)", "A ^ B", "(A * !S) + (B * S)"):
            fn = parse_function(text)
            again = parse_function(fn.to_liberty())
            assert fn == again


@st.composite
def expressions(draw, depth=0):
    """Random boolean expressions over three variables."""
    variables = ("A", "B", "C")
    if depth > 3 or draw(st.booleans()):
        return draw(st.sampled_from(variables))
    op = draw(st.sampled_from(["*", "+", "^", "!"]))
    if op == "!":
        return f"!({draw(expressions(depth + 1))})"
    left = draw(expressions(depth + 1))
    right = draw(expressions(depth + 1))
    return f"({left} {op} {right})"


@given(expressions())
def test_property_round_trip_preserves_semantics(text):
    fn = parse_function(text)
    assert parse_function(fn.to_liberty()) == fn


@given(expressions(),
       st.dictionaries(st.sampled_from(["A", "B", "C"]),
                       st.sampled_from([0, 1]),
                       min_size=3, max_size=3))
def test_property_demorgan(text, env):
    inverted = parse_function(f"!({text})")
    original = parse_function(text)
    assert inverted.evaluate(env) == 1 - original.evaluate(env)
