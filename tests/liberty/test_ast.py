"""Liberty AST construction helpers."""

from repro.liberty.ast import Group


def test_builder_chaining():
    root = Group("library", ["demo"])
    cell = root.add_group("cell", "INV")
    cell.set("area", 1.5).set("cell_leakage_power", 0.2)
    cell.set_complex("index_1", [0.1, 0.2])
    assert root.name == "demo"
    assert cell.get("area") == 1.5
    assert cell.get_complex("index_1") == [0.1, 0.2]


def test_find_groups():
    root = Group("library", ["demo"])
    root.add_group("cell", "A")
    root.add_group("cell", "B")
    root.add_group("operating_conditions", "typ")
    assert [g.name for g in root.find_groups("cell")] == ["A", "B"]
    assert root.find_group("cell", "B").name == "B"
    assert root.find_group("cell", "C") is None
    assert root.find_group("wire_load") is None


def test_defaults():
    group = Group("pin", ["A"])
    assert group.get("capacitance") is None
    assert group.get("capacitance", 0.0) == 0.0
    assert group.get_complex("values") is None


def test_anonymous_group():
    timing = Group("timing")
    assert timing.name is None
