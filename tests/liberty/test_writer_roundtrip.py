"""Liberty write -> parse -> rebuild round trip."""

import pytest

from repro.liberty.library import library_from_ast
from repro.liberty.parser import parse_liberty
from repro.liberty.writer import write_liberty


@pytest.fixture(scope="module")
def round_tripped(library):
    text = write_liberty(library)
    ast = parse_liberty(text)
    return library_from_ast(ast, tech=library.tech)


def test_same_cell_set(library, round_tripped):
    assert set(round_tripped.cells) == set(library.cells)


def test_areas_preserved(library, round_tripped):
    for name, cell in library.cells.items():
        assert round_tripped.cell(name).area == pytest.approx(
            cell.area, rel=1e-4)


def test_leakage_preserved(library, round_tripped):
    for name, cell in library.cells.items():
        assert round_tripped.cell(name).default_leakage_nw == pytest.approx(
            cell.default_leakage_nw, rel=1e-4)


def test_classification_preserved(library, round_tripped):
    for name, cell in library.cells.items():
        copy = round_tripped.cell(name)
        assert copy.variant == cell.variant
        assert copy.base_name == cell.base_name
        assert copy.kind == cell.kind
        assert copy.vth_class == cell.vth_class
        assert copy.has_vgnd_port == cell.has_vgnd_port
        assert copy.switch_width_um == pytest.approx(
            cell.switch_width_um, rel=1e-4)
        assert copy.switching_current_ma == pytest.approx(
            cell.switching_current_ma, rel=1e-4)


def test_pins_preserved(library, round_tripped):
    for name, cell in library.cells.items():
        copy = round_tripped.cell(name)
        assert set(copy.pins) == set(cell.pins)
        for pin_name, pin in cell.pins.items():
            copy_pin = copy.pins[pin_name]
            assert copy_pin.direction == pin.direction
            assert copy_pin.capacitance == pytest.approx(
                pin.capacitance, rel=1e-4)


def test_functions_preserved(library, round_tripped):
    for name, cell in library.cells.items():
        for pin_name, pin in cell.pins.items():
            if pin.logic_function is None:
                continue
            copy_fn = round_tripped.cell(name).pins[pin_name].logic_function
            if pin.function == "IQ":
                continue  # sequential internal state, not comparable
            assert copy_fn == pin.logic_function


def test_timing_tables_preserved(library, round_tripped):
    cell = library.cell("NAND2_X1_LVT")
    copy = round_tripped.cell("NAND2_X1_LVT")
    arc = cell.single_output().arc_from("A")
    copy_arc = copy.single_output().arc_from("A")
    for slew in (0.01, 0.05, 0.2):
        for load in (0.001, 0.004, 0.02):
            assert copy_arc.delay(slew, load)[0] == pytest.approx(
                arc.delay(slew, load)[0], rel=1e-4)
            assert copy_arc.output_slew(slew, load)[1] == pytest.approx(
                arc.output_slew(slew, load)[1], rel=1e-4)


def test_leakage_states_preserved(library, round_tripped):
    cell = library.cell("NOR2_X1_HVT")
    copy = round_tripped.cell("NOR2_X1_HVT")
    assert len(copy.leakage_states) == len(cell.leakage_states)
    for env in ({"A": 0, "B": 0}, {"A": 1, "B": 0}, {"A": 1, "B": 1}):
        assert copy.leakage_nw(env) == pytest.approx(
            cell.leakage_nw(env), rel=1e-4)


def test_sequential_metadata_preserved(library, round_tripped):
    copy = round_tripped.cell("DFF_X1_LVT")
    assert copy.is_sequential
    assert copy.ff_next_state == "D"
    assert copy.ff_clocked_on == "CK"
    assert copy.pins["CK"].is_clock


def test_double_round_trip_stable(library):
    text1 = write_liberty(library)
    lib2 = library_from_ast(parse_liberty(text1), tech=library.tech)
    text2 = write_liberty(lib2)
    assert text1 == text2
