"""Liberty lexer and parser."""

import pytest

from repro.errors import ParseError
from repro.liberty.lexer import tokenize
from repro.liberty.parser import parse_liberty

SAMPLE = """
/* sample library */
library (demo) {
  time_unit : "1ns";
  capacitive_load_unit_value : 1;
  cell (NAND2_X1) {
    area : 4.8;  // trailing comment
    cell_leakage_power : 0.25;
    pin (A) {
      direction : input;
      capacitance : 0.0018;
    }
    pin (Z) {
      direction : output;
      function : "(A * B)'";
      timing () {
        related_pin : "A";
        cell_rise (tmpl) {
          index_1 ("0.01 0.1");
          index_2 ("0.001 0.01");
          values ("0.02, 0.05", "0.03, 0.06");
        }
      }
    }
  }
}
"""


class TestLexer:
    def test_tokenizes_words_and_punct(self):
        tokens = tokenize("cell (X) { area : 1.5; }")
        kinds = [t.kind for t in tokens]
        assert kinds == ["word", "punct", "word", "punct", "punct",
                         "word", "punct", "word", "punct", "punct"]

    def test_strings(self):
        tokens = tokenize('unit : "1ns";')
        assert tokens[2].kind == "string"
        assert tokens[2].value == "1ns"

    def test_comments_stripped(self):
        tokens = tokenize("a /* hidden */ b // eol\nc")
        assert [t.value for t in tokens] == ["a", "b", "c"]

    def test_unterminated_comment(self):
        with pytest.raises(ParseError):
            tokenize("a /* oops")

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize('x : "open')

    def test_line_numbers(self):
        tokens = tokenize("a\nb\n  c")
        assert tokens[0].line == 1
        assert tokens[1].line == 2
        assert tokens[2].line == 3


class TestParser:
    def test_parses_sample(self):
        root = parse_liberty(SAMPLE)
        assert root.keyword == "library"
        assert root.name == "demo"
        assert root.get("time_unit") == "1ns"

    def test_cell_structure(self):
        root = parse_liberty(SAMPLE)
        cell = root.find_group("cell", "NAND2_X1")
        assert cell is not None
        assert cell.get("area") == pytest.approx(4.8)
        pins = list(cell.find_groups("pin"))
        assert [p.name for p in pins] == ["A", "Z"]

    def test_nested_timing_tables(self):
        root = parse_liberty(SAMPLE)
        cell = root.find_group("cell", "NAND2_X1")
        z_pin = cell.find_group("pin", "Z")
        timing = z_pin.find_group("timing")
        rise = timing.find_group("cell_rise")
        assert rise.get_complex("values") == ["0.02, 0.05", "0.03, 0.06"]

    def test_function_attribute_preserved(self):
        root = parse_liberty(SAMPLE)
        cell = root.find_group("cell", "NAND2_X1")
        assert cell.find_group("pin", "Z").get("function") == "(A * B)'"

    def test_numbers_typed(self):
        root = parse_liberty("library (x) { cell (c) { area : 4; } }")
        assert root.find_group("cell").get("area") == 4
        assert isinstance(root.find_group("cell").get("area"), int)

    def test_booleans(self):
        root = parse_liberty(
            "library (x) { cell (c) { flag : true; other : false; } }")
        cell = root.find_group("cell")
        assert cell.get("flag") is True
        assert cell.get("other") is False

    def test_empty_source_rejected(self):
        with pytest.raises(ParseError):
            parse_liberty("")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_liberty("library (x) { } extra")

    def test_missing_brace_rejected(self):
        with pytest.raises(ParseError):
            parse_liberty("library (x) { cell (c) { ")

    def test_group_builder_helpers(self):
        root = parse_liberty(SAMPLE)
        assert root.find_group("cell", "MISSING") is None
        assert root.get("nonexistent", 42) == 42
        assert root.get_complex("nonexistent") is None
