"""Library synthesizer calibration checks."""

import pytest

from repro.device.process import Technology
from repro.liberty.library import VARIANT_CMT, VARIANT_LVT, VARIANT_MTV
from repro.liberty.synth import LibraryBuilder, build_default_library


def test_default_library_cached():
    assert build_default_library() is build_default_library()


def test_custom_technology_not_cached_together():
    custom = Technology(vdd=1.0)
    assert build_default_library(custom) is not build_default_library()


def test_mt_delay_derate_band(library):
    builder = LibraryBuilder()
    derate = builder.mt_delay_derate()
    # MT-cells are a few percent slower than LVT, far less than HVT.
    assert 1.01 < derate < 1.10


def test_footprint_compatibility(library):
    """LVT/HVT/MT share footprint (free swaps); MTV/CMT differ."""
    lvt = library.cell("NAND2_X1_LVT")
    hvt = library.cell("NAND2_X1_HVT")
    mt = library.cell("NAND2_X1_MT")
    mtv = library.cell("NAND2_X1_MTV")
    cmt = library.cell("NAND2_X1_CMT")
    assert lvt.footprint == hvt.footprint == mt.footprint
    assert mtv.footprint != lvt.footprint
    assert cmt.footprint != lvt.footprint


def test_hvt_area_equals_lvt(library):
    assert library.cell("NAND2_X1_HVT").area == pytest.approx(
        library.cell("NAND2_X1_LVT").area)


def test_mtv_area_overhead_small(library):
    lvt = library.cell("NOR2_X1_LVT").area
    mtv = library.cell("NOR2_X1_MTV").area
    assert 1.05 < mtv / lvt < 1.25


def test_cmt_area_overhead_large(library):
    """Conventional MT-cells carry embedded switch + holder: ~2x."""
    for base in ("NAND2_X1", "NOR2_X1", "INV_X1"):
        lvt = library.cell(f"{base}_LVT").area
        cmt = library.cell(f"{base}_CMT").area
        assert cmt / lvt > 1.6


def test_cmt_standby_leak_far_below_lvt(library):
    lvt = library.cell("NAND2_X1_LVT").default_leakage_nw
    cmt = library.cell("NAND2_X1_CMT").default_leakage_nw
    assert cmt < lvt / 5.0


def test_switching_current_positive_for_logic(library):
    for name in ("NAND2_X1_MTV", "NOR2_X1_MTV", "INV_X1_MTV"):
        assert library.cell(name).switching_current_ma > 0


def test_buffer_drive_strengths_ordered(library):
    def drive_delay(name):
        cell = library.cell(name)
        arc = cell.single_output().arc_from("A")
        return max(arc.delay(0.02, 0.02))

    assert drive_delay("BUF_X8_HVT") < drive_delay("BUF_X1_HVT")


def test_max_capacitance_set(library):
    pin = library.cell("NAND2_X1_LVT").single_output()
    assert pin.max_capacitance is not None and pin.max_capacitance > 0


def test_dff_has_setup_and_hold(library):
    cell = library.cell("DFF_X1_LVT")
    types = {arc.timing_type for arc in cell.pins["D"].timing_arcs}
    assert "setup_rising" in types
    assert "hold_rising" in types
    q_arc = cell.pins["Q"].arc_from("CK")
    assert q_arc is not None
    assert q_arc.timing_type == "rising_edge"


def test_library_assumed_bounce_recorded(library):
    assert library.mt_assumed_bounce_v is not None
    assert 0.0 < library.mt_assumed_bounce_v < 0.2


def test_nonunate_cells_marked(library):
    xor_arc = library.cell("XOR2_X1_LVT").single_output().arc_from("A")
    assert xor_arc.timing_sense == "non_unate"
    nand_arc = library.cell("NAND2_X1_LVT").single_output().arc_from("A")
    assert nand_arc.timing_sense == "negative_unate"


def test_conventional_and_improved_obey_same_bounce_budget(library):
    """The embedded switch holds the cell's current at the budget."""
    from repro.device.mosfet import MosfetModel

    tech = library.tech
    model = MosfetModel(tech, tech.vth_high, "nmos")
    budget = 2.0 * library.mt_assumed_bounce_v  # worst-case basis
    for base in ("NAND2_X1", "NOR2_X1"):
        cmt = library.cell(f"{base}_CMT")
        bounce = cmt.switching_current_ma \
            * model.on_resistance(cmt.switch_width_um)
        assert bounce <= budget * 1.05
