"""Typed library model: LUTs, cells, variants, leakage states."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import LibertyError
from repro.liberty.library import (
    CellDef,
    CellKind,
    LeakageState,
    Library,
    Lut,
    PinDef,
    PinDirection,
    VARIANT_CMT,
    VARIANT_HVT,
    VARIANT_LVT,
    VARIANT_MT,
    VARIANT_MTV,
)


class TestLut:
    def test_constant(self):
        lut = Lut.constant(0.42)
        assert lut.lookup(0.0, 0.0) == pytest.approx(0.42)
        assert lut.lookup(5.0, 5.0) == pytest.approx(0.42)

    def test_exact_grid_points(self):
        lut = Lut((0.0, 1.0), (0.0, 1.0),
                  ((0.0, 1.0), (2.0, 3.0)))
        assert lut.lookup(0.0, 0.0) == pytest.approx(0.0)
        assert lut.lookup(0.0, 1.0) == pytest.approx(1.0)
        assert lut.lookup(1.0, 0.0) == pytest.approx(2.0)
        assert lut.lookup(1.0, 1.0) == pytest.approx(3.0)

    def test_bilinear_interior(self):
        lut = Lut((0.0, 1.0), (0.0, 1.0),
                  ((0.0, 1.0), (2.0, 3.0)))
        assert lut.lookup(0.5, 0.5) == pytest.approx(1.5)

    def test_linear_extrapolation(self):
        lut = Lut((0.0, 1.0), (0.0, 1.0),
                  ((0.0, 1.0), (1.0, 2.0)))
        # Planar table: extrapolation continues the plane.
        assert lut.lookup(2.0, 0.0) == pytest.approx(2.0)
        assert lut.lookup(0.0, 2.0) == pytest.approx(2.0)
        assert lut.lookup(-1.0, 0.0) == pytest.approx(-1.0)

    def test_1d_tables(self):
        row = Lut((0.0,), (0.0, 1.0), ((1.0, 3.0),))
        assert row.lookup(99.0, 0.5) == pytest.approx(2.0)
        col = Lut((0.0, 1.0), (0.0,), ((1.0,), (3.0,)))
        assert col.lookup(0.5, 99.0) == pytest.approx(2.0)

    def test_scaled(self):
        lut = Lut.constant(2.0).scaled(1.5)
        assert lut.lookup(0, 0) == pytest.approx(3.0)

    def test_validation(self):
        with pytest.raises(LibertyError):
            Lut((1.0, 0.0), (0.0,), ((1.0,), (2.0,)))  # descending axis
        with pytest.raises(LibertyError):
            Lut((0.0,), (0.0,), ((1.0,), (2.0,)))      # row mismatch
        with pytest.raises(LibertyError):
            Lut((0.0,), (0.0, 1.0), ((1.0,),))         # width mismatch

    @given(slew=st.floats(min_value=0.0, max_value=0.5),
           load=st.floats(min_value=0.0, max_value=0.05))
    def test_property_monotone_table_monotone_lookup(self, slew, load):
        lut = Lut((0.0, 0.1, 0.3), (0.0, 0.01, 0.03),
                  ((0.0, 1.0, 2.0), (1.0, 2.0, 3.0), (2.0, 3.0, 4.0)))
        base = lut.lookup(slew, load)
        assert lut.lookup(slew + 0.01, load) >= base - 1e-12
        assert lut.lookup(slew, load + 0.001) >= base - 1e-12


class TestLeakageState:
    def test_unconditional_matches_everything(self):
        state = LeakageState(value_nw=1.0)
        assert state.matches({"A": 0})

    def test_when_guard(self):
        state = LeakageState(value_nw=1.0, when="A * !B")
        assert state.matches({"A": 1, "B": 0})
        assert not state.matches({"A": 1, "B": 1})

    def test_missing_pin_does_not_match(self):
        state = LeakageState(value_nw=1.0, when="A * B")
        assert not state.matches({"A": 1})


def _make_cell(name="NAND2_X1_LVT", base="NAND2_X1", variant=VARIANT_LVT):
    cell = CellDef(name=name, base_name=base, variant=variant, area=5.0)
    cell.pins["A"] = PinDef("A", PinDirection.INPUT, capacitance=0.002)
    cell.pins["B"] = PinDef("B", PinDirection.INPUT, capacitance=0.002)
    cell.pins["Z"] = PinDef("Z", PinDirection.OUTPUT, function="(A * B)'")
    return cell


class TestCellDef:
    def test_pin_queries(self):
        cell = _make_cell()
        assert [p.name for p in cell.input_pins()] == ["A", "B"]
        assert cell.single_output().name == "Z"
        with pytest.raises(LibertyError):
            cell.pin("missing")

    def test_evaluate(self):
        cell = _make_cell()
        assert cell.evaluate({"A": 1, "B": 1}) == {"Z": 0}
        assert cell.evaluate({"A": 0, "B": 1}) == {"Z": 1}

    def test_state_dependent_leakage(self):
        cell = _make_cell()
        cell.default_leakage_nw = 1.0
        cell.leakage_states = [
            LeakageState(value_nw=5.0, when="A * B"),
            LeakageState(value_nw=0.5, when="!A * !B"),
        ]
        assert cell.leakage_nw({"A": 1, "B": 1}) == pytest.approx(5.0)
        assert cell.leakage_nw({"A": 0, "B": 0}) == pytest.approx(0.5)
        assert cell.leakage_nw({"A": 1, "B": 0}) == pytest.approx(1.0)
        assert cell.leakage_nw() == pytest.approx(1.0)
        assert cell.worst_leakage_nw() == pytest.approx(5.0)

    def test_variant_flags(self):
        assert _make_cell(variant=VARIANT_MT).is_improved_mt
        assert _make_cell(variant=VARIANT_MTV).is_improved_mt
        assert _make_cell(variant=VARIANT_CMT).is_conventional_mt
        assert _make_cell(variant=VARIANT_CMT).is_mt
        assert not _make_cell(variant=VARIANT_HVT).is_mt


class TestLibrary:
    def test_add_and_lookup(self):
        library = Library("test")
        cell = library.add_cell(_make_cell())
        assert library.cell(cell.name) is cell
        assert cell.name in library
        assert len(library) == 1

    def test_duplicate_rejected(self):
        library = Library("test")
        library.add_cell(_make_cell())
        with pytest.raises(LibertyError):
            library.add_cell(_make_cell())

    def test_missing_cell(self):
        with pytest.raises(LibertyError):
            Library("test").cell("nope")

    def test_variant_navigation(self):
        library = Library("test")
        lvt = library.add_cell(_make_cell("NAND2_X1_LVT", variant=VARIANT_LVT))
        hvt = library.add_cell(_make_cell("NAND2_X1_HVT", variant=VARIANT_HVT))
        assert library.variant_of(lvt, VARIANT_HVT) is hvt
        assert library.variant_of("NAND2_X1_HVT", VARIANT_LVT) is lvt
        assert library.has_variant(lvt, VARIANT_HVT)
        assert not library.has_variant(lvt, VARIANT_CMT)
        with pytest.raises(LibertyError):
            library.variant_of(lvt, VARIANT_MTV)


class TestDefaultLibrary:
    def test_all_variants_present_for_combinational(self, library):
        for base in ("NAND2_X1", "NOR2_X1", "INV_X1", "XOR2_X1"):
            for variant in (VARIANT_LVT, VARIANT_HVT, VARIANT_MT,
                            VARIANT_MTV, VARIANT_CMT):
                assert f"{base}_{variant}" in library

    def test_sequential_has_no_mt_variant(self, library):
        assert "DFF_X1_LVT" in library
        assert "DFF_X1_HVT" in library
        assert "DFF_X1_MT" not in library

    def test_switch_cells_sorted(self, library):
        switches = library.switch_cells()
        assert len(switches) >= 6
        widths = [s.switch_width_um for s in switches]
        assert widths == sorted(widths)

    def test_holder_present(self, library):
        holder = library.cell("HOLDER_X1")
        assert holder.kind == CellKind.HOLDER
        assert holder.default_leakage_nw > 0

    def test_mtv_has_vgnd_pin(self, library):
        mtv = library.cell("NAND2_X1_MTV")
        assert mtv.has_vgnd_port
        assert "VGND" in mtv.pins
        mt = library.cell("NAND2_X1_MT")
        assert "VGND" not in mt.pins

    def test_cmt_has_mte_pin_and_bigger_area(self, library):
        cmt = library.cell("NAND2_X1_CMT")
        lvt = library.cell("NAND2_X1_LVT")
        assert "MTE" in cmt.pins
        assert cmt.area > 1.5 * lvt.area
        assert cmt.switch_width_um > 0

    def test_delay_ordering_lvt_mt_hvt(self, library):
        """The paper's premise: LVT < MT < HVT delay."""
        def worst_delay(cell_name):
            cell = library.cell(cell_name)
            arc = cell.single_output().arc_from("A")
            rise, fall = arc.delay(0.02, 0.004)
            return max(rise, fall)

        lvt = worst_delay("NAND2_X1_LVT")
        mtv = worst_delay("NAND2_X1_MTV")
        hvt = worst_delay("NAND2_X1_HVT")
        assert lvt < mtv < hvt

    def test_leakage_ordering(self, library):
        """Standby: MTV residual << HVT << LVT; CMT near HVT scale."""
        lvt = library.cell("NAND2_X1_LVT").default_leakage_nw
        hvt = library.cell("NAND2_X1_HVT").default_leakage_nw
        mtv = library.cell("NAND2_X1_MTV").default_leakage_nw
        assert lvt > 10 * hvt
        assert mtv < hvt

    def test_state_dependent_leakage_on_nand(self, library):
        cell = library.cell("NAND2_X1_LVT")
        assert len(cell.leakage_states) == 4
        # All-ones state leaks through parallel PMOS (worst for NAND).
        worst = cell.leakage_nw({"A": 1, "B": 1})
        best = cell.leakage_nw({"A": 0, "B": 0})
        assert worst > best
