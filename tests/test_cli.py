"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    output = capsys.readouterr().out
    assert "c17" in output
    assert "circuitA" in output


def test_library_command_to_file(tmp_path, capsys):
    out = tmp_path / "lib.lib"
    assert main(["library", "--out", str(out)]) == 0
    text = out.read_text()
    assert "library (repro_smt)" in text
    assert "NAND2_X1_MTV" in text


def test_flow_command(capsys):
    assert main(["flow", "--circuit", "c17", "--technique", "improved_smt",
                 "--margin", "0.2"]) == 0
    output = capsys.readouterr().out
    assert "physical_synthesis" in output
    assert "total area" in output


def test_compare_command(capsys):
    assert main(["compare", "--circuit", "c17", "--margin", "0.2"]) == 0
    output = capsys.readouterr().out
    assert "dual_vth" in output
    assert "improved_smt" in output


def test_parser_rejects_bad_technique():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["flow", "--circuit", "c17",
                           "--technique", "magic"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
