"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    output = capsys.readouterr().out
    assert "c17" in output
    assert "circuitA" in output


def test_library_command_to_file(tmp_path, capsys):
    out = tmp_path / "lib.lib"
    assert main(["library", "--out", str(out)]) == 0
    text = out.read_text()
    assert "library (repro_smt)" in text
    assert "NAND2_X1_MTV" in text


def test_flow_command(capsys):
    assert main(["flow", "--circuit", "c17", "--technique", "improved_smt",
                 "--margin", "0.2"]) == 0
    output = capsys.readouterr().out
    assert "physical_synthesis" in output
    assert "total area" in output


def test_compare_command(capsys):
    assert main(["compare", "--circuit", "c17", "--margin", "0.2"]) == 0
    output = capsys.readouterr().out
    assert "dual_vth" in output
    assert "improved_smt" in output


def test_parser_rejects_bad_technique():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["flow", "--circuit", "c17",
                           "--technique", "magic"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_sweep_command(capsys):
    assert main(["sweep", "--circuits", "c17", "--margin", "0.2"]) == 0
    output = capsys.readouterr().out
    assert "dual_vth" in output
    assert "improved_smt" in output
    assert "c17" in output


def test_sweep_command_parallel_matches_serial(capsys):
    assert main(["sweep", "--circuits", "c17", "--margin", "0.2",
                 "--jobs", "1"]) == 0
    serial = capsys.readouterr().out
    assert main(["sweep", "--circuits", "c17", "--margin", "0.2",
                 "--jobs", "3"]) == 0
    parallel = capsys.readouterr().out
    assert serial == parallel


def test_sweep_technique_subset(capsys):
    assert main(["sweep", "--circuits", "c17", "--margin", "0.2",
                 "--techniques", "dual_vth,improved_smt"]) == 0
    output = capsys.readouterr().out
    assert "conventional_smt" not in output
    assert "improved_smt" in output


def test_sweep_rejects_empty_circuits():
    assert main(["sweep", "--circuits", ","]) == 2


def test_sweep_rejects_bad_technique(capsys):
    assert main(["sweep", "--circuits", "c17",
                 "--techniques", "dual_vth,bogus"]) == 2
    assert "valid:" in capsys.readouterr().err


def test_corners_command(tmp_path, capsys):
    out = tmp_path / "corners.json"
    assert main(["corners", "--circuits", "c17", "--margin", "0.2",
                 "--techniques", "dual_vth,improved_smt",
                 "--corners", "tt_nom,ff_1.32v_125c",
                 "--json", str(out)]) == 0
    output = capsys.readouterr().out
    assert "tt_nom" in output
    assert "ff_1.32v_125c" in output
    import json

    payload = json.loads(out.read_text())
    assert payload["corners"] == ["tt_nom", "ff_1.32v_125c"]
    techniques = {row["technique"] for row in payload["results"]}
    assert techniques == {"dual_vth", "improved_smt"}


def test_corners_rejects_unknown_corner(capsys):
    assert main(["corners", "--circuits", "c17",
                 "--corners", "tt_nom,bogus_corner"]) == 2
    assert "unknown corner" in capsys.readouterr().err


def test_corners_rejects_empty_circuits():
    assert main(["corners", "--circuits", ","]) == 2


def test_corners_rejects_bad_technique(capsys):
    assert main(["corners", "--circuits", "c17",
                 "--techniques", "dual_vth,bogus"]) == 2
    assert "valid:" in capsys.readouterr().err


def test_sweep_rejects_empty_techniques(capsys):
    assert main(["sweep", "--circuits", "c17", "--techniques", ","]) == 2
    assert "no techniques" in capsys.readouterr().err


def test_montecarlo_command(tmp_path, capsys):
    out = tmp_path / "mc.json"
    assert main(["montecarlo", "--circuit", "c17", "--margin", "0.2",
                 "--samples", "5", "--no-timing",
                 "--techniques", "dual_vth", "--json", str(out)]) == 0
    output = capsys.readouterr().out
    assert "Monte-Carlo" in output
    assert "dual_vth" in output
    import json

    payload = json.loads(out.read_text())
    assert payload["samples"] == 5
    stats = payload["results"]["dual_vth"]["statistics"]
    assert stats["samples"] == 5
    assert stats["mean_nw"] > 0


def test_montecarlo_rejects_unknown_corner(capsys):
    assert main(["montecarlo", "--circuit", "c17",
                 "--corner", "bogus"]) == 2
    assert "unknown corner" in capsys.readouterr().err


def test_sweep_tolerates_trailing_comma_in_techniques(capsys):
    assert main(["sweep", "--circuits", "c17", "--margin", "0.2",
                 "--techniques", "dual_vth,"]) == 0
    output = capsys.readouterr().out
    assert "dual_vth" in output
    assert "improved_smt" not in output


def _load_checked_payload(path):
    """Every --json emission is schema-stamped and round-trips."""
    import json

    from repro.api import schemas

    payload = json.loads(path.read_text())
    assert payload[schemas.SCHEMA_KEY] in schemas.schema_names()
    assert isinstance(payload[schemas.VERSION_KEY], int)
    rebuilt = schemas.from_dict(payload)
    assert schemas.to_dict(rebuilt) == payload
    return payload


def test_flow_command_json(tmp_path, capsys):
    out = tmp_path / "flow.json"
    assert main(["flow", "--circuit", "c17", "--margin", "0.2",
                 "--json", str(out)]) == 0
    payload = _load_checked_payload(out)
    assert payload["schema"] == "optimize_result"
    assert payload["technique"] == "improved_smt"
    assert payload["circuit"] == "c17"
    assert payload["area_um2"] > 0


def test_compare_command_json(tmp_path, capsys):
    out = tmp_path / "compare.json"
    assert main(["compare", "--circuit", "c17", "--margin", "0.2",
                 "--json", str(out)]) == 0
    payload = _load_checked_payload(out)
    assert payload["schema"] == "sweep_result"
    assert len(payload["rows"]) == 3


def test_sweep_command_json(tmp_path, capsys):
    out = tmp_path / "sweep.json"
    assert main(["sweep", "--circuits", "c17", "--margin", "0.2",
                 "--techniques", "dual_vth", "--json", str(out)]) == 0
    payload = _load_checked_payload(out)
    assert payload["schema"] == "sweep_result"
    assert payload["rows"][0]["circuit"] == "c17"


def test_corners_json_is_schema_stamped(tmp_path, capsys):
    out = tmp_path / "corners.json"
    assert main(["corners", "--circuits", "c17", "--margin", "0.2",
                 "--techniques", "dual_vth", "--corners", "tt_nom",
                 "--json", str(out)]) == 0
    payload = _load_checked_payload(out)
    assert payload["schema"] == "corner_signoff_report"


def test_montecarlo_json_is_schema_stamped(tmp_path, capsys):
    out = tmp_path / "mc.json"
    assert main(["montecarlo", "--circuit", "c17", "--margin", "0.2",
                 "--samples", "3", "--no-timing",
                 "--techniques", "dual_vth", "--json", str(out)]) == 0
    payload = _load_checked_payload(out)
    assert payload["schema"] == "montecarlo_study"
    assert payload["results"]["dual_vth"]["statistics"]["samples"] == 3


def test_serve_command_registered():
    parser = build_parser()
    args = parser.parse_args(["serve", "--port", "0"])
    assert args.port == 0
    assert args.workers == 1


def test_standby_command(tmp_path, capsys):
    out = tmp_path / "standby.json"
    assert main(["standby", "--circuit", "c17", "--margin", "0.2",
                 "--scenarios", "mostly_idle,always_on",
                 "--corners", "tt_nom", "--json", str(out)]) == 0
    output = capsys.readouterr().out
    assert "Standby-transition signoff" in output
    assert "wake-up schedule" in output
    assert "mostly_idle" in output
    payload = _load_checked_payload(out)
    assert payload["schema"] == "standby_result"
    assert payload["scenarios"] == ["mostly_idle", "always_on"]
    assert payload["corners"] == ["tt_nom"]


def test_standby_rejects_unknown_scenario(capsys):
    assert main(["standby", "--circuit", "c17", "--margin", "0.2",
                 "--scenarios", "hyperdrive"]) == 2
    assert "unknown scenario" in capsys.readouterr().err


def test_standby_rejects_unknown_corner(capsys):
    assert main(["standby", "--circuit", "c17", "--margin", "0.2",
                 "--scenarios", "mostly_idle",
                 "--corners", "tt_blazing"]) == 2
    assert "unknown corner" in capsys.readouterr().err


def test_flow_command_trace(tmp_path, capsys):
    import json

    from repro.obs import spans

    trace = tmp_path / "trace.json"
    try:
        assert main(["flow", "--circuit", "c17", "--margin", "0.2",
                     "--trace", str(trace)]) == 0
    finally:
        spans.disable()
        spans.reset()
    output = capsys.readouterr().out
    assert f"wrote Chrome trace to {trace}" in output
    payload = json.loads(trace.read_text(encoding="utf-8"))
    names = {event["name"] for event in payload["traceEvents"]}
    assert "flow.run" in names
    assert "stage.physical_synthesis" in names
    assert "sta.full_run" in names


def test_log_level_option_routes_repro_logger():
    import logging

    from repro.obs.logconf import _HANDLER_NAME, root_logger

    try:
        assert main(["flow", "--circuit", "c17", "--margin", "0.2",
                     "--log-level", "DEBUG"]) == 0
        assert root_logger.level == logging.DEBUG
        assert any(h.name == _HANDLER_NAME
                   for h in root_logger.handlers)
    finally:
        for handler in list(root_logger.handlers):
            if handler.name == _HANDLER_NAME:
                root_logger.removeHandler(handler)
        root_logger.setLevel(logging.NOTSET)


def test_bad_log_level_is_exit_2(capsys):
    assert main(["flow", "--circuit", "c17",
                 "--log-level", "loudest"]) == 2
    assert "unknown log level" in capsys.readouterr().err
