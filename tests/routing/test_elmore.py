"""Elmore delay on RC trees."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import RoutingError
from repro.routing.elmore import RcTree


def test_single_segment():
    tree = RcTree("drv")
    tree.add_node("sink", cap_pf=0.01, parent="drv", res_kohm=0.5)
    delays = tree.elmore_delays()
    assert delays["drv"] == 0.0
    assert delays["sink"] == pytest.approx(0.5 * 0.01)


def test_two_segment_chain():
    tree = RcTree("drv")
    tree.add_node("mid", 0.01, "drv", 0.5)
    tree.add_node("end", 0.02, "mid", 0.3)
    delays = tree.elmore_delays()
    # mid: R1 * (C_mid + C_end); end: mid + R2 * C_end
    assert delays["mid"] == pytest.approx(0.5 * 0.03)
    assert delays["end"] == pytest.approx(0.5 * 0.03 + 0.3 * 0.02)


def test_branching():
    tree = RcTree("drv")
    tree.add_node("stem", 0.0, "drv", 1.0)
    tree.add_node("a", 0.01, "stem", 0.5)
    tree.add_node("b", 0.02, "stem", 0.5)
    delays = tree.elmore_delays()
    # Stem resistance sees both branch caps.
    assert delays["a"] == pytest.approx(1.0 * 0.03 + 0.5 * 0.01)
    assert delays["b"] == pytest.approx(1.0 * 0.03 + 0.5 * 0.02)
    assert delays["b"] > delays["a"]


def test_add_cap():
    tree = RcTree("drv")
    tree.add_node("sink", 0.01, "drv", 1.0)
    tree.add_cap("sink", 0.01)
    assert tree.elmore_delays()["sink"] == pytest.approx(0.02)
    assert tree.total_cap() == pytest.approx(0.02)


def test_validation():
    tree = RcTree("drv")
    tree.add_node("a", 0.01, "drv", 1.0)
    with pytest.raises(RoutingError):
        tree.add_node("a", 0.01, "drv", 1.0)    # duplicate
    with pytest.raises(RoutingError):
        tree.add_node("b", 0.01, "ghost", 1.0)  # unknown parent
    with pytest.raises(RoutingError):
        tree.add_cap("ghost", 0.01)


@given(res=st.lists(st.floats(min_value=0.01, max_value=1.0),
                    min_size=1, max_size=8),
       cap=st.floats(min_value=0.001, max_value=0.05))
def test_property_chain_delay_equals_closed_form(res, cap):
    """Uniform-cap chain matches the analytic Elmore sum."""
    tree = RcTree("n0")
    for i, r in enumerate(res):
        tree.add_node(f"n{i + 1}", cap, f"n{i}", r)
    delays = tree.elmore_delays()
    # delay(k) = sum_{i<=k} R_i * (n - i) * cap  where segments below i
    # carry (len(res) - i) caps.
    expected = 0.0
    for k in range(len(res)):
        expected += res[k] * (len(res) - k) * cap
    assert delays[f"n{len(res)}"] == pytest.approx(expected, rel=1e-9)


@given(st.floats(min_value=0.001, max_value=1.0))
def test_property_downstream_monotone(extra_cap):
    """Adding cap anywhere never reduces any delay."""
    def build(with_extra):
        tree = RcTree("drv")
        tree.add_node("mid", 0.01, "drv", 0.4)
        tree.add_node("end", 0.01, "mid", 0.4)
        if with_extra:
            tree.add_cap("end", extra_cap)
        return tree.elmore_delays()

    base = build(False)
    heavier = build(True)
    for node in base:
        assert heavier[node] >= base[node]
