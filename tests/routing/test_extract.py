"""Pre/post-route extraction and the SPEF exchange."""

import pytest

from repro.placement.legalize import legalize
from repro.placement.placer import GlobalPlacer
from repro.routing.extract import PostRouteExtractor, PreRouteEstimator
from repro.routing.spef import parse_spef, write_spef
from repro.timing.constraints import Constraints
from repro.timing.delay import NetModel
from repro.timing.sta import TimingAnalyzer


@pytest.fixture()
def placed(library, s27):
    placement = GlobalPlacer(s27, library).run()
    legalize(placement, s27, library)
    return s27, placement


class TestPreRoute:
    def test_extracts_connected_nets(self, library, placed):
        netlist, placement = placed
        parasitics = PreRouteEstimator(netlist, placement, library).extract()
        for name, net in netlist.nets.items():
            if net.has_driver and net.fanout() > 0:
                assert name in parasitics

    def test_values_positive(self, library, placed):
        netlist, placement = placed
        for p in PreRouteEstimator(netlist, placement, library)\
                .extract().values():
            assert p.total_cap_pf >= 0
            assert p.total_res_kohm >= 0
            assert p.length_um >= 0

    def test_deterministic(self, library, placed):
        netlist, placement = placed
        first = PreRouteEstimator(netlist, placement, library).extract()
        second = PreRouteEstimator(netlist, placement, library).extract()
        for name in first:
            assert first[name].length_um == second[name].length_um

    def test_fanout_factor_monotone(self):
        factor = PreRouteEstimator._fanout_factor
        assert factor(2) == 1.0
        assert factor(3) == 1.0
        values = [factor(k) for k in range(4, 30)]
        assert values == sorted(values)


class TestPostRoute:
    def test_sink_delays_cover_all_sinks(self, library, placed):
        netlist, placement = placed
        parasitics = PostRouteExtractor(netlist, placement,
                                        library).extract()
        for name, net in netlist.nets.items():
            if not net.has_driver or net.fanout() == 0:
                continue
            entry = parasitics[name]
            for pin in net.sinks:
                assert pin.full_name in entry.sink_delays

    def test_elmore_delays_nonnegative(self, library, placed):
        netlist, placement = placed
        for entry in PostRouteExtractor(netlist, placement,
                                        library).extract().values():
            for delay in entry.sink_delays.values():
                assert delay >= 0

    def test_wire_delay_grows_with_distance(self, library, placed):
        netlist, placement = placed
        extractor = PostRouteExtractor(netlist, placement, library)
        parasitics = extractor.extract()
        # The farthest sink of a multi-sink net has the largest delay.
        for name, net in netlist.nets.items():
            if len(net.sinks) < 2 or net.driver is None:
                continue
            entry = parasitics[name]
            sx, sy = placement.location(net.driver.instance.name)
            by_distance = sorted(
                net.sinks,
                key=lambda p: abs(placement.location(p.instance.name)[0] - sx)
                + abs(placement.location(p.instance.name)[1] - sy))
            near = entry.sink_delay(by_distance[0].full_name)
            far = entry.sink_delay(by_distance[-1].full_name)
            assert far >= near - 1e-12


class TestStaIntegration:
    def test_parasitics_slow_timing_down(self, library, placed):
        netlist, placement = placed
        cons = Constraints(clock_period=50.0)
        bare = TimingAnalyzer(netlist, library, cons).run()
        parasitics = PostRouteExtractor(netlist, placement,
                                        library).extract()
        loaded = TimingAnalyzer(netlist, library, cons,
                                parasitics=parasitics).run()
        assert loaded.wns < bare.wns

    def test_net_model_includes_wire_cap(self, library, placed):
        netlist, placement = placed
        cons = Constraints(clock_period=50.0)
        parasitics = PostRouteExtractor(netlist, placement,
                                        library).extract()
        bare_model = NetModel(netlist, library, cons)
        loaded_model = NetModel(netlist, library, cons, parasitics)
        checked = 0
        for name, net in netlist.nets.items():
            entry = parasitics.get(name)
            if entry is None or not net.fanout() \
                    or entry.total_cap_pf <= 0.0:
                continue
            assert loaded_model.total_load(net) > bare_model.total_load(net)
            checked += 1
        assert checked > 0


class TestSpef:
    def test_round_trip(self, library, placed):
        netlist, placement = placed
        parasitics = PostRouteExtractor(netlist, placement,
                                        library).extract()
        text = write_spef(parasitics, design_name=netlist.name)
        parsed = parse_spef(text)
        assert set(parsed) == set(parasitics)
        for name, original in parasitics.items():
            copy = parsed[name]
            assert copy.total_cap_pf == pytest.approx(
                original.total_cap_pf, rel=1e-4)
            assert copy.total_res_kohm == pytest.approx(
                original.total_res_kohm, rel=1e-4)
            assert copy.length_um == pytest.approx(
                original.length_um, rel=1e-4)
            for sink, delay in original.sink_delays.items():
                assert copy.sink_delay(sink) == pytest.approx(
                    delay, rel=1e-4, abs=1e-9)

    def test_header_present(self, library, placed):
        netlist, placement = placed
        parasitics = PreRouteEstimator(netlist, placement,
                                       library).extract()
        text = write_spef(parasitics, design_name="s27")
        assert text.startswith('*SPEF')
        assert "*DESIGN s27" in text

    def test_malformed_rejected(self):
        from repro.errors import ParseError

        with pytest.raises(ParseError):
            parse_spef("*D_NET too many tokens here\n*END\n")
