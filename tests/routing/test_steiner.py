"""Rectilinear spanning tree construction."""

import pytest
from hypothesis import given, strategies as st

from repro.routing.steiner import build_mst


def test_two_points():
    tree = build_mst(["a", "b"], [(0.0, 0.0), (3.0, 4.0)])
    assert tree.total_length == pytest.approx(7.0)
    assert tree.edges == [(0, 1)]


def test_collinear_chain():
    points = [(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.0, 0.0)]
    tree = build_mst(list("abcd"), points)
    assert tree.total_length == pytest.approx(3.0)


def test_star_topology():
    # Root in the centre; MST connects each directly.
    points = [(0.0, 0.0), (1.0, 0.0), (-1.0, 0.0), (0.0, 1.0)]
    tree = build_mst(list("rabc"), points, root_index=0)
    assert tree.total_length == pytest.approx(3.0)
    assert all(parent == 0 for parent, _child in tree.edges)


def test_edges_parent_before_child():
    points = [(0.0, 0.0), (5.0, 0.0), (10.0, 0.0), (15.0, 0.0)]
    tree = build_mst(list("abcd"), points)
    reached = {0}
    for parent, child in tree.edges:
        assert parent in reached
        reached.add(child)
    assert reached == {0, 1, 2, 3}


def test_empty_and_singleton():
    assert build_mst([], []).total_length == 0.0
    single = build_mst(["a"], [(1.0, 1.0)])
    assert single.total_length == 0.0
    assert single.edges == []


def test_length_mismatch_rejected():
    with pytest.raises(ValueError):
        build_mst(["a"], [(0.0, 0.0), (1.0, 1.0)])


@given(st.lists(st.tuples(st.floats(min_value=0, max_value=100),
                          st.floats(min_value=0, max_value=100)),
                min_size=2, max_size=12, unique=True))
def test_property_tree_spans_all_points(points):
    names = [f"p{i}" for i in range(len(points))]
    tree = build_mst(names, points)
    assert len(tree.edges) == len(points) - 1
    reached = {0}
    for parent, child in tree.edges:
        assert parent in reached
        reached.add(child)
    assert reached == set(range(len(points)))


@given(st.lists(st.tuples(st.floats(min_value=0, max_value=100),
                          st.floats(min_value=0, max_value=100)),
                min_size=2, max_size=10, unique=True))
def test_property_mst_at_least_bbox_halfperimeter_over_sqrt(points):
    """MST length is bounded below by half the bbox half-perimeter."""
    tree = build_mst([f"p{i}" for i in range(len(points))], points)
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    hpwl = (max(xs) - min(xs)) + (max(ys) - min(ys))
    assert tree.total_length >= hpwl - 1e-6 or len(points) == 2
