"""Clock tree synthesis."""

import pytest

from repro.benchcircuits.generator import GeneratorConfig, generate_circuit
from repro.cts.tree import ClockTreeSynthesizer
from repro.errors import FlowError
from repro.liberty.library import VARIANT_LVT
from repro.netlist.techmap import technology_map
from repro.netlist.validate import check_netlist
from repro.placement.legalize import legalize
from repro.placement.placer import GlobalPlacer


@pytest.fixture()
def sequential_design(library):
    netlist = generate_circuit("seq", GeneratorConfig(
        n_gates=120, n_inputs=8, n_outputs=6, n_ffs=24, depth=8,
        style="tapered", seed=5))
    technology_map(netlist, library, VARIANT_LVT)
    placement = GlobalPlacer(netlist, library).run()
    legalize(placement, netlist, library)
    return netlist, placement


def test_combinational_design_no_tree(library, c17):
    placement = GlobalPlacer(c17, library).run()
    cts = ClockTreeSynthesizer(c17, library, placement)
    result = cts.run()
    assert result.buffer_count == 0
    assert result.clock_arrivals == {}


def test_buffers_inserted_and_fanout_respected(library, sequential_design):
    netlist, placement = sequential_design
    cts = ClockTreeSynthesizer(netlist, library, placement, fanout_limit=8)
    result = cts.run()
    assert result.buffer_count > 0
    # Every clock-tree net stays within the fanout limit.
    for name in result.buffer_instances:
        inst = netlist.instance(name)
        out_net = inst.pin("Z").net
        assert out_net.fanout() <= 8


def test_every_ff_reached(library, sequential_design):
    netlist, placement = sequential_design
    result = ClockTreeSynthesizer(netlist, library, placement).run()
    ffs = [i.name for i in netlist.instances.values()
           if i.cell_name.startswith("DFF")]
    assert set(result.clock_arrivals) == set(ffs)
    for arrival in result.clock_arrivals.values():
        assert arrival >= 0


def test_netlist_remains_valid(library, sequential_design):
    netlist, placement = sequential_design
    ClockTreeSynthesizer(netlist, library, placement).run()
    assert check_netlist(netlist, library) == []


def test_skew_reported(library, sequential_design):
    netlist, placement = sequential_design
    result = ClockTreeSynthesizer(netlist, library, placement).run()
    assert result.skew >= 0
    arrivals = list(result.clock_arrivals.values())
    assert result.skew == pytest.approx(max(arrivals) - min(arrivals))


def test_buffers_are_high_vth(library, sequential_design):
    netlist, placement = sequential_design
    result = ClockTreeSynthesizer(netlist, library, placement).run()
    for name in result.buffer_instances:
        cell = library.cell(netlist.instance(name).cell_name)
        assert cell.vth_class.value == "high"


def test_fanout_limit_validation(library, sequential_design):
    netlist, placement = sequential_design
    with pytest.raises(FlowError):
        ClockTreeSynthesizer(netlist, library, placement, fanout_limit=1)


def test_unknown_buffer_cell_rejected(library, sequential_design):
    netlist, placement = sequential_design
    cts = ClockTreeSynthesizer(netlist, library, placement,
                               buffer_cell="GHOST_BUF")
    with pytest.raises(FlowError):
        cts.run()
