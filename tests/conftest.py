"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.benchcircuits.suite import load_circuit
from repro.device.process import Technology
from repro.liberty.library import VARIANT_LVT
from repro.liberty.synth import build_default_library
from repro.netlist.builder import NetlistBuilder
from repro.netlist.techmap import technology_map


@pytest.fixture(scope="session")
def tech():
    return Technology()


@pytest.fixture(scope="session")
def library():
    """The default synthesized multi-Vth library (built once)."""
    return build_default_library()


@pytest.fixture()
def c17(library):
    """c17 mapped to low-Vth library cells."""
    netlist = load_circuit("c17")
    technology_map(netlist, library, VARIANT_LVT)
    return netlist


@pytest.fixture()
def c17_generic():
    """c17 as generic gates (unmapped)."""
    return load_circuit("c17")


@pytest.fixture()
def s27(library):
    """s27 (sequential) mapped to library cells."""
    netlist = load_circuit("s27")
    technology_map(netlist, library, VARIANT_LVT)
    return netlist


@pytest.fixture()
def half_adder(library):
    """A tiny two-output combinational design."""
    builder = NetlistBuilder("half_adder")
    builder.inputs("a", "b")
    builder.outputs("s", "c")
    builder.gate("XOR2_X1_LVT", "g1", A="a", B="b", Z="s")
    builder.gate("AND2_X1_LVT", "g2", A="a", B="b", Z="c")
    return builder.build()


@pytest.fixture()
def nand_chain(library):
    """A 12-stage NAND2 chain (easy to reason about timing)."""
    builder = NetlistBuilder("nand_chain")
    builder.inputs("a")
    previous = "a"
    for i in range(12):
        builder.gate("NAND2_X1_LVT", f"g{i}", A=previous, B=previous,
                     Z=f"n{i}")
        previous = f"n{i}"
    builder.outputs(previous)
    return builder.build()
