"""Reproducibility: every pipeline stage is deterministic.

A reproduction package must produce identical numbers on every run;
these tests run the same seeded configuration twice and require
bit-identical outcomes.
"""

import pytest

from repro.config import FlowConfig, Technique
from repro.core.flow import SelectiveMtFlow


def test_circuit_generation_deterministic():
    from repro.benchcircuits.suite import load_circuit

    a1 = load_circuit("circuitA")
    a2 = load_circuit("circuitA")
    conns1 = sorted((i.name, p.name, p.net.name)
                    for i in a1.instances.values()
                    for p in i.pins.values() if p.net)
    conns2 = sorted((i.name, p.name, p.net.name)
                    for i in a2.instances.values()
                    for p in i.pins.values() if p.net)
    assert conns1 == conns2


def test_library_deterministic():
    from repro.device.process import Technology
    from repro.liberty.synth import LibraryBuilder
    from repro.liberty.writer import write_liberty

    first = write_liberty(LibraryBuilder(Technology()).build())
    second = write_liberty(LibraryBuilder(Technology()).build())
    assert first == second


def test_full_flow_deterministic(library):
    from repro.benchcircuits.suite import load_circuit

    netlist = load_circuit("c432")
    config = FlowConfig(timing_margin=0.10, placement_seed=7)

    def run():
        result = SelectiveMtFlow(netlist, library,
                                 Technique.IMPROVED_SMT, config).run()
        return (result.leakage_nw, result.total_area, result.timing.wns,
                sorted((i.name, i.cell_name)
                       for i in result.netlist.instances.values()))

    first = run()
    second = run()
    assert first[0] == pytest.approx(second[0], rel=1e-12)
    assert first[1] == pytest.approx(second[1], rel=1e-12)
    assert first[2] == pytest.approx(second[2], rel=1e-12)
    assert first[3] == second[3]


def test_sweep_parallel_matches_serial(library):
    """`repro sweep --jobs 4` and `--jobs 1` yield identical rows."""
    from repro.runner import run_sweep

    config = FlowConfig(timing_margin=0.2, placement_seed=5)
    serial = run_sweep(["c17"], config=config, jobs=1, library=library)
    parallel = run_sweep(["c17"], config=config, jobs=4, library=library)
    assert len(serial) == len(parallel) == 1
    assert serial[0].circuit == parallel[0].circuit
    assert serial[0].rows == parallel[0].rows  # dataclass equality: exact


def test_sweep_rows_match_in_process_compare(library):
    """The runner's slim path reproduces compare_techniques() exactly."""
    from repro.benchcircuits.suite import load_circuit
    from repro.core.compare import compare_techniques
    from repro.runner import run_sweep

    config = FlowConfig(timing_margin=0.2, placement_seed=3)
    netlist = load_circuit("c17")
    direct = compare_techniques(netlist, library, config,
                                circuit_name="c17")
    swept = run_sweep(["c17"], config=config, jobs=1, library=library)[0]
    assert direct.rows == swept.rows


def test_per_job_seed_overrides_config(library):
    from repro.runner import FlowJob, run_flow_job

    config = FlowConfig(timing_margin=0.2, placement_seed=1)
    job = FlowJob(circuit="c17", technique=Technique.DUAL_VTH,
                  config=config, seed=9)
    assert job.resolved_config().placement_seed == 9
    outcome = run_flow_job(job, library=library)
    assert outcome.ok
    repeat = run_flow_job(job, library=library)
    assert outcome.area_um2 == repeat.area_um2
    assert outcome.leakage_nw == repeat.leakage_nw


def test_corner_signoff_parallel_matches_serial(library):
    """`repro-smt corners --jobs N` is bit-identical for any N."""
    from repro.experiments import run_table1_corners

    kwargs = dict(circuits=("c17",),
                  corners=("tt_nom", "ff_1.32v_125c"),
                  config=FlowConfig(timing_margin=0.2),
                  library=library)
    serial = run_table1_corners(jobs=1, **kwargs)
    parallel = run_table1_corners(jobs=3, **kwargs)
    assert serial.as_dict() == parallel.as_dict()
    # Results are keyed by the caller's circuit names.
    outcome = serial.outcome("c17", Technique.IMPROVED_SMT)
    assert outcome.row("tt_nom").leakage_nw == outcome.nominal_leakage_nw


def test_flow_does_not_mutate_source(library):
    from repro.benchcircuits.suite import load_circuit

    netlist = load_circuit("c17")
    before = sorted(i.cell_name for i in netlist.instances.values())
    SelectiveMtFlow(netlist, library, Technique.IMPROVED_SMT,
                    FlowConfig(timing_margin=0.2)).run()
    after = sorted(i.cell_name for i in netlist.instances.values())
    assert before == after  # the flow clones; generic gates untouched
