"""Benchmark circuit generators and the registry."""

import pytest

from repro.benchcircuits.generator import GeneratorConfig, generate_circuit
from repro.benchcircuits.iscas85 import ISCAS85_SPECS, load_iscas85
from repro.benchcircuits.iscas89 import ISCAS89_SPECS, load_iscas89
from repro.benchcircuits.suite import available_circuits, load_circuit
from repro.errors import ReproError
from repro.netlist.techmap import technology_map
from repro.netlist.validate import check_netlist


class TestGenerator:
    def test_deterministic(self):
        config = GeneratorConfig(n_gates=50, n_inputs=6, n_outputs=4,
                                 seed=11)
        a = generate_circuit("x", config)
        b = generate_circuit("x", config)
        assert a.stats() == b.stats()
        assert {i.cell_name for i in a.instances.values()} \
            == {i.cell_name for i in b.instances.values()}

    def test_seed_changes_structure(self):
        base = GeneratorConfig(n_gates=50, n_inputs=6, n_outputs=4, seed=1,
                               style="tapered")
        other = GeneratorConfig(n_gates=50, n_inputs=6, n_outputs=4, seed=2,
                                style="tapered")
        a = generate_circuit("x", base)
        b = generate_circuit("x", other)
        a_conns = {(i.name, p.name, p.net.name)
                   for i in a.instances.values() for p in i.pins.values()
                   if p.net}
        b_conns = {(i.name, p.name, p.net.name)
                   for i in b.instances.values() for p in i.pins.values()
                   if p.net}
        assert a_conns != b_conns

    @pytest.mark.parametrize("style", ["layered", "tapered", "grid"])
    def test_styles_map_and_validate(self, library, style):
        config = GeneratorConfig(n_gates=80, n_inputs=8, n_outputs=6,
                                 n_ffs=8, depth=8, style=style, seed=3)
        nl = generate_circuit(f"gen_{style}", config)
        technology_map(nl, library)
        assert check_netlist(nl, library) == []

    def test_gate_count_honoured(self):
        config = GeneratorConfig(n_gates=64, n_inputs=8, n_outputs=4,
                                 seed=3, style="tapered")
        nl = generate_circuit("x", config)
        assert len(nl.instances) == 64

    def test_ff_count_honoured(self):
        config = GeneratorConfig(n_gates=40, n_inputs=6, n_outputs=4,
                                 n_ffs=10, seed=3, style="tapered")
        nl = generate_circuit("x", config)
        dffs = [i for i in nl.instances.values() if i.cell_name == "DFF"]
        assert len(dffs) == 10
        assert "CLK" in nl.ports

    def test_grid_depth_uniformity(self):
        """Grid circuits have near-uniform combinational depth."""
        config = GeneratorConfig(n_gates=200, n_inputs=16, n_outputs=8,
                                 depth=10, style="grid", seed=3)
        nl = generate_circuit("grid", config)
        assert nl.combinational_depth() == 10

    def test_validation(self):
        with pytest.raises(ReproError):
            GeneratorConfig(n_gates=0, n_inputs=2, n_outputs=1)
        with pytest.raises(ReproError):
            GeneratorConfig(n_gates=10, n_inputs=2, n_outputs=1,
                            style="spaghetti")


class TestIscas:
    def test_c17_is_real(self):
        nl = load_iscas85("c17")
        assert len(nl.instances) == 6

    def test_s27_is_real(self):
        nl = load_iscas89("s27")
        assert len(nl.instances) == 13  # 10 gates + 3 DFFs

    @pytest.mark.parametrize("name", ["c432", "c880", "c1908"])
    def test_synthetic_85_matches_published_size(self, name):
        nl = load_iscas85(name)
        spec = ISCAS85_SPECS[name]
        assert len(nl.instances) == spec.gates
        assert len(nl.input_ports()) == spec.inputs

    @pytest.mark.parametrize("name", ["s298", "s344", "s1196"])
    def test_synthetic_89_matches_published_size(self, name):
        nl = load_iscas89(name)
        spec = ISCAS89_SPECS[name]
        dffs = [i for i in nl.instances.values() if i.cell_name == "DFF"]
        assert len(dffs) == spec.ffs
        assert len(nl.instances) == spec.gates + spec.ffs

    def test_unknown_names_rejected(self):
        with pytest.raises(KeyError):
            load_iscas85("c99999")
        with pytest.raises(KeyError):
            load_iscas89("s99999")


class TestSuite:
    def test_registry_contents(self):
        names = available_circuits()
        for expected in ("c17", "c432", "c6288", "s27", "s1423",
                         "circuitA", "circuitB"):
            assert expected in names

    def test_load_circuit(self):
        assert load_circuit("c17").name == "c17"
        with pytest.raises(KeyError):
            load_circuit("bogus")

    def test_circuit_a_profile(self):
        nl = load_circuit("circuitA")
        assert len(nl.instances) == 1400 + 96
        # Uniform-depth grid: the circuit A signature.
        assert nl.combinational_depth() == 40

    def test_circuit_b_smaller_and_shallower(self):
        a = load_circuit("circuitA")
        b = load_circuit("circuitB")
        assert len(b.instances) < len(a.instances)
        assert b.combinational_depth() < a.combinational_depth()

    def test_all_registry_circuits_map(self, library):
        for name in ("c17", "c432", "s27", "s298"):
            nl = load_circuit(name)
            technology_map(nl, library)
            assert check_netlist(nl, library) == []
