"""DEF writer/reader."""

import pytest

from repro.errors import ParseError, PlacementError
from repro.placement.defio import parse_def, placement_from_def, write_def
from repro.placement.legalize import legalize
from repro.placement.placer import GlobalPlacer


@pytest.fixture()
def placed_s27(library, s27):
    placement = GlobalPlacer(s27, library).run()
    legalize(placement, s27, library)
    return s27, placement


def test_write_contains_components_and_pins(placed_s27):
    netlist, placement = placed_s27
    text = write_def(netlist, placement)
    assert "COMPONENTS" in text
    assert "END COMPONENTS" in text
    assert "PINS" in text
    assert f"DESIGN {netlist.name}" in text


def test_round_trip_locations(placed_s27, library):
    netlist, placement = placed_s27
    text = write_def(netlist, placement)
    components, pins, (width, height) = parse_def(text, library.tech)
    assert set(components) == set(placement.locations)
    for name, (x, y) in placement.locations.items():
        rx, ry = components[name]
        assert rx == pytest.approx(x, abs=1e-3)
        assert ry == pytest.approx(y, abs=1e-3)
    assert width == pytest.approx(placement.floorplan.width, abs=1e-3)


def test_placement_from_def(placed_s27, library):
    netlist, placement = placed_s27
    text = write_def(netlist, placement)
    rebuilt = placement_from_def(text, netlist, library.tech)
    for name in placement.locations:
        assert rebuilt.locations[name] == pytest.approx(
            placement.locations[name], abs=1e-3)


def test_missing_diearea_rejected(library):
    with pytest.raises(ParseError):
        parse_def("VERSION 5.8 ;\n", library.tech)


def test_incomplete_def_rejected(placed_s27, library):
    netlist, placement = placed_s27
    text = write_def(netlist, placement)
    # Drop one component line.
    lines = [l for l in text.splitlines()
             if not l.strip().startswith("- ff_G5")]
    with pytest.raises(PlacementError):
        placement_from_def("\n".join(lines), netlist, library.tech)
