"""Floorplan, global placement and legalization."""

import pytest

from repro.errors import PlacementError
from repro.device.process import Technology
from repro.placement.floorplan import Floorplan
from repro.placement.legalize import legalize
from repro.placement.metrics import average_net_span, total_hpwl
from repro.placement.placer import GlobalPlacer


class TestFloorplan:
    def test_geometry(self, tech):
        plan = Floorplan(1000.0, tech, utilization=0.7)
        assert plan.die_area >= 1000.0 / 0.7 * 0.95
        assert len(plan.rows) >= 1
        assert plan.rows[0].height == tech.row_height

    def test_aspect_ratio(self, tech):
        wide = Floorplan(4000.0, tech, aspect_ratio=4.0)
        assert wide.width > wide.height

    def test_validation(self, tech):
        with pytest.raises(PlacementError):
            Floorplan(0.0, tech)
        with pytest.raises(PlacementError):
            Floorplan(100.0, tech, utilization=0.01)

    def test_snap(self, tech):
        plan = Floorplan(1000.0, tech)
        x, y = plan.snap(3.33, 5.1)
        assert x % tech.site_width == pytest.approx(0.0, abs=1e-9)
        assert y % tech.row_height == pytest.approx(0.0, abs=1e-9)

    def test_clamp(self, tech):
        plan = Floorplan(1000.0, tech)
        x, y = plan.clamp(-5.0, plan.height + 10.0)
        assert x == 0.0
        assert y == plan.height

    def test_boundary_positions(self, tech):
        plan = Floorplan(1000.0, tech)
        points = plan.boundary_positions(8)
        assert len(points) == 8
        for x, y in points:
            on_edge = (x in (0.0, plan.width)) or (y in (0.0, plan.height))
            assert on_edge


class TestGlobalPlacer:
    def test_places_every_instance(self, library, s27):
        placement = GlobalPlacer(s27, library).run()
        assert set(placement.locations) == set(s27.instances)

    def test_deterministic_for_seed(self, library, s27):
        p1 = GlobalPlacer(s27, library, seed=3).run()
        p2 = GlobalPlacer(s27, library, seed=3).run()
        assert p1.locations == p2.locations

    def test_different_seeds_differ(self, library):
        from repro.benchcircuits.suite import load_circuit
        from repro.netlist.techmap import technology_map

        nl = load_circuit("c432")
        technology_map(nl, library)
        p1 = GlobalPlacer(nl, library, seed=1).run()
        p2 = GlobalPlacer(nl, library, seed=2).run()
        assert p1.locations != p2.locations

    def test_locations_inside_die(self, library, s27):
        placement = GlobalPlacer(s27, library).run()
        plan = placement.floorplan
        for x, y in placement.locations.values():
            assert 0.0 <= x <= plan.width
            assert 0.0 <= y <= plan.height

    def test_ports_on_boundary(self, library, s27):
        placement = GlobalPlacer(s27, library).run()
        assert set(placement.port_locations) == set(s27.ports)

    def test_annotates_instances(self, library, s27):
        GlobalPlacer(s27, library).run()
        for inst in s27.instances.values():
            assert "x" in inst.attributes and "y" in inst.attributes

    def test_better_than_random(self, library):
        """Force-directed placement beats the random start on HPWL."""
        from repro.benchcircuits.suite import load_circuit
        from repro.netlist.techmap import technology_map

        nl = load_circuit("c432")
        technology_map(nl, library)
        placed = GlobalPlacer(nl, library, iterations=24, seed=1).run()
        unoptimized = GlobalPlacer(nl, library, iterations=0, seed=1).run()
        assert total_hpwl(nl, placed) < total_hpwl(nl, unoptimized)

    def test_empty_netlist_rejected(self, library):
        from repro.netlist.core import Netlist

        with pytest.raises(PlacementError):
            GlobalPlacer(Netlist("empty"), library).run()

    def test_ensure_port_location_for_late_ports(self, library, s27):
        placement = GlobalPlacer(s27, library).run()
        x, y = placement.ensure_port_location("MTE_LATE")
        assert placement.port_locations["MTE_LATE"] == (x, y)


class TestLegalize:
    def test_no_overlaps_after_legalize(self, library, s27):
        placement = GlobalPlacer(s27, library).run()
        legalize(placement, s27, library)
        tech = library.tech
        by_row: dict[float, list] = {}
        for name, (x, y) in placement.locations.items():
            by_row.setdefault(y, []).append((x, name))
        for y, cells in by_row.items():
            cells.sort()
            for (x1, n1), (x2, n2) in zip(cells, cells[1:]):
                cell = library.cell(s27.instances[n1].cell_name)
                width = max(cell.area / tech.row_height, tech.site_width)
                assert x2 >= x1 + width - 1e-6, \
                    f"{n1} overlaps {n2} in row {y}"

    def test_cells_on_sites(self, library, s27):
        placement = GlobalPlacer(s27, library).run()
        legalize(placement, s27, library)
        site = library.tech.site_width
        for x, _y in placement.locations.values():
            assert x / site == pytest.approx(round(x / site), abs=1e-6)

    def test_metrics(self, library, s27):
        placement = GlobalPlacer(s27, library).run()
        assert total_hpwl(s27, placement) > 0
        assert average_net_span(s27, placement) > 0
