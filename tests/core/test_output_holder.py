"""Output holder insertion rule (Fig. 3)."""

import pytest

from repro.core.output_holder import (
    holder_statistics,
    insert_output_holders,
    nets_needing_holders,
)
from repro.liberty.library import VARIANT_MTV
from repro.netlist.builder import NetlistBuilder
from repro.netlist.validate import check_netlist


def _three_stage(library, variants):
    """in -> g1 -> g2 -> g3 -> out with the given variants."""
    builder = NetlistBuilder("stages")
    builder.inputs("a", "b")
    builder.outputs("y")
    builder.gate(f"NAND2_X1_{variants[0]}", "g1", A="a", B="b", Z="n1")
    builder.gate(f"INV_X1_{variants[1]}", "g2", A="n1", Z="n2")
    builder.gate(f"INV_X1_{variants[2]}", "g3", A="n2", Z="y")
    return builder.build()


def test_mt_feeding_mt_needs_no_holder(library):
    nl = _three_stage(library, ("MTV", "MTV", "MTV"))
    needing = nets_needing_holders(nl, library)
    # Only the primary output boundary needs a holder.
    assert [n.name for n in needing] == ["y"]


def test_mt_feeding_hvt_needs_holder(library):
    nl = _three_stage(library, ("MTV", "HVT", "MTV"))
    needing = {n.name for n in nets_needing_holders(nl, library)}
    assert "n1" in needing   # MT g1 drives powered g2
    assert "y" in needing    # MT g3 drives the output port
    assert "n2" not in needing  # powered g2 drives MT g3: fine


def test_all_powered_needs_nothing(library):
    nl = _three_stage(library, ("HVT", "LVT", "HVT"))
    assert nets_needing_holders(nl, library) == []


def test_insertion_connects_mte_and_keeper(library):
    nl = _three_stage(library, ("MTV", "HVT", "MTV"))
    nl.add_input("MTE")
    holders = insert_output_holders(nl, library)
    assert len(holders) == 2
    for name in holders:
        inst = nl.instance(name)
        assert inst.pin("MTE").net.name == "MTE"
        held_net = inst.pin("Z").net
        assert inst.pin("Z") in held_net.keepers
    assert check_netlist(nl, library) == []


def test_insertion_idempotent(library):
    nl = _three_stage(library, ("MTV", "HVT", "MTV"))
    nl.add_input("MTE")
    first = insert_output_holders(nl, library)
    second = insert_output_holders(nl, library)
    assert first and not second


def test_ff_sink_counts_as_powered(library):
    builder = NetlistBuilder("to_ff")
    builder.inputs("a", "b")
    builder.outputs("q")
    builder.gate("NAND2_X1_MTV", "g1", A="a", B="b", Z="n1")
    builder.dff("ff1", d="n1", q="q", cell_name="DFF_X1_HVT")
    nl = builder.build()
    needing = {n.name for n in nets_needing_holders(nl, library)}
    assert "n1" in needing


def test_statistics(library):
    nl = _three_stage(library, ("MTV", "HVT", "MTV"))
    nl.add_input("MTE")
    insert_output_holders(nl, library)
    stats = holder_statistics(nl, library)
    assert stats["mt_cells"] == 2
    assert stats["holders"] == 2
    assert stats["boundary_nets"] == 2


def test_paper_rule_quote(library):
    """'When all fanouts of the MT-cell are connected to MT-cells, an
    output holder is unnecessary.'"""
    builder = NetlistBuilder("fanout2")
    builder.inputs("a", "b")
    builder.outputs("y1", "y2")
    builder.gate("NAND2_X1_MTV", "src", A="a", B="b", Z="n1")
    builder.gate("INV_X1_MTV", "d1", A="n1", Z="m1")
    builder.gate("INV_X1_MTV", "d2", A="n1", Z="m2")
    builder.gate("INV_X1_MTV", "o1", A="m1", Z="y1")
    builder.gate("INV_X1_MTV", "o2", A="m2", Z="y2")
    nl = builder.build()
    needing = {n.name for n in nets_needing_holders(nl, library)}
    # n1, m1, m2 feed only MT cells: no holders there.
    assert "n1" not in needing
    assert needing == {"y1", "y2"}
