"""Three-technique comparison harness."""

import pytest

from repro.config import FlowConfig, Technique
from repro.core.compare import compare_techniques


@pytest.fixture(scope="module")
def comparison(library):
    from repro.benchcircuits.suite import load_circuit

    netlist = load_circuit("c432")
    return compare_techniques(netlist, library,
                              FlowConfig(timing_margin=0.10),
                              circuit_name="c432-test")


def test_baseline_is_100_percent(comparison):
    dual = comparison.row(Technique.DUAL_VTH)
    assert dual.area_pct == pytest.approx(100.0)
    assert dual.leakage_pct == pytest.approx(100.0)


def test_rows_cover_all_techniques(comparison):
    assert {row.technique for row in comparison.rows} == set(Technique)
    with pytest.raises(KeyError):
        comparison.row("nope")


def test_row_counters(comparison):
    improved = comparison.row(Technique.IMPROVED_SMT)
    assert improved.mt_cells > 0
    assert improved.switches >= 1
    conventional = comparison.row(Technique.CONVENTIONAL_SMT)
    assert conventional.switches == 0   # switches are embedded
    assert conventional.holders == 0    # holders are embedded


def test_results_exposed(comparison):
    for technique in Technique:
        assert comparison.results[technique].netlist is not None


def test_render_contains_all_rows(comparison):
    text = comparison.render()
    for technique in Technique:
        assert technique.value in text
    assert "c432-test" in text


def test_subset_of_techniques(library):
    from repro.benchcircuits.suite import load_circuit

    netlist = load_circuit("c17")
    comparison = compare_techniques(
        netlist, library, FlowConfig(timing_margin=0.2),
        techniques=(Technique.DUAL_VTH, Technique.IMPROVED_SMT))
    assert len(comparison.rows) == 2
