"""End-to-end flow tests (Fig. 4) on small circuits."""

import pytest

from repro.config import FlowConfig, Technique
from repro.core.flow import SelectiveMtFlow
from repro.netlist.validate import check_netlist
from repro.sim.equivalence import check_equivalence


@pytest.fixture(scope="module")
def flow_results(library):
    """All three techniques on the c432 stand-in (module-scoped)."""
    from repro.benchcircuits.suite import load_circuit

    netlist = load_circuit("c432")
    config = FlowConfig(timing_margin=0.10)
    results = {}
    for technique in Technique:
        flow = SelectiveMtFlow(netlist, library, technique, config)
        results[technique] = flow.run()
    return netlist, results


def test_all_stages_recorded(flow_results):
    _netlist, results = flow_results
    improved = results[Technique.IMPROVED_SMT]
    names = [s.name for s in improved.stages]
    assert names == ["physical_synthesis", "vth_assignment",
                     "eco_placement", "switch_structure",
                     "routing_cts_mte", "spef_reoptimization",
                     "eco_and_sta"]
    dual = results[Technique.DUAL_VTH]
    assert "switch_structure" not in [s.name for s in dual.stages]


def test_final_netlists_valid(library, flow_results):
    _netlist, results = flow_results
    for result in results.values():
        assert check_netlist(result.netlist, library) == []


def test_function_preserved_by_all_flows(library, flow_results):
    from repro.netlist.techmap import technology_map

    netlist, results = flow_results
    golden = technology_map(netlist.clone("golden"), library)
    for technique, result in results.items():
        report = check_equivalence(golden, result.netlist, library)
        assert report.equivalent, (technique, report.mismatches[:3])


def test_timing_met_within_tolerance(flow_results):
    _netlist, results = flow_results
    for technique, result in results.items():
        # Within 1% of the period (residual documented in EXPERIMENTS.md).
        floor = -0.01 * result.constraints.clock_period
        assert result.timing.wns >= floor, technique
        assert result.timing.hold_met, technique


def test_leakage_ordering(flow_results):
    """Dual-Vth leaks most; improved leaks least (Table 1 ordering)."""
    _netlist, results = flow_results
    dual = results[Technique.DUAL_VTH].leakage_nw
    conventional = results[Technique.CONVENTIONAL_SMT].leakage_nw
    improved = results[Technique.IMPROVED_SMT].leakage_nw
    assert dual > conventional
    assert improved <= conventional


def test_area_ordering(flow_results):
    """Dual-Vth smallest; conventional biggest (Table 1 ordering)."""
    _netlist, results = flow_results
    dual = results[Technique.DUAL_VTH].total_area
    conventional = results[Technique.CONVENTIONAL_SMT].total_area
    improved = results[Technique.IMPROVED_SMT].total_area
    assert dual < improved < conventional


def test_improved_has_network(flow_results):
    _netlist, results = flow_results
    improved = results[Technique.IMPROVED_SMT]
    assert improved.network is not None
    assert improved.network.bounce_ok()
    assert results[Technique.DUAL_VTH].network is None


def test_stage_report_rendering(flow_results):
    _netlist, results = flow_results
    text = results[Technique.IMPROVED_SMT].render_stages()
    assert "physical_synthesis" in text
    assert "spef_reoptimization" in text
    with pytest.raises(KeyError):
        results[Technique.DUAL_VTH].stage("no_such_stage")


def test_fixed_period_override(library):
    from repro.benchcircuits.suite import load_circuit

    netlist = load_circuit("c17")
    config = FlowConfig(clock_period_ns=5.0)
    result = SelectiveMtFlow(netlist, library,
                             Technique.DUAL_VTH, config).run()
    assert result.constraints.clock_period == pytest.approx(5.0)


def test_sequential_flow_runs_cts(library):
    from repro.benchcircuits.suite import load_circuit

    netlist = load_circuit("s344")
    config = FlowConfig(timing_margin=0.15)
    result = SelectiveMtFlow(netlist, library,
                             Technique.IMPROVED_SMT, config).run()
    assert result.cts is not None
    assert result.cts.buffer_count > 0
    assert result.timing.hold_met
