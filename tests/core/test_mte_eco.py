"""MTE buffer tree and ECO fixes."""

import pytest

from repro.core.eco import HoldFixer, SetupFixer
from repro.core.mte import MteBufferTree
from repro.liberty.library import VARIANT_LVT
from repro.netlist.builder import NetlistBuilder
from repro.netlist.core import PinDirection
from repro.netlist.transform import swap_variant
from repro.netlist.validate import check_netlist
from repro.placement.placer import GlobalPlacer
from repro.timing.constraints import Constraints
from repro.timing.sta import TimingAnalyzer


def _mte_design(library, sink_count):
    """A design whose MTE net drives `sink_count` holders."""
    builder = NetlistBuilder("mte_heavy")
    builder.inputs("a", "MTE")
    builder.outputs("y")
    builder.gate("INV_X1_MTV", "g0", A="a", Z="y")
    nl = builder.build()
    for i in range(sink_count):
        holder = nl.add_instance(f"h{i}", "HOLDER_X1")
        nl.connect(holder, "Z", "y", PinDirection.INOUT, keeper=True)
        nl.connect(holder, "MTE", "MTE", PinDirection.INPUT)
    return nl


class TestMteTree:
    def test_small_fanout_needs_no_buffers(self, library):
        nl = _mte_design(library, 4)
        placement = GlobalPlacer(nl, library).run()
        result = MteBufferTree(nl, library, placement,
                               fanout_limit=16).run()
        assert result.buffer_count == 0
        assert result.sink_count == 4  # the four holders' MTE pins

    def test_large_fanout_buffered(self, library):
        nl = _mte_design(library, 40)
        placement = GlobalPlacer(nl, library).run()
        result = MteBufferTree(nl, library, placement,
                               fanout_limit=8).run()
        assert result.buffer_count > 0
        # Root and every buffer respect the fanout limit.
        mte_net = nl.net("MTE")
        assert mte_net.fanout() <= 8
        for name in result.buffer_instances:
            out_net = nl.instance(name).pin("Z").net
            assert out_net.fanout() <= 8
        assert check_netlist(nl, library) == []

    def test_wakeup_delay_reported(self, library):
        nl = _mte_design(library, 40)
        placement = GlobalPlacer(nl, library).run()
        result = MteBufferTree(nl, library, placement,
                               fanout_limit=8).run()
        assert result.wakeup_delay_ns > 0

    def test_buffers_high_vth(self, library):
        nl = _mte_design(library, 40)
        placement = GlobalPlacer(nl, library).run()
        result = MteBufferTree(nl, library, placement,
                               fanout_limit=8).run()
        for name in result.buffer_instances:
            cell = library.cell(nl.instance(name).cell_name)
            assert cell.vth_class.value == "high"


class TestHoldFixer:
    def test_hold_violation_fixed(self, library):
        """A zero-logic FF->FF path with late capture clock violates
        hold; the fixer pads it with delay buffers."""
        builder = NetlistBuilder("holdy")
        builder.inputs("d")
        builder.outputs("q2")
        builder.dff("ff1", d="d", q="n1", cell_name="DFF_X1_LVT")
        builder.dff("ff2", d="n1", q="q2", cell_name="DFF_X1_LVT")
        nl = builder.build()
        cons = Constraints(clock_period=2.0)
        clock_arrivals = {"ff1": 0.0, "ff2": 0.3}  # capture clock late
        before = TimingAnalyzer(nl, library, cons,
                                clock_arrivals=clock_arrivals).run()
        assert not before.hold_met
        fixer = HoldFixer(nl, library, cons,
                          clock_arrivals=clock_arrivals, max_passes=5)
        result = fixer.run()
        assert result.buffer_count > 0
        assert result.final_report.hold_met
        assert check_netlist(nl, library) == []

    def test_clean_design_untouched(self, library, s27):
        fixer = HoldFixer(s27, library, Constraints(clock_period=5.0))
        result = fixer.run()
        assert result.buffer_count == 0


class TestSetupFixer:
    def test_setup_violation_fixed_by_swaps(self, library, nand_chain):
        from repro.liberty.library import VARIANT_HVT, VthClass

        for inst in nand_chain.instances.values():
            swap_variant(nand_chain, inst, library, VARIANT_HVT)
        probe = Constraints(clock_period=1000.0)
        hvt_delay = 1000.0 - TimingAnalyzer(nand_chain, library,
                                            probe).run().wns
        # Period between the LVT and HVT critical delays.
        cons = Constraints(clock_period=hvt_delay * 0.92)
        assert not TimingAnalyzer(nand_chain, library, cons).run().setup_met

        def fast_swap(inst):
            swap_variant(nand_chain, inst, library, VARIANT_LVT)
            return True

        result = SetupFixer(nand_chain, library, cons, fast_swap).run()
        assert result.swap_count > 0
        assert result.final_report.setup_met

    def test_gives_up_when_swaps_exhausted(self, library, nand_chain):
        cons = Constraints(clock_period=0.01)  # impossible
        result = SetupFixer(nand_chain, library, cons,
                            fast_swap=lambda inst: False).run()
        assert not result.final_report.setup_met
        assert result.swap_count == 0
