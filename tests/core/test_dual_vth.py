"""Slack-driven Vth assignment."""

import pytest

from repro.core.dual_vth import DualVthAssigner
from repro.errors import FlowError
from repro.liberty.library import VARIANT_HVT, VARIANT_LVT, VARIANT_MT
from repro.netlist.techmap import technology_map
from repro.sim.equivalence import check_equivalence
from repro.timing.constraints import Constraints
from repro.timing.sta import TimingAnalyzer


def min_period(netlist, library):
    probe = Constraints(clock_period=1000.0)
    report = TimingAnalyzer(netlist, library, probe).run()
    return 1000.0 - report.wns


@pytest.fixture()
def c880(library):
    from repro.benchcircuits.suite import load_circuit

    netlist = load_circuit("c880")
    technology_map(netlist, library)
    return netlist


def test_loose_period_converts_everything(library, c17):
    cons = Constraints(clock_period=min_period(c17, library) * 3.0)
    result = DualVthAssigner(c17, library, cons).run()
    assert result.fast_count == 0
    assert result.slow_count == 6
    assert result.final_report.setup_met


def test_tight_period_keeps_everything_fast(library, c17):
    cons = Constraints(clock_period=min_period(c17, library) * 1.0001)
    result = DualVthAssigner(c17, library, cons).run()
    assert result.final_report.setup_met
    # Nearly no conversion budget: most cells stay fast.
    assert result.fast_count >= 4


def test_infeasible_period_raises(library, c17):
    cons = Constraints(clock_period=min_period(c17, library) * 0.5)
    with pytest.raises(FlowError):
        DualVthAssigner(c17, library, cons).run()


def test_intermediate_period_partial_conversion(library, c880):
    cons = Constraints(clock_period=min_period(c880, library) * 1.10)
    result = DualVthAssigner(c880, library, cons).run()
    assert result.final_report.setup_met
    assert 0 < result.fast_count < len(c880.instances)
    assert 0.0 < result.fast_fraction < 1.0


def test_more_margin_means_fewer_fast_cells(library, c880):
    base = min_period(c880, library)
    tight = DualVthAssigner(
        c880.clone(), library, Constraints(clock_period=base * 1.05)).run()
    loose = DualVthAssigner(
        c880.clone(), library, Constraints(clock_period=base * 1.5)).run()
    assert loose.fast_count <= tight.fast_count


def test_function_preserved(library, c880):
    golden = c880.clone("golden")
    cons = Constraints(clock_period=min_period(c880, library) * 1.15)
    DualVthAssigner(c880, library, cons).run()
    assert check_equivalence(golden, c880, library).equivalent


def test_mt_as_fast_class(library, c880):
    cons = Constraints(clock_period=min_period(c880, library) * 1.15)
    result = DualVthAssigner(c880, library, cons,
                             fast_variant=VARIANT_MT,
                             slow_variant=VARIANT_HVT).run()
    assert result.final_report.setup_met
    for name in result.fast_instances:
        cell = library.cell(c880.instances[name].cell_name)
        assert cell.variant == VARIANT_MT


def test_sequential_cells_untouched_by_default(library, s27):
    from repro.netlist.transform import swap_variant

    # FFs mapped HVT by techmap stay HVT even though LVT DFFs exist.
    cons = Constraints(clock_period=min_period(s27, library) * 1.2)
    DualVthAssigner(s27, library, cons).run()
    for inst in s27.instances.values():
        if inst.cell_name.startswith("DFF"):
            assert inst.cell_name.endswith("_HVT")


def test_sta_run_budget(library, c880):
    cons = Constraints(clock_period=min_period(c880, library) * 1.2)
    result = DualVthAssigner(c880, library, cons, rounds=4).run()
    # Bisection keeps the STA count logarithmic-ish, not linear.
    assert result.sta_runs < 80


def test_prepare_forces_fast(library, c880):
    from repro.netlist.transform import swap_variant

    for inst in c880.instances.values():
        cell = library.cell(inst.cell_name)
        if library.has_variant(cell, VARIANT_HVT) and not cell.is_sequential:
            swap_variant(c880, inst, library, VARIANT_HVT)
    cons = Constraints(clock_period=min_period(c880, library) * 5)
    assigner = DualVthAssigner(c880, library, cons)
    assigner.prepare()
    variants = {library.cell(i.cell_name).variant
                for i in c880.instances.values()
                if not library.cell(i.cell_name).is_sequential}
    assert variants == {VARIANT_LVT}
