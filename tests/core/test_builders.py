"""Conventional and improved Selective-MT builders (Figs. 2 and 3)."""

import pytest

from repro.core.improved_smt import ImprovedSmtBuilder
from repro.core.selective_mt import ConventionalSmtBuilder
from repro.liberty.library import CellKind
from repro.netlist.techmap import technology_map
from repro.netlist.validate import check_netlist
from repro.placement.legalize import legalize
from repro.placement.placer import GlobalPlacer
from repro.sim.equivalence import check_equivalence
from repro.timing.constraints import Constraints
from repro.timing.sta import TimingAnalyzer
from repro.vgnd.cluster import ClusterConfig


def _prepared(library, name="c880", margin=1.12):
    from repro.benchcircuits.suite import load_circuit

    netlist = load_circuit(name)
    technology_map(netlist, library)
    placement = GlobalPlacer(netlist, library).run()
    legalize(placement, netlist, library)
    probe = Constraints(clock_period=1000.0)
    report = TimingAnalyzer(netlist, library, probe).run()
    cons = Constraints(clock_period=(1000.0 - report.wns) * margin)
    return netlist, placement, cons


@pytest.fixture(scope="module")
def conventional(library):
    netlist, _placement, cons = _prepared(library)
    golden = netlist.clone("golden")
    builder = ConventionalSmtBuilder(netlist, library, cons)
    result = builder.run()
    return golden, netlist, result


@pytest.fixture(scope="module")
def improved(library):
    netlist, placement, cons = _prepared(library)
    golden = netlist.clone("golden")
    builder = ImprovedSmtBuilder(netlist, library, cons, placement,
                                 cluster_config=ClusterConfig())
    result = builder.run()
    return golden, netlist, result


class TestConventional:
    def test_mt_cells_are_cmt(self, library, conventional):
        _golden, netlist, result = conventional
        assert result.mt_count > 0
        for name in result.mt_cell_names:
            cell = library.cell(netlist.instances[name].cell_name)
            assert cell.is_conventional_mt

    def test_every_cmt_on_mte_net(self, library, conventional):
        _golden, netlist, result = conventional
        mte_net = netlist.net(result.mte_net_name)
        for name in result.mt_cell_names:
            inst = netlist.instances[name]
            assert inst.pin("MTE").net is mte_net

    def test_netlist_valid(self, library, conventional):
        _golden, netlist, _result = conventional
        assert check_netlist(netlist, library) == []

    def test_function_preserved(self, library, conventional):
        golden, netlist, _result = conventional
        assert check_equivalence(golden, netlist, library).equivalent


class TestImproved:
    def test_mt_cells_have_vgnd_connected(self, library, improved):
        _golden, netlist, result = improved
        assert result.mt_count > 0
        for name in result.mt_cell_names:
            inst = netlist.instances[name]
            assert inst.pin("VGND").net is not None

    def test_clusters_cover_all_mt_cells(self, library, improved):
        _golden, netlist, result = improved
        clustered = [m for c in result.network.clusters for m in c.members]
        assert sorted(clustered) == sorted(result.mt_cell_names)

    def test_switches_inserted_and_sized(self, library, improved):
        _golden, netlist, result = improved
        assert result.network.switch_count == len(result.network.clusters)
        for cluster in result.network.clusters:
            inst = netlist.instances[cluster.switch_instance]
            cell = library.cell(inst.cell_name)
            assert cell.kind == CellKind.SWITCH
            assert inst.cell_name == cluster.switch_cell

    def test_bounce_within_limit(self, library, improved):
        _golden, _netlist, result = improved
        assert result.network.bounce_ok()

    def test_holders_only_on_boundaries(self, library, improved):
        from repro.core.output_holder import nets_needing_holders

        _golden, netlist, result = improved
        # After insertion, no net still *needs* a holder without one.
        for net in nets_needing_holders(netlist, library):
            assert net.keepers, f"net {net.name} missing its holder"

    def test_fewer_holders_than_mt_cells(self, library, improved):
        """The improved technique's saving: holders only at edges."""
        _golden, _netlist, result = improved
        assert result.holder_count < result.mt_count

    def test_netlist_valid(self, library, improved):
        _golden, netlist, _result = improved
        assert check_netlist(netlist, library) == []

    def test_function_preserved(self, library, improved):
        golden, netlist, _result = improved
        assert check_equivalence(golden, netlist, library).equivalent

    def test_equivalent_to_conventional(self, library, conventional,
                                        improved):
        """Paper: 'The circuits in Fig.2 and Fig.3 are equivalent.'"""
        _g1, conventional_netlist, _r1 = conventional
        _g2, improved_netlist, _r2 = improved
        report = check_equivalence(conventional_netlist, improved_netlist,
                                   library)
        assert report.equivalent, report.mismatches[:3]
