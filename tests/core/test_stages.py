"""Stage registry, pipelines and custom pipeline assembly."""

import pytest

from repro.benchcircuits.suite import load_circuit
from repro.config import FlowConfig, Technique
from repro.core.flow import FlowResult, SelectiveMtFlow
from repro.core.stages import (
    FlowContext,
    PIPELINES,
    STAGES,
    Stage,
    StageRunner,
    build_pipeline,
    resolve_stage,
)
from repro.errors import FlowError


class TestRegistry:
    def test_all_techniques_are_stage_lists(self):
        assert set(PIPELINES) == set(Technique)
        for technique, keys in PIPELINES.items():
            for key in keys:
                assert key in STAGES, (technique, key)

    def test_build_pipeline_resolves_in_order(self):
        for technique in Technique:
            stages = build_pipeline(technique)
            assert [s.key for s in stages] == list(PIPELINES[technique])

    def test_assignment_stages_share_the_fig4_label(self):
        for key in ("dual_vth_assignment", "conventional_smt_assignment",
                    "improved_smt_assignment"):
            assert STAGES[key].label == "vth_assignment"

    def test_unknown_stage_is_rejected(self):
        with pytest.raises(FlowError, match="unknown stage"):
            resolve_stage("no_such_stage")

    def test_duplicate_registration_is_rejected(self):
        stage = STAGES["physical_synthesis"]
        from repro.core.stages import register_stage

        with pytest.raises(FlowError, match="duplicate"):
            register_stage(Stage(key=stage.key, fn=stage.fn,
                                 label=stage.label))


class TestCustomPipelines:
    def test_partial_pipeline_via_run_context(self, library):
        netlist = load_circuit("c17")
        flow = SelectiveMtFlow(
            netlist, library, Technique.DUAL_VTH,
            FlowConfig(timing_margin=0.2),
            stages=["physical_synthesis", "pre_route_estimation",
                    "derive_constraints"])
        ctx = flow.run_context()
        assert ctx.netlist is not None
        assert ctx.placement is not None
        assert ctx.constraints is not None
        assert ctx.timing is None
        assert [s.name for s in ctx.stages] == ["physical_synthesis"]

    def test_partial_pipeline_cannot_build_flow_result(self, library):
        netlist = load_circuit("c17")
        flow = SelectiveMtFlow(netlist, library, Technique.DUAL_VTH,
                               FlowConfig(timing_margin=0.2),
                               stages=["physical_synthesis"])
        with pytest.raises(FlowError, match="run_context"):
            flow.run()

    def test_out_of_order_stage_fails_fast(self, library):
        netlist = load_circuit("c17")
        flow = SelectiveMtFlow(netlist, library, Technique.DUAL_VTH,
                               FlowConfig(timing_margin=0.2),
                               stages=["eco_and_sta"])
        with pytest.raises(FlowError, match="prerequisite"):
            flow.run_context()

    def test_custom_stage_object_in_pipeline(self, library):
        seen = {}

        def probe(ctx):
            seen["instances"] = len(ctx.netlist.instances)
            return {"probed": True}

        netlist = load_circuit("c17")
        flow = SelectiveMtFlow(
            netlist, library, Technique.DUAL_VTH,
            FlowConfig(timing_margin=0.2),
            stages=["physical_synthesis",
                    Stage(key="probe", fn=probe, label="probe")])
        ctx = flow.run_context()
        assert seen["instances"] == len(ctx.netlist.instances)
        assert ctx.stages[-1].name == "probe"
        assert ctx.stages[-1].details == {"probed": True}

    def test_explicit_default_pipeline_matches_run(self, library):
        """Spelling out the registered stage list reproduces run()."""
        netlist = load_circuit("c17")
        config = FlowConfig(timing_margin=0.2)
        implicit = SelectiveMtFlow(netlist, library, Technique.DUAL_VTH,
                                   config).run()
        explicit = SelectiveMtFlow(
            netlist, library, Technique.DUAL_VTH, config,
            stages=list(PIPELINES[Technique.DUAL_VTH])).run()
        assert implicit.total_area == explicit.total_area
        assert implicit.leakage_nw == explicit.leakage_nw
        assert implicit.timing.wns == explicit.timing.wns

    def test_runner_over_raw_context(self, library):
        netlist = load_circuit("c17")
        ctx = FlowContext.create(netlist, library, Technique.DUAL_VTH,
                                 FlowConfig(timing_margin=0.2))
        StageRunner(build_pipeline(Technique.DUAL_VTH)).run(ctx)
        result = FlowResult.from_context(ctx)
        assert result.timing is not None
        assert result.total_area > 0


class TestContextTyping:
    def test_improved_context_fields_replace_tuple(self, library):
        """The improved intermediates ride on typed context fields."""
        netlist = load_circuit("c432")
        flow = SelectiveMtFlow(netlist, library, Technique.IMPROVED_SMT,
                               FlowConfig(timing_margin=0.15))
        ctx = flow.run_context()
        assert ctx.improved_builder is not None
        assert ctx.mt_names
        assert ctx.initial_switch is None      # torn down before ECO place
        assert ctx.smt_result is not None
        assert ctx.smt_result.network is ctx.network

    def test_session_stats_recorded(self, library):
        netlist = load_circuit("c17")
        result = SelectiveMtFlow(netlist, library, Technique.DUAL_VTH,
                                 FlowConfig(timing_margin=0.2)).run()
        assert "vth_assignment" in result.sta_stats
        assert "eco_and_sta" in result.sta_stats
        assignment = result.stage("vth_assignment")
        assert "sta_full" in assignment.details

    def test_incremental_sta_flag_off_matches_on(self, library):
        """The two timing engines produce identical flow outcomes."""
        netlist = load_circuit("c432")
        on = SelectiveMtFlow(
            netlist, library, Technique.IMPROVED_SMT,
            FlowConfig(timing_margin=0.12, incremental_sta=True)).run()
        off = SelectiveMtFlow(
            netlist, library, Technique.IMPROVED_SMT,
            FlowConfig(timing_margin=0.12, incremental_sta=False)).run()
        assert on.total_area == off.total_area
        assert on.leakage_nw == off.leakage_nw
        assert on.timing.wns == off.timing.wns
        assert sorted((i.name, i.cell_name)
                      for i in on.netlist.instances.values()) \
            == sorted((i.name, i.cell_name)
                      for i in off.netlist.instances.values())
        assert not off.sta_stats
