"""Design-database export and verification."""

import json
import os

import pytest

from repro.config import FlowConfig, Technique
from repro.core.artifacts import export_design, verify_export
from repro.core.flow import SelectiveMtFlow


@pytest.fixture(scope="module")
def exported(library, tmp_path_factory):
    from repro.benchcircuits.suite import load_circuit

    netlist = load_circuit("c432")
    result = SelectiveMtFlow(netlist, library, Technique.IMPROVED_SMT,
                             FlowConfig(timing_margin=0.10)).run()
    directory = tmp_path_factory.mktemp("export")
    manifest = export_design(result, library, str(directory))
    return result, manifest


def test_all_artifacts_written(exported):
    _result, manifest = exported
    for kind in ("verilog", "def", "spef", "sdc", "liberty", "report"):
        assert os.path.exists(manifest.path(kind)), kind
        assert os.path.getsize(manifest.path(kind)) > 0


def test_manifest_json(exported):
    _result, manifest = exported
    with open(os.path.join(manifest.directory, "manifest.json")) as handle:
        data = json.load(handle)
    assert data["design"] == "c432"
    assert data["technique"] == "improved_smt"
    assert set(data["files"]) == {"verilog", "def", "spef", "sdc",
                                  "liberty", "report"}


def test_export_verifies_clean(library, exported):
    _result, manifest = exported
    assert verify_export(manifest, library) == []


def test_report_contents(exported):
    result, manifest = exported
    text = open(manifest.path("report")).read()
    assert "improved_smt" in text
    assert "Standby leakage" in text
    assert "VGND network" in text


def test_verilog_artifact_reparses_to_same_design(library, exported):
    from repro.netlist.verilog_io import parse_verilog
    from repro.sim.equivalence import check_equivalence

    result, manifest = exported
    again = parse_verilog(open(manifest.path("verilog")).read(),
                          library=library)
    assert again.stats() == result.netlist.stats()
    assert check_equivalence(result.netlist, again, library).equivalent


def test_verify_detects_corruption(library, exported):
    _result, manifest = exported
    # Corrupt the SPEF file.
    with open(manifest.path("spef"), "a") as handle:
        handle.write("\n*D_NET broken\n")
    problems = verify_export(manifest, library)
    assert any("spef" in p for p in problems)
