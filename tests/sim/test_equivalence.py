"""Equivalence checking."""

import pytest

from repro.errors import EquivalenceError
from repro.liberty.library import VARIANT_HVT
from repro.netlist.builder import NetlistBuilder
from repro.netlist.transform import swap_variant
from repro.sim.equivalence import check_equivalence
from repro.sim.vectors import exhaustive_vectors, random_vectors, walking_ones


class TestVectors:
    def test_exhaustive_count(self):
        assert len(list(exhaustive_vectors(["a", "b", "c"]))) == 8

    def test_random_deterministic(self):
        first = list(random_vectors(["a", "b"], 10, seed=7))
        second = list(random_vectors(["a", "b"], 10, seed=7))
        assert first == second

    def test_walking_ones(self):
        vectors = list(walking_ones(["a", "b"]))
        assert {"a": 1, "b": 0} in vectors
        assert {"a": 0, "b": 1} in vectors
        assert vectors[0] == {"a": 0, "b": 0}
        assert vectors[-1] == {"a": 1, "b": 1}


class TestEquivalence:
    def test_identical_netlists(self, library, c17):
        report = check_equivalence(c17, c17.clone("copy"), library)
        assert report.equivalent
        assert report.exhaustive
        assert report.vectors_checked == 32

    def test_variant_swap_equivalent(self, library, c17):
        revised = c17.clone("revised")
        for inst in revised.instances.values():
            swap_variant(revised, inst, library, VARIANT_HVT)
        assert check_equivalence(c17, revised, library).equivalent

    def test_detects_functional_difference(self, library):
        golden = NetlistBuilder("g")
        golden.inputs("a", "b").outputs("y")
        golden.gate("AND2_X1_LVT", "g1", A="a", B="b", Z="y")
        revised = NetlistBuilder("r")
        revised.inputs("a", "b").outputs("y")
        revised.gate("OR2_X1_LVT", "g1", A="a", B="b", Z="y")
        report = check_equivalence(golden.build(), revised.build(), library)
        assert not report.equivalent
        assert report.mismatches

    def test_port_mismatch_raises(self, library, c17, half_adder):
        with pytest.raises(EquivalenceError):
            check_equivalence(c17, half_adder, library)

    def test_sequential_equivalence(self, library, s27):
        report = check_equivalence(s27, s27.clone("copy"), library)
        assert report.equivalent

    def test_sequential_difference_detected(self, library, s27):
        revised = s27.clone("revised")
        # Rewire one FF's D input to a different net.
        ff = next(i for i in revised.instances.values()
                  if i.cell_name.startswith("DFF"))
        d_pin = ff.pin("D")
        old_net = d_pin.net
        other_net = next(n for n in revised.nets.values()
                         if n is not old_net and n.has_driver)
        revised.disconnect(d_pin)
        revised.connect(ff, "D", other_net, d_pin.direction)
        report = check_equivalence(s27, revised, library)
        assert not report.equivalent

    def test_raise_on_mismatch(self, library):
        golden = NetlistBuilder("g")
        golden.inputs("a").outputs("y")
        golden.gate("INV_X1_LVT", "g1", A="a", Z="y")
        revised = NetlistBuilder("r")
        revised.inputs("a").outputs("y")
        revised.gate("BUF_X1_LVT", "g1", A="a", Z="y")
        with pytest.raises(EquivalenceError):
            check_equivalence(golden.build(), revised.build(), library,
                              raise_on_mismatch=True)

    def test_mte_port_ignored(self, library, c17):
        revised = c17.clone("revised")
        revised.add_input("MTE")
        assert check_equivalence(c17, revised, library).equivalent
