"""Four-valued simulator including standby semantics."""

import pytest

from repro.liberty.library import VARIANT_CMT, VARIANT_HVT, VARIANT_MTV
from repro.netlist.builder import NetlistBuilder
from repro.netlist.core import PinDirection
from repro.netlist.transform import swap_variant
from repro.sim.logic import FLOATING, ONE, Simulator, UNKNOWN, ZERO


class TestActiveMode:
    def test_c17_known_vector(self, library, c17):
        sim = Simulator(c17, library)
        result = sim.evaluate({"N1": 0, "N2": 0, "N3": 0, "N6": 0, "N7": 0})
        # All-zero inputs: every first-level NAND outputs 1.
        assert result.output_values["N22"] in (0, 1)
        assert not result.floating_input_pins

    def test_c17_exhaustive_consistency(self, library, c17):
        """Outputs match direct evaluation of the NAND network."""
        sim = Simulator(c17, library)
        for vector_index in range(32):
            bits = [(vector_index >> k) & 1 for k in range(5)]
            env = dict(zip(("N1", "N2", "N3", "N6", "N7"), bits))
            n10 = 1 - (env["N1"] & env["N3"])
            n11 = 1 - (env["N3"] & env["N6"])
            n16 = 1 - (env["N2"] & n11)
            n19 = 1 - (n11 & env["N7"])
            n22 = 1 - (n10 & n16)
            n23 = 1 - (n16 & n19)
            result = sim.evaluate(env)
            assert result.output_values["N22"] == n22
            assert result.output_values["N23"] == n23

    def test_x_propagation(self, library, c17):
        sim = Simulator(c17, library)
        result = sim.evaluate({"N1": UNKNOWN, "N2": 0, "N3": 1,
                               "N6": 1, "N7": 0})
        # N10 = !(X & 1) = X ... N22 depends on it unless controlled.
        assert result.value("N10") == UNKNOWN

    def test_missing_inputs_default_to_x(self, library, c17):
        sim = Simulator(c17, library)
        result = sim.evaluate({})
        assert all(v in (0, 1, UNKNOWN)
                   for v in result.output_values.values())


class TestSequential:
    def test_state_drives_q(self, library, s27):
        sim = Simulator(s27, library)
        ffs = sim.flip_flops()
        assert len(ffs) == 3
        state = {ff.name: 1 for ff in ffs}
        result = sim.evaluate({"G0": 0, "G1": 0, "G2": 0, "G3": 0}, state)
        for ff in ffs:
            q_net = ff.pins["Q"].net.name
            assert result.value(q_net) == 1

    def test_step_advances_state(self, library, s27):
        sim = Simulator(s27, library)
        state = {ff.name: 0 for ff in sim.flip_flops()}
        vector = {"G0": 1, "G1": 0, "G2": 1, "G3": 0}
        result, new_state = sim.step(vector, state)
        assert new_state == result.next_state

    def test_standby_retains_state(self, library, s27):
        sim = Simulator(s27, library)
        state = {ff.name: 1 for ff in sim.flip_flops()}
        _result, new_state = sim.step({"G0": 0, "G1": 0, "G2": 0, "G3": 0},
                                      state, standby=True)
        assert new_state == state


def _mt_pair(library):
    """Two-stage design: MT NAND feeding a powered HVT inverter."""
    builder = NetlistBuilder("mt_pair")
    builder.inputs("a", "b")
    builder.outputs("y")
    builder.gate("NAND2_X1_MTV", "mt1", A="a", B="b", Z="n1")
    builder.gate("INV_X1_HVT", "hv1", A="n1", Z="y")
    return builder.build()


class TestStandby:
    def test_improved_mt_floats_in_standby(self, library):
        nl = _mt_pair(library)
        sim = Simulator(nl, library)
        result = sim.evaluate({"a": 1, "b": 1}, standby=True)
        assert result.value("n1") == FLOATING
        # The powered inverter saw a floating input.
        assert "hv1/A" in result.floating_input_pins

    def test_holder_pins_net_to_one(self, library):
        nl = _mt_pair(library)
        holder = nl.add_instance("hold1", "HOLDER_X1")
        nl.add_input("MTE")
        nl.connect(holder, "Z", "n1", PinDirection.INOUT, keeper=True)
        nl.connect(holder, "MTE", "MTE", PinDirection.INPUT)
        sim = Simulator(nl, library)
        result = sim.evaluate({"a": 1, "b": 1}, standby=True)
        assert result.value("n1") == ONE
        assert result.value("y") == ZERO      # INV of held 1
        assert not result.floating_input_pins

    def test_conventional_mt_holds_one(self, library):
        nl = _mt_pair(library)
        mt1 = nl.instance("mt1")
        swap_variant(nl, mt1, library, VARIANT_CMT)
        sim = Simulator(nl, library)
        result = sim.evaluate({"a": 1, "b": 1}, standby=True)
        assert result.value("n1") == ONE
        assert result.value("y") == ZERO

    def test_active_mode_mt_behaves_normally(self, library):
        nl = _mt_pair(library)
        sim = Simulator(nl, library)
        result = sim.evaluate({"a": 1, "b": 1}, standby=False)
        assert result.value("n1") == ZERO
        assert result.value("y") == ONE

    def test_mte_port_follows_standby_flag(self, library):
        nl = _mt_pair(library)
        nl.add_input("MTE")
        sim = Simulator(nl, library)
        active = sim.evaluate({"a": 1, "b": 1, "MTE": 0}, standby=False)
        # standby=False overrides the supplied MTE value.
        assert active.value("MTE") == 1
