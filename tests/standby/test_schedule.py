"""Rush-current scheduler invariants.

The three contract properties (checked on synthetic transient sets,
hypothesis-generated ones and the real c432 network):

* the aggregate rush current never exceeds the budget at any enable
  instant (the suprema of the decaying aggregate);
* the schedule is a deterministic function of the transient set;
* the staged makespan is never worse than the serial daisy-chain.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import StandbyError
from repro.standby.schedule import (
    RushScheduler,
    aggregate_rush_ma,
    default_rush_budget_ma,
)
from repro.standby.transient import ClusterTransient, TransientSolver


def make_transient(index: int, peak: float, tau: float,
                   latency: float) -> ClusterTransient:
    """A synthetic transient carrying only what the scheduler reads."""
    return ClusterTransient(
        cluster_index=index, members=1, switch_cell="SWITCH_X4",
        capacitance_pf=1.0, ron_kohm=1.0, rail_res_kohm=0.0,
        v_standby_v=peak, tau_wake_ns=tau, tau_sleep_ns=tau,
        peak_rush_ma=peak, wake_latency_ns=latency,
        sleep_latency_ns=latency, energy_per_cycle_pj=1.0,
        sleep_leakage_nw=1.0, active_leakage_nw=2.0)


def check_invariants(transients, schedule):
    budget = schedule.budget_ma
    # Every cluster scheduled exactly once.
    assert sorted(e.cluster_index for e in schedule.events) \
        == sorted(tr.cluster_index for tr in transients)
    # Budget respected at every enable instant (aggregate decays
    # between them, so these are the suprema).
    for event in schedule.events:
        total = aggregate_rush_ma(transients, schedule, event.enable_ns)
        assert total <= budget * (1.0 + 1e-9) + 1e-12
    assert schedule.peak_aggregate_ma <= budget * (1.0 + 1e-9) + 1e-12
    # Never worse than the serial daisy-chain.
    serial = sum(tr.wake_latency_ns for tr in transients)
    assert schedule.total_latency_ns <= serial + 1e-9
    assert schedule.serial_latency_ns == pytest.approx(serial)


class TestScheduler:
    def test_generous_budget_is_one_simultaneous_bin(self):
        transients = [make_transient(i, 2.0, 1.0, 3.0)
                      for i in range(5)]
        schedule = RushScheduler(transients, budget_ma=100.0).schedule()
        assert schedule.bins == 1
        assert all(e.enable_ns == 0.0 for e in schedule.events)
        assert schedule.total_latency_ns == pytest.approx(3.0)
        check_invariants(transients, schedule)

    def test_tight_budget_serializes(self):
        transients = [make_transient(i, 5.0, 1.0, 4.0)
                      for i in range(4)]
        schedule = RushScheduler(transients, budget_ma=5.0).schedule()
        assert schedule.bins == 4
        enables = sorted(e.enable_ns for e in schedule.events)
        assert all(b > a for a, b in zip(enables, enables[1:]))
        check_invariants(transients, schedule)

    def test_faster_than_serial_with_headroom(self):
        """With 2x headroom, pairs switch together: half the makespan."""
        transients = [make_transient(i, 5.0, 1.0, 4.0)
                      for i in range(4)]
        schedule = RushScheduler(transients, budget_ma=10.0).schedule()
        assert schedule.bins == 2
        assert schedule.total_latency_ns \
            < schedule.serial_latency_ns - 1e-9
        check_invariants(transients, schedule)

    def test_deterministic_and_order_independent(self):
        transients = [make_transient(i, 1.0 + 0.3 * i, 0.5 + 0.1 * i,
                                     2.0 + 0.2 * i)
                      for i in range(8)]
        budget = 4.0
        first = RushScheduler(transients, budget).schedule()
        again = RushScheduler(transients, budget).schedule()
        reversed_in = RushScheduler(list(reversed(transients)),
                                    budget).schedule()
        assert first == again
        assert sorted(first.events, key=lambda e: e.cluster_index) \
            == sorted(reversed_in.events, key=lambda e: e.cluster_index)

    def test_single_cluster_over_budget_is_infeasible(self):
        transients = [make_transient(0, 10.0, 1.0, 2.0)]
        with pytest.raises(StandbyError):
            RushScheduler(transients, budget_ma=5.0).schedule()

    def test_empty_network(self):
        schedule = RushScheduler([], budget_ma=1.0).schedule()
        assert schedule.events == ()
        assert schedule.total_latency_ns == 0.0

    def test_default_budget_floors_at_worst_cluster(self):
        transients = [make_transient(0, 9.0, 1.0, 1.0),
                      make_transient(1, 1.0, 1.0, 1.0)]
        # Half the total (5.0) would be below the worst peak.
        assert default_rush_budget_ma(transients) == 9.0
        many = [make_transient(i, 2.0, 1.0, 1.0) for i in range(10)]
        assert default_rush_budget_ma(many) == pytest.approx(10.0)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(
        st.tuples(st.floats(0.1, 50.0), st.floats(0.01, 10.0),
                  st.floats(0.0, 20.0)),
        min_size=1, max_size=12),
        st.floats(1.0, 3.0))
    def test_invariants_hold_for_random_networks(self, specs, headroom):
        transients = [make_transient(i, peak, tau, latency)
                      for i, (peak, tau, latency) in enumerate(specs)]
        budget = headroom * max(tr.peak_rush_ma for tr in transients)
        schedule = RushScheduler(transients, budget).schedule()
        check_invariants(transients, schedule)
        # Spot-check the budget between enables too (decay only).
        times = sorted({e.enable_ns for e in schedule.events})
        for a, b in zip(times, times[1:]):
            mid = 0.5 * (a + b)
            assert aggregate_rush_ma(transients, schedule, mid) \
                <= budget * (1.0 + 1e-9) + 1e-12


class TestOnRealNetwork:
    def test_budget_respected_on_c432(self, standby_design, library):
        netlist, network = standby_design
        transients = TransientSolver(network, netlist, library).solve()
        peaks = [tr.peak_rush_ma for tr in transients]
        # Tight enough to force staging, feasible for every cluster.
        budget = max(peaks) * 1.25
        schedule = RushScheduler(transients, budget).schedule()
        assert schedule.bins > 1
        check_invariants(transients, schedule)

    def test_default_budget_halves_the_simultaneous_rush(
            self, standby_design, library):
        netlist, network = standby_design
        transients = TransientSolver(network, netlist, library).solve()
        schedule = RushScheduler(transients).schedule()
        total_peak = sum(tr.peak_rush_ma for tr in transients)
        assert schedule.budget_ma <= total_peak
        assert not math.isinf(schedule.total_latency_ns)
        check_invariants(transients, schedule)
