"""Transient solver vs the closed-form single-RC solution."""

import dataclasses
import math

import pytest

from repro.errors import StandbyError
from repro.standby.transient import (
    TransientSolver,
    sleep_waveform,
    wake_waveform,
)

REL = 1e-9


def rel_eq(a: float, b: float) -> bool:
    return abs(a - b) <= REL * max(abs(a), abs(b), 1e-30)


@pytest.fixture()
def transients(standby_design, library):
    netlist, network = standby_design
    return TransientSolver(network, netlist, library).solve()


class TestClosedForm:
    def test_wake_settles_exactly_at_threshold(self, transients,
                                               library):
        """V(t_settle) == settle_fraction * Vdd (the defining latency
        equation of the single-RC discharge)."""
        settle_v = 0.05 * library.tech.vdd
        checked = 0
        for tr in transients:
            if tr.v_standby_v <= settle_v:
                continue
            v_at_settle = tr.v_standby_v * math.exp(
                -tr.wake_latency_ns / tr.tau_wake_ns)
            assert rel_eq(v_at_settle, settle_v)
            checked += 1
        assert checked  # the fixture leaks enough to charge its rails

    def test_sleep_settles_within_threshold_of_steady_state(
            self, transients):
        for tr in transients:
            if tr.tau_sleep_ns <= 0.0:
                continue
            v_at_settle = tr.v_standby_v * (
                1.0 - math.exp(-tr.sleep_latency_ns / tr.tau_sleep_ns))
            assert rel_eq(v_at_settle, 0.95 * tr.v_standby_v)

    def test_peak_rush_is_initial_voltage_over_resistance(
            self, transients):
        for tr in transients:
            expected = tr.v_standby_v / (tr.ron_kohm + tr.rail_res_kohm)
            assert rel_eq(tr.peak_rush_ma, expected)

    def test_tau_is_r_times_c(self, transients):
        for tr in transients:
            expected = (tr.ron_kohm + tr.rail_res_kohm) \
                * tr.capacitance_pf
            assert rel_eq(tr.tau_wake_ns, expected)

    def test_wake_waveform_matches_exponential(self, transients):
        tr = max(transients, key=lambda t: t.v_standby_v)
        waveform = wake_waveform(tr, points=33)
        assert len(waveform.times_ns) == 33
        for t, v in zip(waveform.times_ns, waveform.volts):
            assert rel_eq(v, tr.v_standby_v
                          * math.exp(-t / tr.tau_wake_ns))
        assert waveform.volts[0] == tr.v_standby_v
        # Strictly decaying.
        assert all(a > b for a, b in zip(waveform.volts,
                                         waveform.volts[1:]))

    def test_sleep_waveform_charges_toward_steady_state(self,
                                                        transients):
        tr = max(transients, key=lambda t: t.v_standby_v)
        waveform = sleep_waveform(tr, points=17)
        assert waveform.volts[0] == 0.0
        assert all(a < b for a, b in zip(waveform.volts,
                                         waveform.volts[1:]))
        assert waveform.volts[-1] < tr.v_standby_v


class TestModel:
    def test_capacitance_exceeds_bare_rail(self, standby_design,
                                           library):
        """Member and switch drains always add to the rail wire cap."""
        netlist, network = standby_design
        solver = TransientSolver(network, netlist, library)
        for cluster in network.clusters:
            tr = solver.solve_cluster(cluster)
            rail_only = cluster.rail_length_um \
                * library.tech.vgnd_cap_per_um
            assert tr.capacitance_pf > rail_only

    def test_energy_covers_rail_charge(self, transients):
        for tr in transients:
            assert tr.energy_per_cycle_pj \
                >= tr.capacitance_pf * tr.v_standby_v ** 2

    def test_sleep_saves_leakage(self, transients):
        """Cut-off members must leak less than powered ones."""
        for tr in transients:
            assert tr.active_leakage_nw > tr.sleep_leakage_nw > 0.0

    def test_post_route_cap_refines_rail(self, standby_design, library):
        netlist, network = standby_design
        cluster = network.clusters[0]

        @dataclasses.dataclass
        class FakeParasitics:
            total_cap_pf: float

        base = TransientSolver(network, netlist,
                               library).solve_cluster(cluster)
        extra = 0.5
        rail_cap = cluster.rail_length_um * library.tech.vgnd_cap_per_um
        refined = TransientSolver(
            network, netlist, library,
            parasitics={cluster.net_name:
                        FakeParasitics(rail_cap + extra)}
        ).solve_cluster(cluster)
        assert refined.capacitance_pf == pytest.approx(
            base.capacitance_pf + extra)

    def test_unsized_cluster_raises(self, standby_design, library):
        netlist, network = standby_design
        cluster = network.clusters[0]
        saved = cluster.switch_cell
        try:
            cluster.switch_cell = None
            with pytest.raises(StandbyError):
                TransientSolver(network, netlist,
                                library).solve_cluster(cluster)
        finally:
            cluster.switch_cell = saved

    def test_bad_settle_fraction_rejected(self, standby_design,
                                          library):
        netlist, network = standby_design
        with pytest.raises(StandbyError):
            TransientSolver(network, netlist, library,
                            settle_fraction=1.5)

    def test_solve_orders_by_cluster_index(self, transients):
        indices = [tr.cluster_index for tr in transients]
        assert indices == sorted(indices)
