"""Scenario engine: backend equivalence, monotonicity, integration."""

import dataclasses
import math
import time

import pytest

from repro.api import schemas
from repro.config import FlowConfig, Technique
from repro.errors import ConfigError, FlowError, StandbyError
from repro.standby.engine import (
    ScenarioOutcome,
    StandbyEngine,
    StandbyResult,
)
from repro.standby.scenario import (
    PowerMode,
    PowerModeScenario,
    resolve_scenario,
    standard_scenarios,
)


def fixed_scenario(name: str, idle_ns: float,
                   active_ns: float = 1_000.0) -> PowerModeScenario:
    return PowerModeScenario(name=name, active_ns=active_ns,
                             idle_ns=idle_ns)


class TestScenarios:
    def test_standard_set_resolves(self):
        for name in standard_scenarios():
            assert resolve_scenario(name).name == name

    def test_unknown_scenario(self):
        with pytest.raises(StandbyError):
            resolve_scenario("overclocked")

    def test_validation_names_the_field(self):
        with pytest.raises(ConfigError) as excinfo:
            PowerModeScenario(name="x", active_ns=1.0, idle_ns=-1.0)
        assert excinfo.value.field == "idle_ns"
        with pytest.raises(ConfigError) as excinfo:
            PowerModeScenario(name="x", active_ns=1.0, idle_ns=1.0,
                              distribution="uniform")
        assert excinfo.value.field == "distribution"

    def test_exponential_points_preserve_weight_and_mean(self):
        scenario = PowerModeScenario(
            name="x", active_ns=1.0, idle_ns=1000.0,
            distribution="exponential", quantile_points=512)
        points = scenario.idle_points()
        assert sum(w for _t, w in points) == pytest.approx(1.0)
        mean = sum(t * w for t, w in points)
        # Mid-quantile discretization slightly under-weights the tail.
        assert mean == pytest.approx(1000.0, rel=0.05)

    def test_state_machine_cycle(self):
        scenario = fixed_scenario("x", idle_ns=100.0, active_ns=50.0)
        mode = scenario.mode_at
        assert mode(10.0, 5.0, 5.0) is PowerMode.ACTIVE
        assert mode(52.0, 5.0, 5.0) is PowerMode.STANDBY   # entering
        assert mode(100.0, 5.0, 5.0) is PowerMode.SLEEP
        assert mode(148.0, 5.0, 5.0) is PowerMode.STANDBY  # waking
        assert mode(151.0, 5.0, 5.0) is PowerMode.ACTIVE   # next period
        # Idle shorter than the transition overhead: never sleeps.
        short = fixed_scenario("y", idle_ns=8.0, active_ns=50.0)
        assert short.mode_at(55.0, 5.0, 5.0) is PowerMode.STANDBY


@pytest.fixture(scope="module")
def engine_inputs(standby_design, library):
    netlist, network = standby_design
    return netlist, network, library


def run_engine(engine_inputs, scenarios, backend="python", **kwargs):
    netlist, network, library = engine_inputs
    return StandbyEngine(netlist, library, network, scenarios,
                         compute_backend=backend, **kwargs).run()


class TestEngine:
    def test_savings_monotone_in_fixed_idle_length(self, engine_inputs):
        """Longer idle intervals can never reduce net savings."""
        scenarios = [fixed_scenario(f"s{i}", idle_ns=10.0 ** i)
                     for i in range(2, 9)]
        result = run_engine(engine_inputs, scenarios)
        per_event = [result.outcome(s.name, "tt_nom").savings_per_event_pj
                     for s in scenarios]
        assert all(b >= a for a, b in zip(per_event, per_event[1:]))
        assert per_event[0] == 0.0        # way below break-even
        assert per_event[-1] > 0.0        # deeply idle always pays

    def test_savings_monotone_in_exponential_mean(self, engine_inputs):
        scenarios = [
            PowerModeScenario(name=f"e{i}", active_ns=1_000.0,
                              idle_ns=10.0 ** i,
                              distribution="exponential")
            for i in range(2, 9)]
        result = run_engine(engine_inputs, scenarios)
        per_event = [result.outcome(s.name, "tt_nom").savings_per_event_pj
                     for s in scenarios]
        assert all(b >= a for a, b in zip(per_event, per_event[1:]))

    def test_break_even_separates_worthwhile_scenarios(self,
                                                       engine_inputs):
        result = run_engine(engine_inputs,
                            list(standard_scenarios().values()))
        break_even = result.break_even_ns
        assert 0.0 < break_even < math.inf
        for outcome in result.outcomes:
            scenario = resolve_scenario(outcome.scenario)
            if scenario.distribution != "fixed":
                continue
            if scenario.idle_ns > break_even:
                assert outcome.worthwhile
            if scenario.idle_ns < 0.5 * break_even:
                assert not outcome.worthwhile

    def test_backends_bit_identical(self, engine_inputs):
        """The acceptance gate: same digits from both backends."""
        scenarios = list(standard_scenarios().values()) + [
            fixed_scenario(f"grid{i}", idle_ns=1_000.0 * (i + 1))
            for i in range(20)]
        corners = ("tt_nom", "ss_1.08v_125c", "ff_1.32v_125c")
        python = run_engine(engine_inputs, scenarios, "python",
                            corners=corners)
        vectorized = run_engine(engine_inputs, scenarios, "numpy",
                                corners=corners)
        relabeled = dataclasses.replace(vectorized,
                                        compute_backend="python")
        assert relabeled == python  # bitwise: dataclass float equality

    def test_corner_dependence(self, engine_inputs):
        """Hot/slow silicon leaks more, so it breaks even sooner."""
        result = run_engine(
            engine_inputs, [fixed_scenario("x", idle_ns=1e6)],
            corners=("tt_nom", "ss_1.08v_125c"))
        nominal = result.corner_row("tt_nom")
        hot = result.corner_row("ss_1.08v_125c")
        assert hot.break_even_ns < nominal.break_even_ns
        assert hot.wake_latency_ns != nominal.wake_latency_ns

    def test_requires_clusters_and_scenarios(self, engine_inputs):
        netlist, network, library = engine_inputs
        from repro.vgnd.network import VgndNetwork

        with pytest.raises(StandbyError):
            StandbyEngine(netlist, library, VgndNetwork(),
                          [fixed_scenario("x", 1.0)])
        with pytest.raises(StandbyError):
            StandbyEngine(netlist, library, network, [])

    def test_result_round_trips_through_registry(self, engine_inputs):
        result = run_engine(engine_inputs,
                            [fixed_scenario("x", idle_ns=1e6)])
        payload = schemas.check_round_trip(result)
        assert payload["schema"] == "standby_result"
        assert payload["schema_version"] == 1
        assert result.as_dict() == payload

    def test_infinite_break_even_survives_the_codec(self):
        outcome = ScenarioOutcome(
            scenario="x", corner="tt_nom", sleep_events=1.0,
            savings_per_event_pj=0.0, net_savings_pj=0.0,
            savings_fraction=0.0, break_even_ns=math.inf,
            worthwhile=False)
        payload = schemas.check_round_trip(outcome)
        assert payload["break_even_ns"] == "inf"
        assert schemas.from_dict(payload).break_even_ns == math.inf


class TestFlowAndFacade:
    def test_flow_stage_populates_result(self, library):
        from repro.benchcircuits.suite import load_circuit
        from repro.core.flow import SelectiveMtFlow

        config = FlowConfig(timing_margin=0.2,
                            standby_scenarios=("mostly_idle",
                                               "always_on"))
        netlist = load_circuit("c17")
        result = SelectiveMtFlow(netlist, library,
                                 Technique.IMPROVED_SMT, config).run()
        standby = result.standby
        assert standby is not None
        assert isinstance(standby, StandbyResult)
        assert standby.scenarios == ("mostly_idle", "always_on")
        from repro.variation.corners import default_signoff_corners

        assert standby.corners == default_signoff_corners(library.tech)
        assert result.stage("standby_signoff").details["scenarios"] == 2

    def test_flow_stage_noop_without_network_or_config(self, library):
        from repro.benchcircuits.suite import load_circuit
        from repro.core.flow import SelectiveMtFlow

        netlist = load_circuit("c17")
        config = FlowConfig(timing_margin=0.2,
                            standby_scenarios=("mostly_idle",))
        dual = SelectiveMtFlow(netlist, library, Technique.DUAL_VTH,
                               config).run()
        assert dual.standby is None
        plain = SelectiveMtFlow(netlist, library,
                                Technique.IMPROVED_SMT,
                                FlowConfig(timing_margin=0.2)).run()
        assert plain.standby is None

    def test_design_standby_caches_on_request(self):
        from repro.api import StandbyRequest, Workspace

        workspace = Workspace(config=FlowConfig(timing_margin=0.2))
        design = workspace.design("c17")
        request = StandbyRequest(scenarios=("mostly_idle",),
                                 corners=("tt_nom",))
        first = design.standby(request)
        started = time.perf_counter()
        second = design.standby(request)
        assert time.perf_counter() - started < 0.1  # cache hit
        assert second is first
        stats = workspace.cache_stats()["standby"]
        assert stats == {"hits": 1, "misses": 1}
        # kwargs path builds the same request.
        assert design.standby(scenarios=("mostly_idle",),
                              corners=("tt_nom",)) is first

    def test_design_standby_defaults_and_rejection(self):
        from repro.api import StandbyRequest, Workspace
        from repro.variation.corners import default_signoff_corners

        workspace = Workspace(config=FlowConfig(timing_margin=0.2))
        design = workspace.design("c17")
        result = design.standby(StandbyRequest(
            scenarios=("mostly_idle",)))
        assert result.corners == default_signoff_corners(
            workspace.library.tech)
        with pytest.raises(FlowError):
            design.standby(technique=Technique.DUAL_VTH,
                           scenarios=("mostly_idle",))
        with pytest.raises(ConfigError):
            design.standby(StandbyRequest(scenarios=("mostly_idle",)),
                           corners=("tt_nom",))  # request + kwargs

    def test_facade_defaults_follow_flow_config(self):
        """Design.standby() with no request answers exactly like the
        flow's standby_signoff stage for the same configuration."""
        from repro.api import Workspace

        config = FlowConfig(timing_margin=0.2,
                            standby_scenarios=("mostly_idle",),
                            standby_settle_fraction=0.08,
                            signoff_corners=("tt_nom",))
        workspace = Workspace(config=config)
        design = workspace.design("c17")
        from_stage = design.flow_result(
            Technique.IMPROVED_SMT).standby
        from_facade = design.standby()
        assert from_facade.settle_fraction == 0.08
        # Not merely equal: the facade reuses the stage's result
        # instead of running the engine twice.
        assert from_facade is from_stage

    def test_workspace_standby_shortcut(self):
        from repro.api import StandbyRequest, Workspace

        workspace = Workspace(config=FlowConfig(timing_margin=0.2))
        request = StandbyRequest(scenarios=("mostly_idle",),
                                 corners=("tt_nom",))
        via_workspace = workspace.standby("c17", request)
        via_design = workspace.design("c17").standby(request)
        assert via_workspace is via_design

    def test_request_validation(self):
        from repro.api import StandbyRequest

        with pytest.raises(ConfigError):
            StandbyRequest(scenarios=("",))
        with pytest.raises(ConfigError):
            StandbyRequest(rush_budget_ma=0.0)
        with pytest.raises(ConfigError):
            StandbyRequest(settle_fraction=0.9)

    def test_service_runs_standby_jobs(self):
        from repro.api import JobService, StandbyRequest

        service = JobService().start()
        try:
            status = service.submit({
                "kind": "standby", "circuit": "c17",
                "request": schemas.to_dict(StandbyRequest(
                    scenarios=("mostly_idle",), corners=("tt_nom",))),
                "config": {"timing_margin": 0.2},
            })
            deadline = time.monotonic() + 120.0
            while service.status(status.job_id).status in ("queued",
                                                           "running"):
                assert time.monotonic() < deadline
                time.sleep(0.02)
            final = service.status(status.job_id)
            assert final.status == "done", final.error
            result = schemas.from_dict(service.result(status.job_id))
            assert isinstance(result, StandbyResult)
            assert result.scenarios == ("mostly_idle",)
        finally:
            service.close()
