"""Shared fixtures for the standby-transition suite."""

from __future__ import annotations

import pytest

from repro.liberty.library import VARIANT_MTV
from repro.netlist.techmap import technology_map
from repro.netlist.transform import swap_variant
from repro.placement.legalize import legalize
from repro.placement.placer import GlobalPlacer
from repro.vgnd.cluster import ClusterConfig, MtClusterer
from repro.vgnd.sizing import SwitchSizer


@pytest.fixture(scope="session")
def standby_design(library):
    """A placed c432 with every cell MTV, clustered and sized.

    Session-scoped (the solver and scheduler never mutate it): the
    many-cluster network real scheduler/engine tests need, without
    re-running placement per test.
    """
    from repro.benchcircuits.suite import load_circuit

    netlist = load_circuit("c432")
    technology_map(netlist, library)
    placement = GlobalPlacer(netlist, library).run()
    legalize(placement, netlist, library)
    mt_names = []
    for inst in list(netlist.instances.values()):
        cell = library.cell(inst.cell_name)
        if library.has_variant(cell, VARIANT_MTV):
            swap_variant(netlist, inst, library, VARIANT_MTV)
            mt_names.append(inst.name)
    config = ClusterConfig(max_cells_per_switch=16,
                           max_rail_length_um=220.0)
    network = MtClusterer(netlist, library, placement,
                          config).build(mt_names)
    SwitchSizer(library, config.bounce_limit_v).size_network(network)
    assert len(network.clusters) >= 4  # the suite needs a real grid
    return netlist, network
