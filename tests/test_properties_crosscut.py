"""Cross-cutting property tests over generated circuits.

Each property runs the real machinery (techmap, placement, clustering,
holders, simulation) on hypothesis-generated circuit configurations and
asserts the invariants the Selective-MT methodology rests on.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.benchcircuits.generator import GeneratorConfig, generate_circuit
from repro.core.output_holder import insert_output_holders, nets_needing_holders
from repro.liberty.library import VARIANT_HVT, VARIANT_MTV
from repro.liberty.synth import build_default_library
from repro.netlist.techmap import technology_map
from repro.netlist.transform import swap_variant
from repro.netlist.validate import check_netlist
from repro.placement.legalize import legalize
from repro.placement.placer import GlobalPlacer
from repro.sim.equivalence import check_equivalence
from repro.sim.logic import Simulator
from repro.vgnd.cluster import ClusterConfig, MtClusterer
from repro.vgnd.sizing import SwitchSizer

SLOW = settings(max_examples=8, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])

small_configs = st.builds(
    GeneratorConfig,
    n_gates=st.integers(min_value=20, max_value=90),
    n_inputs=st.integers(min_value=4, max_value=10),
    n_outputs=st.integers(min_value=2, max_value=6),
    depth=st.integers(min_value=3, max_value=10),
    style=st.sampled_from(["layered", "tapered", "grid"]),
    seed=st.integers(min_value=0, max_value=10_000))


@SLOW
@given(config=small_configs)
def test_property_generated_circuits_map_and_validate(config):
    library = build_default_library()
    netlist = generate_circuit("gen", config)
    technology_map(netlist, library)
    assert check_netlist(netlist, library) == []


@SLOW
@given(config=small_configs, fraction=st.floats(min_value=0.1, max_value=1.0))
def test_property_holder_rule_complete_and_minimal(config, fraction):
    """After insertion, exactly the boundary nets carry holders."""
    library = build_default_library()
    netlist = generate_circuit("gen", config)
    technology_map(netlist, library)
    # Convert a prefix of instances to MTV, the rest to HVT.
    instances = [i for i in netlist.instances.values()
                 if library.cell(i.cell_name).kind.value in
                 ("logic", "buffer")]
    cut = max(1, int(len(instances) * fraction))
    for inst in instances[:cut]:
        swap_variant(netlist, inst, library, VARIANT_MTV)
    for inst in instances[cut:]:
        swap_variant(netlist, inst, library, VARIANT_HVT)
    netlist.add_input("MTE")
    insert_output_holders(netlist, library)
    # Completeness: no net still needs a holder without having one.
    for net in nets_needing_holders(netlist, library):
        assert net.keepers
    # Minimality: every holder sits on a net that needed one.
    needing = {n.name for n in nets_needing_holders(netlist, library)}
    for inst in netlist.instances.values():
        if inst.cell_name == "HOLDER_X1":
            assert inst.pin("Z").net.name in needing
    # Standby simulation sees no floating powered inputs.
    sim = Simulator(netlist, library)
    vector = {p.name: 1 for p in netlist.input_ports()}
    result = sim.evaluate(vector, standby=True)
    assert result.floating_input_pins == []


@SLOW
@given(config=small_configs,
       max_cells=st.integers(min_value=2, max_value=32))
def test_property_clustering_partition_and_bounce(config, max_cells):
    """Clustering partitions the MT set; sizing meets the limit."""
    library = build_default_library()
    netlist = generate_circuit("gen", config)
    technology_map(netlist, library)
    placement = GlobalPlacer(netlist, library).run()
    legalize(placement, netlist, library)
    mt_names = []
    for inst in netlist.instances.values():
        cell = library.cell(inst.cell_name)
        if library.has_variant(cell, VARIANT_MTV):
            swap_variant(netlist, inst, library, VARIANT_MTV)
            mt_names.append(inst.name)
    cluster_config = ClusterConfig(max_cells_per_switch=max_cells)
    network = MtClusterer(netlist, library, placement,
                          cluster_config).build(mt_names)
    clustered = sorted(m for c in network.clusters for m in c.members)
    assert clustered == sorted(mt_names)
    for cluster in network.clusters:
        assert cluster.size <= max_cells
    SwitchSizer(library,
                cluster_config.bounce_limit_v).size_network(network)
    assert network.bounce_ok()


@SLOW
@given(config=small_configs,
       subset_seed=st.integers(min_value=0, max_value=1_000))
def test_property_batched_signoff_bit_identical(config, subset_seed):
    """Corner-batched signoff == the sequential loop, bit for bit."""
    pytest.importorskip("numpy")
    import random

    from repro.timing.constraints import Constraints
    from repro.variation.corners import default_signoff_corners
    from repro.variation.signoff import (
        evaluate_corners,
        evaluate_corners_batched,
    )

    library = build_default_library()
    netlist = generate_circuit("gen", config)
    technology_map(netlist, library)
    grid = list(default_signoff_corners(library.tech))
    rng = random.Random(subset_seed)
    names = tuple(rng.sample(grid, rng.randint(2, len(grid))))
    constraints = Constraints(clock_period=2000.0)
    loop = evaluate_corners(netlist, library, names, constraints,
                            compute_backend="numpy")
    batched = evaluate_corners_batched(netlist, library, names,
                                       constraints,
                                       compute_backend="numpy")
    for name in names:
        assert batched[name].wns == loop[name].wns
        assert batched[name].hold_wns == loop[name].hold_wns
        assert batched[name].leakage_nw == loop[name].leakage_nw


@SLOW
@given(config=small_configs)
def test_property_variant_swaps_preserve_function(config):
    """Any all-HVT re-binding is equivalent to the LVT original."""
    library = build_default_library()
    netlist = generate_circuit("gen", config)
    technology_map(netlist, library)
    golden = netlist.clone("golden")
    for inst in netlist.instances.values():
        cell = library.cell(inst.cell_name)
        if library.has_variant(cell, VARIANT_HVT) and not cell.is_sequential:
            swap_variant(netlist, inst, library, VARIANT_HVT)
    report = check_equivalence(golden, netlist, library,
                               max_random_vectors=32)
    assert report.equivalent
