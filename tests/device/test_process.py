"""Technology description."""

import math

import pytest

from repro.device.process import DEFAULT_TECHNOLOGY, Technology


def test_default_is_frozen():
    with pytest.raises(Exception):
        DEFAULT_TECHNOLOGY.vdd = 1.0


def test_with_updates_creates_new_instance():
    tech = Technology()
    hot = tech.with_updates(temperature_k=398.0)
    assert hot.temperature_k == 398.0
    assert tech.temperature_k == 300.0


def test_subthreshold_swing():
    tech = Technology()
    assert tech.subthreshold_swing() == pytest.approx(
        tech.subthreshold_n * tech.thermal_voltage())


def test_leakage_ratio_formula():
    tech = Technology()
    expected = math.exp((tech.vth_high - tech.vth_low)
                        / tech.subthreshold_swing())
    assert tech.leakage_ratio() == pytest.approx(expected)


def test_leakage_ratio_grows_with_temperature_drop():
    cold = Technology(temperature_k=250.0)
    hot = Technology(temperature_k=350.0)
    assert cold.leakage_ratio() > hot.leakage_ratio()


def test_overdrive_clamped():
    tech = Technology()
    assert tech.overdrive(tech.vdd + 1.0) == pytest.approx(1e-3)
    assert tech.overdrive(tech.vth_low) == pytest.approx(
        tech.vdd - tech.vth_low)


def test_vth_ordering():
    tech = Technology()
    assert tech.vth_low < tech.vth_high < tech.vdd


def test_vgnd_rail_less_resistive_than_signal():
    tech = Technology()
    assert tech.vgnd_res_per_um < tech.wire_res_per_um
