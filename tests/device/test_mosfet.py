"""Alpha-power / subthreshold device model."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.device.mosfet import MosfetModel
from repro.device.process import Technology


@pytest.fixture(scope="module")
def tech():
    return Technology()


@pytest.fixture(scope="module")
def nmos_low(tech):
    return MosfetModel(tech, tech.vth_low, "nmos")


@pytest.fixture(scope="module")
def nmos_high(tech):
    return MosfetModel(tech, tech.vth_high, "nmos")


def test_invalid_polarity_rejected(tech):
    with pytest.raises(ValueError):
        MosfetModel(tech, tech.vth_low, "finfet")


def test_invalid_vth_rejected(tech):
    with pytest.raises(ValueError):
        MosfetModel(tech, tech.vdd + 0.1, "nmos")
    with pytest.raises(ValueError):
        MosfetModel(tech, -0.1, "nmos")


def test_saturation_current_scales_linearly_with_width(nmos_low):
    i1 = nmos_low.saturation_current(1.0)
    i2 = nmos_low.saturation_current(2.0)
    assert i2 == pytest.approx(2.0 * i1)


def test_saturation_current_zero_below_threshold(nmos_low, tech):
    assert nmos_low.saturation_current(1.0, vgs=tech.vth_low) == 0.0


def test_high_vth_drives_less(nmos_low, nmos_high):
    assert nmos_high.saturation_current(1.0) < nmos_low.saturation_current(1.0)


def test_pmos_weaker_than_nmos(tech, nmos_low):
    pmos = MosfetModel(tech, tech.vth_low, "pmos")
    ratio = pmos.saturation_current(1.0) / nmos_low.saturation_current(1.0)
    assert ratio == pytest.approx(tech.pmos_factor)


def test_effective_resistance_inverse_width(nmos_low):
    r1 = nmos_low.effective_resistance(1.0)
    r2 = nmos_low.effective_resistance(2.0)
    assert r1 == pytest.approx(2.0 * r2)


def test_on_resistance_positive_and_inverse_width(nmos_high):
    assert nmos_high.on_resistance(1.0) > 0
    assert nmos_high.on_resistance(4.0) == pytest.approx(
        nmos_high.on_resistance(1.0) / 4.0)


def test_leakage_ratio_matches_technology(tech, nmos_low, nmos_high):
    ratio = nmos_low.subthreshold_current(1.0) \
        / nmos_high.subthreshold_current(1.0)
    assert ratio == pytest.approx(tech.leakage_ratio(), rel=1e-6)


def test_leakage_ratio_is_significant(tech):
    # The Dual-Vth premise: high-Vth must leak far less.
    assert tech.leakage_ratio() > 10.0


def test_stacking_effect_reduces_leakage(nmos_low, tech):
    single = nmos_low.leakage_power(1.0, stack_depth=1)
    double = nmos_low.leakage_power(1.0, stack_depth=2)
    assert double == pytest.approx(single * tech.stack_factor)


def test_stack_depth_validation(nmos_low):
    with pytest.raises(ValueError):
        nmos_low.leakage_power(1.0, stack_depth=0)


def test_subthreshold_vgs_dependence(nmos_low):
    off = nmos_low.subthreshold_current(1.0, vgs=0.0)
    slightly_on = nmos_low.subthreshold_current(1.0, vgs=0.05)
    assert slightly_on > off


def test_capacitances_scale_with_width(nmos_low):
    assert nmos_low.gate_capacitance(2.0) == pytest.approx(
        2.0 * nmos_low.gate_capacitance(1.0))
    assert nmos_low.drain_capacitance(2.0) == pytest.approx(
        2.0 * nmos_low.drain_capacitance(1.0))


def test_width_validation(nmos_low):
    for method in (nmos_low.saturation_current, nmos_low.on_resistance,
                   nmos_low.subthreshold_current,
                   nmos_low.gate_capacitance, nmos_low.drain_capacitance):
        with pytest.raises(ValueError):
            method(0.0)


@given(width=st.floats(min_value=0.1, max_value=100.0))
def test_property_leakage_monotone_in_width(width):
    tech = Technology()
    model = MosfetModel(tech, tech.vth_low, "nmos")
    assert model.subthreshold_current(width + 0.1) \
        > model.subthreshold_current(width)


@given(vth=st.floats(min_value=0.1, max_value=0.8))
def test_property_higher_vth_never_leaks_more(vth):
    tech = Technology()
    lower = MosfetModel(tech, vth, "nmos")
    higher = MosfetModel(tech, min(vth + 0.05, 1.1), "nmos")
    assert higher.subthreshold_current(1.0) \
        <= lower.subthreshold_current(1.0)


@given(vgs=st.floats(min_value=0.5, max_value=1.2),
       width=st.floats(min_value=0.2, max_value=10.0))
def test_property_current_nonnegative(vgs, width):
    tech = Technology()
    model = MosfetModel(tech, tech.vth_low, "nmos")
    assert model.saturation_current(width, vgs=vgs) >= 0.0


def test_delay_ratio_in_dual_vth_band(tech, nmos_low, nmos_high):
    """High-Vth cells should be 20-40% slower (paper's regime)."""
    ratio = nmos_high.effective_resistance(1.0) \
        / nmos_low.effective_resistance(1.0)
    assert 1.15 < ratio < 1.45


def test_leakage_power_uses_vdd(tech, nmos_low):
    current = nmos_low.subthreshold_current(1.0)
    power = nmos_low.leakage_power(1.0)
    assert power == pytest.approx(current * tech.vdd * 1e6)
