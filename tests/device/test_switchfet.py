"""Sleep-switch family and embedded switch sizing."""

import pytest
from hypothesis import given, strategies as st

from repro.device.process import Technology
from repro.device.switchfet import (
    SwitchFamily,
    embedded_switch_width,
)
from repro.errors import SizingError


@pytest.fixture(scope="module")
def tech():
    return Technology()


@pytest.fixture(scope="module")
def family(tech):
    return SwitchFamily(tech)


def test_family_ascending_by_width(family):
    widths = [spec.width_um for spec in family]
    assert widths == sorted(widths)
    assert len(widths) == len(set(widths))


def test_ron_descends_with_width(family):
    rons = [spec.on_resistance_kohm for spec in family]
    assert rons == sorted(rons, reverse=True)


def test_leakage_and_area_ascend_with_width(family):
    leaks = [spec.leakage_nw for spec in family]
    areas = [spec.area_um2 for spec in family]
    assert leaks == sorted(leaks)
    assert areas == sorted(areas)


def test_em_limit_proportional_to_width(family, tech):
    for spec in family:
        assert spec.em_limit_ma == pytest.approx(
            tech.em_current_per_um * spec.width_um)


def test_by_name(family):
    spec = family.by_name("SWITCH_X8")
    assert spec.width_um == pytest.approx(8 * SwitchFamily.BASE_WIDTH_UM)
    with pytest.raises(KeyError):
        family.by_name("SWITCH_X9999")


def test_smallest_for_resistance_picks_minimal(family):
    target = family.specs[2].on_resistance_kohm
    chosen = family.smallest_for_resistance(target * 1.0001)
    assert chosen.name == family.specs[2].name


def test_smallest_for_resistance_unachievable(family):
    tight = family.largest().on_resistance_kohm / 10.0
    with pytest.raises(SizingError):
        family.smallest_for_resistance(tight)


def test_smallest_for_current(family):
    spec = family.smallest_for_current(family.specs[1].em_limit_ma)
    assert spec.name == family.specs[1].name
    with pytest.raises(SizingError):
        family.smallest_for_current(family.largest().em_limit_ma * 2)


def test_custom_multipliers_must_ascend(tech):
    with pytest.raises(ValueError):
        SwitchFamily(tech, multipliers=(4, 2, 1))
    with pytest.raises(ValueError):
        SwitchFamily(tech, multipliers=())


def test_embedded_width_has_minimum(tech):
    assert embedded_switch_width(tech, 0.0, 0.06) == pytest.approx(2.0)


def test_embedded_width_scales_with_current(tech):
    w1 = embedded_switch_width(tech, 0.5, 0.06)
    w2 = embedded_switch_width(tech, 1.0, 0.06)
    assert w2 == pytest.approx(2.0 * w1)


def test_embedded_width_holds_bounce_budget(tech):
    """The sized switch keeps I*Ron at or below the budget."""
    from repro.device.mosfet import MosfetModel
    current = 0.8
    bounce = 0.05
    width = embedded_switch_width(tech, current, bounce)
    model = MosfetModel(tech, tech.vth_high, "nmos")
    assert current * model.on_resistance(width) <= bounce * 1.0001


def test_embedded_width_validation(tech):
    with pytest.raises(ValueError):
        embedded_switch_width(tech, -1.0, 0.06)
    with pytest.raises(ValueError):
        embedded_switch_width(tech, 1.0, 0.0)
    with pytest.raises(ValueError):
        embedded_switch_width(tech, 1.0, 0.06, min_width_um=0.0)


@given(current=st.floats(min_value=0.01, max_value=5.0),
       bounce=st.floats(min_value=0.01, max_value=0.2))
def test_property_embedded_width_meets_budget(current, bounce):
    from repro.device.mosfet import MosfetModel
    tech = Technology()
    width = embedded_switch_width(tech, current, bounce)
    model = MosfetModel(tech, tech.vth_high, "nmos")
    assert current * model.on_resistance(width) <= bounce * 1.01
