"""Incremental-vs-full STA equivalence.

The TimingSession's contract is *exactness*: after any tracked edit
sequence, its report must be bit-identical (==, not approx) to the
report a fresh TimingAnalyzer produces on the same netlist.  The
property tests drive randomized sequences of variant swaps, derate
changes and buffer insertions over ISCAS-class circuits and compare
every node and every endpoint check.
"""

import random

import pytest

from repro.benchcircuits.suite import load_circuit
from repro.liberty.library import VARIANT_HVT, VARIANT_LVT, VARIANT_MT
from repro.netlist.techmap import technology_map
from repro.timing.constraints import Constraints
from repro.timing.session import TimingSession
from repro.timing.sta import TimingAnalyzer

NODE_FIELDS = ("arr_rise", "arr_fall", "min_rise", "min_fall",
               "slew_rise", "slew_fall", "req_rise", "req_fall",
               "prev_rise", "prev_fall")


def assert_reports_identical(session_report, fresh_report):
    assert session_report.clock_period == fresh_report.clock_period
    assert session_report.wns == fresh_report.wns
    assert session_report.tns == fresh_report.tns
    assert session_report.hold_wns == fresh_report.hold_wns
    assert session_report.hold_tns == fresh_report.hold_tns
    assert session_report.critical_endpoint == fresh_report.critical_endpoint
    got = [(c.endpoint, c.kind, c.slack, c.arrival, c.required)
           for c in session_report.endpoint_checks]
    want = [(c.endpoint, c.kind, c.slack, c.arrival, c.required)
            for c in fresh_report.endpoint_checks]
    assert got == want
    assert set(session_report.node_timing) == set(fresh_report.node_timing)
    for name, fresh_node in fresh_report.node_timing.items():
        session_node = session_report.node_timing[name]
        for field in NODE_FIELDS:
            assert getattr(session_node, field) \
                == getattr(fresh_node, field), (name, field)


def _mapped(name, library):
    netlist = load_circuit(name)
    technology_map(netlist, library, VARIANT_LVT)
    return netlist


def _random_edit(rng, session, netlist, library):
    """Apply one random tracked edit; returns a description string."""
    instances = [inst for inst in netlist.instances.values()
                 if inst.cell_name in library]
    choice = rng.random()
    if choice < 0.55:
        inst = rng.choice(instances)
        cell = library.cell(inst.cell_name)
        variant = rng.choice([VARIANT_LVT, VARIANT_HVT, VARIANT_MT])
        if library.has_variant(cell, variant):
            session.swap_variant(inst, variant)
            return f"swap {inst.name} -> {variant}"
        return "noop"
    if choice < 0.85:
        inst = rng.choice(instances)
        derate = rng.choice([1.0, 1.02, 1.05, 1.1])
        session.set_derate(inst.name, derate)
        return f"derate {inst.name} = {derate}"
    buffered = [net for net in netlist.nets.values() if net.sinks]
    net = rng.choice(buffered)
    sinks = [rng.choice(net.sinks)]
    session.insert_buffer(net, "BUF_X1_HVT", sinks=sinks)
    return f"buffer {net.name}"


@pytest.mark.parametrize("circuit,seed", [
    ("c17", 1),
    ("c432", 2),
    ("c432", 3),
    ("s27", 4),
    ("s298", 5),
    ("s344", 6),
])
def test_random_edit_sequences_match_full_sta(library, circuit, seed):
    netlist = _mapped(circuit, library)
    constraints = Constraints(clock_period=3.0)
    session = TimingSession(netlist, library, constraints)
    assert_reports_identical(
        session.report(),
        TimingAnalyzer(netlist, library, constraints).run())
    rng = random.Random(seed)
    for _ in range(18):
        _random_edit(rng, session, netlist, library)
        fresh = TimingAnalyzer(netlist, library, constraints,
                               derates=session.derates).run()
        assert_reports_identical(session.report(), fresh)


def test_edit_batches_match_full_sta(library):
    """Several edits between probes (the ECO pattern)."""
    netlist = _mapped("c880", library)
    constraints = Constraints(clock_period=4.0)
    session = TimingSession(netlist, library, constraints)
    session.report()
    rng = random.Random(11)
    for _ in range(6):
        for _ in range(rng.randint(2, 6)):
            _random_edit(rng, session, netlist, library)
        fresh = TimingAnalyzer(netlist, library, constraints,
                               derates=session.derates).run()
        assert_reports_identical(session.report(), fresh)


def test_session_with_parasitics_and_clock_arrivals(library):
    """Wire delays and CTS-style skew go through the same machinery."""
    from repro.placement.legalize import legalize
    from repro.placement.placer import GlobalPlacer
    from repro.routing.extract import PreRouteEstimator

    netlist = _mapped("s298", library)
    placement = GlobalPlacer(netlist, library, seed=3).run()
    legalize(placement, netlist, library)
    parasitics = PreRouteEstimator(netlist, placement, library).extract()
    clock_arrivals = {
        inst.name: 0.003 * (index % 5)
        for index, inst in enumerate(netlist.instances.values())
        if library.cell(inst.cell_name).is_sequential}
    constraints = Constraints(clock_period=3.5)
    session = TimingSession(netlist, library, constraints,
                            parasitics=parasitics,
                            clock_arrivals=clock_arrivals)
    rng = random.Random(21)
    session.report()
    for _ in range(12):
        _random_edit(rng, session, netlist, library)
        fresh = TimingAnalyzer(netlist, library, constraints,
                               parasitics=parasitics,
                               derates=session.derates,
                               clock_arrivals=clock_arrivals).run()
        assert_reports_identical(session.report(), fresh)


def test_zero_threshold_forces_full_runs(library):
    """full_threshold=0 degenerates to cached-structure full STA."""
    netlist = _mapped("c432", library)
    constraints = Constraints(clock_period=3.0)
    session = TimingSession(netlist, library, constraints,
                            full_threshold=0.0)
    session.report()
    inst = next(iter(netlist.instances.values()))
    session.swap_variant(inst, VARIANT_HVT)
    session.report()
    assert session.stats.incremental_runs == 0
    assert session.stats.full_runs == 2
    assert_reports_identical(
        session.report(),
        TimingAnalyzer(netlist, library, constraints).run())


def test_clean_report_is_cached(library):
    netlist = _mapped("c432", library)
    session = TimingSession(netlist, library,
                            Constraints(clock_period=3.0))
    first = session.report()
    second = session.report()
    assert first is second
    assert session.stats.cached_reports == 1
    assert session.stats.propagations == 1


def test_small_edits_propagate_incrementally(library):
    """On a big circuit, a single swap must not trigger a full run."""
    netlist = _mapped("circuitA", library)
    constraints = Constraints(clock_period=5.0)
    session = TimingSession(netlist, library, constraints)
    session.report()
    swapped = 0
    for inst in netlist.instances.values():
        cell = library.cells.get(inst.cell_name)
        if cell is None or cell.is_sequential:
            continue
        if library.has_variant(cell, VARIANT_HVT):
            session.swap_variant(inst, VARIANT_HVT)
            session.report()
            swapped += 1
            if swapped >= 8:
                break
    assert session.stats.incremental_runs >= 2
    assert session.stats.forward_instances_saved > 0
    fresh = TimingAnalyzer(netlist, library, constraints).run()
    assert_reports_identical(session.report(), fresh)


def test_set_derates_diffs_only_changes(library):
    netlist = _mapped("c432", library)
    session = TimingSession(netlist, library,
                            Constraints(clock_period=3.0))
    session.report()
    names = list(netlist.instances)[:4]
    session.set_derates({name: 1.05 for name in names})
    assert session.dirty
    session.report()
    # Re-applying the identical map must not dirty anything.
    session.set_derates({name: 1.05 for name in names})
    assert not session.dirty
    fresh = TimingAnalyzer(netlist, library, Constraints(clock_period=3.0),
                           derates=session.derates).run()
    assert_reports_identical(session.report(), fresh)
