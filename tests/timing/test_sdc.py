"""SDC reader/writer subset."""

import pytest

from repro.errors import ParseError
from repro.timing.constraints import Constraints
from repro.timing.sdc import parse_sdc, write_sdc

SAMPLE = """
# constraints for c880
create_clock -period 2.5 -name core [get_ports CLK]
set_input_transition 0.04 [all_inputs]
set_input_delay 0.1 [all_inputs]
set_output_delay 0.2 [all_outputs]
set_input_delay 0.3 [get_ports fast_in]
set_load 0.004 [get_ports slow_out]
"""


def test_parse_sample():
    cons = parse_sdc(SAMPLE)
    assert cons.clock_period == pytest.approx(2.5)
    assert cons.clock_port == "CLK"
    assert cons.input_slew == pytest.approx(0.04)
    assert cons.input_delay == pytest.approx(0.1)
    assert cons.output_delay == pytest.approx(0.2)
    assert cons.input_delays["fast_in"] == pytest.approx(0.3)
    assert cons.output_loads["slow_out"] == pytest.approx(0.004)


def test_per_port_overrides():
    cons = parse_sdc(SAMPLE)
    assert cons.input_delay_for("fast_in") == pytest.approx(0.3)
    assert cons.input_delay_for("other") == pytest.approx(0.1)
    assert cons.output_load_for("slow_out") == pytest.approx(0.004)


def test_missing_clock_rejected():
    with pytest.raises(ParseError):
        parse_sdc("set_input_delay 0.1 [all_inputs]")


def test_unknown_command_rejected():
    with pytest.raises(ParseError):
        parse_sdc("create_clock -period 1 [get_ports CLK]\n"
                  "set_false_path -from [get_ports a]\n")


def test_create_clock_requires_period():
    with pytest.raises(ParseError):
        parse_sdc("create_clock -name x [get_ports CLK]")


def test_unbalanced_brackets_rejected():
    with pytest.raises(ParseError):
        parse_sdc("create_clock -period 1 [get_ports CLK\n")


def test_comments_ignored():
    cons = parse_sdc("# comment\ncreate_clock -period 3 [get_ports CK]\n")
    assert cons.clock_period == pytest.approx(3.0)
    assert cons.clock_port == "CK"


def test_round_trip():
    original = Constraints(
        clock_period=1.8, clock_port="CK", input_delay=0.05,
        output_delay=0.1, input_slew=0.03,
        input_delays={"a": 0.2}, output_delays={"y": 0.15},
        output_loads={"y": 0.006})
    text = write_sdc(original)
    parsed = parse_sdc(text)
    assert parsed.clock_period == pytest.approx(original.clock_period)
    assert parsed.clock_port == original.clock_port
    assert parsed.input_slew == pytest.approx(original.input_slew)
    assert parsed.input_delays == pytest.approx(original.input_delays)
    assert parsed.output_delays == pytest.approx(original.output_delays)
    assert parsed.output_loads == pytest.approx(original.output_loads)
