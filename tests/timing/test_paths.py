"""Critical path extraction."""

import pytest

from repro.netlist.builder import NetlistBuilder
from repro.timing.constraints import Constraints
from repro.timing.paths import critical_instances, extract_path, worst_paths
from repro.timing.sta import TimingAnalyzer


def test_chain_path_reconstruction(library, nand_chain):
    report = TimingAnalyzer(nand_chain, library,
                            Constraints(clock_period=100.0)).run()
    path = extract_path(nand_chain, report, "n11")
    assert path is not None
    assert path.instances() == [f"g{i}" for i in range(12)]
    arrivals = [step.arrival for step in path.steps]
    assert arrivals == sorted(arrivals)


def test_path_render(library, nand_chain):
    report = TimingAnalyzer(nand_chain, library,
                            Constraints(clock_period=100.0)).run()
    path = extract_path(nand_chain, report, "n11")
    text = path.render()
    assert "n11" in text and "slack" in text


def test_worst_paths_sorted(library, s27):
    report = TimingAnalyzer(s27, library, Constraints(clock_period=5.0)).run()
    paths = worst_paths(s27, report, count=3)
    assert len(paths) >= 1
    slacks = [p.slack for p in paths]
    assert slacks == sorted(slacks)


def test_ff_endpoint_resolution(library, s27):
    report = TimingAnalyzer(s27, library, Constraints(clock_period=5.0)).run()
    setup_checks = [c for c in report.endpoint_checks if c.kind == "setup"]
    path = extract_path(s27, report, setup_checks[0].endpoint)
    assert path is not None
    assert path.steps


def test_unknown_endpoint_returns_none(library, c17):
    report = TimingAnalyzer(c17, library, Constraints(clock_period=2.0)).run()
    assert extract_path(c17, report, "no_such_port") is None


def test_critical_instances_threshold(library, nand_chain):
    # Tight period: the whole chain is critical.
    tight = TimingAnalyzer(nand_chain, library,
                           Constraints(clock_period=0.1)).run()
    critical = critical_instances(nand_chain, tight, slack_margin=0.0)
    assert len(critical) == 12
    # Loose period: nothing is critical at zero margin.
    loose = TimingAnalyzer(nand_chain, library,
                           Constraints(clock_period=100.0)).run()
    assert not critical_instances(nand_chain, loose, slack_margin=0.0)


def test_diamond_worst_branch_chosen(library):
    """Two reconvergent branches: the path walks the slower one."""
    builder = NetlistBuilder("diamond")
    builder.inputs("a")
    builder.outputs("y")
    # Short branch: one inverter; long branch: three inverters.
    builder.gate("INV_X1_LVT", "s1", A="a", Z="sh")
    builder.gate("INV_X1_LVT", "l1", A="a", Z="t1")
    builder.gate("INV_X1_LVT", "l2", A="t1", Z="t2")
    builder.gate("INV_X1_LVT", "l3", A="t2", Z="lo")
    builder.gate("NAND2_X1_LVT", "m", A="sh", B="lo", Z="y")
    nl = builder.build()
    report = TimingAnalyzer(nl, library, Constraints(clock_period=10.0)).run()
    path = extract_path(nl, report, "y")
    names = path.instances()
    assert "l1" in names and "l2" in names and "l3" in names
    assert "s1" not in names
