"""Static timing analysis engine."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import FlowError, TimingError
from repro.liberty.library import VARIANT_HVT
from repro.netlist.builder import NetlistBuilder
from repro.netlist.transform import swap_variant
from repro.timing.constraints import Constraints
from repro.timing.sta import TimingAnalyzer


def chain(length, cell="NAND2_X1_LVT"):
    builder = NetlistBuilder(f"chain{length}")
    builder.inputs("a")
    previous = "a"
    for i in range(length):
        builder.gate(cell, f"g{i}", A=previous, B=previous, Z=f"n{i}")
        previous = f"n{i}"
    builder.outputs(previous)
    return builder.build()


class TestCombinational:
    def test_chain_arrival_scales_with_length(self, library):
        cons = Constraints(clock_period=100.0)
        arr5 = 100.0 - TimingAnalyzer(chain(5), library, cons).run().wns
        arr10 = 100.0 - TimingAnalyzer(chain(10), library, cons).run().wns
        assert arr10 > 1.8 * arr5

    def test_positive_slack_when_period_loose(self, library, c17):
        report = TimingAnalyzer(c17, library,
                                Constraints(clock_period=10.0)).run()
        assert report.setup_met
        assert report.wns > 0

    def test_negative_slack_when_period_tight(self, library, c17):
        report = TimingAnalyzer(c17, library,
                                Constraints(clock_period=0.01)).run()
        assert not report.setup_met
        assert report.tns <= report.wns < 0

    def test_hvt_slower_than_lvt(self, library):
        cons = Constraints(clock_period=100.0)
        lvt_chain = chain(10)
        hvt_chain = chain(10)
        for inst in hvt_chain.instances.values():
            swap_variant(hvt_chain, inst, library, VARIANT_HVT)
        lvt_arr = 100.0 - TimingAnalyzer(lvt_chain, library, cons).run().wns
        hvt_arr = 100.0 - TimingAnalyzer(hvt_chain, library, cons).run().wns
        assert 1.1 < hvt_arr / lvt_arr < 1.45

    def test_derates_slow_down_instances(self, library, c17):
        cons = Constraints(clock_period=100.0)
        base = TimingAnalyzer(c17, library, cons).run()
        derated = TimingAnalyzer(
            c17, library, cons,
            derates={name: 1.5 for name in c17.instances}).run()
        base_arr = 100.0 - base.wns
        derated_arr = 100.0 - derated.wns
        assert derated_arr == pytest.approx(1.5 * base_arr, rel=0.05)

    def test_input_delay_shifts_arrival(self, library, c17):
        base = TimingAnalyzer(c17, library,
                              Constraints(clock_period=100.0)).run()
        shifted = TimingAnalyzer(
            c17, library,
            Constraints(clock_period=100.0, input_delay=1.0)).run()
        assert (100.0 - shifted.wns) == pytest.approx(
            (100.0 - base.wns) + 1.0, abs=1e-6)

    def test_output_delay_tightens_required(self, library, c17):
        base = TimingAnalyzer(c17, library,
                              Constraints(clock_period=100.0)).run()
        tightened = TimingAnalyzer(
            c17, library,
            Constraints(clock_period=100.0, output_delay=2.0)).run()
        assert tightened.wns == pytest.approx(base.wns - 2.0, abs=1e-6)

    def test_output_load_increases_delay(self, library, c17):
        loose = TimingAnalyzer(
            c17, library,
            Constraints(clock_period=100.0, output_load=0.001)).run()
        heavy = TimingAnalyzer(
            c17, library,
            Constraints(clock_period=100.0, output_load=0.02)).run()
        assert heavy.wns < loose.wns


class TestSequential:
    def test_s27_setup_and_hold_checks(self, library, s27):
        report = TimingAnalyzer(s27, library,
                                Constraints(clock_period=5.0)).run()
        kinds = {c.kind for c in report.endpoint_checks}
        assert "setup" in kinds
        assert "hold" in kinds
        assert report.setup_met
        assert report.hold_met

    def test_required_respects_setup_time(self, library, s27):
        report = TimingAnalyzer(s27, library,
                                Constraints(clock_period=5.0)).run()
        setup_checks = [c for c in report.endpoint_checks
                        if c.kind == "setup"]
        for check in setup_checks:
            assert check.required < 5.0  # period minus setup

    def test_clock_arrival_skew_applied(self, library):
        # ff1 -> inv -> ff2: skewing ff2's capture clock later relaxes
        # its setup check (ff1's launch is unaffected).
        builder = NetlistBuilder("skewed")
        builder.inputs("d")
        builder.outputs("q2")
        builder.dff("ff1", d="d", q="n1", cell_name="DFF_X1_LVT")
        builder.gate("INV_X1_LVT", "g1", A="n1", Z="n2")
        builder.dff("ff2", d="n2", q="q2", cell_name="DFF_X1_LVT")
        nl = builder.build()
        cons = Constraints(clock_period=5.0)
        base = TimingAnalyzer(nl, library, cons).run()
        skewed = TimingAnalyzer(nl, library, cons,
                                clock_arrivals={"ff2": 0.5}).run()
        base_check = next(c for c in base.endpoint_checks
                          if c.endpoint == "ff2/D" and c.kind == "setup")
        skew_check = next(c for c in skewed.endpoint_checks
                          if c.endpoint == "ff2/D" and c.kind == "setup")
        assert skew_check.slack > base_check.slack

    def test_critical_endpoint_identified(self, library, s27):
        report = TimingAnalyzer(s27, library,
                                Constraints(clock_period=5.0)).run()
        assert report.critical_endpoint is not None


class TestReport:
    def test_summary_renders(self, library, c17):
        report = TimingAnalyzer(c17, library,
                                Constraints(clock_period=2.0)).run()
        text = report.summary()
        assert "WNS" in text and "period" in text

    def test_slack_of_unknown_net_is_inf(self, library, c17):
        report = TimingAnalyzer(c17, library,
                                Constraints(clock_period=2.0)).run()
        assert report.slack_of_net("ghost") == float("inf")


@settings(max_examples=20, deadline=None)
@given(length=st.integers(min_value=1, max_value=15))
def test_property_arrival_monotone_in_depth(length):
    from repro.liberty.synth import build_default_library

    library = build_default_library()
    cons = Constraints(clock_period=100.0)
    shorter = 100.0 - TimingAnalyzer(chain(length), library, cons).run().wns
    longer = 100.0 - TimingAnalyzer(chain(length + 1), library,
                                    cons).run().wns
    assert longer > shorter


def test_constraints_validation():
    with pytest.raises(TimingError):
        Constraints(clock_period=0.0)
    with pytest.raises(TimingError):
        Constraints(clock_period=-1.0)


def test_constraints_scaled():
    cons = Constraints(clock_period=2.0, input_delay=0.1)
    tighter = cons.scaled(0.5)
    assert tighter.clock_period == pytest.approx(1.0)
    assert tighter.input_delay == pytest.approx(0.1)
