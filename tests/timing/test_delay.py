"""Net load / wire delay model (NetModel)."""

import pytest

from repro.routing.extract import NetParasitics
from repro.timing.constraints import Constraints
from repro.timing.delay import NetModel


def test_total_load_sums_pin_caps(library, c17):
    model = NetModel(c17, library, Constraints(clock_period=2.0))
    net = c17.net("N16")  # two NAND2 sinks
    pin_cap = library.cell("NAND2_X1_LVT").pins["A"].capacitance
    assert model.total_load(net) == pytest.approx(2 * pin_cap)


def test_output_port_load_added(library, c17):
    cons = Constraints(clock_period=2.0, output_load=0.005)
    model = NetModel(c17, library, cons)
    net = c17.net("N22")  # primary output, no instance sinks
    assert model.total_load(net) == pytest.approx(0.005)


def test_per_port_load_override(library, c17):
    cons = Constraints(clock_period=2.0, output_load=0.005,
                       output_loads={"N22": 0.02})
    model = NetModel(c17, library, cons)
    assert model.total_load(c17.net("N22")) == pytest.approx(0.02)


def test_keeper_pins_count_as_load(library, c17):
    from repro.netlist.core import PinDirection

    cons = Constraints(clock_period=2.0, output_load=0.0)
    before = NetModel(c17, library, cons).total_load(c17.net("N22"))
    holder = c17.add_instance("h1", "HOLDER_X1")
    c17.connect(holder, "Z", "N22", PinDirection.INOUT, keeper=True)
    after = NetModel(c17, library, cons).total_load(c17.net("N22"))
    assert after > before


def test_wire_delay_from_parasitics(library, c17):
    net = c17.net("N16")
    sink = net.sinks[0]
    parasitics = {"N16": NetParasitics(
        net_name="N16", total_cap_pf=0.004, total_res_kohm=0.1,
        length_um=20.0, sink_delays={sink.full_name: 0.0123})}
    model = NetModel(c17, library, Constraints(clock_period=2.0),
                     parasitics)
    assert model.wire_delay(net, sink) == pytest.approx(0.0123)
    other = net.sinks[1]
    assert model.wire_delay(net, other) == 0.0  # unknown sink -> 0


def test_wire_cap_added_to_load(library, c17):
    cons = Constraints(clock_period=2.0)
    bare = NetModel(c17, library, cons).total_load(c17.net("N16"))
    parasitics = {"N16": NetParasitics(
        net_name="N16", total_cap_pf=0.01, total_res_kohm=0.1,
        length_um=50.0)}
    loaded = NetModel(c17, library, cons, parasitics) \
        .total_load(c17.net("N16"))
    assert loaded == pytest.approx(bare + 0.01)


def test_cache_invalidation(library, c17):
    from repro.netlist.core import PinDirection

    cons = Constraints(clock_period=2.0)
    model = NetModel(c17, library, cons)
    net = c17.net("N16")
    before = model.total_load(net)
    # Add a sink; the cached value is stale until invalidated.
    inv = c17.add_instance("extra", "INV_X1_LVT")
    c17.connect(inv, "A", net, PinDirection.INPUT)
    assert model.total_load(net) == pytest.approx(before)
    model.invalidate(net)
    assert model.total_load(net) > before
    model.invalidate()  # full clear also works
    assert model.total_load(net) > before
