"""Build a custom-technology library and round-trip it through .lib.

Shows the library substrate end to end: define a modified process
(lower supply, tighter Vth split), synthesize the multi-Vth library,
serialize to Liberty text, re-parse it, and verify the round trip.
"""

from repro import Technology
from repro.liberty.library import library_from_ast
from repro.liberty.parser import parse_liberty
from repro.liberty.synth import LibraryBuilder
from repro.liberty.writer import write_liberty


def main() -> int:
    tech = Technology(
        name="custom65lp",
        vdd=1.0,
        vth_low=0.28,
        vth_high=0.40,
    )
    print(f"Custom technology: {tech.name}, Vdd={tech.vdd} V")
    print(f"  leakage ratio low/high Vth: {tech.leakage_ratio():.1f}x")

    library = LibraryBuilder(tech, name="custom_smt").build()
    print(f"  synthesized {len(library)} cells")

    text = write_liberty(library)
    print(f"  Liberty text: {len(text.splitlines())} lines")
    path = "custom_smt.lib"
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    print(f"  wrote {path}")

    reparsed = library_from_ast(parse_liberty(text), tech=tech)
    assert set(reparsed.cells) == set(library.cells)
    sample = reparsed.cell("NAND2_X1_MTV")
    original = library.cell("NAND2_X1_MTV")
    assert abs(sample.area - original.area) < 1e-6
    print(f"  round trip OK — e.g. {sample.name}: area "
          f"{sample.area:.2f} um^2, standby "
          f"{sample.default_leakage_nw * 1e3:.2f} pW, pins "
          f"{', '.join(sample.pins)}")

    print("\nDelay comparison at (slew=0.02ns, load=0.004pF):")
    for variant in ("LVT", "MTV", "HVT"):
        cell = reparsed.cell(f"NAND2_X1_{variant}")
        arc = cell.single_output().arc_from("A")
        rise, fall = arc.delay(0.02, 0.004)
        print(f"  {variant}: {max(rise, fall):.4f} ns")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
