"""When does sleeping pay?  Break-even analysis of the improved SMT.

Runs the improved Selective-MT flow on c432 through the Workspace
facade, then asks the standby-transition engine the question Table 1
cannot answer: given the wake-up transients, the rush-current-bounded
wake-up schedule and the energy each sleep/wake cycle costs, how long
must an idle interval be before cutting the virtual grounds saves net
energy — nominally and at the hot corners where leakage explodes?

Run from the repo root::

    PYTHONPATH=src python examples/standby_breakeven.py
"""

from repro.api import StandbyRequest, Workspace
from repro.config import FlowConfig
from repro.standby.scenario import resolve_scenario
from repro.vgnd.report import render_standby_table


def main() -> int:
    workspace = Workspace(config=FlowConfig(timing_margin=0.12))
    result = workspace.standby("c432", StandbyRequest(
        corners=("tt_nom", "ss_1.08v_125c", "ff_1.32v_125c")))
    print(render_standby_table(result))

    print()
    nominal = result.corner_rows[0]
    print(f"Nominal break-even idle interval: "
          f"{nominal.break_even_ns / 1e3:.1f} us "
          f"(wake {nominal.wake_latency_ns:.3f} ns, "
          f"cycle energy {nominal.cycle_energy_pj:.3f} pJ).")
    for row in result.corner_rows[1:]:
        print(f"  at {row.corner}: break-even "
              f"{row.break_even_ns / 1e3:.1f} us — leakier silicon "
              f"pays for sleeping sooner.")

    # Walk one period of the frame-renderer scenario through the
    # controller state machine.
    scenario = resolve_scenario("periodic_frame")
    sleep_lat = max(tr.sleep_latency_ns for tr in result.transients)
    wake_lat = result.schedule.total_latency_ns
    print(f"\n{scenario.name}: duty {100 * scenario.duty_cycle:.1f}%, "
          f"one period = {scenario.active_ns / 1e6:.1f} ms active + "
          f"{scenario.idle_ns / 1e6:.1f} ms idle")
    period = scenario.active_ns + scenario.idle_ns
    for fraction in (0.05, 0.2, 0.5, 0.9999):
        t = fraction * period
        mode = scenario.mode_at(t, sleep_lat, wake_lat)
        print(f"  t = {t / 1e6:7.2f} ms -> {mode.value}")
    outcome = result.outcome(scenario.name, "tt_nom")
    print(f"  net savings over {scenario.horizon_ns / 1e9:.1f} s: "
          f"{outcome.net_savings_pj / 1e6:.3f} uJ "
          f"({100 * outcome.savings_fraction:.1f}% of the always-on "
          f"leakage energy)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
