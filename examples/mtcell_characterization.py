"""Characterize the MT-cell variants (the Fig. 1 story).

Prints delay / standby leakage / area for every variant of a few base
cells, plus the underlying device-model numbers that make the
Selective-MT technique work.
"""

from repro import build_default_library
from repro.device.mosfet import MosfetModel
from repro.liberty.library import (
    VARIANT_CMT,
    VARIANT_HVT,
    VARIANT_LVT,
    VARIANT_MT,
    VARIANT_MTV,
)

VARIANTS = (VARIANT_LVT, VARIANT_HVT, VARIANT_MT, VARIANT_MTV, VARIANT_CMT)
BASES = ("INV_X1", "NAND2_X1", "NOR2_X1", "XOR2_X1")


def main() -> int:
    library = build_default_library()
    tech = library.tech

    print(f"Technology: {tech.name}  Vdd={tech.vdd} V  "
          f"Vth(low/high)={tech.vth_low}/{tech.vth_high} V")
    nmos_low = MosfetModel(tech, tech.vth_low, "nmos")
    nmos_high = MosfetModel(tech, tech.vth_high, "nmos")
    print(f"device leakage ratio (low/high Vth): "
          f"{nmos_low.subthreshold_current(1.0) / nmos_high.subthreshold_current(1.0):.1f}x")
    print(f"device drive ratio   (low/high Vth): "
          f"{nmos_high.effective_resistance(1.0) / nmos_low.effective_resistance(1.0):.2f}x slower\n")

    for base in BASES:
        print(f"--- {base} ---")
        print(f"{'variant':<5} {'delay(ns)':>10} {'standby(nW)':>12} "
              f"{'area(um2)':>10} {'pins':<24}")
        for variant in VARIANTS:
            name = f"{base}_{variant}"
            if name not in library:
                continue
            cell = library.cell(name)
            arc = cell.single_output().arc_from(
                cell.data_input_names()[0])
            rise, fall = arc.delay(0.02, 0.004)
            print(f"{variant:<5} {max(rise, fall):10.4f} "
                  f"{cell.default_leakage_nw:12.5f} {cell.area:10.2f} "
                  f"{','.join(cell.pins):<24}")
        print()

    print("Switch cell family:")
    print(f"{'cell':<12} {'width(um)':>10} {'Ron(kOhm)':>10} "
          f"{'leak(nW)':>9} {'area(um2)':>10}")
    model = MosfetModel(tech, tech.vth_high, "nmos")
    for switch in library.switch_cells():
        print(f"{switch.name:<12} {switch.switch_width_um:10.1f} "
              f"{model.on_resistance(switch.switch_width_um):10.4f} "
              f"{switch.default_leakage_nw:9.3f} {switch.area:10.1f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
