"""Reproduce Table 1 of the paper.

Runs all three techniques (Dual-Vth, conventional Selective-MT,
improved Selective-MT) on the circuit A and circuit B stand-ins with
the pinned experiment configuration, and prints paper-vs-measured
rows.

This is the headline experiment; expect a couple of minutes.
"""

from repro.api import Workspace
from repro.api.studies import table1_study
from repro.config import Technique


def main() -> int:
    print("Synthesizing library and running 6 flows (2 circuits x 3 "
          "techniques)...\n")
    workspace = Workspace()
    result = table1_study(workspace)
    print(result.render())

    print("\nHeadline claims (improved vs conventional):")
    for circuit in ("A", "B"):
        conv_leak = result.measured(circuit, Technique.CONVENTIONAL_SMT,
                                    "leakage")
        imp_leak = result.measured(circuit, Technique.IMPROVED_SMT,
                                   "leakage")
        conv_area = result.measured(circuit, Technique.CONVENTIONAL_SMT,
                                    "area")
        imp_area = result.measured(circuit, Technique.IMPROVED_SMT, "area")
        leak_saving = 100.0 * (conv_leak - imp_leak) / conv_leak
        area_saving = 100.0 * (conv_area - imp_area) / conv_area
        print(f"  circuit {circuit}: leakage -{leak_saving:.0f}% "
              f"(paper ~35-40%), total area -{area_saving:.0f}% "
              f"(paper ~19-20%)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
