"""Export a finished design database (the hand-off package).

Runs the improved flow on s344, writes gate-level Verilog, DEF
placement, SPEF parasitics, SDC constraints, the Liberty library and a
text report to ``./export_s344/``, then re-parses every artifact to
prove the package is self-consistent.
"""

from repro import (
    FlowConfig,
    SelectiveMtFlow,
    Technique,
    build_default_library,
    load_circuit,
)
from repro.core.artifacts import export_design, verify_export
from repro.netlist.stats import design_stats


def main() -> int:
    library = build_default_library()
    netlist = load_circuit("s344")
    flow = SelectiveMtFlow(netlist, library, Technique.IMPROVED_SMT,
                           FlowConfig(timing_margin=0.15))
    result = flow.run()

    print(design_stats(result.netlist, library).render())

    manifest = export_design(result, library, "export_s344")
    print(f"\nwrote design database to {manifest.directory}/")
    for kind, path in manifest.files.items():
        print(f"  {kind:<8} {path}")

    problems = verify_export(manifest, library)
    if problems:
        print("\nverification problems:")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print("\nall artifacts re-parse cleanly — package verified.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
