"""Quickstart for the `repro.api` Workspace/Design facade.

Usage::

    python examples/api_quickstart.py [circuit_name]

Demonstrates the whole capability surface through one cached handle —
analyze, optimize, corner signoff, Monte-Carlo, technique sweep — and
then round-trips a result through the schema registry and a local
job-service instance (submit -> poll -> result over real HTTP).
"""

import sys
import threading

from repro.api import ServiceClient, Workspace, schemas, serve
from repro.config import FlowConfig


def main() -> int:
    circuit = sys.argv[1] if len(sys.argv) > 1 else "c432"

    # --- the three-line facade -------------------------------------------
    ws = Workspace(config=FlowConfig(timing_margin=0.12))
    design = ws.design(circuit)
    print(design.optimize(technique="improved_smt"))

    baseline = design.analyze()
    print(f"\nbaseline (all-LVT): {baseline.leakage_nw:.2f} nW leakage, "
          f"clock {baseline.clock_period_ns:.3f} ns")

    signoff = design.signoff(corners=("tt_nom", "ss_1.08v_125c"))
    for row in signoff.rows:
        print(f"  {row.corner:<14} leak {row.leakage_nw:10.2f} nW  "
              f"wns {row.wns:+.4f}")

    mc = design.montecarlo(samples=16, seed=1)
    print(f"Monte-Carlo p95: {mc.statistics.p95_nw:.2f} nW "
          f"(nominal {mc.nominal_leakage_nw:.2f})")

    print()
    print(design.sweep().render())

    # Typed results round-trip through the schema registry.
    payload = schemas.check_round_trip(signoff)
    print(f"\nserialized as {payload['schema']} "
          f"v{payload['schema_version']}")

    # --- the same design through the job service --------------------------
    server = serve(port=0)  # ephemeral port, workers running
    threading.Thread(target=server.serve_forever, daemon=True).start()
    client = ServiceClient(server.address)
    job_id = client.submit("optimize", circuit,
                           config={"timing_margin": 0.12})
    status = client.wait(job_id)
    result = client.result(job_id)
    print(f"\nservice {server.address}: job {job_id} -> "
          f"{status['status']}, leakage {result.leakage_nw:.2f} nW")
    print("cache stats:", client.health()["cache_stats"].get("flow"))
    server.shutdown()
    server.service.close()

    # All caches are warm now: these are lookups, not re-compiles.
    assert design.optimize(technique="improved_smt") is not None
    print("\nworkspace cache stats:", ws.cache_stats().get("flow"))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
