"""Quickstart: run the improved Selective-MT flow on one circuit.

Usage::

    python examples/quickstart.py [circuit_name]

Loads a benchmark circuit (default ``c880``), runs the full Fig. 4 flow
with the improved technique, and prints the per-stage log, the standby
leakage breakdown and the final timing summary.
"""

import sys

from repro import (
    FlowConfig,
    SelectiveMtFlow,
    Technique,
    build_default_library,
    load_circuit,
)
from repro import units
from repro.power.report import render_leakage_table


def main() -> int:
    circuit = sys.argv[1] if len(sys.argv) > 1 else "c880"
    print(f"Loading circuit {circuit} and synthesizing the multi-Vth "
          f"library...")
    library = build_default_library()
    netlist = load_circuit(circuit)
    print(f"  {netlist}")

    config = FlowConfig(timing_margin=0.10)
    flow = SelectiveMtFlow(netlist, library, Technique.IMPROVED_SMT, config)
    result = flow.run()

    print("\nFlow stages (Fig. 4):")
    print(result.render_stages())

    print()
    print(render_leakage_table(result.leakage))

    print(f"\ntotal cell area : {units.pretty_area(result.total_area)}")
    print(f"final timing    : {result.timing.summary()}")
    if result.network is not None:
        summary = result.network.summary()
        print(f"VGND network    : {summary['clusters']:.0f} clusters, "
              f"avg {summary['avg_cluster_size']:.1f} MT-cells/switch, "
              f"worst bounce {summary['worst_bounce_v'] * 1e3:.1f} mV "
              f"(limit {summary['bounce_limit_v'] * 1e3:.1f} mV)")
    if result.mte is not None:
        print(f"MTE wake-up     : {result.mte.wakeup_delay_ns:.3f} ns "
              f"through {result.mte.buffer_count} buffers")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
