"""Demonstrate standby behaviour: Figs. 2/3 in action.

Builds a small pipeline, converts it to conventional (Fig. 2) and
improved (Fig. 3) Selective-MT forms, then simulates active and
standby modes:

* without output holders, the improved MT-cells float (Z) and powered
  gates see unknown inputs — the hazard the paper's holder rule fixes;
* with holders, every held net sits at logic one;
* the two constructions are functionally equivalent in active mode.
"""

from repro import build_default_library
from repro.core.output_holder import insert_output_holders
from repro.liberty.library import VARIANT_CMT, VARIANT_MTV
from repro.netlist.builder import NetlistBuilder
from repro.netlist.transform import swap_variant
from repro.sim.equivalence import check_equivalence
from repro.sim.logic import Simulator


def build_pipeline(name):
    """in -> NAND(MT) -> INV(MT) -> NAND(HVT) -> out, plus a side load."""
    builder = NetlistBuilder(name)
    builder.inputs("a", "b", "c")
    builder.outputs("y")
    builder.gate("NAND2_X1_LVT", "mt_a", A="a", B="b", Z="n1")
    builder.gate("INV_X1_LVT", "mt_b", A="n1", Z="n2")
    builder.gate("NAND2_X1_HVT", "hv_c", A="n2", B="c", Z="y")
    return builder.build()


def main() -> int:
    library = build_default_library()

    # --- improved construction (Fig. 3) --------------------------------
    improved = build_pipeline("improved")
    for name in ("mt_a", "mt_b"):
        swap_variant(improved, improved.instance(name), library,
                     VARIANT_MTV)

    sim = Simulator(improved, library)
    vector = {"a": 1, "b": 1, "c": 1}
    print("Improved Selective-MT, NO holders yet:")
    active = sim.evaluate(vector)
    print(f"  active : n2={active.value('n2')}  y={active.value('y')}")
    standby = sim.evaluate(vector, standby=True)
    print(f"  standby: n2={standby.value('n2')} (floating!)  "
          f"y={standby.value('y')}")
    print(f"  powered pins seeing Z: {standby.floating_input_pins}")

    improved.add_input("MTE")
    holders = insert_output_holders(improved, library)
    sim = Simulator(improved, library)
    print(f"\nAfter holder insertion ({len(holders)} holder on the "
          f"MT-to-powered boundary):")
    standby = sim.evaluate(vector, standby=True)
    print(f"  standby: n2={standby.value('n2')} (held to 1)  "
          f"y={standby.value('y')}")
    print(f"  powered pins seeing Z: {standby.floating_input_pins}")
    print("  note: n1 (MT feeding only MT) needed no holder — the "
          "paper's rule.")

    # --- conventional construction (Fig. 2) ------------------------------
    conventional = build_pipeline("conventional")
    for name in ("mt_a", "mt_b"):
        swap_variant(conventional, conventional.instance(name), library,
                     VARIANT_CMT)
    sim_conv = Simulator(conventional, library)
    standby_conv = sim_conv.evaluate(vector, standby=True)
    print("\nConventional Selective-MT (embedded holders):")
    print(f"  standby: n1={standby_conv.value('n1')} "
          f"n2={standby_conv.value('n2')}  y={standby_conv.value('y')}")

    # --- the paper's equivalence claim ------------------------------------
    report = check_equivalence(conventional, improved, library)
    print(f"\nFig.2 vs Fig.3 equivalence: "
          f"{'EQUIVALENT' if report.equivalent else 'MISMATCH'} "
          f"({report.vectors_checked} vectors, "
          f"exhaustive={report.exhaustive})")
    return 0 if report.equivalent else 1


if __name__ == "__main__":
    raise SystemExit(main())
