"""Trace-driven sleep-policy study through the Workspace facade.

Reads the three example idle traces (``examples/traces/``), reduces
each to an empirical scenario, and sweeps domain-plan x threshold
candidates on c432 at three PVT corners in one batched pass.  Prints
the Pareto front of net standby savings vs worst-case wake latency vs
peak wake rush, plus a seeded bootstrap band showing how stable the
bursty trace's quantile grid is.

Run with ``PYTHONPATH=src python examples/policy_study.py``.
"""

import pathlib

from repro.api import PolicyRequest, Workspace
from repro.config import FlowConfig
from repro.policy.traces import confidence_band, load_trace, trace_scenario

TRACES = pathlib.Path(__file__).resolve().parent / "traces"
CORNERS = ("tt_nom", "ff_1.32v_125c", "ss_1.08v_125c")


def main() -> int:
    # Small clusters give c432 a multi-cluster network worth grouping
    # into power domains (the default clustering yields one cluster).
    workspace = Workspace(config=FlowConfig(max_cells_per_switch=4,
                                            max_rail_length_um=120.0))

    payloads = []
    for path in sorted(TRACES.iterdir()):
        trace = load_trace(path)
        scenario = trace_scenario(trace, active_ns=trace.active_ns
                                  or 400.0)
        payloads.append(scenario)
        print(f"{trace.name:11s}: {len(trace.intervals_ns)} idle "
              f"intervals -> {len(scenario.points)}-point grid, "
              f"mean idle {scenario.idle_ns:,.0f} ns")

    band = confidence_band(load_trace(TRACES / "bursty.trace"))
    worst = max(h - l for l, h in zip(band.low_ns, band.high_ns))
    print(f"bursty bootstrap ({band.resamples} resamples, seed "
          f"{band.seed}): widest {band.confidence:.0%} quantile band "
          f"{worst:,.0f} ns\n")

    request = PolicyRequest(scenario_payloads=tuple(payloads),
                            corners=CORNERS, candidates=512)
    result = workspace.policy("c432", request)
    print(result.render())

    best = result.best
    print(f"\nRecommended policy #{best.policy_id} ({best.plan}): "
          f"{best.sleeping_domains}/{len(best.domains)} domains sleep, "
          f"net {best.net_savings_pj:,.1f} pJ over the horizon at "
          f"{best.worst_wake_latency_ns:,.2f} ns worst wake / "
          f"{best.peak_rush_ma:,.2f} mA peak rush")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
