"""Sweep the ISCAS-class suite through all three techniques.

For each circuit, prints area and standby leakage normalized to the
Dual-Vth baseline — Table 1's format extended across the benchmark
suite.  The sweep routes through the process-pool experiment runner,
so ``--jobs N`` fans the circuit x technique grid out over N worker
processes with bit-identical numbers::

    python examples/iscas_sweep.py c432 c880 s1196 --jobs 4
"""

import argparse

from repro import FlowConfig, build_default_library
from repro.config import Technique
from repro.runner import SWEEP_HEADER, render_sweep_row, run_sweep

DEFAULT_SWEEP = ("c432", "c880", "s298", "s344")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("circuits", nargs="*", default=list(DEFAULT_SWEEP),
                        help="circuit names (default: %(default)s)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="process-pool width (1 = in-process)")
    args = parser.parse_args()

    library = build_default_library()
    config = FlowConfig(timing_margin=0.10)
    comparisons = run_sweep(args.circuits, config=config, jobs=args.jobs,
                            library=library)

    print(SWEEP_HEADER)
    for comparison in comparisons:
        for row in comparison.rows:
            print(render_sweep_row(comparison.circuit, row))
        improved = comparison.row(Technique.IMPROVED_SMT)
        conventional = comparison.row(Technique.CONVENTIONAL_SMT)
        saving = conventional.area_pct - improved.area_pct
        print(f"{'':<10} improved saves {saving:.1f} area points and "
              f"{conventional.leakage_pct - improved.leakage_pct:.1f} "
              f"leakage points vs conventional\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
