"""Sweep the ISCAS-class suite through all three techniques.

For each circuit, prints area and standby leakage normalized to the
Dual-Vth baseline — Table 1's format extended across the benchmark
suite.  Pass circuit names as arguments to customize the sweep::

    python examples/iscas_sweep.py c432 c880 s1196
"""

import sys

from repro import FlowConfig, build_default_library, load_circuit
from repro.config import Technique
from repro.core.compare import compare_techniques

DEFAULT_SWEEP = ("c432", "c880", "s298", "s344")


def main() -> int:
    circuits = sys.argv[1:] or list(DEFAULT_SWEEP)
    library = build_default_library()
    config = FlowConfig(timing_margin=0.10)

    print(f"{'circuit':<10} {'technique':<18} {'area%':>8} {'leak%':>8} "
          f"{'MT':>5} {'SW':>4} {'HOLD':>5}")
    for name in circuits:
        netlist = load_circuit(name)
        comparison = compare_techniques(netlist, library, config,
                                        circuit_name=name)
        for row in comparison.rows:
            print(f"{name:<10} {row.technique.value:<18} "
                  f"{row.area_pct:8.2f} {row.leakage_pct:8.2f} "
                  f"{row.mt_cells:5d} {row.switches:4d} {row.holders:5d}")
        improved = comparison.row(Technique.IMPROVED_SMT)
        conventional = comparison.row(Technique.CONVENTIONAL_SMT)
        saving = conventional.area_pct - improved.area_pct
        print(f"{'':<10} improved saves {saving:.1f} area points and "
              f"{conventional.leakage_pct - improved.leakage_pct:.1f} "
              f"leakage points vs conventional\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
