"""Sleep-policy optimizer benchmarks: candidate-sweep throughput.

Records ``BENCH_policy.json`` (see ``recorder.policy_json_path``):

* ``candidate_sweep`` — >= 1000 candidate (domain plan, threshold)
  policies against the all-MTV c432 network at three PVT corners,
  evaluated as one batched pass, scalar vs numpy, plus the asserted
  speedup (``policies_per_s`` per backend).

Asserted floor: the numpy backend sustains **>= 2x** the scalar sweep
throughput.  The sweep is the ISSUE acceptance configuration — at
least 1000 candidates x three corners on c432 in one batched array
pass — and the scalar and numpy results are asserted bit-identical
here as well as in the unit suite.
"""

from __future__ import annotations

import dataclasses
import time

import pytest

np = pytest.importorskip("numpy")

from recorder import policy_json_path, record

from repro.benchcircuits.suite import load_circuit
from repro.liberty.library import VARIANT_MTV
from repro.netlist.techmap import technology_map
from repro.netlist.transform import swap_variant
from repro.placement.legalize import legalize
from repro.placement.placer import GlobalPlacer
from repro.policy.optimize import PolicyOptimizer
from repro.standby.scenario import resolve_scenario
from repro.vgnd.cluster import ClusterConfig, MtClusterer
from repro.vgnd.sizing import SwitchSizer

CANDIDATES = 1_000
CORNERS = ("tt_nom", "ff_1.32v_125c", "ss_1.08v_125c")
SPEEDUP_FLOOR = 2.0


@pytest.fixture(scope="module")
def policy_network(library):
    netlist = load_circuit("c432")
    technology_map(netlist, library)
    placement = GlobalPlacer(netlist, library).run()
    legalize(placement, netlist, library)
    mt_names = []
    for inst in list(netlist.instances.values()):
        cell = library.cell(inst.cell_name)
        if library.has_variant(cell, VARIANT_MTV):
            swap_variant(netlist, inst, library, VARIANT_MTV)
            mt_names.append(inst.name)
    # Small clusters => a many-cluster network, so the batched kernel
    # (not the scalar per-corner prologue) dominates the wall-clock.
    config = ClusterConfig(max_cells_per_switch=4,
                           max_rail_length_um=120.0)
    network = MtClusterer(netlist, library, placement,
                          config).build(mt_names)
    SwitchSizer(library, config.bounce_limit_v).size_network(network)
    return netlist, network


def _run(netlist, network, library, candidates, backend):
    scenarios = [resolve_scenario("mostly_idle"),
                 resolve_scenario("bursty"),
                 resolve_scenario("interactive")]
    optimizer = PolicyOptimizer(
        netlist, library, network, scenarios, corners=CORNERS,
        candidates=candidates, compute_backend=backend)
    started = time.perf_counter()
    result = optimizer.run()
    return result, time.perf_counter() - started


def test_bench_candidate_sweep(policy_network, library):
    netlist, network = policy_network

    # Warm both paths once (imports, corner memo, allocator), then
    # time the best of two — these are sub-second sweeps.
    _run(netlist, network, library, 16, "python")
    _run(netlist, network, library, 16, "numpy")
    scalar_result, scalar_s = min(
        (_run(netlist, network, library, CANDIDATES, "python")
         for _ in range(2)), key=lambda pair: pair[1])
    numpy_result, numpy_s = min(
        (_run(netlist, network, library, CANDIDATES, "numpy")
         for _ in range(2)), key=lambda pair: pair[1])

    assert scalar_result.candidates >= CANDIDATES
    assert scalar_result.corners == CORNERS
    assert dataclasses.replace(numpy_result,
                               compute_backend="python") == scalar_result
    swept = scalar_result.candidates
    speedup = scalar_s / numpy_s
    metrics = {
        "candidates": swept,
        "corners": len(CORNERS),
        "clusters": len(network.clusters),
        "pareto_points": len(scalar_result.pareto),
        "python_s": round(scalar_s, 4),
        "numpy_s": round(numpy_s, 4),
        "python_policies_per_s": round(swept / scalar_s, 1),
        "numpy_policies_per_s": round(swept / numpy_s, 1),
        "speedup": round(speedup, 2),
        "speedup_floor": SPEEDUP_FLOOR,
        "bit_identical": True,
    }
    record("candidate_sweep", metrics, policy_json_path())
    print(f"\ncandidate sweep x{swept}: scalar {scalar_s:.3f}s, "
          f"numpy {numpy_s:.3f}s ({speedup:.1f}x)")
    assert speedup >= SPEEDUP_FLOOR
