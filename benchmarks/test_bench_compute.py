"""Compute-backend benchmarks: scalar vs numpy kernel throughput.

Records ``BENCH_compute.json`` (see ``recorder.compute_json_path``):

* ``sta_<n>`` — one full STA propagation on generated layered circuits
  of 1k / 10k / 50k instances, three ways: scalar, numpy cold (first
  run, includes lowering the netlist into the array view) and numpy
  warm (view built — the steady state of any STA-in-the-loop use);
* ``mc_10k`` — Monte-Carlo samples/sec on the 10k-instance circuit
  with per-sample timing, scalar vs one batched array pass.

Asserted floor (the tentpole's acceptance bar): the numpy backend
sustains **>= 5x** the scalar Monte-Carlo throughput on the 10k
circuit.  The single-shot STA assertions are looser (equivalence plus
a sanity factor) because one cold run amortizes nothing.
"""

from __future__ import annotations

import time

import pytest

np = pytest.importorskip("numpy")

from recorder import compute_json_path, record

from repro.benchcircuits.generator import GeneratorConfig, generate_circuit
from repro.liberty.library import VARIANT_LVT
from repro.netlist.techmap import technology_map
from repro.timing.constraints import Constraints
from repro.timing.session import TimingSession
from repro.variation.montecarlo import McConfig, MonteCarloEngine

SIZES = (1_000, 10_000, 50_000)
CLOCK_PERIOD_NS = 6.0


def _generated(n_gates: int, library):
    config = GeneratorConfig(
        n_gates=n_gates, n_inputs=64, n_outputs=32, n_ffs=32,
        depth=max(12, n_gates // 400), seed=3)
    netlist = generate_circuit(f"bench{n_gates}", config)
    technology_map(netlist, library, VARIANT_LVT)
    return netlist


def _full_sta_seconds(session: TimingSession) -> float:
    """One full propagation, forced by dirtying every derate."""
    session.set_derates({name: 1.0 + 1e-9 for name in
                         session.netlist.instances})
    started = time.perf_counter()
    session.report()
    return time.perf_counter() - started


@pytest.fixture(scope="module")
def circuits(library):
    return {n: _generated(n, library) for n in SIZES}


@pytest.mark.parametrize("n_gates", SIZES)
def test_bench_full_sta(circuits, library, n_gates, tmp_path,
                        monkeypatch):
    from repro.compute import lowercache

    netlist = circuits[n_gates]
    constraints = Constraints(clock_period=CLOCK_PERIOD_NS)
    scalar = TimingSession(netlist, library, constraints,
                           compute_backend="python")
    started = time.perf_counter()
    scalar_report = scalar.report()
    scalar_cold_s = time.perf_counter() - started
    scalar_warm_s = _full_sta_seconds(scalar)

    monkeypatch.delenv(lowercache.ENV_VAR, raising=False)
    vector = TimingSession(netlist.clone(), library, constraints,
                           compute_backend="numpy")
    started = time.perf_counter()
    vector_report = vector.report()
    vector_cold_s = time.perf_counter() - started
    vector_warm_s = _full_sta_seconds(vector)

    # Cold start again, this time from a warm persistent lowering
    # cache (the steady state of any repeat invocation: second CLI
    # run, service restart, re-queued runner job).
    monkeypatch.setenv(lowercache.ENV_VAR, str(tmp_path))
    TimingSession(netlist.clone(), library, constraints,
                  compute_backend="numpy").report()   # populates disk
    lowercache.reset_stats()
    cached = TimingSession(netlist.clone(), library, constraints,
                           compute_backend="numpy")
    started = time.perf_counter()
    cached_report = cached.report()
    cached_cold_s = time.perf_counter() - started
    assert lowercache.stats()["hits"] == 1
    monkeypatch.delenv(lowercache.ENV_VAR, raising=False)

    assert vector_report.wns == pytest.approx(scalar_report.wns, rel=1e-9)
    assert cached_report.wns == vector_report.wns
    instances = len(netlist.instances)
    record(f"sta_{n_gates}", {
        "instances": instances,
        "scalar_cold_s": round(scalar_cold_s, 4),
        "scalar_full_s": round(scalar_warm_s, 4),
        "numpy_cold_s": round(vector_cold_s, 4),
        "numpy_cached_cold_s": round(cached_cold_s, 4),
        "numpy_full_s": round(vector_warm_s, 4),
        "scalar_inst_per_s": round(instances / scalar_warm_s),
        "numpy_inst_per_s": round(instances / vector_warm_s),
        "warm_speedup": round(scalar_warm_s / vector_warm_s, 2),
    }, path=compute_json_path())
    # Warm numpy full runs must at least keep pace at scale; the real
    # bar is the batched Monte-Carlo case below.  With a warm lowering
    # cache, even the numpy COLD start must keep pace with scalar cold
    # — lowering was the entire cold-start gap.
    if n_gates >= 10_000:
        assert vector_warm_s < scalar_warm_s
        assert cached_cold_s <= scalar_cold_s, \
            f"cached numpy cold {cached_cold_s:.2f}s > scalar cold " \
            f"{scalar_cold_s:.2f}s"


def test_bench_montecarlo_10k(circuits, library):
    netlist = circuits[10_000]
    constraints = Constraints(clock_period=CLOCK_PERIOD_NS)
    samples = 8
    mc = McConfig(samples=samples, seed=1, timing=True)

    scalar = MonteCarloEngine(netlist, library, mc,
                              constraints=constraints,
                              compute_backend="python")
    started = time.perf_counter()
    scalar_samples = scalar.run()
    scalar_s = time.perf_counter() - started

    vector = MonteCarloEngine(netlist.clone(), library, mc,
                              constraints=constraints,
                              compute_backend="numpy")
    vector.run(start=0, count=1)   # build the view once (steady state)
    started = time.perf_counter()
    vector_samples = vector.run()
    vector_s = time.perf_counter() - started

    for a, b in zip(scalar_samples, vector_samples):
        assert b.leakage_nw == pytest.approx(a.leakage_nw, rel=1e-9)
        assert b.wns == pytest.approx(a.wns, rel=1e-9)

    speedup = scalar_s / vector_s
    record("mc_10k", {
        "instances": len(netlist.instances),
        "samples": samples,
        "scalar_s": round(scalar_s, 3),
        "numpy_s": round(vector_s, 3),
        "scalar_samples_per_s": round(samples / scalar_s, 2),
        "numpy_samples_per_s": round(samples / vector_s, 2),
        "speedup": round(speedup, 2),
    }, path=compute_json_path())
    # Acceptance bar: one batched (samples x instances) pass beats k
    # sequential scalar re-propagations by at least 5x.
    assert speedup >= 5.0, f"numpy MC speedup {speedup:.1f}x < 5x"
