"""Standby-engine benchmarks: scenario-batch throughput per backend.

Records ``BENCH_standby.json`` (see ``recorder.standby_json_path``):

* ``scenario_batch`` — a large synthetic power-mode scenario grid
  (fixed + exponential idle distributions) evaluated against the
  all-MTV c432 VGND network, scalar vs numpy, plus the asserted
  speedup;
* ``signoff`` — the end-to-end three-corner standby signoff (the CI
  smoke configuration) wall-clock.

Asserted floor: the numpy backend sustains **>= 2x** the scalar
scenario-batch throughput on the 2k-scenario grid (measured ~5x; the
floor is conservative because the per-corner transient/scheduler
prologue is scalar on both paths).  Results are bit-identical — that
is asserted here too, not only in the unit suite.
"""

from __future__ import annotations

import dataclasses
import time

import pytest

np = pytest.importorskip("numpy")

from recorder import record, standby_json_path

from repro.benchcircuits.suite import load_circuit
from repro.liberty.library import VARIANT_MTV
from repro.netlist.techmap import technology_map
from repro.netlist.transform import swap_variant
from repro.placement.legalize import legalize
from repro.placement.placer import GlobalPlacer
from repro.standby.engine import StandbyEngine
from repro.standby.scenario import PowerModeScenario
from repro.vgnd.cluster import ClusterConfig, MtClusterer
from repro.vgnd.sizing import SwitchSizer

SCENARIO_COUNT = 2_000
SPEEDUP_FLOOR = 2.0


@pytest.fixture(scope="module")
def standby_network(library):
    netlist = load_circuit("c432")
    technology_map(netlist, library)
    placement = GlobalPlacer(netlist, library).run()
    legalize(placement, netlist, library)
    mt_names = []
    for inst in list(netlist.instances.values()):
        cell = library.cell(inst.cell_name)
        if library.has_variant(cell, VARIANT_MTV):
            swap_variant(netlist, inst, library, VARIANT_MTV)
            mt_names.append(inst.name)
    # Small clusters => a many-cluster network, so the batched kernel
    # (not the scalar per-corner prologue) dominates the wall-clock.
    config = ClusterConfig(max_cells_per_switch=4,
                           max_rail_length_um=120.0)
    network = MtClusterer(netlist, library, placement,
                          config).build(mt_names)
    SwitchSizer(library, config.bounce_limit_v).size_network(network)
    return netlist, network


def scenario_grid(count: int) -> list[PowerModeScenario]:
    """A deterministic spread of duty cycles and idle regimes."""
    grid = []
    for i in range(count):
        idle = 100.0 * (1.0 + i)          # 100 ns .. 200 us
        distribution = "exponential" if i % 2 else "fixed"
        grid.append(PowerModeScenario(
            name=f"grid{i}", active_ns=1_000.0 + 10.0 * (i % 50),
            idle_ns=idle, distribution=distribution,
            quantile_points=32))
    return grid


def _run(netlist, network, library, scenarios, backend):
    engine = StandbyEngine(netlist, library, network, scenarios,
                           compute_backend=backend)
    started = time.perf_counter()
    result = engine.run()
    return result, time.perf_counter() - started


def test_bench_scenario_batch(standby_network, library):
    netlist, network = standby_network
    scenarios = scenario_grid(SCENARIO_COUNT)

    # Warm both paths once (imports, allocator), then time the best
    # of two — these are sub-second kernels.
    _run(netlist, network, library, scenarios[:10], "python")
    _run(netlist, network, library, scenarios[:10], "numpy")
    scalar_result, scalar_s = min(
        (_run(netlist, network, library, scenarios, "python")
         for _ in range(2)), key=lambda pair: pair[1])
    numpy_result, numpy_s = min(
        (_run(netlist, network, library, scenarios, "numpy")
         for _ in range(2)), key=lambda pair: pair[1])

    assert dataclasses.replace(numpy_result,
                               compute_backend="python") == scalar_result
    speedup = scalar_s / numpy_s
    metrics = {
        "scenarios": SCENARIO_COUNT,
        "clusters": len(network.clusters),
        "python_s": round(scalar_s, 4),
        "numpy_s": round(numpy_s, 4),
        "python_scenarios_per_s": round(SCENARIO_COUNT / scalar_s, 1),
        "numpy_scenarios_per_s": round(SCENARIO_COUNT / numpy_s, 1),
        "speedup": round(speedup, 2),
        "speedup_floor": SPEEDUP_FLOOR,
        "bit_identical": True,
    }
    record("scenario_batch", metrics, standby_json_path())
    print(f"\nscenario batch x{SCENARIO_COUNT}: scalar {scalar_s:.3f}s, "
          f"numpy {numpy_s:.3f}s ({speedup:.1f}x)")
    assert speedup >= SPEEDUP_FLOOR


def test_bench_three_corner_signoff(standby_network, library):
    """The CI smoke shape: built-ins x 3 corners, end to end."""
    from repro.standby.scenario import standard_scenarios

    netlist, network = standby_network
    scenarios = list(standard_scenarios().values())
    corners = ("tt_nom", "ff_1.32v_125c", "ss_1.08v_125c")
    started = time.perf_counter()
    result = StandbyEngine(netlist, library, network, scenarios,
                           corners=corners,
                           compute_backend="numpy").run()
    elapsed = time.perf_counter() - started
    record("signoff", {
        "scenarios": len(scenarios),
        "corners": len(corners),
        "clusters": result.clusters,
        "elapsed_s": round(elapsed, 4),
    }, standby_json_path())
    print(f"\n3-corner signoff: {elapsed:.3f}s "
          f"({result.clusters} clusters)")
    assert len(result.outcomes) == len(scenarios) * len(corners)
