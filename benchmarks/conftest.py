"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's artifacts (Table 1 or a
figure) or an ablation called out in DESIGN.md.  Results print in the
paper's row format so the comparison is eyeball-able from the bench
log; assertions pin the qualitative shape (orderings, rough factors).
"""

from __future__ import annotations

import pytest

from repro.liberty.synth import build_default_library


@pytest.fixture(scope="session")
def library():
    return build_default_library()


def run_once(benchmark, fn):
    """Run an expensive flow exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
