"""Job-service tier benchmark: concurrent clients and coalescing.

Two loads against a live HTTP service (stdlib server, warm in-process
workspace, one job worker — this box has one core, so the interesting
numbers are queueing behavior and computation *collapse*, not parallel
speedup):

* **concurrent clients** — 10 and 100 threads, each submitting its own
  ``analyze`` job and polling to completion.  The *cold* pass uses a
  distinct config per client (every job computes); the *warm* pass
  replays the identical grid (the workspace flow cache answers).
  Recorded per scale: p50/p99 client-observed latency and end-to-end
  RPS, cold vs warm.
* **coalescing** — the acceptance bar.  N identical in-flight
  ``optimize`` jobs on a mid-size circuit must collapse onto ONE
  computation: the un-coalesced baseline runs N equivalent jobs
  sequentially, each paying full compute (fresh config per job, so no
  cache masks the cost); the coalesced pass submits N identical jobs
  concurrently.  Coalesced throughput must be **>= 3x** the
  un-coalesced sequential baseline.

Everything lands in ``BENCH_service.json`` via the shared recorder.
"""

from __future__ import annotations

import threading
import time

from repro.api import ServiceClient, Workspace
from repro.api.service import JobService, ServiceServer
from repro.obs import REGISTRY

from recorder import record, service_json_path

ANALYZE_CIRCUIT = "c17"
COALESCE_CIRCUIT = "c432"
COALESCE_JOBS = 8
REQUIRED_COALESCE_SPEEDUP = 3.0


def _percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def _serve(library):
    service = JobService(workspace=Workspace(library=library)).start()
    server = ServiceServer(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return service, server


def _run_clients(address: str, configs: list[dict],
                 poll_s: float) -> tuple[float, list[float]]:
    """Each config gets its own client thread; returns (wall_s,
    per-client submit->done latencies)."""
    latencies = [0.0] * len(configs)
    errors: list[str] = []

    def one(index: int, config: dict):
        client = ServiceClient(address)
        started = time.perf_counter()
        try:
            client.run("analyze", ANALYZE_CIRCUIT, config=config,
                       poll_s=poll_s)
        except Exception as exc:  # noqa: BLE001 — fail the bench below
            errors.append(f"client {index}: {exc}")
        latencies[index] = time.perf_counter() - started

    threads = [threading.Thread(target=one, args=(index, config))
               for index, config in enumerate(configs)]
    wall0 = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_s = time.perf_counter() - wall0
    assert not errors, errors[:3]
    return wall_s, latencies


def test_concurrent_clients_cold_vs_warm(library):
    service, server = _serve(library)
    try:
        # Warm the workspace itself (netlist + first flow) so "cold"
        # measures per-config computation, not one-time startup.
        ServiceClient(server.address).run("analyze", ANALYZE_CIRCUIT)
        for clients in (10, 100):
            # Distinct configs -> distinct work keys -> every cold job
            # computes; the warm pass replays the identical grid.
            configs = [{"timing_margin": 0.1 + 0.001 * index}
                       for index in range(clients)]
            poll_s = 0.005 if clients <= 10 else 0.02
            cold_wall, cold_lat = _run_clients(server.address, configs,
                                               poll_s)
            warm_wall, warm_lat = _run_clients(server.address, configs,
                                               poll_s)
            metrics = {
                "clients": clients,
                "circuit": ANALYZE_CIRCUIT,
                "cold_p50_s": _percentile(cold_lat, 0.50),
                "cold_p99_s": _percentile(cold_lat, 0.99),
                "cold_rps": clients / cold_wall,
                "warm_p50_s": _percentile(warm_lat, 0.50),
                "warm_p99_s": _percentile(warm_lat, 0.99),
                "warm_rps": clients / warm_wall,
            }
            record(f"service_clients_{clients}", metrics,
                   path=service_json_path())
            print(f"\n{clients} clients: cold p50 "
                  f"{metrics['cold_p50_s'] * 1e3:.1f}ms "
                  f"p99 {metrics['cold_p99_s'] * 1e3:.1f}ms "
                  f"{metrics['cold_rps']:.0f} rps | warm p50 "
                  f"{metrics['warm_p50_s'] * 1e3:.1f}ms "
                  f"p99 {metrics['warm_p99_s'] * 1e3:.1f}ms "
                  f"{metrics['warm_rps']:.0f} rps")
            assert metrics["cold_rps"] > 0 and metrics["warm_rps"] > 0
    finally:
        server.shutdown()
        service.close()


def test_coalesced_throughput_beats_sequential_baseline(library):
    service, server = _serve(library)
    try:
        client = ServiceClient(server.address)
        # Un-coalesced baseline: N equivalent optimize jobs one after
        # another, each with a fresh config so every single one pays
        # the full computation (no flow-cache reuse, no coalescing).
        base0 = time.perf_counter()
        for index in range(COALESCE_JOBS):
            client.run("optimize", COALESCE_CIRCUIT,
                       config={"timing_margin": 0.15 + 0.002 * index},
                       poll_s=0.002)
        sequential_s = time.perf_counter() - base0
        sequential_rps = COALESCE_JOBS / sequential_s

        # Coalesced: N *identical* jobs in flight at once -> one
        # computation, N-1 subscribers.
        coalesced0 = REGISTRY.counter("service.coalesced")
        shared = {"timing_margin": 0.175}  # fresh key: not yet computed
        wall0 = time.perf_counter()
        _, latencies = _run_coalesced(server.address, shared)
        coalesced_s = time.perf_counter() - wall0
        coalesced_rps = COALESCE_JOBS / coalesced_s
        collapsed = REGISTRY.counter("service.coalesced") - coalesced0

        speedup = coalesced_rps / sequential_rps
        record("service_coalescing", {
            "circuit": COALESCE_CIRCUIT,
            "jobs": COALESCE_JOBS,
            "sequential_s": sequential_s,
            "sequential_rps": sequential_rps,
            "coalesced_s": coalesced_s,
            "coalesced_rps": coalesced_rps,
            "coalesced_p99_s": _percentile(latencies, 0.99),
            "jobs_collapsed": collapsed,
            "throughput_speedup_x": speedup,
            "required_speedup_x": REQUIRED_COALESCE_SPEEDUP,
        }, path=service_json_path())
        print(f"\ncoalescing: {COALESCE_JOBS} jobs sequential "
              f"{sequential_s:.2f}s ({sequential_rps:.1f} rps) vs "
              f"coalesced {coalesced_s:.2f}s ({coalesced_rps:.1f} rps) "
              f"= {speedup:.1f}x, {collapsed} collapsed")
        assert collapsed >= COALESCE_JOBS - 1, \
            "identical in-flight jobs did not coalesce"
        assert speedup >= REQUIRED_COALESCE_SPEEDUP, (
            f"coalesced throughput must be >= "
            f"{REQUIRED_COALESCE_SPEEDUP}x the un-coalesced sequential "
            f"baseline, got {speedup:.2f}x")
    finally:
        server.shutdown()
        service.close()


def _run_coalesced(address: str, config: dict) -> tuple[float,
                                                        list[float]]:
    """Submit COALESCE_JOBS identical optimize jobs concurrently.

    Submissions go through a barrier so all of them are in flight
    together (that is the scenario coalescing collapses)."""
    latencies = [0.0] * COALESCE_JOBS
    errors: list[str] = []
    barrier = threading.Barrier(COALESCE_JOBS)

    def one(index: int):
        client = ServiceClient(address)
        barrier.wait()
        started = time.perf_counter()
        try:
            # Relaxed poll: on a one-core box, 8 clients polling at
            # millisecond cadence would steal the GIL from the worker
            # actually computing the shared job.
            client.run("optimize", COALESCE_CIRCUIT, config=config,
                       poll_s=0.05)
        except Exception as exc:  # noqa: BLE001
            errors.append(f"client {index}: {exc}")
        latencies[index] = time.perf_counter() - started

    threads = [threading.Thread(target=one, args=(index,))
               for index in range(COALESCE_JOBS)]
    wall0 = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_s = time.perf_counter() - wall0
    assert not errors, errors[:3]
    return wall_s, latencies
