"""Variation-engine throughput benchmarks.

Two hot paths of the new subsystem, with wall-clocks and work counts
landing in ``BENCH_variation.json`` (via :mod:`recorder`) so the
performance trajectory is machine-readable across PRs:

* corner-library derivation over the full 27-corner grid (the setup
  cost of a production signoff sweep);
* Monte-Carlo sampling throughput, leakage-only and with per-sample
  incremental STA.

Assertions pin qualitative shape (monotone corner orderings, sampling
determinism), never wall-clock — CI runners are too noisy for timing
gates.
"""

import time

from repro.benchcircuits.suite import load_circuit
from repro.liberty.library import VARIANT_LVT
from repro.liberty.synth import build_default_library
from repro.netlist.techmap import technology_map
from repro.timing.constraints import Constraints
from repro.timing.sta import TimingAnalyzer
from repro.variation.corners import derive_corner_library, standard_corners
from repro.variation.montecarlo import McConfig, MonteCarloEngine, summarize

from conftest import run_once
from recorder import record

CIRCUIT = "c432"
MC_SAMPLES = 200
MC_TIMING_SAMPLES = 12


def _mapped(library):
    netlist = load_circuit(CIRCUIT)
    technology_map(netlist, library, VARIANT_LVT)
    probe = TimingAnalyzer(netlist, library,
                           Constraints(clock_period=1000.0)).run()
    period = (1000.0 - probe.wns) * 1.15
    return netlist, Constraints(clock_period=period)


def test_bench_corner_grid(benchmark, library):
    """Derive + leakage-evaluate the full 27-corner grid."""
    corners = standard_corners(library.tech)

    def grid():
        from repro.power.leakage import LeakageAnalyzer

        netlist, _ = _mapped(library)
        started = time.perf_counter()
        leakage = {}
        for name, corner in corners.items():
            corner_library = derive_corner_library(library, corner)
            leakage[name] = LeakageAnalyzer(
                netlist, corner_library).standby_leakage().total_nw
        return leakage, time.perf_counter() - started

    leakage, elapsed = run_once(benchmark, grid)

    # Physical orderings across the grid (fixed VDD/temp slices).
    vdd = library.tech.vdd
    assert leakage[f"ss_{vdd:.2f}v_125c"] < leakage[f"tt_{vdd:.2f}v_125c"] \
        < leakage[f"ff_{vdd:.2f}v_125c"]
    assert leakage[f"tt_{vdd:.2f}v_m40c"] < leakage[f"tt_{vdd:.2f}v_25c"] \
        < leakage[f"tt_{vdd:.2f}v_125c"]

    metrics = {
        "circuit": CIRCUIT,
        "corners": len(corners),
        "grid_s": round(elapsed, 4),
        "corners_per_s": round(len(corners) / max(elapsed, 1e-9), 2),
    }
    benchmark.extra_info.update(metrics)
    record("corner_grid", metrics)
    print(f"\n{len(corners)} corners derived+evaluated in {elapsed:.3f}s")


def test_bench_montecarlo_throughput(benchmark, library):
    """Leakage-only and timing-enabled sampling rates."""
    netlist, constraints = _mapped(library)

    def sample_all():
        leak_engine = MonteCarloEngine(
            netlist, library, config=McConfig(samples=MC_SAMPLES, seed=7,
                                              timing=False))
        started = time.perf_counter()
        leak_samples = leak_engine.run()
        leak_elapsed = time.perf_counter() - started

        sta_engine = MonteCarloEngine(
            netlist, library,
            config=McConfig(samples=MC_TIMING_SAMPLES, seed=7, timing=True),
            constraints=constraints)
        started = time.perf_counter()
        sta_samples = sta_engine.run()
        sta_elapsed = time.perf_counter() - started
        return leak_samples, leak_elapsed, sta_samples, sta_elapsed, \
            sta_engine.session_stats

    leak_samples, leak_elapsed, sta_samples, sta_elapsed, sta_stats = \
        run_once(benchmark, sample_all)

    # Determinism: re-evaluating a sample reproduces it exactly.
    redo = MonteCarloEngine(
        netlist, library,
        config=McConfig(samples=MC_SAMPLES, seed=7, timing=False))
    assert redo.sample(5).leakage_nw == leak_samples[5].leakage_nw

    stats = summarize(leak_samples)
    # Log-normal shape: the mean sits above the median.
    assert stats.mean_nw > stats.p50_nw

    metrics = {
        "circuit": CIRCUIT,
        "leakage_samples": MC_SAMPLES,
        "leakage_s": round(leak_elapsed, 4),
        "leakage_samples_per_s": round(
            MC_SAMPLES / max(leak_elapsed, 1e-9), 1),
        "sta_samples": MC_TIMING_SAMPLES,
        "sta_s": round(sta_elapsed, 4),
        "sta_samples_per_s": round(
            MC_TIMING_SAMPLES / max(sta_elapsed, 1e-9), 2),
        "sta_full_runs": sta_stats.full_runs,
        "sta_incremental_runs": sta_stats.incremental_runs,
        "mean_nw": round(stats.mean_nw, 4),
        "p50_nw": round(stats.p50_nw, 4),
        "p99_nw": round(stats.p99_nw, 4),
    }
    benchmark.extra_info.update(metrics)
    record("montecarlo", metrics)
    print(f"\nleakage-only: {MC_SAMPLES} samples in {leak_elapsed:.3f}s; "
          f"with STA: {MC_TIMING_SAMPLES} samples in {sta_elapsed:.3f}s")
