"""Variation-engine throughput benchmarks.

Two hot paths of the new subsystem, with wall-clocks and work counts
landing in ``BENCH_variation.json`` (via :mod:`recorder`) so the
performance trajectory is machine-readable across PRs:

* corner-library derivation over the full 27-corner grid (the setup
  cost of a production signoff sweep);
* Monte-Carlo sampling throughput, leakage-only and with per-sample
  incremental STA.

Assertions pin qualitative shape (monotone corner orderings, sampling
determinism), never wall-clock — CI runners are too noisy for timing
gates.
"""

import time

from repro.benchcircuits.suite import load_circuit
from repro.liberty.library import VARIANT_LVT
from repro.liberty.synth import build_default_library
from repro.netlist.techmap import technology_map
from repro.timing.constraints import Constraints
from repro.timing.sta import TimingAnalyzer
from repro.variation.corners import derive_corner_library, standard_corners
from repro.variation.montecarlo import McConfig, MonteCarloEngine, summarize

from conftest import run_once
from recorder import record

CIRCUIT = "c432"
MC_SAMPLES = 200
MC_TIMING_SAMPLES = 12


def _mapped(library):
    netlist = load_circuit(CIRCUIT)
    technology_map(netlist, library, VARIANT_LVT)
    probe = TimingAnalyzer(netlist, library,
                           Constraints(clock_period=1000.0)).run()
    period = (1000.0 - probe.wns) * 1.15
    return netlist, Constraints(clock_period=period)


def test_bench_corner_grid(benchmark, library):
    """Derive + leakage-evaluate the full 27-corner grid."""
    corners = standard_corners(library.tech)

    def grid():
        from repro.power.leakage import LeakageAnalyzer

        netlist, _ = _mapped(library)
        started = time.perf_counter()
        leakage = {}
        for name, corner in corners.items():
            corner_library = derive_corner_library(library, corner)
            leakage[name] = LeakageAnalyzer(
                netlist, corner_library).standby_leakage().total_nw
        return leakage, time.perf_counter() - started

    leakage, elapsed = run_once(benchmark, grid)

    # Physical orderings across the grid (fixed VDD/temp slices).
    vdd = library.tech.vdd
    assert leakage[f"ss_{vdd:.2f}v_125c"] < leakage[f"tt_{vdd:.2f}v_125c"] \
        < leakage[f"ff_{vdd:.2f}v_125c"]
    assert leakage[f"tt_{vdd:.2f}v_m40c"] < leakage[f"tt_{vdd:.2f}v_25c"] \
        < leakage[f"tt_{vdd:.2f}v_125c"]

    metrics = {
        "circuit": CIRCUIT,
        "corners": len(corners),
        "grid_s": round(elapsed, 4),
        "corners_per_s": round(len(corners) / max(elapsed, 1e-9), 2),
    }
    benchmark.extra_info.update(metrics)
    record("corner_grid", metrics)
    print(f"\n{len(corners)} corners derived+evaluated in {elapsed:.3f}s")


def test_bench_batched_signoff(benchmark, library, tmp_path, monkeypatch):
    """Corner-batched signoff vs the sequential loop on the full grid.

    Also times the persistent lowering cache: a cold signoff with a
    warm cache directory vs a cold signoff without one.  The batched
    floor IS asserted (a wall-clock *ratio* of two same-process runs,
    so shared-runner noise largely cancels).
    """
    import pytest

    pytest.importorskip("numpy")

    from repro.compute import lowercache
    from repro.config import FlowConfig, Technique
    from repro.core.flow import SelectiveMtFlow
    from repro.variation.corners import derive_corner_library_cached
    from repro.variation.signoff import (
        evaluate_corners,
        evaluate_corners_batched,
    )

    corners = standard_corners(library.tech)
    names = tuple(corners)

    def signoff_both():
        result = SelectiveMtFlow(
            load_circuit(CIRCUIT), library, Technique.IMPROVED_SMT,
            FlowConfig(timing_margin=0.10)).run()

        # Library derivation is timed apart: the corner memo pays it
        # once per process, whichever evaluation strategy follows.
        started = time.perf_counter()
        libs = {name: derive_corner_library_cached(library, corner)
                for name, corner in corners.items()}
        derive_s = time.perf_counter() - started

        kwargs = dict(
            parasitics=result.parasitics, network=result.network,
            clock_arrivals=(result.cts.clock_arrivals
                            if result.cts else None),
            compute_backend="numpy", corner_libraries=libs)

        started = time.perf_counter()
        loop = evaluate_corners(result.netlist, library, names,
                                result.constraints, **kwargs)
        loop_s = time.perf_counter() - started

        # Cold batched signoff, no cache: pays one nominal lowering
        # (the loop above paid one PER corner).
        monkeypatch.delenv(lowercache.ENV_VAR, raising=False)
        started = time.perf_counter()
        batched = evaluate_corners_batched(
            result.netlist, library, names, result.constraints,
            **kwargs)
        cold_s = time.perf_counter() - started

        # Warm the on-disk cache, then run cold again from disk.
        monkeypatch.setenv(lowercache.ENV_VAR, str(tmp_path))
        evaluate_corners_batched(result.netlist, library, names,
                                 result.constraints, **kwargs)
        lowercache.reset_stats()
        started = time.perf_counter()
        cached = evaluate_corners_batched(
            result.netlist, library, names, result.constraints,
            **kwargs)
        cached_s = time.perf_counter() - started
        assert lowercache.stats()["hits"] == 1
        monkeypatch.delenv(lowercache.ENV_VAR, raising=False)
        return loop, batched, cached, derive_s, loop_s, cold_s, cached_s

    loop, batched, cached, derive_s, loop_s, cold_s, cached_s = \
        run_once(benchmark, signoff_both)

    # Per-corner bit-identity: the batched pass is an evaluation
    # strategy, not an approximation (cached reload included).
    for name in names:
        assert batched[name].wns == loop[name].wns
        assert batched[name].hold_wns == loop[name].hold_wns
        assert batched[name].leakage_nw == loop[name].leakage_nw
        assert cached[name].wns == loop[name].wns
        assert cached[name].leakage_nw == loop[name].leakage_nw

    speedup = loop_s / max(cold_s, 1e-9)
    metrics = {
        "circuit": CIRCUIT,
        "corners": len(names),
        "derive_s": round(derive_s, 4),
        "loop_s": round(loop_s, 4),
        "loop_corners_per_s": round(len(names) / max(loop_s, 1e-9), 2),
        "batched_cold_s": round(cold_s, 4),
        "batched_corners_per_s": round(
            len(names) / max(cold_s, 1e-9), 2),
        "batched_speedup": round(speedup, 2),
        "batched_cached_cold_s": round(cached_s, 4),
        "cached_corners_per_s": round(
            len(names) / max(cached_s, 1e-9), 2),
    }
    benchmark.extra_info.update(metrics)
    record("batched_signoff", metrics)
    print(f"\n{len(names)} corners: loop {loop_s:.3f}s vs batched "
          f"{cold_s:.3f}s ({speedup:.1f}x); warm-cache cold "
          f"{cached_s:.3f}s")

    # Floor: one stacked array pass must beat K sequential STAs by 4x
    # (the trajectory target is 10x over the PR-5 loop baseline).
    assert speedup >= 4.0, f"batched signoff {speedup:.1f}x < 4x"


def test_bench_montecarlo_throughput(benchmark, library):
    """Leakage-only and timing-enabled sampling rates."""
    netlist, constraints = _mapped(library)

    def sample_all():
        leak_engine = MonteCarloEngine(
            netlist, library, config=McConfig(samples=MC_SAMPLES, seed=7,
                                              timing=False))
        started = time.perf_counter()
        leak_samples = leak_engine.run()
        leak_elapsed = time.perf_counter() - started

        sta_engine = MonteCarloEngine(
            netlist, library,
            config=McConfig(samples=MC_TIMING_SAMPLES, seed=7, timing=True),
            constraints=constraints)
        started = time.perf_counter()
        sta_samples = sta_engine.run()
        sta_elapsed = time.perf_counter() - started
        return leak_samples, leak_elapsed, sta_samples, sta_elapsed, \
            sta_engine.session_stats

    leak_samples, leak_elapsed, sta_samples, sta_elapsed, sta_stats = \
        run_once(benchmark, sample_all)

    # Determinism: re-evaluating a sample reproduces it exactly.
    redo = MonteCarloEngine(
        netlist, library,
        config=McConfig(samples=MC_SAMPLES, seed=7, timing=False))
    assert redo.sample(5).leakage_nw == leak_samples[5].leakage_nw

    stats = summarize(leak_samples)
    # Log-normal shape: the mean sits above the median.
    assert stats.mean_nw > stats.p50_nw

    metrics = {
        "circuit": CIRCUIT,
        "leakage_samples": MC_SAMPLES,
        "leakage_s": round(leak_elapsed, 4),
        "leakage_samples_per_s": round(
            MC_SAMPLES / max(leak_elapsed, 1e-9), 1),
        "sta_samples": MC_TIMING_SAMPLES,
        "sta_s": round(sta_elapsed, 4),
        "sta_samples_per_s": round(
            MC_TIMING_SAMPLES / max(sta_elapsed, 1e-9), 2),
        "sta_full_runs": sta_stats.full_runs,
        "sta_incremental_runs": sta_stats.incremental_runs,
        "mean_nw": round(stats.mean_nw, 4),
        "p50_nw": round(stats.p50_nw, 4),
        "p99_nw": round(stats.p99_nw, 4),
    }
    benchmark.extra_info.update(metrics)
    record("montecarlo", metrics)
    print(f"\nleakage-only: {MC_SAMPLES} samples in {leak_elapsed:.3f}s; "
          f"with STA: {MC_TIMING_SAMPLES} samples in {sta_elapsed:.3f}s")
