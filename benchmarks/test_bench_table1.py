"""Table 1: area and standby leakage of the three techniques.

Regenerates the paper's only data table: circuits A and B, Dual-Vth /
conventional Selective-MT / improved Selective-MT, area and leakage
normalized to Dual-Vth = 100 %.

Absolute numbers differ from the paper (our substrate is a synthetic
90 nm-class model and synthetic circuits; see EXPERIMENTS.md), but the
*shape* assertions here pin what the paper claims:

* both SMT techniques slash standby leakage by >=70 % vs Dual-Vth;
* the improved technique leaks less than the conventional one;
* the conventional technique pays the largest area; improved sits
  between Dual-Vth and conventional.
"""

import pytest

from repro.config import Technique
from repro.experiments import run_table1, table1_config
from conftest import run_once


@pytest.fixture(scope="module")
def table1(library):
    return run_table1(library)


def test_bench_table1(benchmark, library):
    result = run_once(benchmark, lambda: run_table1(library,
                                                    circuits=("B",)))
    assert result.comparisons


class TestTable1Shape:
    def test_render(self, table1):
        print()
        print(table1.render())

    @pytest.mark.parametrize("circuit", ["A", "B"])
    def test_leakage_reduction_vs_dual_vth(self, table1, circuit):
        conventional = table1.measured(circuit, Technique.CONVENTIONAL_SMT,
                                       "leakage")
        improved = table1.measured(circuit, Technique.IMPROVED_SMT,
                                   "leakage")
        assert conventional < 30.0   # paper: 14.6 / 19.4
        assert improved < 26.0       # paper: 9.4 / 12.2

    @pytest.mark.parametrize("circuit", ["A", "B"])
    def test_improved_beats_conventional_leakage(self, table1, circuit):
        conventional = table1.measured(circuit, Technique.CONVENTIONAL_SMT,
                                       "leakage")
        improved = table1.measured(circuit, Technique.IMPROVED_SMT,
                                   "leakage")
        assert improved < conventional

    @pytest.mark.parametrize("circuit", ["A", "B"])
    def test_area_ordering(self, table1, circuit):
        dual = table1.measured(circuit, Technique.DUAL_VTH, "area")
        conventional = table1.measured(circuit, Technique.CONVENTIONAL_SMT,
                                       "area")
        improved = table1.measured(circuit, Technique.IMPROVED_SMT, "area")
        assert dual == pytest.approx(100.0)
        assert dual < improved < conventional

    @pytest.mark.parametrize("circuit", ["A", "B"])
    def test_improved_halves_area_overhead(self, table1, circuit):
        """Headline: ~20 % total area saving vs conventional, i.e. the
        improved overhead is roughly half the conventional one."""
        conventional = table1.measured(circuit, Technique.CONVENTIONAL_SMT,
                                       "area") - 100.0
        improved = table1.measured(circuit, Technique.IMPROVED_SMT,
                                   "area") - 100.0
        assert improved < 0.75 * conventional

    def test_circuit_a_tighter_than_b(self):
        assert table1_config("A").timing_margin \
            < table1_config("B").timing_margin
