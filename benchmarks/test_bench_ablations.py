"""Ablation benches for the design choices DESIGN.md calls out.

A1 — bounce limit sweep: a looser VGND bounce budget lets switches
     shrink (less switch leakage/area) at the cost of slower MT-cells.
A2 — cluster caps sweep: tighter rail-length / cells-per-switch caps
     force more, smaller clusters (more switches).
A3 — sharing ablation: per-cell switches vs shared switches at equal
     bounce budget — the core of the paper's improvement.
"""

import pytest

from repro.liberty.library import VARIANT_MTV
from repro.netlist.techmap import technology_map
from repro.netlist.transform import swap_variant
from repro.placement.legalize import legalize
from repro.placement.placer import GlobalPlacer
from repro.vgnd.cluster import ClusterConfig, MtClusterer
from repro.vgnd.sizing import SwitchSizer


@pytest.fixture(scope="module")
def mt_design(library):
    """A placed all-MTV c1908 stand-in (module-scoped)."""
    from repro.benchcircuits.suite import load_circuit

    netlist = load_circuit("c1908")
    technology_map(netlist, library)
    placement = GlobalPlacer(netlist, library).run()
    legalize(placement, netlist, library)
    for inst in list(netlist.instances.values()):
        cell = library.cell(inst.cell_name)
        if library.has_variant(cell, VARIANT_MTV):
            swap_variant(netlist, inst, library, VARIANT_MTV)
    mt_names = [i.name for i in netlist.instances.values()
                if library.cell(i.cell_name).is_improved_mt]
    return netlist, placement, mt_names


def _build_and_size(library, mt_design, config):
    netlist, placement, mt_names = mt_design
    network = MtClusterer(netlist, library, placement,
                          config).build(mt_names)
    SwitchSizer(library, config.bounce_limit_v).size_network(network)
    return network


def test_bench_a1_bounce_limit_sweep(benchmark, library, mt_design):
    limits = (0.024, 0.036, 0.048, 0.060, 0.096)

    def sweep():
        rows = []
        for limit in limits:
            config = ClusterConfig(bounce_limit_v=limit)
            network = _build_and_size(library, mt_design, config)
            rows.append((limit,
                         network.total_switch_width(library),
                         network.total_switch_leakage_nw(library),
                         len(network.clusters)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(f"{'bounce(V)':>10} {'sw width(um)':>13} {'sw leak(nW)':>12} "
          f"{'clusters':>9}")
    for limit, width, leak, clusters in rows:
        print(f"{limit:10.3f} {width:13.1f} {leak:12.3f} {clusters:9d}")
    widths = [r[1] for r in rows]
    # Looser bounce budget -> narrower switches (monotone trade-off).
    assert widths[0] >= widths[-1]
    assert widths == sorted(widths, reverse=True)


def test_bench_a2_cluster_caps_sweep(benchmark, library, mt_design):
    def sweep():
        rows = []
        for max_cells in (8, 16, 32, 64):
            config = ClusterConfig(max_cells_per_switch=max_cells)
            network = _build_and_size(library, mt_design, config)
            rows.append(("cells", max_cells, len(network.clusters),
                         network.total_switch_width(library)))
        for max_rail in (100.0, 200.0, 400.0, 800.0):
            config = ClusterConfig(max_rail_length_um=max_rail)
            network = _build_and_size(library, mt_design, config)
            rows.append(("rail", max_rail, len(network.clusters),
                         network.total_switch_width(library)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(f"{'cap':>6} {'value':>8} {'clusters':>9} {'width(um)':>10}")
    for kind, value, clusters, width in rows:
        print(f"{kind:>6} {value:8.0f} {clusters:9d} {width:10.1f}")
    cell_rows = [r for r in rows if r[0] == "cells"]
    clusters_by_cap = [r[2] for r in cell_rows]
    # Tighter EM cap -> more clusters.
    assert clusters_by_cap == sorted(clusters_by_cap, reverse=True)


def test_bench_a3_sharing_vs_per_cell(benchmark, library, mt_design):
    """Shared switches vs one switch per cell at the same budget."""
    netlist, placement, mt_names = mt_design

    def compare():
        config = ClusterConfig(bounce_limit_v=0.048)
        shared = _build_and_size(library, mt_design, config)
        shared_width = shared.total_switch_width(library)
        shared_leak = shared.total_switch_leakage_nw(library)
        # Per-cell: the conventional technique's embedded switches.
        from repro.liberty.library import VARIANT_CMT

        per_cell_width = 0.0
        per_cell_leak = 0.0
        for name in mt_names:
            cell = library.cell(netlist.instances[name].cell_name)
            cmt = library.variant_of(cell, VARIANT_CMT)
            per_cell_width += cmt.switch_width_um
            per_cell_leak += cmt.default_leakage_nw
        return (shared_width, shared_leak, per_cell_width, per_cell_leak)

    shared_w, shared_l, per_w, per_l = benchmark.pedantic(
        compare, rounds=1, iterations=1)
    print(f"\nshared: {shared_w:.0f}um / {shared_l:.2f}nW   "
          f"per-cell: {per_w:.0f}um / {per_l:.2f}nW   "
          f"width ratio {shared_w / per_w:.2f}")
    # The sharing claim: clearly less total switch width and leakage.
    assert shared_w < 0.8 * per_w
    assert shared_l < per_l
