"""S1 — substrate scaling benches.

Runtime of the heavy substrates (STA, placement, extraction, logic
simulation) on ISCAS-class sizes, so regressions in the enabling
machinery are visible independent of the flow.
"""

import pytest

from repro.liberty.library import VARIANT_LVT
from repro.netlist.techmap import technology_map
from repro.placement.legalize import legalize
from repro.placement.placer import GlobalPlacer
from repro.routing.extract import PostRouteExtractor
from repro.sim.logic import Simulator
from repro.timing.constraints import Constraints
from repro.timing.sta import TimingAnalyzer


def _mapped(library, name):
    from repro.benchcircuits.suite import load_circuit

    netlist = load_circuit(name)
    technology_map(netlist, library, VARIANT_LVT)
    return netlist


@pytest.fixture(scope="module")
def c5315(library):
    return _mapped(library, "c5315")


@pytest.fixture(scope="module")
def c5315_placed(library, c5315):
    placement = GlobalPlacer(c5315, library).run()
    legalize(placement, c5315, library)
    return placement


def test_bench_sta_c5315(benchmark, library, c5315):
    cons = Constraints(clock_period=50.0)

    def run_sta():
        return TimingAnalyzer(c5315, library, cons).run()

    report = benchmark(run_sta)
    assert report.endpoint_checks


def test_bench_placer_c5315(benchmark, library, c5315):
    def place():
        return GlobalPlacer(c5315, library, iterations=12).run()

    placement = benchmark.pedantic(place, rounds=1, iterations=1)
    assert len(placement.locations) == len(c5315.instances)


def test_bench_extraction_c5315(benchmark, library, c5315, c5315_placed):
    def extract():
        return PostRouteExtractor(c5315, c5315_placed, library).extract()

    parasitics = benchmark.pedantic(extract, rounds=1, iterations=1)
    assert parasitics


def test_bench_simulation_c880(benchmark, library):
    netlist = _mapped(library, "c880")
    sim = Simulator(netlist, library)
    vector = {p.name: 1 for p in netlist.input_ports()}

    def simulate():
        return sim.evaluate(vector)

    result = benchmark(simulate)
    assert result.output_values


def test_bench_library_build(benchmark):
    from repro.device.process import Technology
    from repro.liberty.synth import LibraryBuilder

    def build():
        return LibraryBuilder(Technology()).build()

    library = benchmark.pedantic(build, rounds=1, iterations=1)
    assert len(library) > 80
