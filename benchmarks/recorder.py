"""Machine-readable benchmark trajectory.

Benchmarks call :func:`record` with a section name and a metrics dict;
everything accumulates into one JSON file (default
``benchmarks/BENCH_variation.json``, override with the
``BENCH_VARIATION_JSON`` environment variable) so future PRs can diff
performance numbers instead of scraping bench logs.

Schema::

    {
      "schema": 1,
      "sections": {
        "<section>": {"<metric>": <number or string>, ...},
        ...
      }
    }

The file is read-modify-written per call, so sections recorded by
different test files in one run all land in the same JSON.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

SCHEMA_VERSION = 1


def bench_json_path() -> Path:
    override = os.environ.get("BENCH_VARIATION_JSON")
    if override:
        return Path(override)
    return Path(__file__).resolve().parent / "BENCH_variation.json"


def compute_json_path() -> Path:
    """Trajectory file for the compute-backend benchmarks
    (``BENCH_compute.json``, override with ``BENCH_COMPUTE_JSON``)."""
    override = os.environ.get("BENCH_COMPUTE_JSON")
    if override:
        return Path(override)
    return Path(__file__).resolve().parent / "BENCH_compute.json"


def api_json_path() -> Path:
    """Trajectory file for the facade/service benchmarks
    (``BENCH_api.json``, override with ``BENCH_API_JSON``)."""
    override = os.environ.get("BENCH_API_JSON")
    if override:
        return Path(override)
    return Path(__file__).resolve().parent / "BENCH_api.json"


def obs_json_path() -> Path:
    """Trajectory file for the observability-overhead benchmarks
    (``BENCH_obs.json``, override with ``BENCH_OBS_JSON``)."""
    override = os.environ.get("BENCH_OBS_JSON")
    if override:
        return Path(override)
    return Path(__file__).resolve().parent / "BENCH_obs.json"


def service_json_path() -> Path:
    """Trajectory file for the job-service tier benchmarks
    (``BENCH_service.json``, override with ``BENCH_SERVICE_JSON``)."""
    override = os.environ.get("BENCH_SERVICE_JSON")
    if override:
        return Path(override)
    return Path(__file__).resolve().parent / "BENCH_service.json"


def standby_json_path() -> Path:
    """Trajectory file for the standby-engine benchmarks
    (``BENCH_standby.json``, override with ``BENCH_STANDBY_JSON``)."""
    override = os.environ.get("BENCH_STANDBY_JSON")
    if override:
        return Path(override)
    return Path(__file__).resolve().parent / "BENCH_standby.json"


def policy_json_path() -> Path:
    """Trajectory file for the sleep-policy optimizer benchmarks
    (``BENCH_policy.json``, override with ``BENCH_POLICY_JSON``)."""
    override = os.environ.get("BENCH_POLICY_JSON")
    if override:
        return Path(override)
    return Path(__file__).resolve().parent / "BENCH_policy.json"


def record(section: str, metrics: dict, path: Path | None = None) -> Path:
    """Merge one section's metrics into the bench JSON; returns the path."""
    path = path or bench_json_path()
    payload = {"schema": SCHEMA_VERSION, "sections": {}}
    if path.exists():
        try:
            existing = json.loads(path.read_text(encoding="utf-8"))
            if isinstance(existing.get("sections"), dict):
                payload["sections"] = existing["sections"]
        except (json.JSONDecodeError, OSError):
            pass  # corrupt/unreadable trajectory: start fresh
    payload["sections"].setdefault(section, {}).update(metrics)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path
