"""Figures 2 and 3: conventional vs improved Selective-MT circuits.

Fig. 2 shows the conventional circuit (each critical-path cell is an
MT-cell with its own embedded switch); Fig. 3 the improved one (shared
switch transistors, output holders only on MT-region boundaries).  The
paper states the two circuits are *equivalent*.

This bench constructs both on the same placed netlist and verifies:

* functional equivalence (the paper's explicit claim);
* the conventional circuit carries one embedded switch per MT-cell,
  the improved one far fewer shared switches;
* improved holders appear only where an MT-cell drives powered logic;
* total switch width shrinks with sharing (the area/leakage mechanism).
"""

import pytest

from repro.core.improved_smt import ImprovedSmtBuilder
from repro.core.selective_mt import ConventionalSmtBuilder
from repro.netlist.techmap import technology_map
from repro.placement.legalize import legalize
from repro.placement.placer import GlobalPlacer
from repro.sim.equivalence import check_equivalence
from repro.timing.constraints import Constraints
from repro.timing.sta import TimingAnalyzer
from conftest import run_once

CIRCUIT = "c1908"
MARGIN = 1.10


def _prepare(library):
    from repro.benchcircuits.suite import load_circuit

    netlist = load_circuit(CIRCUIT)
    technology_map(netlist, library)
    placement = GlobalPlacer(netlist, library).run()
    legalize(placement, netlist, library)
    probe = Constraints(clock_period=1000.0)
    report = TimingAnalyzer(netlist, library, probe).run()
    cons = Constraints(clock_period=(1000.0 - report.wns) * MARGIN)
    return netlist, placement, cons


@pytest.fixture(scope="module")
def both(library):
    conventional_nl, _p, cons = _prepare(library)
    conventional = ConventionalSmtBuilder(conventional_nl, library,
                                          cons).run()
    improved_nl, placement, cons2 = _prepare(library)
    improved = ImprovedSmtBuilder(improved_nl, library, cons2,
                                  placement).run()
    return (conventional_nl, conventional), (improved_nl, improved)


def test_bench_fig2_conventional_construction(benchmark, library):
    def build():
        netlist, _placement, cons = _prepare(library)
        return ConventionalSmtBuilder(netlist, library, cons).run()

    result = run_once(benchmark, build)
    print(f"\nFig.2 conventional: {result.mt_count} MT-cells, each with "
          f"an embedded switch + holder")
    assert result.mt_count > 0


def test_bench_fig3_improved_construction(benchmark, library):
    def build():
        netlist, placement, cons = _prepare(library)
        return ImprovedSmtBuilder(netlist, library, cons, placement).run()

    result = run_once(benchmark, build)
    print(f"\nFig.3 improved: {result.mt_count} MT-cells, "
          f"{len(result.network.clusters)} shared switches, "
          f"{result.holder_count} output holders")
    assert result.network.switch_count >= 1


class TestFig2Fig3:
    def test_equivalence_claim(self, library, both):
        """Paper: 'The circuits in Fig.2 and Fig.3 are equivalent.'"""
        (conventional_nl, _c), (improved_nl, _i) = both
        report = check_equivalence(conventional_nl, improved_nl, library)
        assert report.equivalent, report.mismatches[:3]

    def test_conventional_one_switch_per_cell(self, library, both):
        (netlist, result), _ = both
        for name in result.mt_cell_names:
            cell = library.cell(netlist.instances[name].cell_name)
            assert cell.switch_width_um > 0  # embedded in every cell

    def test_improved_shares_switches(self, library, both):
        _, (netlist, result) = both
        assert result.network.switch_count < result.mt_count / 4

    def test_improved_total_switch_width_smaller(self, library, both):
        """The sharing mechanism: less total switch width."""
        (conv_nl, conv), (imp_nl, imp) = both
        conventional_width = sum(
            library.cell(conv_nl.instances[n].cell_name).switch_width_um
            for n in conv.mt_cell_names)
        improved_width = imp.network.total_switch_width(library)
        assert improved_width < conventional_width

    def test_improved_holder_rule(self, library, both):
        from repro.core.output_holder import nets_needing_holders

        _, (netlist, result) = both
        for net in nets_needing_holders(netlist, library):
            assert net.keepers, f"{net.name} lacks its holder"
        assert result.holder_count < result.mt_count
