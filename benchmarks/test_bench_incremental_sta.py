"""Incremental vs full STA on circuit A.

The Fig. 4 flow is STA-in-the-loop everywhere (assignment bisection,
setup/hold ECO), so timing analysis dominates Table 1 wall-clock.
This bench pins the TimingSession's two claims on the paper's
timing-tight circuit:

* the *assignment loop* (bisection over full-circuit swaps) gets
  cached structures + cone fallbacks: fewer full re-propagations and
  lower wall-clock than a fresh ``TimingAnalyzer`` per probe, with a
  bit-identical assignment;
* the *ECO pattern* (small edit, re-probe) is where incremental STA
  shines: single-swap probes re-propagate only the affected cones.

Wall-clocks and propagation counts land in the bench JSON via
``extra_info`` so the speedup shows up in the ``BENCH_*.json``
trajectory.
"""

import time

from repro.benchcircuits.suite import load_circuit
from repro.core.dual_vth import DualVthAssigner
from repro.liberty.library import VARIANT_HVT, VARIANT_LVT
from repro.netlist.techmap import technology_map
from repro.timing.constraints import Constraints
from repro.timing.session import TimingSession
from repro.timing.sta import TimingAnalyzer

from conftest import run_once
from recorder import record

CIRCUIT = "circuitA"
MARGIN = 0.09          # Table 1's circuit-A margin (timing-tight)
ECO_PROBES = 24


def _prepared(library):
    netlist = load_circuit(CIRCUIT)
    technology_map(netlist, library, VARIANT_LVT)
    probe = TimingAnalyzer(netlist, library,
                           Constraints(clock_period=1000.0)).run()
    period = (1000.0 - probe.wns) * (1.0 + MARGIN)
    return netlist, Constraints(clock_period=period)


def _assignment_comparison(library):
    full_netlist, constraints = _prepared(library)
    session_netlist = full_netlist.clone()

    started = time.perf_counter()
    full = DualVthAssigner(full_netlist, library, constraints).run()
    full_elapsed = time.perf_counter() - started

    session = TimingSession(session_netlist, library, constraints)
    started = time.perf_counter()
    incremental = DualVthAssigner(session_netlist, library, constraints,
                                  session=session).run()
    session_elapsed = time.perf_counter() - started

    return {
        "full": full,
        "incremental": incremental,
        "session": session,
        "full_s": full_elapsed,
        "session_s": session_elapsed,
        "netlists": (full_netlist, session_netlist),
        "constraints": constraints,
    }


def _eco_probe_comparison(library, netlist, constraints):
    """Single-swap / re-probe loops: fresh analyzer vs session."""
    candidates = []
    for inst in netlist.instances.values():
        cell = library.cells.get(inst.cell_name)
        if cell is None or cell.is_sequential:
            continue
        if cell.variant == VARIANT_LVT \
                and library.has_variant(cell, VARIANT_HVT):
            candidates.append(inst)
        if len(candidates) >= ECO_PROBES:
            break

    session = TimingSession(netlist, library, constraints)
    session.report()
    started = time.perf_counter()
    for inst in candidates:
        session.swap_variant(inst, VARIANT_HVT)
        session.report()
    session_elapsed = time.perf_counter() - started
    last_session_wns = session.report().wns

    for inst in candidates:      # restore
        session.swap_variant(inst, VARIANT_LVT)

    from repro.netlist.transform import swap_variant

    TimingAnalyzer(netlist, library, constraints).run()
    started = time.perf_counter()
    for inst in candidates:
        swap_variant(netlist, inst, library, VARIANT_HVT)
        last_full_wns = TimingAnalyzer(netlist, library, constraints).run().wns
    full_elapsed = time.perf_counter() - started
    for inst in candidates:
        swap_variant(netlist, inst, library, VARIANT_LVT)

    assert last_session_wns == last_full_wns
    return {
        "probes": len(candidates),
        "session_s": session_elapsed,
        "full_s": full_elapsed,
        "stats": session.stats,
    }


def test_bench_incremental_sta(benchmark, library):
    outcome = run_once(benchmark, lambda: _assignment_comparison(library))

    full = outcome["full"]
    incremental = outcome["incremental"]
    stats = outcome["session"].stats

    # Same answer, by construction (the property tests pin exactness;
    # this pins it at assignment-loop scale).
    assert sorted(full.slow_instances) == sorted(incremental.slow_instances)
    assert full.final_report.wns == incremental.final_report.wns

    # Fewer full re-propagations than the one-analyzer-per-probe seed
    # behavior (each of its sta_runs was a from-scratch propagation).
    assert stats.full_runs < full.sta_runs
    assert stats.cached_reports + stats.incremental_runs > 0

    eco = _eco_probe_comparison(library, outcome["netlists"][1],
                                outcome["constraints"])

    speedup_assignment = outcome["full_s"] / max(outcome["session_s"], 1e-9)
    speedup_eco = eco["full_s"] / max(eco["session_s"], 1e-9)
    metrics = {
        "circuit": CIRCUIT,
        "assignment_full_s": round(outcome["full_s"], 4),
        "assignment_session_s": round(outcome["session_s"], 4),
        "assignment_speedup": round(speedup_assignment, 3),
        "assignment_sta_runs": full.sta_runs,
        "session_full_runs": stats.full_runs,
        "session_incremental_runs": stats.incremental_runs,
        "session_cached_reports": stats.cached_reports,
        "forward_instances_saved": stats.forward_instances_saved,
        "eco_probes": eco["probes"],
        "eco_full_s": round(eco["full_s"], 4),
        "eco_session_s": round(eco["session_s"], 4),
        "eco_speedup": round(speedup_eco, 3),
        "eco_incremental_runs": eco["stats"].incremental_runs,
    }
    benchmark.extra_info.update(metrics)
    record("incremental_sta", metrics)
    print()
    print(f"assignment: full {outcome['full_s']:.3f}s vs session "
          f"{outcome['session_s']:.3f}s ({speedup_assignment:.2f}x); "
          f"{full.sta_runs} STA probes -> {stats.full_runs} full + "
          f"{stats.incremental_runs} incremental + "
          f"{stats.cached_reports} cached")
    print(f"eco probes: full {eco['full_s']:.3f}s vs "
          f"session {eco['session_s']:.3f}s ({speedup_eco:.2f}x over "
          f"{eco['probes']} single-swap probes)")

    # Gate on deterministic work counts, not absolute wall-clock: this
    # bench runs inside the tier-1 job, and timing assertions would
    # turn shared-runner noise into spurious CI failures.  The
    # wall-clock trajectory lives in the bench JSON via extra_info.
    assert eco["stats"].incremental_runs > 0
    assert eco["stats"].forward_instances_saved > 0

    # Floor for the assignment loop: the session must not run SLOWER
    # than one fresh analyzer per probe (a 0.992x regression shipped
    # once when over-threshold probes paid a full cone walk before
    # falling back; the budgeted BFS early-exit keeps that walk
    # bounded).  A same-process wall-clock *ratio* is asserted — both
    # numerator and denominator see the same runner load, so noise
    # largely cancels; the fix measures ~1.15x locally.
    assert speedup_assignment >= 1.0, \
        f"assignment session {speedup_assignment:.3f}x slower than " \
        f"fresh analyzers"
