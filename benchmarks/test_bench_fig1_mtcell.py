"""Figure 1: the MT-cell structures.

Fig. 1(a) is the conventional MT-cell (embedded switch), Fig. 1(b) the
improved one (VGND port).  Their electrical signature is what the paper
relies on; this bench characterizes a 2-input NAND in every variant and
asserts the orderings:

* delay: low-Vth < MT (either style) < high-Vth;
* standby leakage: MT residual < high-Vth << low-Vth;
* area: high-Vth == low-Vth < MT(VGND port) << conventional MT.
"""

import pytest

from repro.liberty.library import (
    VARIANT_CMT,
    VARIANT_HVT,
    VARIANT_LVT,
    VARIANT_MT,
    VARIANT_MTV,
)

BASE = "NAND2_X1"
SLEW = 0.02
LOAD = 0.004


def _delay(library, variant):
    cell = library.cell(f"{BASE}_{variant}")
    arc = cell.single_output().arc_from("A")
    rise, fall = arc.delay(SLEW, LOAD)
    return max(rise, fall)


def test_bench_fig1_characterization(benchmark, library):
    def characterize():
        rows = {}
        for variant in (VARIANT_LVT, VARIANT_HVT, VARIANT_MT,
                        VARIANT_MTV, VARIANT_CMT):
            cell = library.cell(f"{BASE}_{variant}")
            rows[variant] = (
                _delay(library, variant),
                cell.default_leakage_nw,
                cell.area,
            )
        return rows

    rows = benchmark(characterize)
    print()
    print(f"{'variant':<6} {'delay(ns)':>10} {'standby(nW)':>12} "
          f"{'area(um2)':>10}")
    for variant, (delay, leak, area) in rows.items():
        print(f"{variant:<6} {delay:10.4f} {leak:12.5f} {area:10.2f}")


def test_fig1_delay_ordering(library):
    """MT-cell faster than high-Vth, slower than low-Vth (Fig. 1 text)."""
    lvt = _delay(library, VARIANT_LVT)
    hvt = _delay(library, VARIANT_HVT)
    mtv = _delay(library, VARIANT_MTV)
    cmt = _delay(library, VARIANT_CMT)
    assert lvt < mtv < hvt
    assert lvt < cmt < hvt


def test_fig1_leakage_ordering(library):
    """MT-cell less leaky than low-Vth on standby (Fig. 1 text)."""
    lvt = library.cell(f"{BASE}_{VARIANT_LVT}").default_leakage_nw
    hvt = library.cell(f"{BASE}_{VARIANT_HVT}").default_leakage_nw
    mtv = library.cell(f"{BASE}_{VARIANT_MTV}").default_leakage_nw
    cmt = library.cell(f"{BASE}_{VARIANT_CMT}").default_leakage_nw
    assert mtv < hvt < lvt
    assert cmt < lvt / 5.0


def test_fig1_area_relationship(library):
    """Separating the switch shrinks the MT-cell: area(MTV) << area(CMT)."""
    lvt = library.cell(f"{BASE}_{VARIANT_LVT}").area
    mtv = library.cell(f"{BASE}_{VARIANT_MTV}").area
    cmt = library.cell(f"{BASE}_{VARIANT_CMT}").area
    assert lvt < mtv < cmt
    assert (mtv - lvt) < 0.4 * (cmt - lvt)


def test_fig1_vgnd_port_is_the_only_interface_change(library):
    """Fig.1(b): same logic pins plus VGND."""
    lvt = library.cell(f"{BASE}_{VARIANT_LVT}")
    mtv = library.cell(f"{BASE}_{VARIANT_MTV}")
    assert set(mtv.pins) == set(lvt.pins) | {"VGND"}
    cmt = library.cell(f"{BASE}_{VARIANT_CMT}")
    assert set(cmt.pins) == set(lvt.pins) | {"MTE"}
