"""Observability overhead: the disabled fast path must stay free.

Records ``BENCH_obs.json`` (see ``recorder.obs_json_path``):

* ``span_site`` — nanoseconds per *disabled* span site (the shared
  null object plus the kwargs dict the call site builds), measured
  over a tight loop;
* ``sta_10k`` — one full STA propagation on a generated 10k-instance
  circuit, tracing disabled vs enabled, plus the span count an
  enabled run produces.

Asserted bar (the tentpole's acceptance criterion): the estimated
disabled-tracing overhead — spans per STA run x disabled site cost,
over the run's wall-clock — stays **under 2 %**.  The enabled run
gets a loose sanity factor only; recording a handful of spans is not
the hot path, the disabled default is.
"""

from __future__ import annotations

import time

import pytest

from recorder import obs_json_path, record

from repro.benchcircuits.generator import GeneratorConfig, generate_circuit
from repro.compute import resolve_backend
from repro.liberty.library import VARIANT_LVT
from repro.netlist.techmap import technology_map
from repro.obs import spans
from repro.timing.constraints import Constraints
from repro.timing.session import TimingSession

SIZE = 10_000
CLOCK_PERIOD_NS = 6.0
SITE_ITERS = 100_000
ROUNDS = 3
OVERHEAD_BUDGET = 0.02


@pytest.fixture(autouse=True)
def clean_tracer():
    spans.reset()
    spans.disable()
    yield
    spans.reset()
    spans.disable()


@pytest.fixture(scope="module")
def netlist(library):
    config = GeneratorConfig(
        n_gates=SIZE, n_inputs=64, n_outputs=32, n_ffs=32,
        depth=max(12, SIZE // 400), seed=3)
    built = generate_circuit(f"obsbench{SIZE}", config)
    technology_map(built, library, VARIANT_LVT)
    return built


def _full_sta_seconds(session: TimingSession, round_index: int) -> float:
    """One full propagation, forced by dirtying every derate (the
    per-round epsilon keeps consecutive rounds from hitting the
    clean-session cache)."""
    epsilon = 1e-9 * (round_index + 1)
    session.set_derates({name: 1.0 + epsilon for name in
                         session.netlist.instances})
    started = time.perf_counter()
    session.report()
    return time.perf_counter() - started


def _disabled_site_ns() -> float:
    """Cost of one instrumented call site with tracing off."""
    assert not spans.is_enabled()
    started = time.perf_counter()
    for _ in range(SITE_ITERS):
        with spans.span("bench.site", instances=SIZE):
            pass
    return (time.perf_counter() - started) / SITE_ITERS * 1e9


def test_bench_disabled_overhead_under_two_percent(netlist, library):
    backend = resolve_backend(None)
    session = TimingSession(netlist, library,
                            Constraints(clock_period=CLOCK_PERIOD_NS),
                            compute_backend=backend)
    session.report()   # build (and, on numpy, lower) once: steady state

    disabled_s = min(_full_sta_seconds(session, index)
                     for index in range(ROUNDS))

    spans.enable()
    enabled_s = min(_full_sta_seconds(session, ROUNDS + index)
                    for index in range(ROUNDS))
    spans_per_run = sum(1 for root in spans.take_records()
                        for _ in root.walk()) / ROUNDS
    spans.disable()

    site_ns = _disabled_site_ns()
    overhead = (spans_per_run * site_ns * 1e-9) / disabled_s

    record("span_site", {
        "disabled_ns_per_site": round(site_ns, 1),
        "iters": SITE_ITERS,
    }, path=obs_json_path())
    record("sta_10k", {
        "backend": backend,
        "instances": len(netlist.instances),
        "disabled_full_s": round(disabled_s, 4),
        "enabled_full_s": round(enabled_s, 4),
        "spans_per_run": round(spans_per_run, 1),
        "disabled_overhead_pct": round(100 * overhead, 4),
        "enabled_ratio": round(enabled_s / disabled_s, 3),
    }, path=obs_json_path())

    assert spans_per_run >= 1, "enabled run recorded no spans"
    assert overhead < OVERHEAD_BUDGET, \
        f"disabled tracing overhead {100 * overhead:.3f}% >= " \
        f"{100 * OVERHEAD_BUDGET:.0f}% on the {SIZE}-instance STA bench"
    # Recording a handful of spans must not distort the run either.
    assert enabled_s < disabled_s * 2.0
