"""Figure 4: the Selective-MT design flow.

Fig. 4 is the flow chart; its reproduction is the executable pipeline.
This bench runs the full improved flow on a c880-class circuit and
verifies each box happened in order, including the post-route (SPEF)
switch re-optimization actually adjusting the structure built from
pre-route estimates.
"""

import pytest

from repro.config import FlowConfig, Technique
from repro.core.flow import SelectiveMtFlow
from conftest import run_once

EXPECTED_STAGES = [
    "physical_synthesis",     # box 1: synthesis w/ low-Vth + placement
    "vth_assignment",         # box 2-3: replacement + VGND/switch/holders
    "eco_placement",          # footprint refresh after replacement
    "switch_structure",       # box 4: CoolPower-style construction
    "routing_cts_mte",        # box 5: routing incl. CTS, MTE buffering
    "spef_reoptimization",    # box 6: post-route re-optimization
    "eco_and_sta",            # box 7: ECO + timing analysis
]


@pytest.fixture(scope="module")
def flow_result(library):
    from repro.benchcircuits.suite import load_circuit

    netlist = load_circuit("s1196")
    config = FlowConfig(timing_margin=0.12)
    return SelectiveMtFlow(netlist, library,
                           Technique.IMPROVED_SMT, config).run()


def test_bench_fig4_full_flow(benchmark, library):
    from repro.benchcircuits.suite import load_circuit

    netlist = load_circuit("c880")

    def run_flow():
        config = FlowConfig(timing_margin=0.10)
        return SelectiveMtFlow(netlist, library,
                               Technique.IMPROVED_SMT, config).run()

    result = run_once(benchmark, run_flow)
    print()
    print(result.render_stages())


class TestFig4:
    def test_stage_sequence(self, flow_result):
        assert [s.name for s in flow_result.stages] == EXPECTED_STAGES

    def test_every_stage_reported_details(self, flow_result):
        for stage in flow_result.stages:
            assert stage.details, stage.name
            assert stage.elapsed_s >= 0.0

    def test_cts_and_mte_both_ran(self, flow_result):
        assert flow_result.cts is not None
        assert flow_result.cts.buffer_count > 0     # sequential design
        assert flow_result.mte is not None

    def test_spef_stage_touched_the_structure(self, flow_result):
        stage = flow_result.stage("spef_reoptimization")
        # The estimate-vs-extracted gap must be visible: either switch
        # sizes changed or clusters were split (or the structure was
        # already optimal, in which case bounce must still be legal).
        assert flow_result.network.bounce_ok()
        assert "resized" in stage.details

    def test_final_verification(self, flow_result):
        assert flow_result.timing.hold_met
        assert flow_result.timing.wns \
            >= -0.01 * flow_result.constraints.clock_period

    def test_mte_wakeup_latency_reported(self, flow_result):
        assert flow_result.mte.wakeup_delay_ns >= 0.0
