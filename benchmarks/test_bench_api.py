"""Facade benchmark: warm Workspace-cached calls vs the legacy cold path.

The acceptance bar for the ``repro.api`` redesign: a **warm**
``Design.analyze()`` through the facade must beat the legacy cold-path
``run_table1`` single-circuit time by at least 3x.  (In practice the
gap is orders of magnitude — a warm analyze is a cache lookup, the
cold path is three full flows — but the floor pins the contract so a
regression that silently re-compiles state per call fails loudly.)

Also recorded: warm vs cold facade signoff on the same design, showing
the flow-result and corner-library caches at work.  Everything lands
in ``BENCH_api.json`` via the shared recorder.
"""

from __future__ import annotations

import time
import warnings

from repro.api import Workspace
from repro.experiments import table1_config

from recorder import api_json_path, record

CIRCUIT_SHORT = "A"
WARM_CALLS = 100


def _time(fn, repeat: int = 1) -> float:
    started = time.perf_counter()
    for _ in range(repeat):
        fn()
    return (time.perf_counter() - started) / repeat


def test_warm_facade_analyze_beats_cold_table1(library):
    from repro.experiments import run_table1

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        cold_s = _time(lambda: run_table1(library,
                                          circuits=(CIRCUIT_SHORT,)))

    workspace = Workspace(library=library,
                          config=table1_config(CIRCUIT_SHORT))
    design = workspace.design(f"circuit{CIRCUIT_SHORT}")
    first_analyze_s = _time(design.analyze)
    warm_s = _time(design.analyze, repeat=WARM_CALLS)

    speedup = cold_s / warm_s
    record("api_facade", {
        "circuit": f"circuit{CIRCUIT_SHORT}",
        "cold_run_table1_s": cold_s,
        "first_analyze_s": first_analyze_s,
        "warm_analyze_s": warm_s,
        "warm_analyze_speedup_x": speedup,
        "required_speedup_x": 3.0,
    }, path=api_json_path())
    print(f"\ncold run_table1({CIRCUIT_SHORT}): {cold_s:.3f}s, "
          f"warm analyze: {warm_s * 1e6:.1f}us "
          f"({speedup:.0f}x)")
    assert speedup >= 3.0, (
        f"warm facade analyze must be >= 3x faster than the cold "
        f"run_table1 path, got {speedup:.2f}x")


def test_warm_signoff_reuses_flow_and_corner_caches(library):
    corners = ("tt_nom", "ff_1.32v_125c", "ss_1.08v_125c")
    workspace = Workspace(library=library,
                          config=table1_config(CIRCUIT_SHORT))
    design = workspace.design(f"circuit{CIRCUIT_SHORT}")
    cold_s = _time(lambda: design.signoff(corners=corners))
    warm_s = _time(lambda: design.signoff(corners=corners), repeat=10)
    # A second corner set re-evaluates but reuses the cached flow
    # result and the already-derived corner libraries.
    partial_s = _time(lambda: design.signoff(corners=corners[:2]))
    record("api_signoff", {
        "circuit": f"circuit{CIRCUIT_SHORT}",
        "cold_signoff_s": cold_s,
        "warm_signoff_s": warm_s,
        "warm_flow_new_corners_s": partial_s,
    }, path=api_json_path())
    assert warm_s < cold_s
    # The flow dominates the cold signoff; with it cached, evaluating
    # a fresh corner subset must be much cheaper than the cold call.
    assert partial_s < cold_s / 2
