"""Command-line interface — a thin client of :mod:`repro.api`.

Every subcommand builds one :class:`~repro.api.Workspace` and drives
the facade; ``--json`` outputs all come from the schema registry
(stamped with ``schema``/``schema_version`` and checked to round-trip
through ``from_dict(to_dict(x)) == x`` before they are written).

Examples::

    repro-smt list
    repro-smt flow --circuit c880 --technique improved_smt
    repro-smt compare --circuit circuitA --margin 0.12
    repro-smt corners --circuits c432 --corners tt_nom,ss_1.08v_125c
    repro-smt serve --port 8731
    repro-smt library --out my.lib
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.api import Workspace, schemas
from repro.benchcircuits.suite import available_circuits
from repro.config import FlowConfig, Technique
from repro.liberty.writer import write_liberty
from repro.obs import (
    configure_logging,
    enable as enable_tracing,
    take_records,
    write_chrome_trace,
)
from repro.power.report import render_leakage_table
from repro import units


def _add_obs_options(parser: argparse.ArgumentParser):
    """Observability knobs shared by every heavy subcommand."""
    parser.add_argument(
        "--trace", metavar="PATH",
        help="record hierarchical spans and write a Chrome "
             "trace-event JSON file here (loadable in Perfetto / "
             "chrome://tracing); also honors $REPRO_TRACE=1")
    parser.add_argument(
        "--log-level", default=None,
        help="level for the `repro` logger hierarchy "
             "(DEBUG/INFO/WARNING/...; default: $REPRO_LOG_LEVEL, "
             "else logging stays silent)")


def _add_config_options(parser: argparse.ArgumentParser):
    """The FlowConfig knobs shared by flow/compare/sweep."""
    _add_obs_options(parser)
    parser.add_argument("--margin", type=float, default=0.15,
                        help="timing margin over the all-LVT critical delay")
    parser.add_argument("--bounce", type=float, default=0.05,
                        help="VGND bounce limit as a fraction of Vdd")
    parser.add_argument("--max-cells", type=int, default=64,
                        help="EM cap: MT-cells per switch")
    parser.add_argument("--max-rail", type=float, default=400.0,
                        help="VGND rail length cap (um)")
    parser.add_argument("--seed", type=int, default=1,
                        help="placement seed")
    parser.add_argument(
        "--backend", default=None, choices=["python", "numpy"],
        help="numeric compute backend for STA / leakage / Monte-Carlo "
             "(default: $REPRO_COMPUTE_BACKEND or python; numpy falls "
             "back to python when the optional dependency is missing)")


def _add_flow_options(parser: argparse.ArgumentParser):
    parser.add_argument("--circuit", required=True,
                        help="circuit name (see `list`)")
    _add_config_options(parser)


def _config_from(args) -> FlowConfig:
    kwargs = dict(
        timing_margin=args.margin,
        bounce_limit_fraction=args.bounce,
        max_cells_per_switch=args.max_cells,
        max_rail_length_um=args.max_rail,
        placement_seed=args.seed)
    if getattr(args, "backend", None):
        # As a constructor kwarg so __post_init__ validates the name.
        kwargs["compute_backend"] = args.backend
    return FlowConfig(**kwargs)


def _workspace(args, jobs: int | None = None) -> Workspace:
    return Workspace(config=_config_from(args),
                     jobs=jobs if jobs is not None
                     else getattr(args, "jobs", 1))


def _emit_json(result, path: str | None):
    """Write a registered result as JSON (round-trip checked)."""
    if not path:
        return
    payload = schemas.check_round_trip(result)
    with open(path, "w", encoding="utf-8") as handle:
        # allow_nan=False: non-finite floats are string-encoded by the
        # schema layer, so reports stay strict JSON.
        json.dump(payload, handle, indent=2, sort_keys=True,
                  allow_nan=False)
    print(f"wrote JSON report to {path}")


def cmd_list(_args) -> int:
    for name in available_circuits():
        print(name)
    return 0


def cmd_flow(args) -> int:
    workspace = _workspace(args)
    design = workspace.design(args.circuit)
    technique = Technique(args.technique)
    result = design.flow_result(technique)
    library = workspace.library
    print(result.render_stages())
    print()
    print(render_leakage_table(result.leakage))
    print()
    print(f"total area      : {units.pretty_area(result.total_area)}")
    print(f"final timing    : {result.timing.summary()}")
    if result.network is not None:
        from repro.vgnd.report import render_network_table

        print()
        print(render_network_table(result.network, library))
    if args.export:
        from repro.core.artifacts import export_design, verify_export

        manifest = export_design(result, library, args.export)
        problems = verify_export(manifest, library)
        status = "verified clean" if not problems else \
            f"PROBLEMS: {problems}"
        print(f"\nexported design database to {args.export} ({status})")
    if args.json:
        _emit_json(design.optimize(technique=technique), args.json)
    return 0


def cmd_stats(args) -> int:
    from repro.netlist.stats import design_stats
    from repro.netlist.techmap import technology_map

    workspace = Workspace()
    library = workspace.library
    netlist = workspace.netlist(args.circuit).clone()
    technology_map(netlist, library)
    print(design_stats(netlist, library).render())
    return 0


def cmd_compare(args) -> int:
    design = _workspace(args).design(args.circuit)
    result = design.sweep(jobs=args.jobs)
    print(result.render())
    _emit_json(result, args.json)
    return 0


def cmd_sweep(args) -> int:
    circuits = [name.strip() for name in args.circuits.split(",")
                if name.strip()]
    if not circuits:
        print("no circuits given", file=sys.stderr)
        return 2
    try:
        techniques = _parse_techniques(args.techniques)
    except _CliArgError as error:
        print(error, file=sys.stderr)
        return 2
    workspace = _workspace(args)
    result = workspace.sweep(circuits, techniques=techniques,
                             jobs=args.jobs)
    print(result.render())
    _emit_json(result, args.json)
    return 0


class _CliArgError(Exception):
    """A user-input problem a command reports as exit code 2."""


def _parse_techniques(text: str | None):
    """Comma-separated technique list; ``None`` means "all"."""
    if text is None:
        return None
    names = [name.strip() for name in text.split(",") if name.strip()]
    if not names:
        raise _CliArgError("no techniques given")
    try:
        return tuple(Technique(name) for name in names)
    except ValueError:
        valid = ", ".join(t.value for t in Technique)
        raise _CliArgError(
            f"unknown technique in {text!r}; valid: {valid}") from None


def cmd_corners(args) -> int:
    from repro.api.studies import corner_signoff_study
    from repro.variation.corners import (
        default_signoff_corners,
        standard_corners,
    )

    workspace = _workspace(args)
    library = workspace.library
    circuits = tuple(name.strip() for name in args.circuits.split(",")
                     if name.strip())
    if not circuits:
        print("no circuits given", file=sys.stderr)
        return 2
    try:
        techniques = _parse_techniques(args.techniques)
    except _CliArgError as error:
        print(error, file=sys.stderr)
        return 2
    if args.all_corners:
        corners = tuple(standard_corners(library.tech))
    elif args.corners:
        corners = tuple(name.strip() for name in args.corners.split(",")
                        if name.strip())
    else:
        corners = default_signoff_corners(library.tech)
    known = standard_corners(library.tech)
    unknown = [name for name in corners if name not in known]
    if unknown:
        print(f"unknown corner(s) {unknown}; "
              f"known: {', '.join(sorted(known))}", file=sys.stderr)
        return 2
    result = corner_signoff_study(
        workspace, circuits=circuits, techniques=techniques,
        corners=corners, config=_config_from(args), jobs=args.jobs)
    print(result.render())
    _emit_json(result, args.json)
    return 0


def cmd_montecarlo(args) -> int:
    from repro.api.studies import montecarlo_study
    from repro.variation.corners import standard_corners

    workspace = _workspace(args)
    library = workspace.library
    if args.corner and args.corner not in standard_corners(library.tech):
        print(f"unknown corner {args.corner!r}; "
              f"known: {', '.join(sorted(standard_corners(library.tech)))}",
              file=sys.stderr)
        return 2
    try:
        techniques = _parse_techniques(args.techniques)
    except _CliArgError as error:
        print(error, file=sys.stderr)
        return 2
    study = montecarlo_study(
        workspace, circuit=args.circuit, techniques=techniques,
        samples=args.samples, seed=args.mc_seed,
        sigma_global_v=args.sigma_global, sigma_local_v=args.sigma_local,
        timing=not args.no_timing, corner=args.corner,
        leakage_budget_nw=args.leakage_budget,
        config=_config_from(args), jobs=args.jobs)
    print(study.render())
    _emit_json(study, args.json)
    return 0


def _load_scenario_payload(path: str):
    """Read one user-defined power-mode scenario from a JSON file.

    Accepts either a schema-stamped ``standby_scenario`` payload
    (``schemas.to_dict`` output) or a plain constructor-kwargs object
    (``{"name": ..., "active_ns": ..., ...}``).
    """
    from repro.errors import ConfigError
    from repro.standby.scenario import PowerModeScenario

    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise ConfigError(
            "scenario_file", f"cannot read {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ConfigError(
            "scenario_file", f"invalid JSON in {path!r}: {exc}") from exc
    if not isinstance(payload, dict):
        raise ConfigError(
            "scenario_file",
            f"{path!r} must hold a JSON object, got "
            f"{type(payload).__name__}")
    if "schema" in payload:
        scenario = schemas.from_dict(payload)
        if not isinstance(scenario, PowerModeScenario):
            raise ConfigError(
                "scenario_file",
                f"{path!r} holds a {payload['schema']!r} payload, "
                f"not a standby_scenario")
        return scenario
    if "points" in payload:
        payload = dict(payload, points=tuple(
            (float(d), float(w)) for d, w in payload["points"]))
    try:
        return PowerModeScenario(**payload)
    except TypeError as exc:
        raise ConfigError(
            "scenario_file", f"bad scenario in {path!r}: {exc}") from exc


def _split_names(text: str | None) -> tuple[str, ...]:
    return tuple(name.strip() for name in
                 (text or "").split(",") if name.strip())


def _check_names(kind: str, names, known) -> bool:
    unknown = [name for name in names if name not in known]
    if unknown:
        print(f"unknown {kind}(s) {unknown}; "
              f"known: {', '.join(sorted(known))}", file=sys.stderr)
        return False
    return True


def cmd_standby(args) -> int:
    from repro.api.requests import StandbyRequest
    from repro.errors import ConfigError, SchemaError
    from repro.standby.scenario import standard_scenarios
    from repro.variation.corners import standard_corners
    from repro.vgnd.report import render_standby_table

    workspace = _workspace(args)
    library = workspace.library
    scenarios = _split_names(args.scenarios)
    if not _check_names("scenario", scenarios, standard_scenarios()):
        return 2
    corners = _split_names(args.corners)
    if not _check_names("corner", corners,
                        standard_corners(library.tech)):
        return 2
    try:
        payloads = tuple(_load_scenario_payload(path)
                         for path in (args.scenario_file or ()))
        request = StandbyRequest(
            technique=Technique(args.technique),
            scenarios=scenarios, scenario_payloads=payloads,
            corners=corners,
            rush_budget_ma=args.rush_budget,
            settle_fraction=args.settle_fraction)
    except (ConfigError, SchemaError) as error:
        print(error, file=sys.stderr)
        return 2
    result = workspace.standby(args.circuit, request)
    print(render_standby_table(result))
    _emit_json(result, args.json)
    return 0


def cmd_policy(args) -> int:
    from repro.api.requests import PolicyRequest
    from repro.errors import ConfigError
    from repro.policy.traces import load_trace, trace_scenario
    from repro.standby.scenario import standard_scenarios
    from repro.variation.corners import standard_corners

    workspace = _workspace(args)
    library = workspace.library
    scenarios = _split_names(args.scenarios)
    if not _check_names("scenario", scenarios, standard_scenarios()):
        return 2
    corners = _split_names(args.corners)
    if not _check_names("corner", corners,
                        standard_corners(library.tech)):
        return 2
    try:
        payloads = tuple(
            trace_scenario(load_trace(path), active_ns=args.active_ns,
                           quantile_points=args.quantile_points)
            for path in (args.trace_file or ()))
        request = PolicyRequest(
            technique=Technique(args.technique),
            scenarios=scenarios, scenario_payloads=payloads,
            corners=corners, candidates=args.candidates,
            max_domains=args.max_domains,
            rush_budget_ma=args.rush_budget,
            settle_fraction=args.settle_fraction)
    except ConfigError as error:
        print(error, file=sys.stderr)
        return 2
    result = workspace.policy(args.circuit, request)
    print(result.render())
    _emit_json(result, args.json)
    return 0


def cmd_library(args) -> int:
    library = Workspace().library
    text = write_liberty(library)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {len(library)} cells to {args.out}")
    else:
        sys.stdout.write(text)
    return 0


def cmd_serve(args) -> int:
    from repro.api.service import serve

    server = serve(host=args.host, port=args.port, jobs=args.jobs,
                   workers=args.workers, retain=args.retain,
                   shards=args.shards, queue_limit=args.queue_limit,
                   result_store=args.result_store,
                   verbose=args.verbose)
    tier = f"shards={args.shards}" if args.shards else \
        f"workers={args.workers}"
    print(f"repro-smt job service listening on {server.address} "
          f"({tier}, pool jobs={args.jobs}, "
          f"queue_limit={args.queue_limit or 'unbounded'}, "
          f"result_store={args.result_store or 'off'})",
          flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.shutdown()
        server.service.close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-smt",
        description="Selective Multi-Threshold CMOS design flow "
                    "(DATE 2005 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available circuits") \
        .set_defaults(func=cmd_list)

    flow_parser = sub.add_parser("flow", help="run one technique")
    _add_flow_options(flow_parser)
    flow_parser.add_argument(
        "--technique", default="improved_smt",
        choices=[t.value for t in Technique])
    flow_parser.add_argument(
        "--export", metavar="DIR",
        help="write the design database (.v/.def/.spef/.sdc/.lib) here")
    flow_parser.add_argument(
        "--json", metavar="PATH",
        help="also write the optimize result as JSON")
    flow_parser.set_defaults(func=cmd_flow)

    stats_parser = sub.add_parser("stats",
                                  help="print design statistics")
    stats_parser.add_argument("--circuit", required=True)
    stats_parser.set_defaults(func=cmd_stats)

    compare_parser = sub.add_parser(
        "compare", help="run all three techniques (Table 1 format)")
    _add_flow_options(compare_parser)
    compare_parser.add_argument(
        "--jobs", type=int, default=1,
        help="process-pool width (1 = in-process)")
    compare_parser.add_argument(
        "--json", metavar="PATH",
        help="also write the comparison as JSON")
    compare_parser.set_defaults(func=cmd_compare)

    sweep_parser = sub.add_parser(
        "sweep", help="compare techniques across many circuits, "
                      "optionally over a process pool")
    sweep_parser.add_argument(
        "--circuits", required=True,
        help="comma-separated circuit names (see `list`)")
    sweep_parser.add_argument(
        "--techniques", default=None,
        help="comma-separated subset of "
             + ",".join(t.value for t in Technique))
    sweep_parser.add_argument(
        "--jobs", type=int, default=1,
        help="process-pool width (1 = in-process; results are "
             "identical either way)")
    sweep_parser.add_argument(
        "--json", metavar="PATH", help="also write the sweep as JSON")
    _add_config_options(sweep_parser)
    sweep_parser.set_defaults(func=cmd_sweep)

    corners_parser = sub.add_parser(
        "corners", help="PVT corner signoff across circuits and "
                        "techniques (variation engine)")
    corners_parser.add_argument(
        "--circuits", required=True,
        help="comma-separated circuit names (see `list`)")
    corners_parser.add_argument(
        "--techniques", default=None,
        help="comma-separated subset of "
             + ",".join(t.value for t in Technique))
    corners_parser.add_argument(
        "--corners", default=None,
        help="comma-separated corner names (default: tt_nom + worst "
             "leakage + worst timing)")
    corners_parser.add_argument(
        "--all-corners", action="store_true",
        help="sign off the full 27-corner SSxVDDxT grid")
    corners_parser.add_argument(
        "--jobs", type=int, default=1,
        help="process-pool width (results identical for any N)")
    corners_parser.add_argument(
        "--json", metavar="PATH", help="also write the report as JSON")
    _add_config_options(corners_parser)
    corners_parser.set_defaults(func=cmd_corners)

    mc_parser = sub.add_parser(
        "montecarlo", help="Monte-Carlo Vth-variation study "
                           "(log-normal leakage statistics + yield)")
    mc_parser.add_argument("--circuit", required=True,
                           help="circuit name (see `list`)")
    mc_parser.add_argument(
        "--techniques", default=None,
        help="comma-separated subset of "
             + ",".join(t.value for t in Technique))
    mc_parser.add_argument("--samples", type=int, default=64,
                           help="Monte-Carlo sample count")
    mc_parser.add_argument("--mc-seed", type=int, default=1,
                           help="sampling seed (sample k is a pure "
                                "function of (seed, k))")
    mc_parser.add_argument("--sigma-global", type=float, default=0.03,
                           help="die-to-die Vth sigma (V)")
    mc_parser.add_argument("--sigma-local", type=float, default=0.015,
                           help="per-instance Vth sigma (V)")
    mc_parser.add_argument("--no-timing", action="store_true",
                           help="skip per-sample STA (leakage only)")
    mc_parser.add_argument("--corner", default=None,
                           help="evaluate samples around this PVT corner")
    mc_parser.add_argument("--leakage-budget", type=float, default=None,
                           help="leakage yield budget in nW (default: "
                                "2x each technique's nominal)")
    mc_parser.add_argument(
        "--jobs", type=int, default=1,
        help="process-pool width (statistics identical for any N)")
    mc_parser.add_argument(
        "--json", metavar="PATH", help="also write the report as JSON")
    _add_config_options(mc_parser)
    mc_parser.set_defaults(func=cmd_montecarlo)

    standby_parser = sub.add_parser(
        "standby", help="standby-transition signoff: wake-up "
                        "transients, staged rush-current schedule and "
                        "power-mode break-even analysis")
    standby_parser.add_argument("--circuit", required=True,
                                help="circuit name (see `list`)")
    standby_parser.add_argument(
        "--technique", default="improved_smt",
        choices=[t.value for t in Technique],
        help="only improved_smt builds the shared-switch network")
    standby_parser.add_argument(
        "--scenarios", default=None,
        help="comma-separated power-mode scenario names "
             "(default: every built-in scenario)")
    standby_parser.add_argument(
        "--corners", default=None,
        help="comma-separated PVT corner names (default: nominal + "
             "worst leakage + worst timing)")
    standby_parser.add_argument(
        "--rush-budget", type=float, default=None,
        help="aggregate wake-up rush-current budget in mA (default: "
             "half the simultaneous-enable rush)")
    standby_parser.add_argument(
        "--settle-fraction", type=float, default=0.05,
        help="VGND settle threshold as a fraction of Vdd")
    standby_parser.add_argument(
        "--scenario-file", action="append", metavar="PATH",
        help="JSON file with one user-defined power-mode scenario "
             "(schema-stamped standby_scenario payload or plain "
             "constructor kwargs); repeatable")
    standby_parser.add_argument(
        "--json", metavar="PATH",
        help="also write the standby result as JSON")
    _add_config_options(standby_parser)
    standby_parser.set_defaults(func=cmd_standby)

    policy_parser = sub.add_parser(
        "policy", help="sleep-policy sweep: thousands of candidate "
                       "threshold/power-domain policies batched "
                       "through the scenario engine, reduced to the "
                       "Pareto front of (net savings, wake latency, "
                       "peak rush)")
    policy_parser.add_argument("--circuit", required=True,
                               help="circuit name (see `list`)")
    policy_parser.add_argument(
        "--technique", default="improved_smt",
        choices=[t.value for t in Technique],
        help="only improved_smt builds the shared-switch network")
    policy_parser.add_argument(
        "--scenarios", default=None,
        help="comma-separated built-in power-mode scenario names "
             "(default: every built-in scenario unless trace files "
             "are given)")
    policy_parser.add_argument(
        "--trace-file", action="append", metavar="PATH",
        help="idle-interval trace (one interval in ns per line, or "
             "the compact JSON format) reduced to an empirical "
             "workload scenario; repeatable")
    policy_parser.add_argument(
        "--active-ns", type=float, default=None,
        help="active burst length between idle intervals for trace "
             "workloads (default: the trace's own value)")
    policy_parser.add_argument(
        "--quantile-points", type=int, default=16,
        help="quantile-grid points a trace is reduced to")
    policy_parser.add_argument(
        "--corners", default=None,
        help="comma-separated PVT corner names (default: nominal + "
             "worst leakage + worst timing)")
    policy_parser.add_argument(
        "--candidates", type=int, default=1024,
        help="minimum number of candidate policies swept")
    policy_parser.add_argument(
        "--max-domains", type=int, default=4,
        help="largest hierarchical power-domain count per plan "
             "(the per-cluster plan is always swept too)")
    policy_parser.add_argument(
        "--rush-budget", type=float, default=None,
        help="aggregate wake-up rush-current budget in mA (default: "
             "half the simultaneous-enable rush)")
    policy_parser.add_argument(
        "--settle-fraction", type=float, default=0.05,
        help="VGND settle threshold as a fraction of Vdd")
    policy_parser.add_argument(
        "--json", metavar="PATH",
        help="also write the Pareto front as JSON")
    _add_config_options(policy_parser)
    policy_parser.set_defaults(func=cmd_policy)

    library_parser = sub.add_parser(
        "library", help="emit the synthesized multi-Vth library")
    library_parser.add_argument("--out", help="output .lib path")
    library_parser.set_defaults(func=cmd_library)

    serve_parser = sub.add_parser(
        "serve", help="persistent job-service mode: submit / status / "
                      "result / cancel over HTTP+JSON, one warm "
                      "Workspace behind every request")
    serve_parser.add_argument("--host", default="127.0.0.1",
                              help="bind address")
    serve_parser.add_argument("--port", type=int, default=8731,
                              help="TCP port (0 = ephemeral)")
    serve_parser.add_argument(
        "--jobs", type=int, default=1,
        help="process-pool width for grid fan-out inside jobs")
    serve_parser.add_argument(
        "--workers", type=int, default=1,
        help="worker threads draining the job queue")
    serve_parser.add_argument(
        "--retain", type=int, default=None,
        help="finished job records kept before the oldest are "
             "evicted (default 1000)")
    serve_parser.add_argument(
        "--shards", type=int, default=0,
        help="worker *processes* sharded by design fingerprint "
             "(0 = in-process worker threads); same-design jobs stay "
             "cache-local, different designs run truly in parallel")
    serve_parser.add_argument(
        "--queue-limit", type=int, default=None,
        help="max queued jobs before submissions are rejected with "
             "HTTP 429 + Retry-After (default: unbounded)")
    serve_parser.add_argument(
        "--result-store", metavar="DIR",
        default=os.environ.get("REPRO_RESULT_STORE") or None,
        help="persist finished result payloads here so warm hits "
             "survive restarts (default: $REPRO_RESULT_STORE)")
    serve_parser.add_argument("--verbose", action="store_true",
                              help="log every HTTP request")
    _add_obs_options(serve_parser)
    serve_parser.set_defaults(func=cmd_serve)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        configure_logging(getattr(args, "log_level", None))
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2
    trace_path = getattr(args, "trace", None)
    if trace_path:
        enable_tracing()
    try:
        return args.func(args)
    finally:
        if trace_path:
            out = write_chrome_trace(trace_path, take_records())
            print(f"wrote Chrome trace to {out}")


if __name__ == "__main__":
    raise SystemExit(main())
