"""Sleep-switch transistor family.

The improved Selective-MT methodology inserts discrete high-Vth NMOS
switch cells between the VGND rail of an MT-cell cluster and true ground.
Real libraries offer a geometric family of footprint-compatible switch
cells; :class:`SwitchFamily` models that: a sorted list of
:class:`SwitchCellSpec` entries, each with a width, on-resistance,
standby leakage, area and electromigration current limit.

The conventional Selective-MT technique embeds a (conservatively sized)
switch inside every MT-cell; :func:`embedded_switch_width` computes that
per-cell width so the area/leakage overhead of the conventional approach
is derived from the same physics as the improved one.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Iterator, Sequence

from repro.device.mosfet import MosfetModel
from repro.device.process import Technology
from repro.errors import SizingError


@dataclasses.dataclass(frozen=True)
class SwitchCellSpec:
    """One discrete sleep-switch cell.

    Attributes
    ----------
    name:
        Library cell name, e.g. ``"SWITCH_X8"``.
    width_um:
        Total NMOS width of the switch transistor.
    on_resistance_kohm:
        Linear-region resistance when MTE is high.
    leakage_nw:
        Standby (MTE low) subthreshold leakage power.
    area_um2:
        Layout area.
    em_limit_ma:
        Maximum sustained current before electromigration risk.
    """

    name: str
    width_um: float
    on_resistance_kohm: float
    leakage_nw: float
    area_um2: float
    em_limit_ma: float


class SwitchFamily:
    """The available discrete switch sizes in ascending width order."""

    #: Default geometric family of drive multipliers.
    DEFAULT_MULTIPLIERS: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 128)

    #: Width of the X1 switch in um.
    BASE_WIDTH_UM = 2.0

    def __init__(self, tech: Technology,
                 multipliers: Sequence[int] | None = None,
                 base_width_um: float | None = None):
        self.tech = tech
        self._model = MosfetModel(tech, tech.vth_high, "nmos")
        multipliers = (tuple(self.DEFAULT_MULTIPLIERS) if multipliers is None
                       else tuple(multipliers))
        if not multipliers or sorted(multipliers) != list(multipliers):
            raise ValueError("multipliers must be a non-empty ascending sequence")
        base = base_width_um if base_width_um is not None else self.BASE_WIDTH_UM
        if base <= 0:
            raise ValueError(f"base width must be positive, got {base}")
        self._specs = [self._make_spec(m, base) for m in multipliers]

    def _make_spec(self, multiplier: int, base_width: float) -> SwitchCellSpec:
        width = base_width * multiplier
        return SwitchCellSpec(
            name=f"SWITCH_X{multiplier}",
            width_um=width,
            on_resistance_kohm=self._model.on_resistance(width),
            leakage_nw=self._model.leakage_power(width),
            area_um2=self.tech.area_per_um_width * width,
            em_limit_ma=self.tech.em_current_per_um * width,
        )

    def __iter__(self) -> Iterator[SwitchCellSpec]:
        return iter(self._specs)

    def __len__(self) -> int:
        return len(self._specs)

    @property
    def specs(self) -> Sequence[SwitchCellSpec]:
        """All switch specs, ascending by width."""
        return tuple(self._specs)

    def smallest(self) -> SwitchCellSpec:
        """The minimum-width switch cell."""
        return self._specs[0]

    def largest(self) -> SwitchCellSpec:
        """The maximum-width switch cell."""
        return self._specs[-1]

    def by_name(self, name: str) -> SwitchCellSpec:
        """Look up a switch spec by cell name."""
        for spec in self._specs:
            if spec.name == name:
                return spec
        raise KeyError(f"no switch cell named {name!r}")

    def smallest_for_resistance(self, max_ron_kohm: float) -> SwitchCellSpec:
        """Smallest switch whose on-resistance is at most ``max_ron_kohm``.

        Raises :class:`~repro.errors.SizingError` when even the largest
        switch is too resistive.
        """
        if max_ron_kohm <= 0.0 or math.isnan(max_ron_kohm):
            raise SizingError(
                f"required on-resistance {max_ron_kohm} kOhm is not achievable")
        for spec in self._specs:
            if spec.on_resistance_kohm <= max_ron_kohm:
                return spec
        raise SizingError(
            f"largest switch {self._specs[-1].name} has Ron "
            f"{self._specs[-1].on_resistance_kohm:.4f} kOhm, above the "
            f"required {max_ron_kohm:.4f} kOhm")

    def smallest_for_current(self, current_ma: float) -> SwitchCellSpec:
        """Smallest switch whose EM limit covers ``current_ma``."""
        for spec in self._specs:
            if spec.em_limit_ma >= current_ma:
                return spec
        raise SizingError(
            f"current {current_ma:.3f} mA exceeds the EM limit of the "
            f"largest switch ({self._specs[-1].em_limit_ma:.3f} mA)")


def embedded_switch_width(tech: Technology, switching_current_ma: float,
                          bounce_limit_v: float,
                          min_width_um: float = 2.0) -> float:
    """Per-cell embedded switch width for the *conventional* MT-cell.

    The embedded high-Vth switch is sized so the cell's own switching
    current develops no more than the designer's bounce budget across
    it — the same budget the improved technique's shared switches obey,
    making the two structures directly comparable.

    The per-cell granularity is exactly the overhead the improved
    technique removes: each cell is sized for *its own* full current
    (no simultaneity averaging across cells), and no cell can go below
    the manufacturable minimum width.
    """
    if switching_current_ma < 0:
        raise ValueError("switching current must be non-negative")
    if bounce_limit_v <= 0:
        raise ValueError("bounce limit must be positive")
    if min_width_um <= 0:
        raise ValueError("minimum width must be positive")
    overdrive = tech.overdrive(tech.vth_high)
    # Ron = 1/(k_lin*W*od) and I*Ron <= bounce  =>  W >= I/(k_lin*od*bounce)
    width = switching_current_ma / (tech.k_lin * overdrive * bounce_limit_v)
    return max(width, min_width_um)
