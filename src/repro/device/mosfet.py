"""Alpha-power-law MOSFET model.

Two analytic equations drive all cell characterization:

* **On-current** (Sakurai-Newton alpha-power law):
  ``Id_sat = k_sat * W * (Vgs - Vth)^alpha`` in mA with W in um.

* **Subthreshold leakage**:
  ``I_leak = i0 * W * exp((Vgs - Vth) / (n*vT)) * (1 - exp(-Vds/vT))``
  in mA.  In standby Vgs = 0 for an off device, and the drain term is
  ~1 for any Vds more than a few vT.

The :class:`MosfetModel` wraps a :class:`~repro.device.process.Technology`
plus a threshold voltage and polarity, exposing width-parameterized
current, resistance, capacitance and leakage queries.
"""

from __future__ import annotations

import dataclasses
import math

from repro.device.process import Technology


@dataclasses.dataclass(frozen=True)
class MosfetModel:
    """A MOSFET of fixed threshold/polarity in a given technology.

    Parameters
    ----------
    tech:
        The process technology.
    vth:
        Threshold voltage in volts (use ``tech.vth_low``/``tech.vth_high``).
    polarity:
        ``"nmos"`` or ``"pmos"``; PMOS devices are derated by
        ``tech.pmos_factor`` for drive strength.
    """

    tech: Technology
    vth: float
    polarity: str = "nmos"

    def __post_init__(self):
        if self.polarity not in ("nmos", "pmos"):
            raise ValueError(f"polarity must be nmos/pmos, got {self.polarity!r}")
        if not 0.0 < self.vth < self.tech.vdd:
            raise ValueError(
                f"vth {self.vth} must lie strictly between 0 and vdd "
                f"{self.tech.vdd}")

    # --- drive -------------------------------------------------------------

    def _drive_factor(self) -> float:
        if self.polarity == "pmos":
            return self.tech.k_sat * self.tech.pmos_factor
        return self.tech.k_sat

    def saturation_current(self, width_um: float,
                           vgs: float | None = None) -> float:
        """Saturation drain current in mA for the given width.

        ``vgs`` defaults to the full supply.
        """
        if width_um <= 0.0:
            raise ValueError(f"width must be positive, got {width_um}")
        if vgs is None:
            vgs = self.tech.vdd
        overdrive = vgs - self.vth
        if overdrive <= 0.0:
            return 0.0
        return self._drive_factor() * width_um * overdrive ** self.tech.alpha

    def effective_resistance(self, width_um: float) -> float:
        """Equivalent switching resistance in kOhm (Vdd / Idsat).

        This is the resistance used by the RC delay model; the 0.69 ln(2)
        factor is applied by the delay calculator, not here.
        """
        current = self.saturation_current(width_um)
        if current <= 0.0:
            return math.inf
        return self.tech.vdd / current

    def on_resistance(self, width_um: float) -> float:
        """Linear-region (triode) on-resistance in kOhm.

        Used for sleep switches which operate deep in the linear region
        (Vds is the small virtual-ground bounce).
        """
        if width_um <= 0.0:
            raise ValueError(f"width must be positive, got {width_um}")
        factor = self.tech.k_lin
        if self.polarity == "pmos":
            factor *= self.tech.pmos_factor
        overdrive = self.tech.overdrive(self.vth)
        return 1.0 / (factor * width_um * overdrive)

    # --- leakage ------------------------------------------------------------

    def subthreshold_current(self, width_um: float, vgs: float = 0.0,
                             vds: float | None = None) -> float:
        """Subthreshold leakage current in mA.

        ``vds`` defaults to the full supply (worst case off device).
        """
        if width_um <= 0.0:
            raise ValueError(f"width must be positive, got {width_um}")
        if vds is None:
            vds = self.tech.vdd
        swing = self.tech.subthreshold_swing()
        vt = self.tech.thermal_voltage()
        current = self.tech.i0 * width_um * math.exp((vgs - self.vth) / swing)
        current *= 1.0 - math.exp(-max(vds, 0.0) / vt)
        return current

    def leakage_power(self, width_um: float, stack_depth: int = 1) -> float:
        """Standby leakage power in nW for an off device of this width.

        ``stack_depth`` models the stacking effect: each additional series
        off transistor multiplies the leakage by ``tech.stack_factor``.
        """
        if stack_depth < 1:
            raise ValueError(f"stack_depth must be >= 1, got {stack_depth}")
        current_ma = self.subthreshold_current(width_um)
        current_ma *= self.tech.stack_factor ** (stack_depth - 1)
        # mA * V = mW; convert to nW.
        return current_ma * self.tech.vdd * 1e6

    # --- capacitance -----------------------------------------------------------

    def gate_capacitance(self, width_um: float) -> float:
        """Gate capacitance in pF."""
        if width_um <= 0.0:
            raise ValueError(f"width must be positive, got {width_um}")
        return self.tech.cgate_per_um * width_um

    def drain_capacitance(self, width_um: float) -> float:
        """Drain junction capacitance in pF."""
        if width_um <= 0.0:
            raise ValueError(f"width must be positive, got {width_um}")
        return self.tech.cdrain_per_um * width_um
