"""Process technology description.

A :class:`Technology` instance carries every process-level constant the
library needs: supply and threshold voltages, alpha-power-law current
factors, subthreshold slope, unit capacitances, wire parasitics, and
layout geometry.  The defaults model a generic 90 nm-class low-power
process calibrated so that the *relationships* the Selective-MT
methodology relies on hold:

* high-Vth cells are ~25-30 % slower and ~20x less leaky than low-Vth;
* an MT-cell (low-Vth logic on a virtual ground) is slightly slower than
  a pure low-Vth cell but clearly faster than high-Vth;
* sleep-switch transistors obey Ron ~ 1/W with realistic magnitudes.

Internal units follow :mod:`repro.units` (ns, pF, kOhm, mA, nW, um).
"""

from __future__ import annotations

import dataclasses

from repro import units


@dataclasses.dataclass(frozen=True)
class Technology:
    """Immutable process description.

    Attributes are grouped as: supplies/thresholds, current model,
    leakage model, capacitances, wire parasitics, geometry, reliability.
    """

    name: str = "generic90lp"

    # --- supplies and thresholds (volts) ---------------------------------
    vdd: float = 1.2
    vth_low: float = 0.30
    vth_high: float = 0.46
    temperature_k: float = units.ROOM_TEMPERATURE_K

    # --- alpha-power-law on-current model ---------------------------------
    # Id_sat = k_sat * W * (Vgs - Vth)^alpha      [mA, W in um]
    alpha: float = 1.3
    k_sat: float = 0.55
    # Linear-region conductance for switch on-resistance:
    # Ron = 1 / (k_lin * W * (Vgs - Vth))          [kOhm]
    k_lin: float = 0.40
    # PMOS drive is weaker by this mobility ratio.
    pmos_factor: float = 0.5

    # --- subthreshold leakage model ---------------------------------------
    # I_leak = i0 * W * exp(-Vth / (n * vT))       [mA, W in um]
    subthreshold_n: float = 1.5
    i0: float = 3.0e-3
    # Series stacks leak less; per extra off device in series multiply by
    # this factor (classic "stacking effect").
    stack_factor: float = 0.25

    # --- variation model (used by repro.variation) -------------------------
    # DIBL: effective Vth drops by this many volts per volt of Vds
    # (approximated as the supply) above nominal.
    dibl_v_per_v: float = 0.08
    # Threshold temperature coefficient (volts per kelvin; negative:
    # Vth drops as the die heats up, which is why leakage explodes).
    vth_temp_v_per_k: float = -0.8e-3
    # Mobility degradation: drive current scales as (T/T0)^-m.
    mobility_temp_exp: float = 1.5
    # Subthreshold prefactor scales as (T/T0)^2 (diffusion current).
    leakage_temp_exp: float = 2.0

    # --- capacitances ------------------------------------------------------
    # Gate capacitance per um of transistor width [pF/um].
    cgate_per_um: float = 1.0e-3
    # Drain junction capacitance per um of width [pF/um].
    cdrain_per_um: float = 0.5e-3

    # --- wire parasitics (per um of routed length) -------------------------
    # Calibrated low relative to a raw 90 nm process because our global
    # placer produces longer nets than a commercial one; the product
    # (net length x unit cap) is what matters, and this keeps the wire
    # share of cell load at the realistic ~20-30 %.
    wire_res_per_um: float = 0.3e-3   # kOhm/um  (0.3 ohm/um)
    wire_cap_per_um: float = 0.05e-3  # pF/um    (0.05 fF/um)
    # VGND rails are wide power straps (several um of top metal), so
    # per-um resistance is far below signal wiring.
    vgnd_res_per_um: float = 0.03e-3  # kOhm/um
    vgnd_cap_per_um: float = 0.3e-3   # pF/um

    # --- layout geometry ----------------------------------------------------
    row_height: float = 2.4           # um (standard-cell row height)
    site_width: float = 0.4           # um (placement site)
    # Converts transistor width to cell area: area ~= area_per_um_width * W.
    area_per_um_width: float = 1.3    # um^2 per um of total transistor width

    # --- reliability ---------------------------------------------------------
    # Electromigration: max sustained current per um of switch width [mA/um].
    em_current_per_um: float = 0.3

    def thermal_voltage(self) -> float:
        """Thermal voltage kT/q at the analysis temperature (volts)."""
        return units.thermal_voltage(self.temperature_k)

    def subthreshold_swing(self) -> float:
        """n * vT, the denominator of the leakage exponential (volts)."""
        return self.subthreshold_n * self.thermal_voltage()

    def leakage_ratio(self) -> float:
        """Leakage ratio between low-Vth and high-Vth devices (same width)."""
        import math
        delta = self.vth_high - self.vth_low
        return math.exp(delta / self.subthreshold_swing())

    def overdrive(self, vth: float) -> float:
        """Gate overdrive Vdd - Vth, clamped to a small positive floor."""
        return max(self.vdd - vth, 1e-3)

    def with_updates(self, **changes) -> "Technology":
        """Return a copy of this technology with selected fields changed."""
        return dataclasses.replace(self, **changes)


DEFAULT_TECHNOLOGY = Technology()
"""Module-level default used when callers do not supply a technology."""
