"""Transistor-level device models.

This package is the physics substrate for the whole reproduction.  The
paper's numbers come from a proprietary TOSHIBA 90 nm process; we replace
it with a compact analytical model:

* :mod:`repro.device.process` — the :class:`Technology` description
  (supply, threshold voltages, current factors, wire parasitics).
* :mod:`repro.device.mosfet` — alpha-power-law on-current and
  exponential subthreshold leakage models.
* :mod:`repro.device.switchfet` — the discrete sleep-switch transistor
  family used by the virtual-ground optimizer.
"""

from repro.device.mosfet import MosfetModel
from repro.device.process import Technology
from repro.device.switchfet import SwitchCellSpec, SwitchFamily

__all__ = [
    "MosfetModel",
    "Technology",
    "SwitchCellSpec",
    "SwitchFamily",
]
