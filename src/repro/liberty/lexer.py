"""Tokenizer for the Liberty subset.

Token kinds: identifiers/numbers (as raw words), quoted strings,
punctuation (``{ } ( ) : ; ,``).  Comments (``/* */`` and ``//``) and
line continuations (``\\`` at end of line) are stripped.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ParseError


@dataclasses.dataclass(frozen=True)
class Token:
    kind: str          # "word", "string", "punct"
    value: str
    line: int
    column: int


_PUNCT = set("{}():;,")


def tokenize(text: str, filename: str | None = None) -> list[Token]:
    """Tokenize Liberty source text."""
    tokens: list[Token] = []
    i = 0
    line = 1
    column = 1
    n = len(text)

    def error(message: str) -> ParseError:
        return ParseError(message, filename=filename, line=line, column=column)

    while i < n:
        ch = text[i]
        # Newlines / whitespace.
        if ch == "\n":
            i += 1
            line += 1
            column = 1
            continue
        if ch.isspace():
            i += 1
            column += 1
            continue
        # Line continuation.
        if ch == "\\" and i + 1 < n and text[i + 1] == "\n":
            i += 2
            line += 1
            column = 1
            continue
        # Comments.
        if ch == "/" and i + 1 < n and text[i + 1] == "*":
            end = text.find("*/", i + 2)
            if end < 0:
                raise error("unterminated /* comment")
            line += text.count("\n", i, end)
            i = end + 2
            column = 1
            continue
        if ch == "/" and i + 1 < n and text[i + 1] == "/":
            end = text.find("\n", i)
            i = n if end < 0 else end
            continue
        # Strings.
        if ch == '"':
            j = i + 1
            while j < n and text[j] != '"':
                if text[j] == "\\" and j + 1 < n and text[j + 1] == "\n":
                    j += 2
                    continue
                j += 1
            if j >= n:
                raise error("unterminated string literal")
            raw = text[i + 1:j].replace("\\\n", "")
            tokens.append(Token("string", raw, line, column))
            line += text.count("\n", i, j)
            column += j + 1 - i
            i = j + 1
            continue
        # Punctuation.
        if ch in _PUNCT:
            tokens.append(Token("punct", ch, line, column))
            i += 1
            column += 1
            continue
        # Words: identifiers, numbers, units (e.g. 1ns, 0.55, cell_rise).
        j = i
        while j < n and not text[j].isspace() and text[j] not in _PUNCT \
                and text[j] != '"':
            j += 1
        if j == i:
            raise error(f"unexpected character {ch!r}")
        tokens.append(Token("word", text[i:j], line, column))
        column += j - i
        i = j

    return tokens
