"""Recursive-descent parser for the Liberty subset.

Produces the :class:`~repro.liberty.ast.Group` tree.  Handles:

* nested groups with argument lists,
* simple attributes ``name : value ;`` (``;`` optional at line ends in
  some dialects; we require it, which our writer always emits),
* complex attributes ``name (v1, v2, ...);`` including multi-line
  ``values("...", "...")`` tables,
* numbers parsed to float/int, booleans, quoted strings.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.liberty.ast import AttrValue, Group
from repro.liberty.lexer import Token, tokenize


def _convert(token: Token) -> AttrValue:
    """Convert a token to a typed attribute value."""
    if token.kind == "string":
        return token.value
    word = token.value
    if word == "true":
        return True
    if word == "false":
        return False
    try:
        value = float(word)
    except ValueError:
        return word
    if value.is_integer() and ("." not in word and "e" not in word.lower()):
        return int(value)
    return value


class _Parser:
    def __init__(self, tokens: list[Token], filename: str | None):
        self.tokens = tokens
        self.pos = 0
        self.filename = filename

    def error(self, message: str) -> ParseError:
        if self.pos < len(self.tokens):
            token = self.tokens[self.pos]
            return ParseError(message, filename=self.filename,
                              line=token.line, column=token.column)
        return ParseError(message + " (at end of file)", filename=self.filename)

    def peek(self, offset: int = 0) -> Token | None:
        index = self.pos + offset
        if index < len(self.tokens):
            return self.tokens[index]
        return None

    def advance(self) -> Token:
        if self.pos >= len(self.tokens):
            raise self.error("unexpected end of file")
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect_punct(self, value: str) -> Token:
        token = self.advance()
        if token.kind != "punct" or token.value != value:
            raise ParseError(
                f"expected {value!r}, found {token.value!r}",
                filename=self.filename, line=token.line, column=token.column)
        return token

    def at_punct(self, value: str) -> bool:
        token = self.peek()
        return token is not None and token.kind == "punct" \
            and token.value == value

    # --- grammar ------------------------------------------------------------

    def parse_file(self) -> Group:
        group = self.parse_group()
        if self.pos != len(self.tokens):
            raise self.error("trailing content after top-level group")
        return group

    def parse_group(self) -> Group:
        keyword_token = self.advance()
        if keyword_token.kind != "word":
            raise ParseError(
                f"expected group keyword, found {keyword_token.value!r}",
                filename=self.filename, line=keyword_token.line,
                column=keyword_token.column)
        group = Group(keyword_token.value)
        self.expect_punct("(")
        while not self.at_punct(")"):
            token = self.advance()
            if token.kind == "punct" and token.value == ",":
                continue
            group.args.append(str(token.value))
        self.expect_punct(")")
        self.expect_punct("{")
        while not self.at_punct("}"):
            self.parse_statement(group)
        self.expect_punct("}")
        # Optional trailing semicolon after a group close.
        if self.at_punct(";"):
            self.advance()
        return group

    def parse_statement(self, group: Group):
        name_token = self.peek()
        if name_token is None:
            raise self.error("unexpected end of file inside group")
        if name_token.kind != "word":
            raise ParseError(
                f"expected attribute or group, found {name_token.value!r}",
                filename=self.filename, line=name_token.line,
                column=name_token.column)
        after = self.peek(1)
        if after is not None and after.kind == "punct" and after.value == ":":
            # Simple attribute.
            self.advance()  # name
            self.advance()  # ':'
            value_token = self.advance()
            group.set(name_token.value, _convert(value_token))
            if self.at_punct(";"):
                self.advance()
            return
        if after is not None and after.kind == "punct" and after.value == "(":
            # Complex attribute or nested group: look past the ')' for '{'.
            depth = 0
            index = self.pos + 1
            while index < len(self.tokens):
                token = self.tokens[index]
                if token.kind == "punct" and token.value == "(":
                    depth += 1
                elif token.kind == "punct" and token.value == ")":
                    depth -= 1
                    if depth == 0:
                        break
                index += 1
            if index >= len(self.tokens):
                raise self.error("unbalanced parentheses")
            next_token = self.tokens[index + 1] if index + 1 < len(self.tokens) else None
            if next_token is not None and next_token.kind == "punct" \
                    and next_token.value == "{":
                group.groups.append(self.parse_group())
                return
            # Complex attribute.
            self.advance()  # name
            self.expect_punct("(")
            values: list[AttrValue] = []
            while not self.at_punct(")"):
                token = self.advance()
                if token.kind == "punct" and token.value == ",":
                    continue
                values.append(_convert(token))
            self.expect_punct(")")
            if self.at_punct(";"):
                self.advance()
            group.set_complex(name_token.value, values)
            return
        raise ParseError(
            f"expected ':' or '(' after {name_token.value!r}",
            filename=self.filename, line=name_token.line,
            column=name_token.column)


def parse_liberty(text: str, filename: str | None = None) -> Group:
    """Parse Liberty source text into an AST group tree."""
    tokens = tokenize(text, filename)
    if not tokens:
        raise ParseError("empty liberty source", filename=filename)
    return _Parser(tokens, filename).parse_file()


def parse_liberty_file(path: str) -> Group:
    """Parse a ``.lib`` file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_liberty(handle.read(), filename=path)
