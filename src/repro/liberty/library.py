"""Typed in-memory Liberty library model.

This is the object model the rest of the system works with: the AST from
:mod:`repro.liberty.parser` is only a serialization layer.  Key classes:

* :class:`Lut` — an NLDM lookup table with bilinear interpolation and
  linear extrapolation (input slew x output load).
* :class:`TimingArc` — one input-to-output delay arc of a cell.
* :class:`LeakageState` — a ``leakage_power`` entry, optionally guarded
  by a ``when`` condition for state-dependent leakage.
* :class:`PinDef`, :class:`CellDef`, :class:`Library`.

Cells carry reproduction-specific classification used by the
Selective-MT flow (``variant``, ``base_name``, ``vth_class``, MT flags,
switch width); these round-trip through ``.lib`` files via ``repro_*``
vendor attributes.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Iterable, Mapping, Sequence

from repro.errors import LibertyError
from repro.liberty.function import BooleanFunction, LogicValue, X


class PinDirection(enum.Enum):
    INPUT = "input"
    OUTPUT = "output"
    INOUT = "inout"
    INTERNAL = "internal"


class VthClass(enum.Enum):
    LOW = "low"
    HIGH = "high"


class CellKind(enum.Enum):
    LOGIC = "logic"
    SEQUENTIAL = "sequential"
    BUFFER = "buffer"
    SWITCH = "switch"
    HOLDER = "holder"


#: Variant tags used throughout the Selective-MT flow.
VARIANT_LVT = "LVT"    # low-Vth cell
VARIANT_HVT = "HVT"    # high-Vth cell
VARIANT_MT = "MT"      # MT-cell without VGND port (Fig.4 intermediate)
VARIANT_MTV = "MTV"    # MT-cell with VGND port (Fig.1(b))
VARIANT_CMT = "CMT"    # conventional MT-cell, embedded switch (Fig.1(a))

ALL_VARIANTS = (VARIANT_LVT, VARIANT_HVT, VARIANT_MT, VARIANT_MTV, VARIANT_CMT)


class Lut:
    """A 2-D NLDM lookup table.

    ``index_1`` is input transition time (ns), ``index_2`` output load
    capacitance (pF).  Either axis may be singleton.  Lookup performs
    bilinear interpolation, extending the boundary gradients linearly
    outside the characterized window (matching commercial STA behavior).
    """

    __slots__ = ("index_1", "index_2", "values")

    def __init__(self, index_1: Sequence[float], index_2: Sequence[float],
                 values: Sequence[Sequence[float]]):
        if not index_1 or not index_2:
            raise LibertyError("LUT axes must be non-empty")
        if len(values) != len(index_1):
            raise LibertyError(
                f"LUT has {len(values)} rows but index_1 has "
                f"{len(index_1)} entries")
        for row in values:
            if len(row) != len(index_2):
                raise LibertyError(
                    f"LUT row width {len(row)} does not match index_2 "
                    f"length {len(index_2)}")
        if list(index_1) != sorted(index_1) or list(index_2) != sorted(index_2):
            raise LibertyError("LUT axes must be ascending")
        self.index_1 = tuple(float(v) for v in index_1)
        self.index_2 = tuple(float(v) for v in index_2)
        self.values = tuple(tuple(float(v) for v in row) for row in values)

    @classmethod
    def constant(cls, value: float) -> "Lut":
        """A degenerate 1x1 table returning ``value`` everywhere."""
        return cls((0.0,), (0.0,), ((value,),))

    @staticmethod
    def _axis_position(axis: tuple[float, ...], x: float) -> tuple[int, float]:
        """Segment index and interpolation fraction for value ``x``.

        The fraction may fall outside [0, 1] to extrapolate linearly.
        """
        if len(axis) == 1:
            return 0, 0.0
        # Find the segment [axis[i], axis[i+1]] bracketing x (clamped).
        hi = len(axis) - 1
        i = 0
        while i < hi - 1 and x > axis[i + 1]:
            i += 1
        span = axis[i + 1] - axis[i]
        if span <= 0.0:
            return i, 0.0
        return i, (x - axis[i]) / span

    def lookup(self, slew: float, load: float) -> float:
        """Interpolated table value at (slew, load)."""
        i, fi = self._axis_position(self.index_1, slew)
        j, fj = self._axis_position(self.index_2, load)
        v = self.values
        if len(self.index_1) == 1 and len(self.index_2) == 1:
            return v[0][0]
        if len(self.index_1) == 1:
            return v[0][j] + fj * (v[0][j + 1] - v[0][j])
        if len(self.index_2) == 1:
            return v[i][0] + fi * (v[i + 1][0] - v[i][0])
        v00 = v[i][j]
        v01 = v[i][j + 1]
        v10 = v[i + 1][j]
        v11 = v[i + 1][j + 1]
        top = v00 + fj * (v01 - v00)
        bottom = v10 + fj * (v11 - v10)
        return top + fi * (bottom - top)

    def scaled(self, factor: float) -> "Lut":
        """A copy with every value multiplied by ``factor``."""
        return Lut(self.index_1, self.index_2,
                   [[v * factor for v in row] for row in self.values])

    def max_value(self) -> float:
        return max(max(row) for row in self.values)

    def __repr__(self):
        return (f"Lut({len(self.index_1)}x{len(self.index_2)}, "
                f"max={self.max_value():.4g})")


@dataclasses.dataclass
class TimingArc:
    """One timing arc from ``related_pin`` to the owning output pin."""

    related_pin: str
    timing_sense: str = "positive_unate"
    timing_type: str = "combinational"
    cell_rise: Lut | None = None
    cell_fall: Lut | None = None
    rise_transition: Lut | None = None
    fall_transition: Lut | None = None
    rise_constraint: Lut | None = None
    fall_constraint: Lut | None = None

    def is_constraint(self) -> bool:
        """True for setup/hold checks rather than delay arcs."""
        return self.timing_type.startswith(("setup", "hold", "recovery",
                                            "removal"))

    def delay(self, slew: float, load: float) -> tuple[float, float]:
        """(rise, fall) delay at the given input slew / output load."""
        rise = self.cell_rise.lookup(slew, load) if self.cell_rise else 0.0
        fall = self.cell_fall.lookup(slew, load) if self.cell_fall else 0.0
        return rise, fall

    def output_slew(self, slew: float, load: float) -> tuple[float, float]:
        """(rise, fall) output transition time."""
        rise = (self.rise_transition.lookup(slew, load)
                if self.rise_transition else 0.0)
        fall = (self.fall_transition.lookup(slew, load)
                if self.fall_transition else 0.0)
        return rise, fall

    def constraint(self, slew: float, clock_slew: float = 0.0) -> float:
        """Worst setup/hold constraint value (max of rise/fall tables)."""
        worst = 0.0
        for lut in (self.rise_constraint, self.fall_constraint):
            if lut is not None:
                worst = max(worst, lut.lookup(slew, clock_slew))
        return worst


@dataclasses.dataclass
class LeakageState:
    """A ``leakage_power`` group: value (nW) plus optional ``when`` guard."""

    value_nw: float
    when: str | None = None
    when_fn: BooleanFunction | None = None

    def __post_init__(self):
        if self.when is not None and self.when_fn is None:
            self.when_fn = BooleanFunction(self.when)

    def matches(self, env: Mapping[str, LogicValue]) -> bool:
        """True when the guard evaluates to 1 under ``env``."""
        if self.when_fn is None:
            return True
        try:
            return self.when_fn.evaluate(env) == 1
        except KeyError:
            return False


@dataclasses.dataclass
class PinDef:
    """A library cell pin."""

    name: str
    direction: PinDirection
    capacitance: float = 0.0
    function: str | None = None
    max_capacitance: float | None = None
    is_clock: bool = False
    timing_arcs: list[TimingArc] = dataclasses.field(default_factory=list)
    _parsed_function: BooleanFunction | None = dataclasses.field(
        default=None, repr=False, compare=False)

    @property
    def logic_function(self) -> BooleanFunction | None:
        """Parsed boolean function for output pins (cached)."""
        if self.function is None:
            return None
        if self._parsed_function is None:
            self._parsed_function = BooleanFunction(self.function)
        return self._parsed_function

    def arc_from(self, related_pin: str) -> TimingArc | None:
        """The delay arc triggered by ``related_pin``, if any."""
        for arc in self.timing_arcs:
            if arc.related_pin == related_pin and not arc.is_constraint():
                return arc
        return None


@dataclasses.dataclass
class CellDef:
    """A library cell with reproduction-specific classification."""

    name: str
    area: float = 0.0
    pins: dict[str, PinDef] = dataclasses.field(default_factory=dict)
    leakage_states: list[LeakageState] = dataclasses.field(default_factory=list)
    default_leakage_nw: float = 0.0

    # Classification used by the Selective-MT flow.
    base_name: str = ""
    variant: str = VARIANT_LVT
    vth_class: VthClass = VthClass.LOW
    kind: CellKind = CellKind.LOGIC
    has_vgnd_port: bool = False
    switch_width_um: float = 0.0     # for SWITCH cells / embedded CMT switch
    switching_current_ma: float = 0.0  # avg VGND current while switching
    footprint: str = ""

    # Sequential metadata (Liberty ff group).
    ff_next_state: str | None = None
    ff_clocked_on: str | None = None

    def __post_init__(self):
        if not self.base_name:
            self.base_name = self.name

    # --- pin queries ----------------------------------------------------

    def pin(self, name: str) -> PinDef:
        try:
            return self.pins[name]
        except KeyError:
            raise LibertyError(f"cell {self.name} has no pin {name!r}") from None

    def input_pins(self) -> list[PinDef]:
        return [p for p in self.pins.values()
                if p.direction == PinDirection.INPUT]

    def output_pins(self) -> list[PinDef]:
        return [p for p in self.pins.values()
                if p.direction == PinDirection.OUTPUT]

    def single_output(self) -> PinDef:
        outputs = self.output_pins()
        if len(outputs) != 1:
            raise LibertyError(
                f"cell {self.name} has {len(outputs)} outputs, expected 1")
        return outputs[0]

    def data_input_names(self) -> list[str]:
        """Input pins excluding clock and control (MTE) pins."""
        return [p.name for p in self.input_pins()
                if not p.is_clock and p.name != "MTE"]

    # --- classification -----------------------------------------------------

    @property
    def is_sequential(self) -> bool:
        return self.kind == CellKind.SEQUENTIAL

    @property
    def is_switch(self) -> bool:
        return self.kind == CellKind.SWITCH

    @property
    def is_holder(self) -> bool:
        return self.kind == CellKind.HOLDER

    @property
    def is_mt(self) -> bool:
        """True for any MT-cell variant (MT, MTV or conventional)."""
        return self.variant in (VARIANT_MT, VARIANT_MTV, VARIANT_CMT)

    @property
    def is_improved_mt(self) -> bool:
        """MT-cell of the improved style (external switch)."""
        return self.variant in (VARIANT_MT, VARIANT_MTV)

    @property
    def is_conventional_mt(self) -> bool:
        return self.variant == VARIANT_CMT

    # --- leakage ---------------------------------------------------------------

    def leakage_nw(self, env: Mapping[str, LogicValue] | None = None) -> float:
        """Standby leakage in nW; state-dependent when ``env`` is given.

        With no environment (or no matching ``when`` state) the default
        (state-averaged) leakage is returned.
        """
        if env is not None:
            for state in self.leakage_states:
                if state.when_fn is not None and state.matches(env):
                    return state.value_nw
        return self.default_leakage_nw

    def worst_leakage_nw(self) -> float:
        """Maximum leakage across all characterized states."""
        values = [s.value_nw for s in self.leakage_states]
        values.append(self.default_leakage_nw)
        return max(values)

    def evaluate(self, env: Mapping[str, LogicValue]) -> dict[str, LogicValue]:
        """Evaluate all output functions under an input environment."""
        result: dict[str, LogicValue] = {}
        for pin in self.output_pins():
            fn = pin.logic_function
            result[pin.name] = fn.evaluate(env) if fn is not None else X
        return result


class Library:
    """A named collection of cells with variant lookup support."""

    def __init__(self, name: str, tech=None):
        self.name = name
        self.tech = tech
        #: VGND bounce (V) assumed when MT tables were characterized.
        self.mt_assumed_bounce_v: float | None = None
        self._cells: dict[str, CellDef] = {}
        self._variant_index: dict[tuple[str, str], str] = {}
        self._content_digest: str | None = None

    # --- container protocol -----------------------------------------------

    def __contains__(self, cell_name: str) -> bool:
        return cell_name in self._cells

    def __len__(self) -> int:
        return len(self._cells)

    def __iter__(self):
        return iter(self._cells.values())

    @property
    def cells(self) -> dict[str, CellDef]:
        return self._cells

    # --- access ------------------------------------------------------------

    def add_cell(self, cell: CellDef) -> CellDef:
        if cell.name in self._cells:
            raise LibertyError(f"duplicate cell {cell.name!r} in library "
                               f"{self.name!r}")
        self._cells[cell.name] = cell
        self._variant_index[(cell.base_name, cell.variant)] = cell.name
        self._content_digest = None
        return cell

    def cell(self, name: str) -> CellDef:
        try:
            return self._cells[name]
        except KeyError:
            raise LibertyError(
                f"library {self.name!r} has no cell {name!r}") from None

    def variant_of(self, cell: CellDef | str, variant: str) -> CellDef:
        """The sibling of ``cell`` with the requested variant tag."""
        if isinstance(cell, str):
            cell = self.cell(cell)
        key = (cell.base_name, variant)
        if key not in self._variant_index:
            raise LibertyError(
                f"no {variant} variant of base cell {cell.base_name!r}")
        return self._cells[self._variant_index[key]]

    def has_variant(self, cell: CellDef | str, variant: str) -> bool:
        if isinstance(cell, str):
            cell = self.cell(cell)
        return (cell.base_name, variant) in self._variant_index

    def cells_of_kind(self, kind: CellKind) -> list[CellDef]:
        return [c for c in self._cells.values() if c.kind == kind]

    def switch_cells(self) -> list[CellDef]:
        """Discrete sleep-switch cells, ascending by width."""
        switches = self.cells_of_kind(CellKind.SWITCH)
        switches.sort(key=lambda c: c.switch_width_um)
        return switches

    def buffers(self) -> list[CellDef]:
        """Buffer cells ascending by drive (area as proxy)."""
        bufs = [c for c in self.cells_of_kind(CellKind.BUFFER)
                if c.base_name.startswith("BUF")]
        bufs.sort(key=lambda c: c.area)
        return bufs

    def base_names(self) -> set[str]:
        return {c.base_name for c in self._cells.values()}

    # --- content identity ---------------------------------------------------

    def content_digest(self) -> str:
        """SHA-256 of the library's timing/leakage content.

        Covers everything the compute-backend lowering and the corner
        derivation read: technology constants, per-cell LUTs, pin
        capacitances, leakage numbers and classification fields — so
        it keys both the on-disk lowering cache and the corner-library
        memo.  Memoized; ``add_cell`` invalidates (cells themselves
        are treated as immutable once added, which every producer in
        this codebase honors — corner derivation builds fresh cells).
        """
        if self._content_digest is None:
            self._content_digest = self._compute_content_digest()
        return self._content_digest

    def _compute_content_digest(self) -> str:
        import hashlib

        digest = hashlib.sha256()

        def put(text: str):
            digest.update(text.encode("utf-8"))
            digest.update(b"\n")

        put(f"library {self.name}")
        put(f"bounce {self.mt_assumed_bounce_v!r}")
        if self.tech is not None:
            for key, value in sorted(
                    dataclasses.asdict(self.tech).items()):
                put(f"tech {key} {value!r}")

        def put_lut(tag: str, lut: Lut | None):
            if lut is None:
                return
            put(f"{tag} {lut.index_1!r} {lut.index_2!r} {lut.values!r}")

        for name in sorted(self._cells):
            cell = self._cells[name]
            put(f"cell {name} {cell.area!r} {cell.vth_class.value} "
                f"{cell.kind.value} {cell.variant} {cell.base_name} "
                f"{cell.default_leakage_nw!r} "
                f"{cell.switching_current_ma!r} "
                f"{cell.switch_width_um!r} {cell.has_vgnd_port} "
                f"{cell.footprint!r} {cell.ff_next_state!r} "
                f"{cell.ff_clocked_on!r}")
            for state in cell.leakage_states:
                put(f"leak {state.value_nw!r} {state.when!r}")
            for pin_name in sorted(cell.pins):
                pin = cell.pins[pin_name]
                put(f"pin {pin_name} {pin.direction} "
                    f"{pin.capacitance!r} {pin.max_capacitance!r} "
                    f"{pin.is_clock}")
                for arc in pin.timing_arcs:
                    put(f"arc {arc.related_pin} {arc.timing_sense} "
                        f"{arc.timing_type}")
                    put_lut("cr", arc.cell_rise)
                    put_lut("cf", arc.cell_fall)
                    put_lut("rt", arc.rise_transition)
                    put_lut("ft", arc.fall_transition)
                    put_lut("rc", arc.rise_constraint)
                    put_lut("fc", arc.fall_constraint)
        return digest.hexdigest()


def library_from_ast(root, tech=None) -> Library:
    """Build a typed :class:`Library` from a parsed Liberty AST."""
    from repro.liberty.ast import Group

    if not isinstance(root, Group) or root.keyword != "library":
        raise LibertyError("top-level group must be 'library'")
    library = Library(root.name or "unnamed", tech=tech)
    for cell_group in root.find_groups("cell"):
        library.add_cell(_cell_from_ast(cell_group))
    return library


def _lut_from_ast(group) -> Lut:
    index_1 = _parse_axis(group.get_complex("index_1"))
    index_2 = _parse_axis(group.get_complex("index_2"))
    raw_values = group.get_complex("values") or []
    rows = [_split_floats(str(row)) for row in raw_values]
    if index_1 is None and index_2 is None and len(rows) == 1 \
            and len(rows[0]) == 1:
        return Lut.constant(rows[0][0])
    if index_1 is None:
        index_1 = [0.0] if len(rows) == 1 else list(range(len(rows)))
    if index_2 is None:
        width = len(rows[0]) if rows else 1
        index_2 = [0.0] if width == 1 else list(range(width))
    return Lut(index_1, index_2, rows)


def _parse_axis(values) -> list[float] | None:
    if not values:
        return None
    if len(values) == 1 and isinstance(values[0], str):
        return _split_floats(values[0])
    return [float(v) for v in values]


def _split_floats(text: str) -> list[float]:
    parts = text.replace(",", " ").split()
    return [float(p) for p in parts]


def _arc_from_ast(group) -> TimingArc:
    arc = TimingArc(
        related_pin=str(group.get("related_pin", "")),
        timing_sense=str(group.get("timing_sense", "positive_unate")),
        timing_type=str(group.get("timing_type", "combinational")),
    )
    for table_name in ("cell_rise", "cell_fall", "rise_transition",
                       "fall_transition", "rise_constraint",
                       "fall_constraint"):
        table_group = group.find_group(table_name)
        if table_group is not None:
            setattr(arc, table_name, _lut_from_ast(table_group))
    return arc


def _pin_from_ast(group) -> PinDef:
    direction = PinDirection(str(group.get("direction", "input")))
    pin = PinDef(
        name=str(group.name),
        direction=direction,
        capacitance=float(group.get("capacitance", 0.0) or 0.0),
        function=(str(group.get("function"))
                  if group.get("function") is not None else None),
        is_clock=bool(group.get("clock", False)),
    )
    max_cap = group.get("max_capacitance")
    if max_cap is not None:
        pin.max_capacitance = float(max_cap)
    for timing_group in group.find_groups("timing"):
        pin.timing_arcs.append(_arc_from_ast(timing_group))
    return pin


def _cell_from_ast(group) -> CellDef:
    cell = CellDef(name=str(group.name), area=float(group.get("area", 0.0)))
    # Reproduction classification attributes.
    cell.base_name = str(group.get("repro_base", cell.name))
    cell.variant = str(group.get("repro_variant", VARIANT_LVT))
    cell.vth_class = VthClass(str(group.get("repro_vth", "low")))
    cell.kind = CellKind(str(group.get("repro_kind", "logic")))
    cell.has_vgnd_port = bool(group.get("repro_has_vgnd", False))
    cell.switch_width_um = float(group.get("repro_switch_width", 0.0) or 0.0)
    cell.switching_current_ma = float(
        group.get("repro_switching_current", 0.0) or 0.0)
    cell.footprint = str(group.get("cell_footprint", "") or "")
    # Leakage.
    default_leak = group.get("cell_leakage_power")
    if default_leak is not None:
        cell.default_leakage_nw = float(default_leak)
    for leak_group in group.find_groups("leakage_power"):
        when = leak_group.get("when")
        cell.leakage_states.append(LeakageState(
            value_nw=float(leak_group.get("value", 0.0)),
            when=str(when) if when is not None else None))
    # Sequential metadata.
    ff_group = group.find_group("ff")
    if ff_group is not None:
        cell.kind = CellKind.SEQUENTIAL
        next_state = ff_group.get("next_state")
        clocked_on = ff_group.get("clocked_on")
        cell.ff_next_state = str(next_state) if next_state is not None else None
        cell.ff_clocked_on = str(clocked_on) if clocked_on is not None else None
    # Pins.
    for pin_group in group.find_groups("pin"):
        pin = _pin_from_ast(pin_group)
        cell.pins[pin.name] = pin
    return cell
