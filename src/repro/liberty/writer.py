"""Serialize a :class:`~repro.liberty.library.Library` to ``.lib`` text.

The output is standard Liberty (groups, simple/complex attributes, NLDM
``values`` tables) plus ``repro_*`` vendor attributes carrying the
Selective-MT classification, so a write/parse round trip reconstructs an
identical typed library.
"""

from __future__ import annotations

import io

from repro.liberty.library import (
    CellDef,
    CellKind,
    Library,
    Lut,
    PinDef,
    PinDirection,
    TimingArc,
)


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


class _Emitter:
    def __init__(self):
        self.out = io.StringIO()
        self.depth = 0

    def line(self, text: str = ""):
        self.out.write("  " * self.depth + text + "\n")

    def open_group(self, keyword: str, *args: str):
        arg_text = ", ".join(args)
        self.line(f"{keyword} ({arg_text}) {{")
        self.depth += 1

    def close_group(self):
        self.depth -= 1
        self.line("}")

    def attr(self, name: str, value, quote: bool = False):
        rendered = _format_value(value)
        if quote or (isinstance(value, str)
                     and any(c in value for c in " ()*+!^'|&")):
            rendered = f'"{rendered}"'
        self.line(f"{name} : {rendered};")

    def complex_attr(self, name: str, values):
        rendered = ", ".join(f'"{v}"' if isinstance(v, str)
                             else _format_value(v) for v in values)
        self.line(f"{name} ({rendered});")

    def text(self) -> str:
        return self.out.getvalue()


def _write_lut(emitter: _Emitter, keyword: str, lut: Lut):
    emitter.open_group(keyword, "lut_template")
    emitter.complex_attr("index_1", [" ".join(f"{v:.6g}" for v in lut.index_1)])
    emitter.complex_attr("index_2", [" ".join(f"{v:.6g}" for v in lut.index_2)])
    rows = [", ".join(f"{v:.6g}" for v in row) for row in lut.values]
    emitter.complex_attr("values", rows)
    emitter.close_group()


def _write_arc(emitter: _Emitter, arc: TimingArc):
    emitter.open_group("timing")
    emitter.attr("related_pin", arc.related_pin, quote=True)
    emitter.attr("timing_sense", arc.timing_sense)
    emitter.attr("timing_type", arc.timing_type)
    for table_name in ("cell_rise", "cell_fall", "rise_transition",
                       "fall_transition", "rise_constraint",
                       "fall_constraint"):
        lut = getattr(arc, table_name)
        if lut is not None:
            _write_lut(emitter, table_name, lut)
    emitter.close_group()


def _write_pin(emitter: _Emitter, pin: PinDef):
    emitter.open_group("pin", pin.name)
    emitter.attr("direction", pin.direction.value)
    emitter.attr("capacitance", pin.capacitance)
    if pin.is_clock:
        emitter.attr("clock", True)
    if pin.max_capacitance is not None:
        emitter.attr("max_capacitance", pin.max_capacitance)
    if pin.function is not None:
        emitter.attr("function", pin.function, quote=True)
    for arc in pin.timing_arcs:
        _write_arc(emitter, arc)
    emitter.close_group()


def _write_cell(emitter: _Emitter, cell: CellDef):
    emitter.open_group("cell", cell.name)
    emitter.attr("area", cell.area)
    emitter.attr("cell_leakage_power", cell.default_leakage_nw)
    if cell.footprint:
        emitter.attr("cell_footprint", cell.footprint, quote=True)
    # Reproduction-specific classification (round-trips the typed model).
    emitter.attr("repro_base", cell.base_name)
    emitter.attr("repro_variant", cell.variant)
    emitter.attr("repro_vth", cell.vth_class.value)
    emitter.attr("repro_kind", cell.kind.value)
    if cell.has_vgnd_port:
        emitter.attr("repro_has_vgnd", True)
    if cell.switch_width_um:
        emitter.attr("repro_switch_width", cell.switch_width_um)
    if cell.switching_current_ma:
        emitter.attr("repro_switching_current", cell.switching_current_ma)
    for state in cell.leakage_states:
        emitter.open_group("leakage_power")
        if state.when is not None:
            emitter.attr("when", state.when, quote=True)
        emitter.attr("value", state.value_nw)
        emitter.close_group()
    if cell.kind == CellKind.SEQUENTIAL and cell.ff_next_state:
        emitter.open_group("ff", "IQ", "IQN")
        emitter.attr("next_state", cell.ff_next_state, quote=True)
        emitter.attr("clocked_on", cell.ff_clocked_on or "CK", quote=True)
        emitter.close_group()
    for pin in cell.pins.values():
        _write_pin(emitter, pin)
    emitter.close_group()


def write_liberty(library: Library) -> str:
    """Render the library to Liberty source text."""
    emitter = _Emitter()
    emitter.open_group("library", library.name)
    emitter.attr("delay_model", "table_lookup")
    emitter.attr("time_unit", "1ns", quote=True)
    emitter.attr("voltage_unit", "1V", quote=True)
    emitter.attr("current_unit", "1mA", quote=True)
    emitter.attr("leakage_power_unit", "1nW", quote=True)
    emitter.attr("capacitive_load_unit_value", 1)
    emitter.attr("capacitive_load_unit_name", "pf")
    for cell in sorted(library.cells.values(), key=lambda c: c.name):
        _write_cell(emitter, cell)
    emitter.close_group()
    return emitter.text()


def write_liberty_file(library: Library, path: str):
    """Write the library to a ``.lib`` file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(write_liberty(library))
