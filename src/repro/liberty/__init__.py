"""Liberty library substrate.

The paper relies on a proprietary multi-Vth standard-cell library; this
package replaces it:

* :mod:`repro.liberty.lexer` / :mod:`repro.liberty.parser` /
  :mod:`repro.liberty.ast` — a Liberty-subset front end (groups, simple
  and complex attributes, ``values(...)`` tables).
* :mod:`repro.liberty.function` — Liberty boolean function expressions
  with three-valued evaluation.
* :mod:`repro.liberty.library` — the typed in-memory library model
  (cells, pins, NLDM lookup tables, state-dependent leakage).
* :mod:`repro.liberty.writer` — serialize a library back to ``.lib``.
* :mod:`repro.liberty.synth` — synthesize the complete multi-Vth
  Selective-MT library (LVT/HVT/MT/MTV/CMT variants, switch cells,
  output holders) from :class:`~repro.device.process.Technology`.
"""

from repro.liberty.function import BooleanFunction, parse_function
from repro.liberty.library import (
    CellDef,
    CellKind,
    LeakageState,
    Library,
    Lut,
    PinDef,
    PinDirection,
    TimingArc,
    VthClass,
)
from repro.liberty.parser import parse_liberty, parse_liberty_file
from repro.liberty.synth import LibraryBuilder, build_default_library
from repro.liberty.writer import write_liberty

__all__ = [
    "BooleanFunction",
    "parse_function",
    "CellDef",
    "CellKind",
    "LeakageState",
    "Library",
    "Lut",
    "PinDef",
    "PinDirection",
    "TimingArc",
    "VthClass",
    "parse_liberty",
    "parse_liberty_file",
    "LibraryBuilder",
    "build_default_library",
    "write_liberty",
]
