"""Multi-Vth Selective-MT library synthesizer.

The paper's experiments use a proprietary TOSHIBA 90 nm multi-Vth library
with MT-cells.  This module replaces it: from a
:class:`~repro.device.process.Technology` it characterizes a complete
standard-cell library with, for every combinational base cell:

``<BASE>_LVT``
    Low-Vth cell — fast, leaky.
``<BASE>_HVT``
    High-Vth cell — slower, ~20x less leaky.  Same footprint as LVT.
``<BASE>_MT``
    MT-cell *without* a VGND port (the Fig. 4 intermediate used during
    timing optimization; carries MT timing but no VGND connectivity).
``<BASE>_MTV``
    MT-cell *with* a VGND port (Fig. 1(b)) — low-Vth logic riding on a
    virtual ground rail; slightly slower than LVT (rail bounce), faster
    than HVT; near-zero standby leakage (the external switch cuts it).
``<BASE>_CMT``
    Conventional MT-cell (Fig. 1(a)) — embedded per-cell switch
    transistor and output holder.  Much larger; standby leakage is its
    embedded high-Vth switch.

plus sequential cells (LVT/HVT only — flip-flops stay on true ground so
they retain state in standby, as in the paper's figures), the discrete
``SWITCH_Xn`` sleep-switch family, and the ``HOLDER_X1`` output holder.

Delay tables are NLDM LUTs generated from the alpha-power RC model, so
LUT interpolation and the analytic model agree by construction.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Sequence

from repro.device.mosfet import MosfetModel
from repro.device.process import DEFAULT_TECHNOLOGY, Technology
from repro.device.switchfet import SwitchFamily, embedded_switch_width
from repro.liberty.library import (
    CellDef,
    CellKind,
    LeakageState,
    Library,
    Lut,
    PinDef,
    PinDirection,
    TimingArc,
    VARIANT_CMT,
    VARIANT_HVT,
    VARIANT_LVT,
    VARIANT_MT,
    VARIANT_MTV,
    VthClass,
)

#: NLDM characterization axes (input slew ns / output load pF).
SLEW_AXIS = (0.005, 0.02, 0.08, 0.3)
LOAD_AXIS = (0.0005, 0.002, 0.008, 0.032)

#: Extra input-slew contribution to delay (dimensionless).
SLEW_TO_DELAY = 0.2
#: Output slew is this multiple of the RC time constant (10-90 ramp).
SLEW_FACTOR = 2.2
#: ln(2) switching-point factor for RC delay.
LN2 = 0.69

COMBINATIONAL_VARIANTS = (VARIANT_LVT, VARIANT_HVT, VARIANT_MT,
                          VARIANT_MTV, VARIANT_CMT)
SEQUENTIAL_VARIANTS = (VARIANT_LVT, VARIANT_HVT)


@dataclasses.dataclass(frozen=True)
class CellTemplate:
    """Electrical description of one base cell.

    Widths are per-device in um; ``nstack``/``pstack`` give the series
    depth of the pull-down / pull-up networks, which sets both drive
    resistance and the leakage stacking discount.
    """

    base: str
    inputs: tuple[str, ...]
    function: str
    topology: str           # "inv", "buf", "nand", "nor", "complex"
    sense: str              # default timing_sense for all arcs
    wn: float               # per-NMOS-device width (um)
    wp: float               # per-PMOS-device width (um)
    nn: int                 # NMOS device count
    np: int                 # PMOS device count
    nstack: int = 1
    pstack: int = 1
    drive: int = 1
    output: str = "Z"
    sequential: bool = False
    intrinsic_ns: float = 0.0

    def total_width(self) -> float:
        return (self.wn * self.nn + self.wp * self.np) * self.drive


def default_templates() -> list[CellTemplate]:
    """The base cell set characterized by the library builder."""
    t = []
    # Inverters and buffers in several drives (used by CTS / MTE / ECO).
    for drive in (1, 2, 4):
        t.append(CellTemplate(f"INV_X{drive}", ("A",), "!A", "inv",
                              "negative_unate", 0.8, 1.6, 1, 1, drive=drive))
    for drive in (1, 2, 4, 8):
        t.append(CellTemplate(f"BUF_X{drive}", ("A",), "A", "buf",
                              "positive_unate", 0.8, 1.6, 2, 2, drive=drive,
                              intrinsic_ns=0.008))
    # NAND / NOR families.
    t.append(CellTemplate("NAND2_X1", ("A", "B"), "(A * B)'", "nand",
                          "negative_unate", 1.2, 1.6, 2, 2, nstack=2))
    t.append(CellTemplate("NAND3_X1", ("A", "B", "C"), "(A * B * C)'", "nand",
                          "negative_unate", 1.6, 1.6, 3, 3, nstack=3))
    t.append(CellTemplate("NAND4_X1", ("A", "B", "C", "D"),
                          "(A * B * C * D)'", "nand",
                          "negative_unate", 2.0, 1.6, 4, 4, nstack=4))
    t.append(CellTemplate("NOR2_X1", ("A", "B"), "(A + B)'", "nor",
                          "negative_unate", 0.8, 2.4, 2, 2, pstack=2))
    t.append(CellTemplate("NOR3_X1", ("A", "B", "C"), "(A + B + C)'", "nor",
                          "negative_unate", 0.8, 3.2, 3, 3, pstack=3))
    # AND / OR (internally NAND/NOR + inverter).
    t.append(CellTemplate("AND2_X1", ("A", "B"), "A * B", "complex",
                          "positive_unate", 1.2, 1.6, 3, 3, nstack=2,
                          intrinsic_ns=0.006))
    t.append(CellTemplate("OR2_X1", ("A", "B"), "A + B", "complex",
                          "positive_unate", 0.8, 2.4, 3, 3, pstack=2,
                          intrinsic_ns=0.006))
    # XOR / XNOR / MUX (pass-gate style, non-unate).
    t.append(CellTemplate("XOR2_X1", ("A", "B"), "A ^ B", "complex",
                          "non_unate", 0.8, 1.6, 5, 5, nstack=2, pstack=2,
                          intrinsic_ns=0.010))
    t.append(CellTemplate("XNOR2_X1", ("A", "B"), "!(A ^ B)", "complex",
                          "non_unate", 0.8, 1.6, 5, 5, nstack=2, pstack=2,
                          intrinsic_ns=0.010))
    t.append(CellTemplate("MUX2_X1", ("A", "B", "S"),
                          "(A * !S) + (B * S)", "complex",
                          "non_unate", 0.8, 1.6, 6, 6, nstack=2, pstack=2,
                          intrinsic_ns=0.010))
    # AOI / OAI complex gates.
    t.append(CellTemplate("AOI21_X1", ("A", "B", "C"), "!((A * B) + C)",
                          "complex", "negative_unate", 1.2, 2.4, 3, 3,
                          nstack=2, pstack=2))
    t.append(CellTemplate("OAI21_X1", ("A", "B", "C"), "!((A + B) * C)",
                          "complex", "negative_unate", 1.2, 2.4, 3, 3,
                          nstack=2, pstack=2))
    # D flip-flop (master-slave, ~24 devices).
    t.append(CellTemplate("DFF_X1", ("D", "CK"), "IQ", "complex",
                          "non_unate", 0.6, 1.2, 12, 12, nstack=2, pstack=2,
                          output="Q", sequential=True, intrinsic_ns=0.03))
    return t


class LibraryBuilder:
    """Characterizes the full Selective-MT library from a technology."""

    def __init__(self, tech: Technology | None = None,
                 name: str = "repro_smt",
                 templates: Sequence[CellTemplate] | None = None,
                 assumed_bounce_fraction: float = 0.04,
                 mt_area_factor: float = 1.12,
                 switching_duty: float = 0.25,
                 holder_width_um: float = 1.0):
        self.tech = tech or DEFAULT_TECHNOLOGY
        self.name = name
        self.templates = list(templates or default_templates())
        self.assumed_bounce_fraction = assumed_bounce_fraction
        self.mt_area_factor = mt_area_factor
        self.switching_duty = switching_duty
        self.holder_width_um = holder_width_um
        self._nmos_low = MosfetModel(self.tech, self.tech.vth_low, "nmos")
        self._pmos_low = MosfetModel(self.tech, self.tech.vth_low, "pmos")
        self._nmos_high = MosfetModel(self.tech, self.tech.vth_high, "nmos")
        self._pmos_high = MosfetModel(self.tech, self.tech.vth_high, "pmos")

    # --- public API ----------------------------------------------------------

    def build(self) -> Library:
        """Characterize and return the complete library."""
        library = Library(self.name, tech=self.tech)
        # Timing basis: the average droop the MT tables were derated
        # with (half the worst-case bounce budget; see mt_delay_derate).
        library.mt_assumed_bounce_v = \
            0.5 * self.assumed_bounce_fraction * self.tech.vdd
        for template in self.templates:
            variants = (SEQUENTIAL_VARIANTS if template.sequential
                        else COMBINATIONAL_VARIANTS)
            for variant in variants:
                library.add_cell(self._build_cell(template, variant))
        for spec in SwitchFamily(self.tech):
            library.add_cell(self._build_switch(spec))
        library.add_cell(self._build_holder())
        return library

    # --- characterization helpers -----------------------------------------------

    def _models(self, variant: str) -> tuple[MosfetModel, MosfetModel]:
        """(NMOS, PMOS) models for the logic transistors of a variant."""
        if variant == VARIANT_HVT:
            return self._nmos_high, self._pmos_high
        return self._nmos_low, self._pmos_low

    def mt_delay_derate(self) -> float:
        """Delay penalty factor of MT logic vs pure low-Vth logic.

        Virtual-ground bounce reduces the effective overdrive; the
        alpha-power law converts that to a delay multiplier.  Timing
        uses the *average* droop during a transition (about half the
        worst-case bounce the sizer guarantees), matching how MT-cells
        are characterized in practice.
        """
        bounce = 0.5 * self.assumed_bounce_fraction * self.tech.vdd
        overdrive = self.tech.overdrive(self.tech.vth_low)
        reduced = max(overdrive - bounce, 1e-3)
        return (overdrive / reduced) ** self.tech.alpha

    def _drive_resistances(self, template: CellTemplate,
                           variant: str) -> tuple[float, float]:
        """(pull-up, pull-down) switching resistance in kOhm."""
        nmos, pmos = self._models(variant)
        r_fall = nmos.effective_resistance(
            template.wn * template.drive) * template.nstack
        r_rise = pmos.effective_resistance(
            template.wp * template.drive) * template.pstack
        if variant in (VARIANT_MT, VARIANT_MTV, VARIANT_CMT):
            derate = self.mt_delay_derate()
            r_fall *= derate
            r_rise *= derate
        return r_rise, r_fall

    def _input_cap(self, template: CellTemplate) -> float:
        """Gate capacitance presented by one input pin (pF)."""
        width = (template.wn + template.wp) * template.drive
        return self.tech.cgate_per_um * width

    def _self_cap(self, template: CellTemplate) -> float:
        """Output-node junction capacitance (pF)."""
        width = (template.wn + template.wp) * template.drive
        return self.tech.cdrain_per_um * width

    def _delay_lut(self, resistance: float, self_cap: float,
                   intrinsic: float) -> Lut:
        values = [[intrinsic + LN2 * resistance * (load + self_cap)
                   + SLEW_TO_DELAY * slew
                   for load in LOAD_AXIS] for slew in SLEW_AXIS]
        return Lut(SLEW_AXIS, LOAD_AXIS, values)

    def _slew_lut(self, resistance: float, self_cap: float) -> Lut:
        values = [[SLEW_FACTOR * resistance * (load + self_cap) + 0.05 * slew
                   for load in LOAD_AXIS] for slew in SLEW_AXIS]
        return Lut(SLEW_AXIS, LOAD_AXIS, values)

    def _switching_current(self, template: CellTemplate) -> float:
        """Average VGND current demand of the cell while switching (mA)."""
        effective_width = template.wn * template.drive / template.nstack
        peak = self._nmos_low.saturation_current(effective_width)
        return peak * self.switching_duty

    # --- leakage ------------------------------------------------------------------

    def _logic_leakage_states(self, template: CellTemplate,
                              variant: str) -> tuple[list[LeakageState], float]:
        """State-dependent leakage for LVT/HVT logic.

        Returns (states, state-averaged default).  NAND-like and NOR-like
        topologies get exact per-state values from the series/parallel
        network analysis; complex cells get an averaged single value.
        """
        nmos, pmos = self._models(variant)
        n_inputs = len(template.inputs)
        stack = self.tech.stack_factor

        def n_leak(width, depth=1):
            return nmos.leakage_power(width, stack_depth=depth)

        def p_leak(width, depth=1):
            return pmos.leakage_power(width, stack_depth=depth)

        states: list[LeakageState] = []
        if template.topology in ("inv", "nand") and n_inputs <= 3:
            for index in range(2 ** n_inputs):
                bits = {pin: (index >> (n_inputs - 1 - k)) & 1
                        for k, pin in enumerate(template.inputs)}
                zeros = sum(1 for v in bits.values() if v == 0)
                if zeros == 0:
                    # Output low; all parallel PMOS off at full Vds.
                    value = template.np * p_leak(template.wp * template.drive)
                else:
                    # Output high; series NMOS chain with `zeros` off devices.
                    value = n_leak(template.wn * template.drive, depth=zeros)
                when = " * ".join(pin if bit else f"!{pin}"
                                  for pin, bit in bits.items())
                states.append(LeakageState(value_nw=value, when=when))
        elif template.topology == "nor" and n_inputs <= 3:
            for index in range(2 ** n_inputs):
                bits = {pin: (index >> (n_inputs - 1 - k)) & 1
                        for k, pin in enumerate(template.inputs)}
                ones = sum(1 for v in bits.values() if v == 1)
                if ones == 0:
                    # Output high; all parallel NMOS off.
                    value = template.nn * n_leak(template.wn * template.drive)
                else:
                    # Output low; series PMOS chain with `ones` off devices.
                    value = p_leak(template.wp * template.drive, depth=ones)
                when = " * ".join(pin if bit else f"!{pin}"
                                  for pin, bit in bits.items())
                states.append(LeakageState(value_nw=value, when=when))
        if states:
            default = sum(s.value_nw for s in states) / len(states)
            return states, default
        # Complex/buffer/sequential: averaged estimate over both networks.
        avg_n = n_leak(template.wn * template.drive, depth=template.nstack)
        avg_p = p_leak(template.wp * template.drive, depth=template.pstack)
        paths = max((template.nn + template.np) / (2.0 * max(
            template.nstack, template.pstack)), 1.0)
        default = 0.5 * (avg_n + avg_p) * paths
        return [], default

    # --- cell assembly ---------------------------------------------------------------

    def _build_cell(self, template: CellTemplate, variant: str) -> CellDef:
        if template.sequential:
            return self._build_sequential(template, variant)
        return self._build_combinational(template, variant)

    def _build_combinational(self, template: CellTemplate,
                             variant: str) -> CellDef:
        cell = CellDef(name=f"{template.base}_{variant}",
                       base_name=template.base, variant=variant)
        cell.kind = (CellKind.BUFFER if template.topology in ("inv", "buf")
                     else CellKind.LOGIC)
        cell.vth_class = (VthClass.HIGH if variant == VARIANT_HVT
                          else VthClass.LOW)
        cell.footprint = self._footprint(template, variant)
        input_cap = self._input_cap(template)
        self_cap = self._self_cap(template)
        r_rise, r_fall = self._drive_resistances(template, variant)

        # Pins.
        for name in template.inputs:
            cell.pins[name] = PinDef(name, PinDirection.INPUT,
                                     capacitance=input_cap)
        out_pin = PinDef(template.output, PinDirection.OUTPUT,
                         function=template.function,
                         max_capacitance=LOAD_AXIS[-1])
        for input_name in template.inputs:
            out_pin.timing_arcs.append(TimingArc(
                related_pin=input_name,
                timing_sense=template.sense,
                timing_type="combinational",
                cell_rise=self._delay_lut(r_rise, self_cap,
                                          template.intrinsic_ns),
                cell_fall=self._delay_lut(r_fall, self_cap,
                                          template.intrinsic_ns),
                rise_transition=self._slew_lut(r_rise, self_cap),
                fall_transition=self._slew_lut(r_fall, self_cap)))
        cell.pins[template.output] = out_pin

        # Variant-specific ports, area, leakage, current.
        base_area = self.tech.area_per_um_width * template.total_width()
        switching = self._switching_current(template)
        states, averaged = self._logic_leakage_states(template, variant)

        if variant in (VARIANT_LVT, VARIANT_HVT):
            cell.area = base_area
            cell.leakage_states = states
            cell.default_leakage_nw = averaged
        elif variant in (VARIANT_MT, VARIANT_MTV):
            cell.area = base_area * self.mt_area_factor
            # Standby: the external switch cuts the logic stack; only a
            # small junction/gate residual remains.
            residual = 0.02
            _, hvt_avg = self._logic_leakage_states(template, VARIANT_HVT)
            cell.default_leakage_nw = residual * hvt_avg
            if variant == VARIANT_MTV:
                cell.has_vgnd_port = True
                cell.pins["VGND"] = PinDef(
                    "VGND", PinDirection.INOUT,
                    capacitance=self.tech.cdrain_per_um
                    * template.wn * template.drive)
        else:  # conventional MT-cell with embedded switch + holder
            bounce_budget = self.assumed_bounce_fraction * self.tech.vdd
            emb_width = embedded_switch_width(self.tech, switching,
                                              bounce_budget)
            switch_area = self.tech.area_per_um_width * emb_width
            holder_area = self.tech.area_per_um_width * self.holder_width_um * 2
            cell.area = base_area + switch_area + holder_area
            cell.switch_width_um = emb_width
            # Standby leakage: embedded high-Vth switch (slightly relaxed
            # by the series low-Vth stack above it) plus the holder.
            switch_leak = self._nmos_high.leakage_power(emb_width) * 0.8
            holder_leak = self._holder_leakage()
            cell.default_leakage_nw = switch_leak + holder_leak
            cell.pins["MTE"] = PinDef(
                "MTE", PinDirection.INPUT,
                capacitance=self.tech.cgate_per_um * emb_width)
        # Active-mode VGND current demand, used by the cluster sizer.
        cell.switching_current_ma = switching
        return cell

    def _build_sequential(self, template: CellTemplate,
                          variant: str) -> CellDef:
        cell = CellDef(name=f"{template.base}_{variant}",
                       base_name=template.base, variant=variant)
        cell.kind = CellKind.SEQUENTIAL
        cell.vth_class = (VthClass.HIGH if variant == VARIANT_HVT
                          else VthClass.LOW)
        cell.footprint = self._footprint(template, variant)
        cell.area = self.tech.area_per_um_width * template.total_width()
        _, averaged = self._logic_leakage_states(template, variant)
        cell.default_leakage_nw = averaged
        cell.ff_next_state = "D"
        cell.ff_clocked_on = "CK"
        cell.switching_current_ma = self._switching_current(template)

        input_cap = self._input_cap(template)
        self_cap = self._self_cap(template)
        r_rise, r_fall = self._drive_resistances(template, variant)
        scale = 1.0 if variant == VARIANT_LVT else self._hvt_constraint_scale()

        d_pin = PinDef("D", PinDirection.INPUT, capacitance=input_cap)
        d_pin.timing_arcs.append(TimingArc(
            related_pin="CK", timing_sense="non_unate",
            timing_type="setup_rising",
            rise_constraint=Lut.constant(0.05 * scale),
            fall_constraint=Lut.constant(0.05 * scale)))
        d_pin.timing_arcs.append(TimingArc(
            related_pin="CK", timing_sense="non_unate",
            timing_type="hold_rising",
            rise_constraint=Lut.constant(0.02 * scale),
            fall_constraint=Lut.constant(0.02 * scale)))
        ck_pin = PinDef("CK", PinDirection.INPUT,
                        capacitance=input_cap * 0.6, is_clock=True)
        q_pin = PinDef("Q", PinDirection.OUTPUT, function="IQ",
                       max_capacitance=LOAD_AXIS[-1])
        q_pin.timing_arcs.append(TimingArc(
            related_pin="CK", timing_sense="non_unate",
            timing_type="rising_edge",
            cell_rise=self._delay_lut(r_rise, self_cap, template.intrinsic_ns),
            cell_fall=self._delay_lut(r_fall, self_cap, template.intrinsic_ns),
            rise_transition=self._slew_lut(r_rise, self_cap),
            fall_transition=self._slew_lut(r_fall, self_cap)))
        cell.pins = {"D": d_pin, "CK": ck_pin, "Q": q_pin}
        return cell

    def _hvt_constraint_scale(self) -> float:
        od_low = self.tech.overdrive(self.tech.vth_low)
        od_high = self.tech.overdrive(self.tech.vth_high)
        return (od_low / od_high) ** self.tech.alpha

    def _build_switch(self, spec) -> CellDef:
        cell = CellDef(name=spec.name, base_name=spec.name,
                       variant=VARIANT_HVT)
        cell.kind = CellKind.SWITCH
        cell.vth_class = VthClass.HIGH
        cell.area = spec.area_um2
        cell.switch_width_um = spec.width_um
        cell.default_leakage_nw = spec.leakage_nw
        cell.footprint = "SWITCH"
        cell.pins["MTE"] = PinDef(
            "MTE", PinDirection.INPUT,
            capacitance=self.tech.cgate_per_um * spec.width_um)
        cell.pins["VGND"] = PinDef(
            "VGND", PinDirection.INOUT,
            capacitance=self.tech.cdrain_per_um * spec.width_um)
        return cell

    def _holder_leakage(self) -> float:
        """Leakage of the output-holder keeper (always powered)."""
        return self._pmos_high.leakage_power(self.holder_width_um)

    def _build_holder(self) -> CellDef:
        """The output holder: sets the held net to 1 during standby."""
        cell = CellDef(name="HOLDER_X1", base_name="HOLDER_X1",
                       variant=VARIANT_HVT)
        cell.kind = CellKind.HOLDER
        cell.vth_class = VthClass.HIGH
        cell.area = self.tech.area_per_um_width * self.holder_width_um * 2
        cell.default_leakage_nw = self._holder_leakage()
        cell.footprint = "HOLDER"
        cell.pins["MTE"] = PinDef(
            "MTE", PinDirection.INPUT,
            capacitance=self.tech.cgate_per_um * self.holder_width_um)
        # Z attaches to the held net; it only drives during standby.
        cell.pins["Z"] = PinDef(
            "Z", PinDirection.INOUT,
            capacitance=self.tech.cdrain_per_um * self.holder_width_um)
        return cell

    @staticmethod
    def _footprint(template: CellTemplate, variant: str) -> str:
        """Placement footprint; LVT/HVT/MT share one so swaps are free."""
        if variant == VARIANT_MTV:
            return f"{template.base}_V"
        if variant == VARIANT_CMT:
            return f"{template.base}_C"
        return template.base


_DEFAULT_CACHE: dict[str, Library] = {}


def build_default_library(tech: Technology | None = None) -> Library:
    """Build (and memoize) the default Selective-MT library."""
    tech = tech or DEFAULT_TECHNOLOGY
    key = repr(tech)
    if key not in _DEFAULT_CACHE:
        _DEFAULT_CACHE[key] = LibraryBuilder(tech).build()
    return _DEFAULT_CACHE[key]
