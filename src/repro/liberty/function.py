"""Liberty boolean function expressions.

Liberty cell pins carry a ``function`` attribute written in a small
boolean language::

    function : "(A * B)'";      # NAND2
    function : "!(A + B)";      # NOR2
    function : "A ^ B";         # XOR2
    function : "(S * B) + (!S * A)";  # MUX2

Supported operators (loosest to tightest binding): ``+``/``|`` (OR),
``^`` (XOR), ``*``/``&``/juxtaposition (AND), ``!`` prefix NOT and ``'``
postfix NOT.  Constants ``0`` and ``1`` are accepted.

Evaluation is three-valued (0, 1, X) with Kleene semantics so the logic
simulator can propagate unknowns.
"""

from __future__ import annotations

from typing import Mapping, Union

from repro.errors import ParseError

#: The unknown logic value used across the library.
X = "x"

LogicValue = Union[int, str]


def _coerce(value: LogicValue) -> LogicValue:
    """Normalize an input value to 0, 1 or X (Z becomes X)."""
    if value in (0, 1):
        return value
    if value in ("0", "1"):
        return int(value)
    return X


def logic_not(value: LogicValue) -> LogicValue:
    value = _coerce(value)
    if value == X:
        return X
    return 1 - value


def logic_and(a: LogicValue, b: LogicValue) -> LogicValue:
    a, b = _coerce(a), _coerce(b)
    if a == 0 or b == 0:
        return 0
    if a == 1 and b == 1:
        return 1
    return X


def logic_or(a: LogicValue, b: LogicValue) -> LogicValue:
    a, b = _coerce(a), _coerce(b)
    if a == 1 or b == 1:
        return 1
    if a == 0 and b == 0:
        return 0
    return X


def logic_xor(a: LogicValue, b: LogicValue) -> LogicValue:
    a, b = _coerce(a), _coerce(b)
    if a == X or b == X:
        return X
    return a ^ b


class _Node:
    """Expression-tree node base."""

    def evaluate(self, env: Mapping[str, LogicValue]) -> LogicValue:
        raise NotImplementedError

    def inputs(self) -> set[str]:
        raise NotImplementedError

    def to_liberty(self) -> str:
        raise NotImplementedError


class _Var(_Node):
    def __init__(self, name: str):
        self.name = name

    def evaluate(self, env):
        if self.name not in env:
            raise KeyError(f"no value bound for input {self.name!r}")
        return _coerce(env[self.name])

    def inputs(self):
        return {self.name}

    def to_liberty(self):
        return self.name


class _Const(_Node):
    def __init__(self, value: int):
        self.value = value

    def evaluate(self, env):
        return self.value

    def inputs(self):
        return set()

    def to_liberty(self):
        return str(self.value)


class _Not(_Node):
    def __init__(self, child: _Node):
        self.child = child

    def evaluate(self, env):
        return logic_not(self.child.evaluate(env))

    def inputs(self):
        return self.child.inputs()

    def to_liberty(self):
        return f"!{self.child.to_liberty()}" \
            if isinstance(self.child, (_Var, _Const)) \
            else f"({self.child.to_liberty()})'"


class _Binary(_Node):
    symbol = "?"
    op = None

    def __init__(self, left: _Node, right: _Node):
        self.left = left
        self.right = right

    def evaluate(self, env):
        return type(self).apply(self.left.evaluate(env),
                                self.right.evaluate(env))

    @staticmethod
    def apply(a, b):
        raise NotImplementedError

    def inputs(self):
        return self.left.inputs() | self.right.inputs()

    def to_liberty(self):
        return f"({self.left.to_liberty()} {self.symbol} {self.right.to_liberty()})"


class _And(_Binary):
    symbol = "*"

    @staticmethod
    def apply(a, b):
        return logic_and(a, b)


class _Or(_Binary):
    symbol = "+"

    @staticmethod
    def apply(a, b):
        return logic_or(a, b)


class _Xor(_Binary):
    symbol = "^"

    @staticmethod
    def apply(a, b):
        return logic_xor(a, b)


class _FunctionLexer:
    """Tokenizer for Liberty function expressions."""

    _SINGLE = set("()!'*&+|^")

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.tokens: list[str] = []
        self._run()

    def _run(self):
        text = self.text
        n = len(text)
        i = 0
        while i < n:
            ch = text[i]
            if ch.isspace():
                i += 1
                continue
            if ch in self._SINGLE:
                self.tokens.append(ch)
                i += 1
                continue
            if ch.isalnum() or ch == "_":
                j = i
                while j < n and (text[j].isalnum() or text[j] in "_[]."):
                    j += 1
                self.tokens.append(text[i:j])
                i = j
                continue
            raise ParseError(f"unexpected character {ch!r} in function "
                             f"expression {self.text!r}")


class _FunctionParser:
    """Recursive-descent parser for the Liberty function grammar."""

    def __init__(self, text: str):
        self.text = text
        self.tokens = _FunctionLexer(text).tokens
        self.pos = 0

    def peek(self) -> str | None:
        if self.pos < len(self.tokens):
            return self.tokens[self.pos]
        return None

    def advance(self) -> str:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def parse(self) -> _Node:
        if not self.tokens:
            raise ParseError("empty function expression")
        node = self.parse_or()
        if self.pos != len(self.tokens):
            raise ParseError(f"trailing tokens in function {self.text!r}: "
                             f"{self.tokens[self.pos:]}")
        return node

    def parse_or(self) -> _Node:
        node = self.parse_xor()
        while self.peek() in ("+", "|"):
            self.advance()
            node = _Or(node, self.parse_xor())
        return node

    def parse_xor(self) -> _Node:
        node = self.parse_and()
        while self.peek() == "^":
            self.advance()
            node = _Xor(node, self.parse_and())
        return node

    def parse_and(self) -> _Node:
        node = self.parse_factor()
        while True:
            token = self.peek()
            if token in ("*", "&"):
                self.advance()
                node = _And(node, self.parse_factor())
            elif token is not None and (token == "(" or token == "!"
                                        or self._is_atom(token)):
                # Juxtaposition means AND in Liberty: "A B" == "A * B".
                node = _And(node, self.parse_factor())
            else:
                return node

    @staticmethod
    def _is_atom(token: str) -> bool:
        return token[0].isalnum() or token[0] == "_"

    def parse_factor(self) -> _Node:
        node = self.parse_atom()
        while self.peek() == "'":
            self.advance()
            node = _Not(node)
        return node

    def parse_atom(self) -> _Node:
        token = self.peek()
        if token is None:
            raise ParseError(f"unexpected end of function {self.text!r}")
        if token == "!":
            self.advance()
            return _Not(self.parse_factor())
        if token == "(":
            self.advance()
            node = self.parse_or()
            if self.peek() != ")":
                raise ParseError(f"missing ')' in function {self.text!r}")
            self.advance()
            return node
        if token in ("0", "1"):
            self.advance()
            return _Const(int(token))
        if self._is_atom(token):
            self.advance()
            return _Var(token)
        raise ParseError(f"unexpected token {token!r} in function {self.text!r}")


class BooleanFunction:
    """A parsed Liberty boolean function.

    Instances are immutable, hash on their source text, and evaluate
    under three-valued (0/1/X) Kleene semantics.
    """

    def __init__(self, text: str):
        self.text = text
        self._root = _FunctionParser(text).parse()
        self._inputs = frozenset(self._root.inputs())

    @property
    def inputs(self) -> frozenset[str]:
        """Names of all variables the function reads."""
        return self._inputs

    def evaluate(self, env: Mapping[str, LogicValue]) -> LogicValue:
        """Evaluate under an environment mapping pin name -> 0/1/X."""
        return self._root.evaluate(env)

    def truth_table(self) -> dict[tuple[int, ...], int]:
        """Exhaustive truth table over sorted inputs (binary only)."""
        names = sorted(self._inputs)
        table: dict[tuple[int, ...], int] = {}
        for index in range(2 ** len(names)):
            bits = tuple((index >> (len(names) - 1 - k)) & 1
                         for k in range(len(names)))
            env = dict(zip(names, bits))
            table[bits] = self._root.evaluate(env)
        return table

    def to_liberty(self) -> str:
        """Render back to Liberty syntax (canonical parenthesized form)."""
        return self._root.to_liberty()

    def __eq__(self, other):
        if not isinstance(other, BooleanFunction):
            return NotImplemented
        if self._inputs != other._inputs:
            return False
        return self.truth_table() == other.truth_table()

    def __hash__(self):
        return hash(self.text)

    def __repr__(self):
        return f"BooleanFunction({self.text!r})"


def parse_function(text: str) -> BooleanFunction:
    """Parse a Liberty function expression string."""
    return BooleanFunction(text)
