"""Liberty abstract syntax tree.

A Liberty file is a tree of *groups*; each group has a type keyword, an
argument list, simple attributes (``name : value ;``), complex
attributes (``name (v1, v2, ...) ;``) and nested groups::

    library (my_lib) {
      time_unit : "1ns";
      cell (NAND2_X1_LVT) {
        area : 4.8;
        pin (A) { direction : input; capacitance : 0.0018; }
      }
    }

The AST keeps declaration order so a parse/write round trip is stable.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, Union

AttrValue = Union[str, float, int, bool]


@dataclasses.dataclass
class SimpleAttribute:
    """``name : value ;``"""

    name: str
    value: AttrValue


@dataclasses.dataclass
class ComplexAttribute:
    """``name (v1, v2, ...) ;``"""

    name: str
    values: list[AttrValue]


@dataclasses.dataclass
class Group:
    """A Liberty group: ``keyword (args...) { body }``."""

    keyword: str
    args: list[str] = dataclasses.field(default_factory=list)
    simple_attrs: list[SimpleAttribute] = dataclasses.field(default_factory=list)
    complex_attrs: list[ComplexAttribute] = dataclasses.field(default_factory=list)
    groups: list["Group"] = dataclasses.field(default_factory=list)

    @property
    def name(self) -> str | None:
        """First argument, conventionally the group name."""
        return self.args[0] if self.args else None

    # --- queries ---------------------------------------------------------

    def get(self, attr_name: str, default: AttrValue | None = None) -> AttrValue | None:
        """Value of the first simple attribute with this name."""
        for attr in self.simple_attrs:
            if attr.name == attr_name:
                return attr.value
        return default

    def get_complex(self, attr_name: str) -> list[AttrValue] | None:
        """Values of the first complex attribute with this name."""
        for attr in self.complex_attrs:
            if attr.name == attr_name:
                return attr.values
        return None

    def find_groups(self, keyword: str) -> Iterator["Group"]:
        """All immediate child groups of the given keyword."""
        for group in self.groups:
            if group.keyword == keyword:
                yield group

    def find_group(self, keyword: str, name: str | None = None) -> "Group | None":
        """First child group with the keyword (and name, if given)."""
        for group in self.find_groups(keyword):
            if name is None or group.name == name:
                return group
        return None

    # --- construction helpers ---------------------------------------------

    def set(self, attr_name: str, value: AttrValue) -> "Group":
        """Append a simple attribute; returns self for chaining."""
        self.simple_attrs.append(SimpleAttribute(attr_name, value))
        return self

    def set_complex(self, attr_name: str, values: list[AttrValue]) -> "Group":
        """Append a complex attribute; returns self for chaining."""
        self.complex_attrs.append(ComplexAttribute(attr_name, list(values)))
        return self

    def add_group(self, keyword: str, *args: str) -> "Group":
        """Append and return a new child group."""
        child = Group(keyword, list(args))
        self.groups.append(child)
        return child
