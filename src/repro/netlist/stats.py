"""Design statistics and summary reports.

A production flow logs the design profile at every stage; this module
computes the numbers (cell histogram by variant/kind, fanout
distribution, logic depth, area by category) and renders them.
"""

from __future__ import annotations

import dataclasses

from repro.liberty.library import CellKind, Library
from repro.netlist.core import Netlist


@dataclasses.dataclass
class DesignStats:
    """Snapshot of one netlist against its library."""

    name: str
    instance_count: int
    net_count: int
    input_count: int
    output_count: int
    sequential_count: int
    depth: int
    max_fanout: int
    average_fanout: float
    by_variant: dict[str, int]
    by_kind: dict[str, int]
    area_by_variant: dict[str, float]
    total_area: float

    def render(self) -> str:
        lines = [
            f"Design {self.name}: {self.instance_count} instances, "
            f"{self.net_count} nets, {self.input_count} in / "
            f"{self.output_count} out, {self.sequential_count} FFs",
            f"  logic depth {self.depth}, fanout max {self.max_fanout} "
            f"avg {self.average_fanout:.2f}",
            f"  total area {self.total_area:.1f} um^2",
        ]
        for variant in sorted(self.by_variant):
            count = self.by_variant[variant]
            area = self.area_by_variant.get(variant, 0.0)
            share = 100.0 * area / self.total_area if self.total_area else 0
            lines.append(f"  {variant:<8} {count:5d} cells "
                         f"{area:10.1f} um^2 ({share:5.1f}%)")
        return "\n".join(lines)


def design_stats(netlist: Netlist, library: Library) -> DesignStats:
    """Compute the full statistics snapshot."""
    by_variant: dict[str, int] = {}
    by_kind: dict[str, int] = {}
    area_by_variant: dict[str, float] = {}
    total_area = 0.0
    sequential = 0
    for inst in netlist.instances.values():
        if inst.cell_name not in library:
            by_variant["UNBOUND"] = by_variant.get("UNBOUND", 0) + 1
            continue
        cell = library.cell(inst.cell_name)
        label = cell.variant if cell.kind not in (
            CellKind.SWITCH, CellKind.HOLDER) else cell.kind.value.upper()
        by_variant[label] = by_variant.get(label, 0) + 1
        by_kind[cell.kind.value] = by_kind.get(cell.kind.value, 0) + 1
        area_by_variant[label] = area_by_variant.get(label, 0.0) + cell.area
        total_area += cell.area
        if cell.is_sequential:
            sequential += 1

    fanouts = [net.fanout() for net in netlist.nets.values()
               if net.has_driver]
    is_seq = lambda inst: (inst.cell_name in library
                           and library.cell(inst.cell_name).is_sequential)
    return DesignStats(
        name=netlist.name,
        instance_count=len(netlist.instances),
        net_count=len(netlist.nets),
        input_count=len(netlist.input_ports()),
        output_count=len(netlist.output_ports()),
        sequential_count=sequential,
        depth=netlist.combinational_depth(is_seq),
        max_fanout=max(fanouts, default=0),
        average_fanout=(sum(fanouts) / len(fanouts)) if fanouts else 0.0,
        by_variant=by_variant,
        by_kind=by_kind,
        area_by_variant=area_by_variant,
        total_area=total_area)
