"""Generic gate to library cell binding ("technology mapping").

The ``.bench`` parser and the synthetic circuit generators emit generic
gates (``NAND3``, ``XOR2``, ``INV``, ``DFF``...).  The flow's first step
— "physical synthesis using low-Vth cells" (Fig. 4) — binds every
generic gate to a concrete library cell of the requested variant,
decomposing gates wider than the library supports into balanced trees.

Example: a 6-input AND becomes a tree of ``AND2``s; a 6-input NAND
becomes the same AND tree feeding a final ``NAND2``.
"""

from __future__ import annotations

import re

from repro.errors import NetlistError
from repro.liberty.library import Library, VARIANT_LVT
from repro.netlist.core import Instance, Netlist, PinDirection

_GENERIC_RE = re.compile(r"^(AND|NAND|OR|NOR|XOR|XNOR)(\d+)$")

#: Widest gate of each family available in the default library.
_MAX_LIBRARY_ARITY = {
    "AND": 2, "OR": 2, "NAND": 4, "NOR": 3, "XOR": 2, "XNOR": 2,
}

_PIN_NAMES = tuple("ABCDEFGHIJKLMNOP")


def _library_cell(library: Library, base: str, variant: str) -> str:
    name = f"{base}_{variant}"
    if name not in library:
        raise NetlistError(f"library has no cell {name!r}")
    return name


def technology_map(netlist: Netlist, library: Library,
                   variant: str = VARIANT_LVT,
                   sequential_variant: str | None = None) -> Netlist:
    """Bind generic gates to library cells of ``variant`` (in place).

    Returns the same netlist object for chaining.  Gates wider than the
    library's widest cell of that family are decomposed into balanced
    binary trees of 2-input cells (preserving logic function).

    Flip-flops bind to ``sequential_variant`` (default: high-Vth).
    Ultra-low-standby designs keep state in high-Vth retention
    flip-flops — they must stay powered in standby, so low-Vth storage
    would defeat the whole technique; the clock period is derived with
    their slower clk->q/setup included.
    """
    from repro.liberty.library import VARIANT_HVT

    if sequential_variant is None:
        sequential_variant = VARIANT_HVT
    for inst in list(netlist.instances.values()):
        cell = inst.cell_name
        if cell in library:
            continue  # already bound
        if cell == "DFF":
            inst.cell_name = _library_cell(library, "DFF_X1",
                                           sequential_variant)
            continue
        if cell in ("INV", "BUF"):
            inst.cell_name = _library_cell(library, f"{cell}_X1", variant)
            continue
        match = _GENERIC_RE.match(cell)
        if match is None:
            raise NetlistError(f"unknown generic cell {cell!r} on instance "
                               f"{inst.name}")
        family, arity_text = match.groups()
        arity = int(arity_text)
        max_arity = _MAX_LIBRARY_ARITY[family]
        if arity == 1:
            # Degenerate single-input gate: AND1/OR1 act as BUF, NAND1 as INV.
            replacement = "INV_X1" if family in ("NAND", "NOR", "XNOR") \
                else "BUF_X1"
            inst.cell_name = _library_cell(library, replacement, variant)
            continue
        if arity <= max_arity:
            inst.cell_name = _library_cell(library, f"{family}{arity}_X1",
                                           variant)
            continue
        _decompose_wide_gate(netlist, library, inst, family, arity, variant)
    return netlist


def _decompose_wide_gate(netlist: Netlist, library: Library, inst: Instance,
                         family: str, arity: int, variant: str):
    """Replace a wide generic gate with a balanced tree of 2-input cells."""
    # The monotone core (AND for NAND/AND, OR for NOR/OR, XOR for XNOR/XOR)
    # is built as a tree of 2-input gates; an inverting family then needs
    # its *last* stage replaced by the inverting 2-input gate.
    core = {"AND": "AND", "NAND": "AND", "OR": "OR", "NOR": "OR",
            "XOR": "XOR", "XNOR": "XOR"}[family]
    inverting = family in ("NAND", "NOR", "XNOR")
    core_cell = _library_cell(library, f"{core}2_X1", variant)
    final_cell = core_cell
    if inverting:
        final_base = {"NAND": "NAND2_X1", "NOR": "NOR2_X1",
                      "XNOR": "XNOR2_X1"}[family]
        final_cell = _library_cell(library, final_base, variant)

    input_nets = []
    for pin_name in _PIN_NAMES[:arity]:
        pin = inst.pin(pin_name)
        input_nets.append(pin.net)
    out_pin = inst.single_output()
    out_net = out_pin.net
    base_name = inst.name
    netlist.remove_instance(inst)

    # Reduce pairwise until two nets remain, then emit the final stage.
    level = 0
    current = list(input_nets)
    while len(current) > 2:
        next_level = []
        for i in range(0, len(current) - 1, 2):
            new_net = netlist.get_or_create_net(
                netlist.unique_name(f"{base_name}_t{level}"))
            node = netlist.add_instance(
                netlist.unique_name(f"{base_name}_m{level}"), core_cell)
            netlist.connect(node, "A", current[i], PinDirection.INPUT)
            netlist.connect(node, "B", current[i + 1], PinDirection.INPUT)
            netlist.connect(node, "Z", new_net, PinDirection.OUTPUT)
            next_level.append(new_net)
        if len(current) % 2 == 1:
            next_level.append(current[-1])
        current = next_level
        level += 1
    final = netlist.add_instance(
        netlist.unique_name(f"{base_name}_f"), final_cell)
    netlist.connect(final, "A", current[0], PinDirection.INPUT)
    netlist.connect(final, "B", current[1], PinDirection.INPUT)
    netlist.connect(final, "Z", out_net, PinDirection.OUTPUT)
