"""Gate-level netlist substrate.

* :mod:`repro.netlist.core` — instances, nets, pins, ports and the
  :class:`Netlist` container with topological traversal.
* :mod:`repro.netlist.bench_io` — ISCAS-85/89 ``.bench`` reader/writer.
* :mod:`repro.netlist.verilog_io` — structural-Verilog-subset
  reader/writer.
* :mod:`repro.netlist.techmap` — generic gate to library cell binding
  (with decomposition of wide gates).
* :mod:`repro.netlist.validate` — consistency checks.
* :mod:`repro.netlist.transform` — variant swaps, buffer insertion and
  other local rewrites used by the flow.
"""

from repro.netlist.core import (
    Instance,
    Net,
    Netlist,
    Pin,
    PinDirection,
    Port,
    PortDirection,
)
from repro.netlist.bench_io import parse_bench, parse_bench_file, write_bench
from repro.netlist.builder import NetlistBuilder
from repro.netlist.techmap import technology_map
from repro.netlist.validate import check_netlist
from repro.netlist.verilog_io import parse_verilog, write_verilog

__all__ = [
    "Instance",
    "Net",
    "Netlist",
    "Pin",
    "PinDirection",
    "Port",
    "PortDirection",
    "parse_bench",
    "parse_bench_file",
    "write_bench",
    "NetlistBuilder",
    "technology_map",
    "check_netlist",
    "parse_verilog",
    "write_verilog",
]
