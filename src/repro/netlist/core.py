"""Core netlist data structures.

A :class:`Netlist` is a flat gate-level design: top-level :class:`Port`
objects, :class:`Instance` objects referencing library cells by name,
and :class:`Net` objects connecting instance :class:`Pin` objects and
ports.  The structure is library-agnostic — cell names are strings —
so the same netlist can hold generic gates (fresh from a ``.bench``
parse) or bound library cells; binding is performed by
:mod:`repro.netlist.techmap`.

Invariants maintained by the mutation API:

* a pin is connected to at most one net;
* ``net.driver`` is the unique output pin (or input port) driving it;
* ``net.sinks`` lists every input pin and output port on the net;
* weak drivers (output holders) are tracked separately in
  ``net.keepers`` so single-driver validation still holds.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Callable, Iterable, Iterator

from repro.errors import NetlistError, ValidationError


class PortDirection(enum.Enum):
    INPUT = "input"
    OUTPUT = "output"


class PinDirection(enum.Enum):
    INPUT = "input"
    OUTPUT = "output"
    INOUT = "inout"


class Pin:
    """A connection point on an instance."""

    __slots__ = ("instance", "name", "direction", "net")

    def __init__(self, instance: "Instance", name: str,
                 direction: PinDirection):
        self.instance = instance
        self.name = name
        self.direction = direction
        self.net: Net | None = None

    @property
    def full_name(self) -> str:
        return f"{self.instance.name}/{self.name}"

    def __repr__(self):
        net_name = self.net.name if self.net else None
        return f"Pin({self.full_name}, {self.direction.value}, net={net_name})"


class Port:
    """A top-level design port."""

    __slots__ = ("name", "direction", "net")

    def __init__(self, name: str, direction: PortDirection):
        self.name = name
        self.direction = direction
        self.net: Net | None = None

    def __repr__(self):
        return f"Port({self.name}, {self.direction.value})"


class Net:
    """A signal net: one driver, many sinks, optional weak keepers."""

    __slots__ = ("name", "driver", "driver_port", "sinks", "sink_ports",
                 "keepers")

    def __init__(self, name: str):
        self.name = name
        self.driver: Pin | None = None
        self.driver_port: Port | None = None
        self.sinks: list[Pin] = []
        self.sink_ports: list[Port] = []
        self.keepers: list[Pin] = []

    @property
    def has_driver(self) -> bool:
        return self.driver is not None or self.driver_port is not None

    def fanout(self) -> int:
        return len(self.sinks) + len(self.sink_ports)

    def sink_instances(self) -> list["Instance"]:
        return [pin.instance for pin in self.sinks]

    def __repr__(self):
        return f"Net({self.name}, fanout={self.fanout()})"


class Instance:
    """A placed occurrence of a library cell."""

    __slots__ = ("name", "cell_name", "pins", "attributes")

    def __init__(self, name: str, cell_name: str):
        self.name = name
        self.cell_name = cell_name
        self.pins: dict[str, Pin] = {}
        #: Free-form annotations (placement location, flow tags, ...).
        self.attributes: dict[str, object] = {}

    def pin(self, name: str) -> Pin:
        try:
            return self.pins[name]
        except KeyError:
            raise NetlistError(
                f"instance {self.name} ({self.cell_name}) has no pin "
                f"{name!r}") from None

    def input_pins(self) -> list[Pin]:
        return [p for p in self.pins.values()
                if p.direction == PinDirection.INPUT]

    def output_pins(self) -> list[Pin]:
        return [p for p in self.pins.values()
                if p.direction == PinDirection.OUTPUT]

    def single_output(self) -> Pin:
        outputs = self.output_pins()
        if len(outputs) != 1:
            raise NetlistError(
                f"instance {self.name} has {len(outputs)} output pins")
        return outputs[0]

    def fanin_instances(self) -> list["Instance"]:
        result = []
        for pin in self.input_pins():
            if pin.net is not None and pin.net.driver is not None:
                result.append(pin.net.driver.instance)
        return result

    def fanout_instances(self) -> list["Instance"]:
        result = []
        for pin in self.output_pins():
            if pin.net is not None:
                result.extend(pin.net.sink_instances())
        return result

    def __repr__(self):
        return f"Instance({self.name}, {self.cell_name})"


class Netlist:
    """A flat gate-level netlist."""

    def __init__(self, name: str):
        self.name = name
        self.ports: dict[str, Port] = {}
        self.nets: dict[str, Net] = {}
        self.instances: dict[str, Instance] = {}
        self._name_counter = 0

    # --- queries ------------------------------------------------------------

    def input_ports(self) -> list[Port]:
        return [p for p in self.ports.values()
                if p.direction == PortDirection.INPUT]

    def output_ports(self) -> list[Port]:
        return [p for p in self.ports.values()
                if p.direction == PortDirection.OUTPUT]

    def net(self, name: str) -> Net:
        try:
            return self.nets[name]
        except KeyError:
            raise NetlistError(f"no net named {name!r}") from None

    def instance(self, name: str) -> Instance:
        try:
            return self.instances[name]
        except KeyError:
            raise NetlistError(f"no instance named {name!r}") from None

    def cell_names(self) -> set[str]:
        return {inst.cell_name for inst in self.instances.values()}

    def unique_name(self, prefix: str) -> str:
        """A fresh instance/net name with the given prefix."""
        while True:
            self._name_counter += 1
            candidate = f"{prefix}_{self._name_counter}"
            if candidate not in self.instances and candidate not in self.nets:
                return candidate

    # --- construction ----------------------------------------------------------

    def add_port(self, name: str, direction: PortDirection) -> Port:
        if name in self.ports:
            raise NetlistError(f"duplicate port {name!r}")
        port = Port(name, direction)
        self.ports[name] = port
        net = self.get_or_create_net(name)
        port.net = net
        if direction == PortDirection.INPUT:
            if net.has_driver:
                raise NetlistError(f"net {name!r} already driven; cannot "
                                   f"attach input port")
            net.driver_port = port
        else:
            net.sink_ports.append(port)
        return port

    def add_input(self, name: str) -> Port:
        return self.add_port(name, PortDirection.INPUT)

    def add_output(self, name: str) -> Port:
        return self.add_port(name, PortDirection.OUTPUT)

    def get_or_create_net(self, name: str) -> Net:
        net = self.nets.get(name)
        if net is None:
            net = Net(name)
            self.nets[name] = net
        return net

    def add_instance(self, name: str, cell_name: str) -> Instance:
        if name in self.instances:
            raise NetlistError(f"duplicate instance {name!r}")
        inst = Instance(name, cell_name)
        self.instances[name] = inst
        return inst

    def connect(self, inst: Instance, pin_name: str, net: Net | str,
                direction: PinDirection, keeper: bool = False) -> Pin:
        """Create (or reuse) a pin on ``inst`` and attach it to ``net``.

        ``keeper=True`` registers the pin as a weak driver (output
        holder) rather than a sink or driver.
        """
        if isinstance(net, str):
            net = self.get_or_create_net(net)
        pin = inst.pins.get(pin_name)
        if pin is None:
            pin = Pin(inst, pin_name, direction)
            inst.pins[pin_name] = pin
        elif pin.net is not None:
            raise NetlistError(f"pin {pin.full_name} already connected to "
                               f"{pin.net.name}")
        pin.net = net
        if keeper:
            net.keepers.append(pin)
        elif direction == PinDirection.OUTPUT:
            if net.has_driver:
                raise NetlistError(
                    f"net {net.name} already driven by "
                    f"{net.driver.full_name if net.driver else net.driver_port}")
            net.driver = pin
        else:
            net.sinks.append(pin)
        return pin

    def disconnect(self, pin: Pin):
        """Detach a pin from its net."""
        net = pin.net
        if net is None:
            return
        if net.driver is pin:
            net.driver = None
        elif pin in net.keepers:
            net.keepers.remove(pin)
        else:
            net.sinks.remove(pin)
        pin.net = None

    def remove_instance(self, inst: Instance | str):
        """Remove an instance, disconnecting all of its pins."""
        if isinstance(inst, str):
            inst = self.instance(inst)
        for pin in list(inst.pins.values()):
            self.disconnect(pin)
        del self.instances[inst.name]

    def remove_net_if_dangling(self, net: Net):
        """Delete a net with no remaining connections."""
        if (net.driver is None and net.driver_port is None
                and not net.sinks and not net.sink_ports and not net.keepers):
            self.nets.pop(net.name, None)

    # --- traversal ----------------------------------------------------------------

    def topological_order(
            self,
            is_sequential: Callable[[Instance], bool] | None = None,
    ) -> list[Instance]:
        """Instances in combinational topological order.

        Sequential instances (per ``is_sequential``) are treated as
        sources: their outputs start new combinational cones and their
        inputs end them.  Raises
        :class:`~repro.errors.ValidationError` on a combinational loop.
        """
        if is_sequential is None:
            is_sequential = lambda inst: inst.cell_name.startswith("DFF")

        indegree: dict[str, int] = {}
        for inst in self.instances.values():
            if is_sequential(inst):
                indegree[inst.name] = 0
                continue
            count = 0
            for pin in inst.input_pins():
                net = pin.net
                if net is None or net.driver is None:
                    continue
                if not is_sequential(net.driver.instance):
                    count += 1
            indegree[inst.name] = count

        ready = deque(name for name, deg in indegree.items() if deg == 0)
        order: list[Instance] = []
        while ready:
            name = ready.popleft()
            inst = self.instances[name]
            order.append(inst)
            if is_sequential(inst):
                # Sequential outputs start new cones; their edges were
                # never counted into the indegrees, so decrementing
                # their sinks here would release gates before their
                # combinational fan-ins and break the order.
                continue
            for pin in inst.output_pins():
                net = pin.net
                if net is None:
                    continue
                for sink in net.sinks:
                    target = sink.instance
                    if is_sequential(target):
                        continue
                    indegree[target.name] -= 1
                    if indegree[target.name] == 0:
                        ready.append(target.name)
        if len(order) != len(self.instances):
            stuck = sorted(name for name, deg in indegree.items() if deg > 0)
            raise ValidationError(
                f"combinational loop detected involving "
                f"{len(stuck)} instances (e.g. {stuck[:5]})")
        return order

    def combinational_depth(
            self,
            is_sequential: Callable[[Instance], bool] | None = None,
    ) -> int:
        """Longest combinational chain length in gates."""
        if is_sequential is None:
            is_sequential = lambda inst: inst.cell_name.startswith("DFF")
        depth: dict[str, int] = {}
        for inst in self.topological_order(is_sequential):
            if is_sequential(inst):
                depth[inst.name] = 0
                continue
            best = 0
            for pin in inst.input_pins():
                net = pin.net
                if net is None or net.driver is None:
                    continue
                source = net.driver.instance
                if is_sequential(source):
                    continue
                best = max(best, depth.get(source.name, 0))
            depth[inst.name] = best + 1
        return max(depth.values(), default=0)

    # --- misc ---------------------------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Quick size summary."""
        return {
            "instances": len(self.instances),
            "nets": len(self.nets),
            "inputs": len(self.input_ports()),
            "outputs": len(self.output_ports()),
        }

    def iter_pins(self) -> Iterator[Pin]:
        for inst in self.instances.values():
            yield from inst.pins.values()

    def clone(self, name: str | None = None) -> "Netlist":
        """Deep-copy the netlist (attributes are shallow-copied)."""
        copy = Netlist(name or self.name)
        for port in self.ports.values():
            copy.add_port(port.name, port.direction)
        for inst in self.instances.values():
            new_inst = copy.add_instance(inst.name, inst.cell_name)
            new_inst.attributes = dict(inst.attributes)
        for inst in self.instances.values():
            new_inst = copy.instances[inst.name]
            for pin in inst.pins.values():
                if pin.net is None:
                    continue
                copy.connect(new_inst, pin.name, pin.net.name, pin.direction,
                             keeper=pin in pin.net.keepers)
        copy._name_counter = self._name_counter
        return copy

    def __repr__(self):
        s = self.stats()
        return (f"Netlist({self.name}, {s['instances']} instances, "
                f"{s['nets']} nets)")
