"""Content fingerprint of a netlist.

Lives at the netlist layer (not :mod:`repro.api`) so low-level
consumers — the compute backend's on-disk lowering cache in
particular — can key per-design artifacts without importing the API
package.  :mod:`repro.api.workspace` re-exports it unchanged.
"""

from __future__ import annotations

import hashlib

from repro.netlist.core import Netlist


def netlist_fingerprint(netlist: Netlist) -> str:
    """Content hash of a netlist: ports, instances, connectivity.

    Independent of construction order (instances and pins are visited
    sorted) and of the netlist's display name, so the same circuit
    loaded twice — or under two aliases — shares every per-design
    cache.
    """
    # One joined buffer per netlist, not one hash update per line: on
    # 50k-instance designs the per-call overhead of ~200k tiny updates
    # is most of the fingerprint cost (the byte stream is unchanged).
    lines: list[str] = []
    for port in sorted(netlist.ports):
        direction = netlist.ports[port].direction
        lines.append(f"port {port} {direction.value}\n")
    for name in sorted(netlist.instances):
        inst = netlist.instances[name]
        lines.append(f"inst {name} {inst.cell_name}\n")
        for pin_name in sorted(inst.pins):
            pin = inst.pins[pin_name]
            net = pin.net.name if pin.net is not None else ""
            lines.append(f"pin {pin_name} {net}\n")
    return hashlib.sha256("".join(lines).encode()).hexdigest()
