"""Netlist consistency checks.

:func:`check_netlist` runs the full rule set and either returns a list
of human-readable violation strings or (with ``raise_on_error=True``)
raises :class:`~repro.errors.ValidationError`.

Rules:

* every net has exactly one strong driver (instance output or input
  port); output holders are weak keepers and do not count;
* every instance input pin is connected to a driven net;
* every output port's net is driven;
* when a library is supplied: every cell reference resolves, every
  connected pin exists on the cell with a compatible direction, and
  required pins (library input pins) are all connected — except MTE
  and VGND, which are legitimately dangling mid-flow;
* the combinational core is acyclic.
"""

from __future__ import annotations

from repro.errors import ValidationError
from repro.liberty.library import CellKind, Library
from repro.liberty.library import PinDirection as LibPinDirection
from repro.netlist.core import Netlist, PinDirection

#: Pins that may legally be unconnected during intermediate flow stages.
_OPTIONAL_PINS = {"MTE", "VGND"}


def check_netlist(netlist: Netlist, library: Library | None = None,
                  raise_on_error: bool = False,
                  allow_dangling_control: bool = True) -> list[str]:
    """Validate the netlist; returns violation messages (empty = clean)."""
    problems: list[str] = []

    for net in netlist.nets.values():
        strong = (1 if net.driver is not None else 0) \
            + (1 if net.driver_port is not None else 0)
        if strong > 1:
            problems.append(f"net {net.name}: multiple drivers")
        if strong == 0 and (net.sinks or net.sink_ports):
            problems.append(f"net {net.name}: undriven but has "
                            f"{net.fanout()} sinks")

    for inst in netlist.instances.values():
        for pin in inst.input_pins():
            if pin.net is None:
                if allow_dangling_control and pin.name in _OPTIONAL_PINS:
                    continue
                problems.append(f"pin {pin.full_name}: unconnected input")
            elif not pin.net.has_driver:
                problems.append(f"pin {pin.full_name}: net {pin.net.name} "
                                f"has no driver")

    for port in netlist.output_ports():
        if port.net is None or not port.net.has_driver:
            problems.append(f"output port {port.name}: undriven")

    if library is not None:
        problems.extend(_check_against_library(netlist, library,
                                               allow_dangling_control))

    try:
        if library is not None:
            is_seq = lambda inst: (inst.cell_name in library
                                   and library.cell(inst.cell_name).is_sequential)
        else:
            is_seq = None
        netlist.topological_order(is_seq)
    except ValidationError as exc:
        problems.append(str(exc))

    if problems and raise_on_error:
        summary = "; ".join(problems[:10])
        if len(problems) > 10:
            summary += f" ... ({len(problems)} total)"
        raise ValidationError(f"netlist {netlist.name} invalid: {summary}")
    return problems


def _check_against_library(netlist: Netlist, library: Library,
                           allow_dangling_control: bool) -> list[str]:
    problems: list[str] = []
    for inst in netlist.instances.values():
        if inst.cell_name not in library:
            problems.append(f"instance {inst.name}: unknown cell "
                            f"{inst.cell_name!r}")
            continue
        cell = library.cell(inst.cell_name)
        for pin in inst.pins.values():
            if pin.name not in cell.pins:
                problems.append(f"pin {pin.full_name}: cell "
                                f"{cell.name} has no such pin")
                continue
            lib_dir = cell.pins[pin.name].direction
            if lib_dir == LibPinDirection.INPUT \
                    and pin.direction == PinDirection.OUTPUT:
                problems.append(f"pin {pin.full_name}: direction mismatch "
                                f"(library says input)")
            if lib_dir == LibPinDirection.OUTPUT \
                    and pin.direction == PinDirection.INPUT:
                problems.append(f"pin {pin.full_name}: direction mismatch "
                                f"(library says output)")
        # Required connections.
        for lib_pin in cell.input_pins():
            if allow_dangling_control and lib_pin.name in _OPTIONAL_PINS:
                continue
            inst_pin = inst.pins.get(lib_pin.name)
            if inst_pin is None or inst_pin.net is None:
                if cell.kind in (CellKind.SWITCH, CellKind.HOLDER):
                    continue  # attached later in the flow
                problems.append(f"instance {inst.name}: required pin "
                                f"{lib_pin.name} unconnected")
    return problems
