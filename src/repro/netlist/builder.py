"""Fluent netlist construction helper for tests and examples.

Example::

    builder = NetlistBuilder("half_adder")
    builder.inputs("a", "b")
    builder.outputs("s", "c")
    builder.gate("XOR2_X1_LVT", "g1", A="a", B="b", Z="s")
    builder.gate("AND2_X1_LVT", "g2", A="a", B="b", Z="c")
    netlist = builder.build()
"""

from __future__ import annotations

from repro.netlist.core import Netlist, PinDirection

#: Pin names treated as instance outputs by :meth:`NetlistBuilder.gate`.
_OUTPUT_PINS = {"Z", "Q", "Y"}


class NetlistBuilder:
    """Small fluent wrapper over the :class:`Netlist` mutation API."""

    def __init__(self, name: str):
        self.netlist = Netlist(name)

    def inputs(self, *names: str) -> "NetlistBuilder":
        for name in names:
            self.netlist.add_input(name)
        return self

    def outputs(self, *names: str) -> "NetlistBuilder":
        for name in names:
            self.netlist.add_output(name)
        return self

    def gate(self, cell_name: str, inst_name: str,
             **connections: str) -> "NetlistBuilder":
        """Add an instance; keyword args map pin name to net name."""
        inst = self.netlist.add_instance(inst_name, cell_name)
        for pin_name, net_name in connections.items():
            direction = (PinDirection.OUTPUT if pin_name in _OUTPUT_PINS
                         else PinDirection.INPUT)
            self.netlist.connect(inst, pin_name, net_name, direction)
        return self

    def dff(self, inst_name: str, d: str, q: str,
            clock: str = "CLK", cell_name: str = "DFF_X1_LVT") -> "NetlistBuilder":
        """Add a flip-flop, creating the clock input on first use."""
        if clock not in self.netlist.ports:
            self.netlist.add_input(clock)
        return self.gate(cell_name, inst_name, D=d, CK=clock, Q=q)

    def build(self) -> Netlist:
        return self.netlist
