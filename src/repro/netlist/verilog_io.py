"""Structural Verilog subset reader and writer.

Supports the flat gate-level style every EDA tool exchanges::

    module c17 (N1, N2, N22);
      input N1, N2;
      output N22;
      wire n10;
      NAND2_X1_LVT g_10 (.A(N1), .B(N2), .Z(n10));
      ...
    endmodule

Restrictions (documented, validated): one module per file, named port
connections only, scalar nets (no buses), no behavioral constructs.
These match what the flow itself emits, so write/parse round trips.
"""

from __future__ import annotations

import re

from repro.errors import ParseError
from repro.liberty.library import Library, PinDirection as LibPinDirection
from repro.netlist.core import Netlist, PinDirection, PortDirection

_TOKEN_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_$]*|[();.,#]|\S")


def _tokenize(text: str) -> list[str]:
    # Strip comments first.
    text = re.sub(r"//[^\n]*", " ", text)
    text = re.sub(r"/\*.*?\*/", " ", text, flags=re.DOTALL)
    return _TOKEN_RE.findall(text)


class _VerilogParser:
    def __init__(self, tokens: list[str], library: Library | None,
                 filename: str | None):
        self.tokens = tokens
        self.pos = 0
        self.library = library
        self.filename = filename

    def error(self, message: str) -> ParseError:
        return ParseError(message, filename=self.filename)

    def peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def advance(self) -> str:
        if self.pos >= len(self.tokens):
            raise self.error("unexpected end of file")
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect(self, token: str):
        found = self.advance()
        if found != token:
            raise self.error(f"expected {token!r}, found {found!r}")

    def parse_identifier_list(self, terminator: str) -> list[str]:
        names = []
        while True:
            token = self.advance()
            if token == terminator:
                return names
            if token == ",":
                continue
            names.append(token)

    def parse(self) -> Netlist:
        self.expect("module")
        module_name = self.advance()
        netlist = Netlist(module_name)
        self.expect("(")
        port_order = self.parse_identifier_list(")")
        self.expect(";")

        declared: dict[str, str] = {}
        while True:
            token = self.peek()
            if token is None:
                raise self.error("missing endmodule")
            if token == "endmodule":
                self.advance()
                break
            if token in ("input", "output", "wire"):
                self.advance()
                names = self.parse_identifier_list(";")
                for name in names:
                    if token == "wire":
                        netlist.get_or_create_net(name)
                    else:
                        declared[name] = token
                # Create ports as soon as their direction is known.
                for name in names:
                    if token == "input":
                        netlist.add_input(name)
                    elif token == "output":
                        netlist.add_output(name)
                continue
            self.parse_instance(netlist)

        missing = [p for p in port_order if p not in netlist.ports]
        if missing:
            raise self.error(
                f"ports {missing} listed in header but never declared "
                f"input/output")
        return netlist

    def parse_instance(self, netlist: Netlist):
        cell_name = self.advance()
        inst_name = self.advance()
        self.expect("(")
        connections: list[tuple[str, str]] = []
        while True:
            token = self.advance()
            if token == ")":
                break
            if token == ",":
                continue
            if token != ".":
                raise self.error(
                    f"only named connections supported; found {token!r} in "
                    f"instance {inst_name}")
            pin_name = self.advance()
            self.expect("(")
            net_name = self.advance()
            self.expect(")")
            connections.append((pin_name, net_name))
        self.expect(";")

        inst = netlist.add_instance(inst_name, cell_name)
        for pin_name, net_name in connections:
            direction = self._pin_direction(cell_name, pin_name, inst_name)
            keeper = direction == PinDirection.INOUT and pin_name == "Z"
            if keeper:
                # Output holders attach weakly to an already-driven net.
                netlist.connect(inst, pin_name, net_name,
                                PinDirection.INOUT, keeper=True)
            else:
                netlist.connect(inst, pin_name, net_name, direction)

    def _pin_direction(self, cell_name: str, pin_name: str,
                       inst_name: str) -> PinDirection:
        if self.library is not None and cell_name in self.library:
            lib_pin = self.library.cell(cell_name).pin(pin_name)
            return PinDirection(lib_pin.direction.value) \
                if lib_pin.direction != LibPinDirection.INTERNAL \
                else PinDirection.INPUT
        # Heuristic for unbound netlists: Z/Q/VGND drive, the rest sink.
        if pin_name in ("Z", "Q", "Y"):
            return PinDirection.OUTPUT
        if pin_name == "VGND":
            return PinDirection.INOUT
        return PinDirection.INPUT


def parse_verilog(text: str, library: Library | None = None,
                  filename: str | None = None) -> Netlist:
    """Parse structural Verilog into a netlist.

    When ``library`` is given, pin directions come from the library;
    otherwise a naming heuristic (Z/Q/Y outputs) is used.
    """
    tokens = _tokenize(text)
    if not tokens:
        raise ParseError("empty verilog source", filename=filename)
    return _VerilogParser(tokens, library, filename).parse()


def parse_verilog_file(path: str, library: Library | None = None) -> Netlist:
    with open(path, "r", encoding="utf-8") as handle:
        return parse_verilog(handle.read(), library=library, filename=path)


def write_verilog(netlist: Netlist) -> str:
    """Serialize a netlist to structural Verilog."""
    lines: list[str] = []
    port_names = list(netlist.ports)
    lines.append(f"module {netlist.name} ({', '.join(port_names)});")
    inputs = [p.name for p in netlist.input_ports()]
    outputs = [p.name for p in netlist.output_ports()]
    if inputs:
        lines.append(f"  input {', '.join(inputs)};")
    if outputs:
        lines.append(f"  output {', '.join(outputs)};")
    port_nets = {p.net.name for p in netlist.ports.values()
                 if p.net is not None}
    wires = [name for name in netlist.nets if name not in port_nets]
    if wires:
        lines.append(f"  wire {', '.join(wires)};")
    for inst in netlist.instances.values():
        conns = ", ".join(
            f".{pin.name}({pin.net.name})"
            for pin in inst.pins.values() if pin.net is not None)
        lines.append(f"  {inst.cell_name} {inst.name} ({conns});")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def write_verilog_file(netlist: Netlist, path: str):
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(write_verilog(netlist))
