"""ISCAS-85/89 ``.bench`` format reader and writer.

The ``.bench`` format used by the ISCAS benchmark suites::

    # c17
    INPUT(1)
    INPUT(2)
    OUTPUT(22)
    10 = NAND(1, 3)
    22 = NAND(10, 16)
    G7 = DFF(G6)          # sequential (ISCAS-89)

The parser produces a netlist of *generic* gates — cell names such as
``NAND3``, ``INV``, ``DFF`` with pins ``A, B, C, ... -> Z`` (``D, CK ->
Q`` for flip-flops).  Binding to a concrete library (including
decomposing gates wider than the library supports) is done later by
:func:`repro.netlist.techmap.technology_map`.
"""

from __future__ import annotations

import re

from repro.errors import ParseError
from repro.netlist.core import Netlist, PinDirection

#: .bench gate keyword -> generic base name (arity appended for n-ary).
_GATE_MAP = {
    "AND": "AND",
    "NAND": "NAND",
    "OR": "OR",
    "NOR": "NOR",
    "XOR": "XOR",
    "XNOR": "XNOR",
    "NOT": "INV",
    "INV": "INV",
    "BUF": "BUF",
    "BUFF": "BUF",
    "DFF": "DFF",
}

_ASSIGN_RE = re.compile(
    r"^\s*([^=\s]+)\s*=\s*([A-Za-z]+)\s*\(([^)]*)\)\s*$")
_IO_RE = re.compile(r"^\s*(INPUT|OUTPUT)\s*\(([^)]*)\)\s*$", re.IGNORECASE)

#: Pin names for generic combinational gate inputs.
INPUT_PIN_NAMES = tuple("ABCDEFGHIJKLMNOP")


def sanitize_name(raw: str) -> str:
    """Make a .bench signal name a safe identifier.

    Purely numeric ISCAS names (c17's "22") get the conventional "N"
    prefix so they are valid Verilog identifiers.
    """
    name = re.sub(r"[^A-Za-z0-9_]", "_", raw.strip())
    if name and name[0].isdigit():
        name = f"N{name}"
    return name


def generic_gate_name(keyword: str, arity: int) -> str:
    """Generic cell name for a .bench gate (e.g. NAND/3 -> ``NAND3``)."""
    keyword = keyword.upper()
    if keyword not in _GATE_MAP:
        raise ParseError(f"unsupported .bench gate type {keyword!r}")
    base = _GATE_MAP[keyword]
    if base in ("INV", "BUF", "DFF"):
        return base
    return f"{base}{arity}"


def parse_bench(text: str, name: str = "bench",
                filename: str | None = None) -> Netlist:
    """Parse ``.bench`` source text into a generic-gate netlist."""
    netlist = Netlist(name)
    assignments: list[tuple[int, str, str, list[str]]] = []
    outputs: list[str] = []

    for line_no, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        io_match = _IO_RE.match(line)
        if io_match:
            direction, signal = io_match.groups()
            signal = sanitize_name(signal)
            if direction.upper() == "INPUT":
                netlist.add_input(signal)
            else:
                outputs.append(signal)
            continue
        assign_match = _ASSIGN_RE.match(line)
        if assign_match:
            target, gate, operand_text = assign_match.groups()
            operands = [sanitize_name(op) for op in operand_text.split(",")
                        if op.strip()]
            if not operands:
                raise ParseError(f"gate with no operands: {line!r}",
                                 filename=filename, line=line_no)
            assignments.append((line_no, sanitize_name(target),
                                gate.upper(), operands))
            continue
        raise ParseError(f"unrecognized .bench line: {raw_line!r}",
                         filename=filename, line=line_no)

    for line_no, target, gate, operands in assignments:
        if gate in ("NOT", "INV", "BUF", "BUFF") and len(operands) != 1:
            raise ParseError(
                f"{gate} takes exactly one operand, got {len(operands)}",
                filename=filename, line=line_no)
        if gate == "DFF":
            if len(operands) != 1:
                raise ParseError("DFF takes exactly one operand",
                                 filename=filename, line=line_no)
            inst = netlist.add_instance(f"ff_{target}", "DFF")
            netlist.connect(inst, "D", operands[0], PinDirection.INPUT)
            netlist.connect(inst, "CK", _clock_net(netlist),
                            PinDirection.INPUT)
            netlist.connect(inst, "Q", target, PinDirection.OUTPUT)
            continue
        cell_name = generic_gate_name(gate, len(operands))
        if len(operands) > len(INPUT_PIN_NAMES):
            raise ParseError(
                f"gate with {len(operands)} inputs exceeds supported arity",
                filename=filename, line=line_no)
        inst = netlist.add_instance(f"g_{target}", cell_name)
        for pin_name, operand in zip(INPUT_PIN_NAMES, operands):
            netlist.connect(inst, pin_name, operand, PinDirection.INPUT)
        netlist.connect(inst, "Z", target, PinDirection.OUTPUT)

    for signal in outputs:
        _attach_output(netlist, signal)
    return netlist


def _attach_output(netlist: Netlist, signal: str):
    """Declare ``signal`` as a primary output of the design."""
    from repro.netlist.core import Port, PortDirection

    if signal in netlist.ports:
        # An output that is also an input: mirror through an alias net.
        port = Port(f"{signal}_out", PortDirection.OUTPUT)
        netlist.ports[port.name] = port
        net = netlist.get_or_create_net(signal)
        port.net = net
        net.sink_ports.append(port)
        return
    port = Port(signal, PortDirection.OUTPUT)
    netlist.ports[signal] = port
    net = netlist.get_or_create_net(signal)
    port.net = net
    net.sink_ports.append(port)


def _clock_net(netlist: Netlist):
    """The global clock net, creating the CLK input on first use."""
    if "CLK" not in netlist.ports:
        netlist.add_input("CLK")
    return netlist.net("CLK")


def parse_bench_file(path: str, name: str | None = None) -> Netlist:
    """Parse a ``.bench`` file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    if name is None:
        name = path.rsplit("/", 1)[-1].removesuffix(".bench")
    return parse_bench(text, name=name, filename=path)


_GENERIC_TO_BENCH = {
    "INV": "NOT",
    "BUF": "BUFF",
}


def write_bench(netlist: Netlist) -> str:
    """Serialize a *generic-gate* netlist back to ``.bench`` text.

    Only generic gates (as produced by :func:`parse_bench` or the
    circuit generators) are supported; library-bound netlists should be
    written as Verilog instead.
    """
    lines = [f"# {netlist.name}"]
    for port in netlist.input_ports():
        if port.name == "CLK":
            continue  # implicit in .bench
        lines.append(f"INPUT({port.name})")
    for port in netlist.output_ports():
        target = port.net.name if port.net is not None else port.name
        lines.append(f"OUTPUT({target})")
    for inst in netlist.instances.values():
        out_pin = inst.single_output()
        if out_pin.net is None:
            continue
        target = out_pin.net.name
        base = inst.cell_name.rstrip("0123456789")
        keyword = _GENERIC_TO_BENCH.get(base, base)
        if inst.cell_name == "DFF":
            d_net = inst.pin("D").net
            lines.append(f"{target} = DFF({d_net.name if d_net else '?'})")
            continue
        operands = []
        for pin in inst.input_pins():
            if pin.name == "CK" or pin.net is None:
                continue
            operands.append(pin.net.name)
        lines.append(f"{target} = {keyword}({', '.join(operands)})")
    return "\n".join(lines) + "\n"
