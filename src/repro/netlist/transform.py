"""Local netlist rewrites used by the Selective-MT flow.

All transforms preserve netlist invariants (single strong driver,
connected sinks) and operate in place.
"""

from __future__ import annotations

from repro.errors import NetlistError
from repro.liberty.library import Library
from repro.liberty.library import PinDirection as LibPinDirection
from repro.netlist.core import Instance, Net, Netlist, Pin, PinDirection


def swap_variant(netlist: Netlist, inst: Instance, library: Library,
                 variant: str) -> Instance:
    """Re-bind ``inst`` to the sibling cell of the given variant.

    Handles pin-set differences between variants: the MTV variant's
    VGND pin and the CMT variant's MTE pin are created (unconnected) or
    removed as needed.  Connected logic pins are preserved.
    """
    old_cell = library.cell(inst.cell_name)
    new_cell = library.variant_of(old_cell, variant)
    if new_cell.name == inst.cell_name:
        return inst
    # Drop pins that the new cell does not have.
    for pin_name in list(inst.pins):
        if pin_name not in new_cell.pins:
            pin = inst.pins[pin_name]
            netlist.disconnect(pin)
            del inst.pins[pin_name]
    inst.cell_name = new_cell.name
    # Create pins that the new cell adds (left unconnected; the flow
    # connects VGND/MTE later).
    for lib_pin in new_cell.pins.values():
        if lib_pin.name not in inst.pins:
            direction = PinDirection(lib_pin.direction.value) \
                if lib_pin.direction != LibPinDirection.INTERNAL \
                else PinDirection.INPUT
            inst.pins[lib_pin.name] = Pin(inst, lib_pin.name, direction)
    return inst


def insert_buffer(netlist: Netlist, net: Net, buffer_cell: str,
                  sinks: list[Pin] | None = None,
                  name_prefix: str = "buf") -> Instance:
    """Insert a buffer driving ``sinks`` (default: all sinks of ``net``).

    The selected sinks are moved onto a new net behind the buffer; the
    buffer's input attaches to the original net.  Returns the new
    buffer instance.
    """
    if sinks is None:
        sinks = list(net.sinks)
    for pin in sinks:
        if pin.net is not net:
            raise NetlistError(f"pin {pin.full_name} is not a sink of "
                               f"{net.name}")
    inst_name = netlist.unique_name(name_prefix)
    new_net = netlist.get_or_create_net(netlist.unique_name(f"{net.name}_b"))
    buffer_inst = netlist.add_instance(inst_name, buffer_cell)
    netlist.connect(buffer_inst, "A", net, PinDirection.INPUT)
    netlist.connect(buffer_inst, "Z", new_net, PinDirection.OUTPUT)
    for pin in sinks:
        netlist.disconnect(pin)
        netlist.connect(pin.instance, pin.name, new_net, pin.direction)
    return buffer_inst


def remove_buffer(netlist: Netlist, inst: Instance):
    """Remove a buffer, reconnecting its sinks to its input net."""
    in_pin = inst.pin("A")
    out_pin = inst.pin("Z")
    if in_pin.net is None or out_pin.net is None:
        raise NetlistError(f"buffer {inst.name} is not fully connected")
    source_net = in_pin.net
    moved = list(out_pin.net.sinks) + list(out_pin.net.sink_ports)
    old_net = out_pin.net
    for sink in list(old_net.sinks):
        netlist.disconnect(sink)
        netlist.connect(sink.instance, sink.name, source_net, sink.direction)
    for port in list(old_net.sink_ports):
        old_net.sink_ports.remove(port)
        port.net = source_net
        source_net.sink_ports.append(port)
    netlist.remove_instance(inst)
    netlist.remove_net_if_dangling(old_net)
    return moved


def connect_control_net(netlist: Netlist, pins: list[Pin],
                        net_name: str) -> Net:
    """Attach control pins (MTE) of many instances to one net."""
    net = netlist.get_or_create_net(net_name)
    for pin in pins:
        if pin.net is net:
            continue
        if pin.net is not None:
            netlist.disconnect(pin)
        netlist.connect(pin.instance, pin.name, net, PinDirection.INPUT)
    return net


def count_by_cell(netlist: Netlist) -> dict[str, int]:
    """Histogram of instance counts per cell name."""
    histogram: dict[str, int] = {}
    for inst in netlist.instances.values():
        histogram[inst.cell_name] = histogram.get(inst.cell_name, 0) + 1
    return histogram
