"""Idle-interval traces: empirical workloads for the scenario engine.

Real power management is driven by measured idle-interval traces, not
hand-written duty cycles.  This module ingests such traces in two
formats and reduces them to the deterministic ``(duration, weight)``
quantile grids :class:`~repro.standby.scenario.PowerModeScenario`
already speaks — so a trace flows through the batched scenario kernel
unchanged, on either compute backend.

**Formats.**  The line format is one idle interval (ns) per line, with
``#`` comments and blank lines ignored.  The compact JSON format is an
object ``{"name": ..., "active_ns": ..., "intervals_ns": [...]}``
whose entries are either plain durations or ``[duration, count]``
run-length pairs (the compact part).

**Reduction.**  :func:`quantile_grid` sorts the intervals and splits
them into (up to) ``n`` contiguous, equally-populated buckets; each
bucket contributes one point at its mean duration, weighted by its
population.  The reduction is deterministic, insensitive to the input
order, and preserves the trace's total idle time to float rounding —
properties the hypothesis suite in ``tests/policy`` pins down.

**Confidence.**  :func:`bootstrap_grids` resamples the trace with a
seeded :class:`random.Random` and re-reduces each resample, giving a
deterministic family of grids; :func:`confidence_band` collapses them
into per-quantile (low, high) duration bands.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import random

from repro.errors import ConfigError
from repro.standby.scenario import PowerModeScenario

#: Default number of quantile-grid points a trace is reduced to.
DEFAULT_QUANTILE_POINTS = 16


@dataclasses.dataclass(frozen=True)
class IdleTrace:
    """One measured idle-interval trace.

    ``active_ns`` is the mean active burst between idles when the
    trace carries it (the JSON format does); 0.0 means unknown — the
    consumer must supply one when building a scenario.
    """

    name: str
    intervals_ns: tuple[float, ...]
    active_ns: float = 0.0

    def __post_init__(self):
        if not self.name:
            raise ConfigError("name", "trace needs a non-empty name")
        if not self.intervals_ns:
            raise ConfigError(
                "intervals_ns", "trace carries no idle intervals")
        for value in self.intervals_ns:
            if not value > 0.0:
                raise ConfigError(
                    "intervals_ns",
                    f"idle intervals must be positive, got {value!r}")
        if self.active_ns < 0.0:
            raise ConfigError(
                "active_ns",
                f"must be non-negative, got {self.active_ns!r}")

    @property
    def total_idle_ns(self) -> float:
        return sum(self.intervals_ns)

    @property
    def mean_idle_ns(self) -> float:
        return self.total_idle_ns / len(self.intervals_ns)


# --- parsing -----------------------------------------------------------------


def parse_trace(text: str, name: str = "trace") -> IdleTrace:
    """Parse a trace from either supported format (auto-detected)."""
    stripped = text.lstrip()
    if stripped.startswith("{"):
        return _parse_json(stripped, name)
    return _parse_lines(text, name)


def load_trace(path: str | pathlib.Path) -> IdleTrace:
    """Read a trace file; the default name is the file stem."""
    path = pathlib.Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ConfigError(
            "trace_file", f"cannot read {str(path)!r}: {exc}") from exc
    return parse_trace(text, name=path.stem)


def _parse_lines(text: str, name: str) -> IdleTrace:
    intervals: list[float] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        try:
            intervals.append(float(line))
        except ValueError:
            raise ConfigError(
                "trace_file",
                f"line {lineno}: expected one idle interval (ns), "
                f"got {line!r}") from None
    return IdleTrace(name=name, intervals_ns=tuple(intervals))


def _parse_json(text: str, name: str) -> IdleTrace:
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigError(
            "trace_file", f"invalid trace JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ConfigError(
            "trace_file",
            f"trace JSON must be an object, got "
            f"{type(payload).__name__}")
    entries = payload.get("intervals_ns")
    if not isinstance(entries, list):
        raise ConfigError(
            "trace_file", "trace JSON needs an 'intervals_ns' list")
    intervals: list[float] = []
    for entry in entries:
        if isinstance(entry, (int, float)) and \
                not isinstance(entry, bool):
            intervals.append(float(entry))
        elif isinstance(entry, list) and len(entry) == 2:
            duration, count = entry
            if not isinstance(count, int) or count < 1:
                raise ConfigError(
                    "trace_file",
                    f"run-length count must be a positive int, "
                    f"got {count!r}")
            intervals.extend([float(duration)] * count)
        else:
            raise ConfigError(
                "trace_file",
                f"intervals are durations or [duration, count] "
                f"pairs, got {entry!r}")
    return IdleTrace(
        name=str(payload.get("name", name)) or name,
        intervals_ns=tuple(intervals),
        active_ns=float(payload.get("active_ns", 0.0)))


# --- reduction ---------------------------------------------------------------


def quantile_grid(intervals_ns,
                  points: int = DEFAULT_QUANTILE_POINTS
                  ) -> tuple[tuple[float, float], ...]:
    """Reduce intervals to a deterministic (duration, weight) grid.

    The sorted intervals are split into up to ``points`` contiguous
    buckets of (near-)equal population; each bucket becomes one point
    at its mean duration, weighted ``population / total``.  Sorting
    first makes the grid order-insensitive; bucket means make the
    weighted grid mean equal the trace mean (so total idle time over
    any horizon is preserved to float rounding).
    """
    if points < 1:
        raise ConfigError(
            "points", f"needs at least one, got {points!r}")
    ordered = sorted(intervals_ns)
    total = len(ordered)
    if total == 0:
        raise ConfigError("intervals_ns", "no intervals to reduce")
    buckets = min(points, total)
    grid: list[tuple[float, float]] = []
    for b in range(buckets):
        start = (b * total) // buckets
        stop = ((b + 1) * total) // buckets
        acc = 0.0
        for index in range(start, stop):
            acc += ordered[index]
        count = stop - start
        grid.append((acc / count, count / total))
    return tuple(grid)


def trace_scenario(trace: IdleTrace, active_ns: float | None = None,
                   quantile_points: int = DEFAULT_QUANTILE_POINTS,
                   horizon_ns: float = 1e9,
                   name: str | None = None) -> PowerModeScenario:
    """Build an ``empirical`` scenario from a trace.

    ``active_ns`` falls back to the trace's own value; one of the two
    must be positive (the duty cycle needs an active burst length).
    ``idle_ns`` is the grid's weighted mean, so the scenario's
    sleep-event count matches the trace's idle/active cadence.
    """
    active = trace.active_ns if active_ns is None else active_ns
    if active <= 0.0:
        raise ConfigError(
            "active_ns",
            f"trace {trace.name!r} carries no active burst length; "
            f"pass active_ns explicitly")
    grid = quantile_grid(trace.intervals_ns, quantile_points)
    mean = 0.0
    for duration, weight in grid:
        mean += duration * weight
    return PowerModeScenario(
        name=name or trace.name,
        active_ns=active,
        idle_ns=mean,
        distribution="empirical",
        quantile_points=len(grid),
        horizon_ns=horizon_ns,
        points=grid)


# --- bootstrap confidence ----------------------------------------------------


@dataclasses.dataclass(frozen=True)
class ConfidenceBand:
    """Per-quantile duration band from seeded bootstrap resampling."""

    resamples: int
    seed: int
    confidence: float
    #: The point-estimate grid of the trace itself.
    grid: tuple[tuple[float, float], ...]
    low_ns: tuple[float, ...]      # per grid point
    high_ns: tuple[float, ...]


def bootstrap_grids(trace: IdleTrace, resamples: int = 32,
                    seed: int = 1,
                    quantile_points: int = DEFAULT_QUANTILE_POINTS
                    ) -> list[tuple[tuple[float, float], ...]]:
    """Seeded bootstrap: resample-with-replacement, re-reduce.

    Draws come from the *sorted* intervals, so the family of grids —
    like the point estimate — does not depend on the trace's input
    order.  Resamples keep the original population, so every grid has
    the same number of points as the point estimate.
    """
    if resamples < 1:
        raise ConfigError(
            "resamples", f"needs at least one, got {resamples!r}")
    ordered = sorted(trace.intervals_ns)
    total = len(ordered)
    rng = random.Random(seed)
    grids = []
    for _ in range(resamples):
        sample = [ordered[rng.randrange(total)] for _ in range(total)]
        grids.append(quantile_grid(sample, quantile_points))
    return grids


def confidence_band(trace: IdleTrace, resamples: int = 32,
                    seed: int = 1,
                    quantile_points: int = DEFAULT_QUANTILE_POINTS,
                    confidence: float = 0.9) -> ConfidenceBand:
    """Bootstrap (low, high) duration bands around the quantile grid."""
    if not 0.0 < confidence < 1.0:
        raise ConfigError(
            "confidence",
            f"must be in (0, 1), got {confidence!r}")
    grid = quantile_grid(trace.intervals_ns, quantile_points)
    grids = bootstrap_grids(trace, resamples, seed,
                            quantile_points=len(grid))
    alpha = (1.0 - confidence) / 2.0
    lo_index = int(alpha * (resamples - 1))
    hi_index = (resamples - 1) - lo_index
    low: list[float] = []
    high: list[float] = []
    for p in range(len(grid)):
        durations = sorted(g[p][0] for g in grids)
        low.append(durations[lo_index])
        high.append(durations[hi_index])
    return ConfidenceBand(
        resamples=resamples, seed=seed, confidence=confidence,
        grid=grid, low_ns=tuple(low), high_ns=tuple(high))
