"""The batched sleep-policy optimizer.

Sweeps thousands of candidate (domain plan, per-domain threshold)
policies against every workload scenario and PVT corner in **one**
``policies x clusters x corners`` array pass, then reduces the sweep
to the Pareto front of (net savings, worst wake latency, peak rush).

**Candidate space.**  For each domain plan (deterministic balanced
partitions from :func:`repro.policy.domains.plan_partitions`) the
per-domain break-even times anchor a log-spaced factor grid
(:func:`repro.policy.model.threshold_factors`): one *global* sweep
(every domain shares a factor) plus one *leave-awake* sweep per domain
(that domain pinned to ``inf``).  Quotas are rounded up, so the total
candidate count is always at least the requested number.

**Backend contract.**  Exactly the standby engine's: the scalar
reference and the numpy path perform the same IEEE operations in the
same order.  All transcendentals (transients, schedules, break-even
anchors, factor grids) are evaluated scalar-side; the batched kernel
is multiply/subtract/select with an ordered left-to-right cluster
accumulation, so a policy's per-point savings — and everything
aggregated from them in shared Python — are bit-identical across
backends (``tests/policy`` and ``benchmarks/test_bench_policy.py``
both assert full-result equality).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Mapping, Sequence

from repro.compute import resolve_backend
from repro.config import Technique
from repro.errors import StandbyError
from repro.liberty.library import Library
from repro.netlist.core import Netlist
from repro.obs.metrics import REGISTRY
from repro.obs.spans import span
from repro.policy.domains import DomainPlan, characterize_plan, plan_partitions
from repro.policy.model import SleepPolicy, threshold_factors
from repro.standby.engine import NOMINAL_CORNER
from repro.standby.scenario import PowerModeScenario
from repro.standby.schedule import default_rush_budget_ma
from repro.standby.transient import ClusterTransient, TransientSolver
from repro.vgnd.network import VgndNetwork

#: nW x ns -> pJ.
_NW_NS_TO_PJ = 1e-6


@dataclasses.dataclass(frozen=True)
class PolicyPoint:
    """One Pareto-optimal policy."""

    policy_id: int                    # candidate index in sweep order
    plan: str                         # domain-plan name
    domains: tuple[tuple[int, ...], ...]   # member clusters per domain
    thresholds_ns: tuple[float, ...]  # per domain; inf = never sleep
    net_savings_pj: float             # worst corner, all scenarios
    worst_wake_latency_ns: float      # slowest sleeping domain, any corner
    peak_rush_ma: float               # worst sleeping-domain schedule peak
    sleeping_domains: int

    def as_dict(self) -> dict[str, Any]:
        from repro.api import schemas  # lazy: loads the registry

        return schemas.to_dict(self)


@dataclasses.dataclass(frozen=True)
class PolicyResult:
    """The full policy-optimization verdict for one design."""

    circuit: str
    technique: Technique
    compute_backend: str
    clusters: int
    settle_fraction: float
    scenarios: tuple[str, ...]
    corners: tuple[str, ...]
    candidates: int                   # evaluated (>= requested)
    plans: tuple[str, ...]
    rush_budget_ma: float             # first configured corner's budget
    #: Clairvoyant per-cluster upper bound: every cluster its own
    #: domain, threshold exactly at break-even, worst corner.
    oracle_net_savings_pj: float
    pareto: tuple[PolicyPoint, ...]   # (-net, wake, rush) order

    @property
    def best(self) -> PolicyPoint:
        """The highest-savings Pareto point."""
        return self.pareto[0]

    def point(self, policy_id: int) -> PolicyPoint:
        for point in self.pareto:
            if point.policy_id == policy_id:
                return point
        raise KeyError(f"no Pareto point for policy {policy_id}")

    def render(self) -> str:
        lines = [
            f"policy sweep: {self.candidates} candidates, "
            f"{self.clusters} clusters, plans "
            f"{', '.join(self.plans)}; corners "
            f"{', '.join(self.corners)}",
            f"oracle (clairvoyant per-cluster) net savings: "
            f"{self.oracle_net_savings_pj:.1f} pJ",
            f"{'id':>6} {'plan':<12} {'sleeping':>8} "
            f"{'net_pJ':>14} {'wake_ns':>10} {'rush_mA':>9}",
        ]
        for point in self.pareto:
            lines.append(
                f"{point.policy_id:>6} {point.plan:<12} "
                f"{point.sleeping_domains:>8} "
                f"{point.net_savings_pj:>14.1f} "
                f"{point.worst_wake_latency_ns:>10.3f} "
                f"{point.peak_rush_ma:>9.3f}")
        return "\n".join(lines)

    def as_dict(self) -> dict[str, Any]:
        from repro.api import schemas  # lazy: loads the registry

        return schemas.to_dict(self)


# --- the batched kernel ------------------------------------------------------


def _sweep_python(points: Sequence[tuple[float, float]],
                  dp_nw: Sequence[Sequence[float]],
                  energy_pj: Sequence[Sequence[float]],
                  oh_plan: Sequence[Sequence[Sequence[float]]],
                  plan_of: Sequence[int],
                  thresholds: Sequence[Sequence[float]]
                  ) -> list[list[list[float]]]:
    """Scalar reference: gated savings per (policy, corner, point).

    ``dp_nw``/``energy_pj`` are (corners x clusters) tables,
    ``oh_plan`` a (plans x corners x clusters) overhead table indexed
    through ``plan_of``, ``thresholds`` a (policies x clusters) grid.
    The cluster sum is a left-to-right ordered reduction; a point
    below a cluster's threshold contributes exactly 0.0.
    """
    durations = [duration for duration, _w in points]
    corners = len(dp_nw)
    clusters = len(dp_nw[0]) if corners else 0
    out: list[list[list[float]]] = []
    for i, t_row in enumerate(thresholds):
        oh = oh_plan[plan_of[i]]
        rows: list[list[float]] = []
        for c in range(corners):
            dp_c = dp_nw[c]
            oh_c = oh[c]
            e_c = energy_pj[c]
            acc = [0.0] * len(durations)
            for k in range(clusters):
                dp = dp_c[k]
                oh_k = oh_c[k]
                energy = e_c[k]
                threshold = t_row[k]
                for p, duration in enumerate(durations):
                    value = dp * (duration - oh_k) * _NW_NS_TO_PJ \
                        - energy
                    acc[p] = acc[p] + (value if duration >= threshold
                                       else 0.0)
            rows.append(acc)
        out.append(rows)
    return out


def _sweep_numpy(points: Sequence[tuple[float, float]],
                 dp_nw: Sequence[Sequence[float]],
                 energy_pj: Sequence[Sequence[float]],
                 oh_plan: Sequence[Sequence[Sequence[float]]],
                 plan_of: Sequence[int],
                 thresholds: Sequence[Sequence[float]]
                 ) -> list[list[list[float]]]:
    """Vectorized path: one stacked pass over every candidate.

    Same operations in the same order as :func:`_sweep_python` — the
    policy and corner axes only widen each vector op; the cluster loop
    stays an ordered left-to-right accumulation (one vector add per
    cluster), so every element's float-op sequence matches the scalar
    reference exactly.
    """
    import numpy as np

    durations = np.array([duration for duration, _w in points],
                         dtype=float)
    dp = np.asarray(dp_nw, dtype=float)                    # (C, K)
    energy = np.asarray(energy_pj, dtype=float)            # (C, K)
    oh = np.asarray(oh_plan, dtype=float)[
        np.asarray(plan_of, dtype=int)]                    # (P, C, K)
    grid = np.asarray(thresholds, dtype=float)             # (P, K)
    policies = grid.shape[0]
    acc = np.zeros((policies, dp.shape[0], len(durations)),
                   dtype=float)
    zero = np.float64(0.0)
    for k in range(dp.shape[1]):
        value = dp[None, :, k, None] \
            * (durations[None, None, :] - oh[:, :, k, None]) \
            * np.float64(_NW_NS_TO_PJ) - energy[None, :, k, None]
        mask = durations[None, None, :] >= grid[:, k, None, None]
        acc = acc + np.where(mask, value, zero)
    return acc.tolist()


def _oracle_points_python(points: Sequence[tuple[float, float]],
                          dp_nw: Sequence[float],
                          overhead_ns: Sequence[float],
                          energy_pj: Sequence[float]) -> list[float]:
    """Clairvoyant per-cluster savings (the engine's max(0, .) rule).

    Always evaluated scalar-side: it is a tiny (clusters x points)
    sweep, and keeping it off the batched path makes the oracle number
    trivially backend-independent.
    """
    acc = [0.0] * len(points)
    for k, dp in enumerate(dp_nw):
        oh = overhead_ns[k]
        energy = energy_pj[k]
        for p, (duration, _weight) in enumerate(points):
            value = dp * (duration - oh) * _NW_NS_TO_PJ - energy
            acc[p] = acc[p] + (value if value > 0.0 else 0.0)
    return acc


class PolicyOptimizer:
    """Sweeps candidate sleep policies for one finished design."""

    def __init__(self, netlist: Netlist, library: Library,
                 network: VgndNetwork,
                 scenarios: Sequence[PowerModeScenario],
                 corners: Sequence[str] = (NOMINAL_CORNER,),
                 candidates: int = 1024,
                 max_domains: int = 4,
                 settle_fraction: float = 0.05,
                 rush_budget_ma: float | None = None,
                 parasitics: Mapping[str, Any] | None = None,
                 compute_backend: str | None = None,
                 corner_libraries: Mapping[str, Library] | None = None,
                 circuit: str | None = None,
                 technique: Technique = Technique.IMPROVED_SMT):
        if not network.clusters:
            raise StandbyError(
                "the design has no VGND clusters; sleep-policy "
                "optimization needs the improved-SMT switch structure")
        if not scenarios:
            raise StandbyError("no power-mode scenarios given")
        if candidates < 1:
            raise StandbyError(
                f"candidate budget must be positive, got {candidates!r}")
        self.netlist = netlist
        self.library = library
        self.network = network
        self.scenarios = list(scenarios)
        self.corners = tuple(corners) or (NOMINAL_CORNER,)
        self.candidates = int(candidates)
        self.max_domains = int(max_domains)
        self.settle_fraction = settle_fraction
        self.rush_budget_ma = rush_budget_ma
        self.parasitics = parasitics
        self.compute_backend = resolve_backend(compute_backend)
        self.corner_libraries = dict(corner_libraries or {})
        self.circuit = circuit or netlist.name
        self.technique = Technique(technique)

    # --- public -------------------------------------------------------------

    def run(self) -> PolicyResult:
        with span("policy.optimize", corners=len(self.corners),
                  scenarios=len(self.scenarios),
                  clusters=len(self.network.clusters),
                  candidates=self.candidates):
            result = self._run_impl()
        REGISTRY.inc("policy.sweeps")
        REGISTRY.inc("policy.candidates", result.candidates)
        REGISTRY.observe("policy.pareto_points", len(result.pareto))
        return result

    def _run_impl(self) -> PolicyResult:
        points: list[tuple[float, float]] = []
        spans: list[tuple[int, int]] = []
        for scenario in self.scenarios:
            start = len(points)
            points.extend(scenario.idle_points())
            spans.append((start, len(points)))

        # Per-corner scalar prologue: transients, domain schedules.
        corner_transients: list[list[ClusterTransient]] = []
        budgets: list[float] = []
        for corner_name in self.corners:
            library = self._corner_library(corner_name)
            transients = TransientSolver(
                self.network, self.netlist, library,
                settle_fraction=self.settle_fraction,
                parasitics=self.parasitics).solve()
            budget = self.rush_budget_ma
            if budget is None:
                budget = default_rush_budget_ma(transients)
            corner_transients.append(list(transients))
            budgets.append(budget)

        partitions = plan_partitions(corner_transients[0],
                                     self.max_domains)
        # plans_by_corner[c][j], oh_plan indexed (j, c, k).
        plans_by_corner: list[list[DomainPlan]] = []
        oh_plan: list[list[list[float]]] = \
            [[] for _ in partitions]
        for c, transients in enumerate(corner_transients):
            row: list[DomainPlan] = []
            for j, partition in enumerate(partitions):
                plan, overheads = characterize_plan(
                    partition, transients, budgets[c])
                row.append(plan)
                oh_plan[j].append(overheads)
            plans_by_corner.append(row)

        dp_nw = [[tr.leakage_savings_nw for tr in transients]
                 for transients in corner_transients]
        energy_pj = [[tr.energy_per_cycle_pj for tr in transients]
                     for transients in corner_transients]

        policies = self._candidates(plans_by_corner[0])
        plan_of = [policy.plan for policy in policies]
        order = [tr.cluster_index for tr in corner_transients[0]]
        thresholds = [
            self._cluster_thresholds(policy, partitions, order)
            for policy in policies]

        if self.compute_backend == "numpy":
            accs = _sweep_numpy(points, dp_nw, energy_pj, oh_plan,
                                plan_of, thresholds)
        else:
            accs = _sweep_python(points, dp_nw, energy_pj, oh_plan,
                                 plan_of, thresholds)

        nets = [self._worst_corner_net(acc, points, spans)
                for acc in accs]
        pareto = self._pareto(policies, nets, plans_by_corner)
        oracle = self._oracle(points, spans, corner_transients,
                              dp_nw, energy_pj)
        return PolicyResult(
            circuit=self.circuit,
            technique=self.technique,
            compute_backend=self.compute_backend,
            clusters=len(self.network.clusters),
            settle_fraction=self.settle_fraction,
            scenarios=tuple(s.name for s in self.scenarios),
            corners=self.corners,
            candidates=len(policies),
            plans=tuple(plan.name for plan in plans_by_corner[0]),
            rush_budget_ma=budgets[0],
            oracle_net_savings_pj=oracle,
            pareto=pareto)

    # --- internals -----------------------------------------------------------

    def _corner_library(self, corner_name: str) -> Library:
        cached = self.corner_libraries.get(corner_name)
        if cached is not None:
            return cached
        from repro.variation.corners import (
            derive_corner_library_cached,
            resolve_corner,
        )

        corner = resolve_corner(corner_name, self.library.tech)
        derived = derive_corner_library_cached(self.library, corner)
        self.corner_libraries[corner_name] = derived
        return derived

    def _candidates(self, plans: Sequence[DomainPlan]
                    ) -> list[SleepPolicy]:
        """The deterministic candidate list (>= the requested count).

        Per plan: a global factor sweep over the domain break-even
        anchors, plus one leave-awake sweep per domain.  Quotas round
        up, so len(result) >= self.candidates always.
        """
        quota = -(-self.candidates // len(plans))     # ceil
        policies: list[SleepPolicy] = []
        for j, plan in enumerate(plans):
            anchors = [domain.break_even_ns for domain in plan.domains]
            ndom = len(anchors)
            per_axis = -(-quota // (ndom + 1))        # ceil
            factors = threshold_factors(per_axis)
            for factor in factors:
                policies.append(SleepPolicy(
                    plan=j,
                    thresholds_ns=tuple(factor * anchor
                                        for anchor in anchors)))
            for awake in range(ndom):
                for factor in factors:
                    thresholds = [factor * anchor for anchor in anchors]
                    thresholds[awake] = math.inf
                    policies.append(SleepPolicy(
                        plan=j, thresholds_ns=tuple(thresholds)))
        return policies

    def _cluster_thresholds(self, policy: SleepPolicy, partitions,
                            order: Sequence[int]) -> list[float]:
        """Expand per-domain thresholds to the cluster axis."""
        partition = partitions[policy.plan]
        by_cluster: dict[int, float] = {}
        for members, threshold in zip(partition, policy.thresholds_ns):
            for index in members:
                by_cluster[index] = threshold
        return [by_cluster[index] for index in order]

    def _worst_corner_net(self, acc_rows, points, spans) -> list[float]:
        """Per-corner horizon nets -> [net_c...] for one policy."""
        nets = []
        for acc in acc_rows:
            net = 0.0
            for scenario, (start, stop) in zip(self.scenarios, spans):
                per_event = 0.0
                for p in range(start, stop):
                    per_event += points[p][1] * acc[p]
                net += scenario.sleep_events * per_event
            nets.append(net)
        return nets

    def _pareto(self, policies: Sequence[SleepPolicy],
                nets: Sequence[Sequence[float]],
                plans_by_corner) -> tuple[PolicyPoint, ...]:
        """Dominance-filter the sweep, deterministically ordered."""
        rows: list[tuple[int, float, float, float]] = []
        for i, policy in enumerate(policies):
            net = min(nets[i])
            wake = 0.0
            rush = 0.0
            for c in range(len(self.corners)):
                plan = plans_by_corner[c][policy.plan]
                for domain, threshold in zip(plan.domains,
                                             policy.thresholds_ns):
                    if math.isfinite(threshold):
                        wake = max(wake, domain.wake_latency_ns)
                        rush = max(rush, domain.peak_rush_ma)
            rows.append((i, net, wake, rush))

        # Exact-duplicate metric triples keep the lowest candidate id.
        seen: set[tuple[float, float, float]] = set()
        unique: list[tuple[int, float, float, float]] = []
        for row in rows:
            key = (row[1], row[2], row[3])
            if key in seen:
                continue
            seen.add(key)
            unique.append(row)

        front: list[tuple[int, float, float, float]] = []
        for row in unique:
            _, net, wake, rush = row
            dominated = False
            for _, net2, wake2, rush2 in unique:
                if net2 >= net and wake2 <= wake and rush2 <= rush \
                        and (net2 > net or wake2 < wake
                             or rush2 < rush):
                    dominated = True
                    break
            if not dominated:
                front.append(row)
        front.sort(key=lambda row: (-row[1], row[2], row[3], row[0]))

        first_plans = plans_by_corner[0]
        points = []
        for i, net, wake, rush in front:
            policy = policies[i]
            plan = first_plans[policy.plan]
            points.append(PolicyPoint(
                policy_id=i,
                plan=plan.name,
                domains=tuple(domain.clusters
                              for domain in plan.domains),
                thresholds_ns=policy.thresholds_ns,
                net_savings_pj=net,
                worst_wake_latency_ns=wake,
                peak_rush_ma=rush,
                sleeping_domains=policy.sleeping_domains))
        return tuple(points)

    def _oracle(self, points, spans, corner_transients, dp_nw,
                energy_pj) -> float:
        """Worst-corner clairvoyant per-cluster upper bound.

        Every cluster is its own domain (the minimal-overhead plan:
        entry is its own sleep latency, settle its own wake latency)
        and sleeps exactly when an interval pays — no candidate under
        any plan can beat it.
        """
        worst = math.inf
        for c, transients in enumerate(corner_transients):
            overheads = [tr.sleep_latency_ns + tr.wake_latency_ns
                         for tr in transients]
            acc = _oracle_points_python(points, dp_nw[c], overheads,
                                        energy_pj[c])
            net = 0.0
            for scenario, (start, stop) in zip(self.scenarios, spans):
                per_event = 0.0
                for p in range(start, stop):
                    per_event += points[p][1] * acc[p]
                net += scenario.sleep_events * per_event
            worst = min(worst, net)
        return worst
