"""`repro.policy` — trace-driven sleep-policy search.

The paper sizes and clusters sleep transistors but never asks *when*
entering SLEEP is worth it.  This package answers that question on top
of the standby-transition engine (:mod:`repro.standby`):

* :mod:`repro.policy.traces` — empirical idle-interval traces,
  reduced to the deterministic quantile grids the batched scenario
  kernel consumes unchanged (plus seeded bootstrap confidence bands);
* :mod:`repro.policy.model` — the sleep-threshold policy model (enter
  SLEEP only when the predicted idle interval is at least ``T``) and
  its closed-form evaluation against the break-even sweep;
* :mod:`repro.policy.domains` — hierarchical power domains: clusters
  grouped under a shared enable, wake latency and peak rush derived by
  the rush scheduler rather than summed;
* :mod:`repro.policy.optimize` — the batched optimizer: thousands of
  candidate (domain plan, thresholds) policies evaluated as one
  ``policies x clusters x corners`` array pass with a bit-identical
  scalar fallback, reduced to the Pareto front of (net savings, worst
  wake latency, peak rush).
"""

from repro.policy.domains import DomainPlan, PowerDomain, plan_partitions
from repro.policy.model import SleepPolicy, break_even_ns, threshold_factors
from repro.policy.optimize import PolicyOptimizer, PolicyPoint, PolicyResult
from repro.policy.traces import (
    ConfidenceBand,
    IdleTrace,
    bootstrap_grids,
    confidence_band,
    load_trace,
    parse_trace,
    quantile_grid,
    trace_scenario,
)

__all__ = [
    "ConfidenceBand",
    "DomainPlan",
    "IdleTrace",
    "PolicyOptimizer",
    "PolicyPoint",
    "PolicyResult",
    "PowerDomain",
    "SleepPolicy",
    "bootstrap_grids",
    "break_even_ns",
    "confidence_band",
    "load_trace",
    "parse_trace",
    "plan_partitions",
    "quantile_grid",
    "threshold_factors",
    "trace_scenario",
]
