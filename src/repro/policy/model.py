"""The sleep-threshold policy model.

A *policy* decides when a power domain enters SLEEP: only when the
predicted idle interval is at least its threshold ``T``.  Against the
quantile-grid workload model this evaluates in closed form — no
simulation.  For a domain with leakage savings ``dP`` (nW), transition
overhead ``oh`` (ns) and cycle energy ``E`` (pJ), an idle interval of
duration ``d`` contributes

    dP * (d - oh) * 1e-6 - E     if d >= T, else 0      [pJ]

summed over the grid's (duration, weight) points.  The clairvoyant
per-cluster policy the standby engine reports is the special case
``T = break-even``; a real controller must commit to one threshold per
domain, which is exactly the candidate space the optimizer sweeps.

The break-even time itself is the closed form from the engine:

    T_be = oh + E / (dP * 1e-6)

and candidate thresholds are generated as a deterministic log-spaced
factor grid around it (:func:`threshold_factors`), so the sweep
brackets too-eager and too-lazy policies on both sides.
"""

from __future__ import annotations

import dataclasses
import math

from repro.errors import ConfigError

#: nW x ns -> pJ (the standby engine's unit bridge).
_NW_NS_TO_PJ = 1e-6

#: The factor-grid bracket around the break-even threshold.
FACTOR_LO = 0.25
FACTOR_HI = 8.0


@dataclasses.dataclass(frozen=True)
class SleepPolicy:
    """One candidate policy: a domain plan and per-domain thresholds.

    ``plan`` indexes the optimizer's evaluated
    :class:`~repro.policy.domains.DomainPlan` list; ``thresholds_ns``
    has one entry per domain of that plan — ``inf`` keeps the domain
    awake unconditionally.
    """

    plan: int
    thresholds_ns: tuple[float, ...]

    def __post_init__(self):
        if self.plan < 0:
            raise ConfigError(
                "plan", f"must be non-negative, got {self.plan!r}")
        if not self.thresholds_ns:
            raise ConfigError(
                "thresholds_ns", "policy needs at least one threshold")
        for value in self.thresholds_ns:
            if not value > 0.0:   # rejects NaN and non-positive
                raise ConfigError(
                    "thresholds_ns",
                    f"thresholds must be positive, got {value!r}")

    @property
    def sleeping_domains(self) -> int:
        """Domains this policy ever puts to sleep."""
        return sum(1 for t in self.thresholds_ns if math.isfinite(t))


def break_even_ns(dp_nw: float, overhead_ns: float,
                  energy_pj: float) -> float:
    """The idle duration at which sleeping becomes net-positive."""
    if dp_nw <= 0.0:
        return math.inf
    return overhead_ns + energy_pj / (dp_nw * _NW_NS_TO_PJ)


def threshold_factors(count: int, lo: float = FACTOR_LO,
                      hi: float = FACTOR_HI) -> tuple[float, ...]:
    """A deterministic log-spaced factor grid over ``[lo, hi]``.

    Computed scalar-side once per sweep (transcendentals never enter
    the batched kernel, keeping the backends bit-identical).
    """
    if count < 1:
        raise ConfigError(
            "count", f"needs at least one factor, got {count!r}")
    if not 0.0 < lo <= hi:
        raise ConfigError(
            "lo", f"need 0 < lo <= hi, got ({lo!r}, {hi!r})")
    if count == 1:
        return (math.sqrt(lo * hi),)
    ratio = hi / lo
    return tuple(lo * ratio ** (i / (count - 1)) for i in range(count))
