"""Hierarchical power domains over the VGND cluster set.

A *domain* groups clusters under one shared sleep enable: the whole
group enters SLEEP together (entry completes when the slowest member
has) and wakes together through its own staged enable sequence.  The
wake latency and peak rush of a domain are therefore **scheduler
outputs**, not sums: the members' wake-up is routed through the same
:class:`~repro.standby.schedule.RushScheduler` the full-network
signoff uses, restricted to the domain's transients, under the same
di/dt budget.  Domains wake independently (each on its own wake
request), so a policy's worst wake latency is the slowest *domain*
makespan, and its peak rush the worst single-domain schedule peak.

Plans are deterministic balanced partitions of the cluster index
space (:func:`plan_partitions`): clusters are ordered by descending
wake latency so each domain groups similar-latency members — the
grouping that keeps a domain's scheduler-derived makespan close to
its slowest member — and split into 1, 2, ... ``max_domains`` groups,
plus the per-cluster plan (every cluster its own domain, the standby
engine's implicit model).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Sequence

from repro.errors import ConfigError
from repro.policy.model import break_even_ns
from repro.standby.schedule import RushScheduler
from repro.standby.transient import ClusterTransient


@dataclasses.dataclass(frozen=True)
class PowerDomain:
    """One characterized domain (at one PVT corner)."""

    name: str
    clusters: tuple[int, ...]          # member cluster indices
    wake_latency_ns: float             # scheduled makespan
    serial_wake_latency_ns: float      # daisy-chain reference
    sleep_latency_ns: float            # slowest member's entry
    peak_rush_ma: float                # scheduled peak, this domain
    bins: int
    leakage_savings_nw: float
    cycle_energy_pj: float
    break_even_ns: float

    def as_dict(self) -> dict[str, Any]:
        from repro.api import schemas  # lazy: loads the registry

        return schemas.to_dict(self)


@dataclasses.dataclass(frozen=True)
class DomainPlan:
    """One domain grouping, characterized at one corner."""

    name: str
    domains: tuple[PowerDomain, ...]

    def as_dict(self) -> dict[str, Any]:
        from repro.api import schemas  # lazy: loads the registry

        return schemas.to_dict(self)


def plan_partitions(transients: Sequence[ClusterTransient],
                    max_domains: int
                    ) -> list[tuple[tuple[int, ...], ...]]:
    """Deterministic candidate groupings of the cluster index space.

    Returns partitions as tuples of member-index tuples (members
    ascending within a domain).  Clusters are ranked by descending
    wake latency (ties by index) before being split into contiguous
    balanced groups, so a domain holds similar-latency members.
    """
    if max_domains < 1:
        raise ConfigError(
            "max_domains",
            f"needs at least one domain, got {max_domains!r}")
    indices = [tr.cluster_index for tr in sorted(
        transients,
        key=lambda tr: (-tr.wake_latency_ns, tr.cluster_index))]
    total = len(indices)
    if total == 0:
        raise ConfigError("transients", "no clusters to partition")
    counts = sorted({d for d in range(1, max_domains + 1)
                     if d <= total} | {total})
    partitions = []
    for domains in counts:
        groups = []
        for b in range(domains):
            start = (b * total) // domains
            stop = ((b + 1) * total) // domains
            groups.append(tuple(sorted(indices[start:stop])))
        partitions.append(tuple(groups))
    return partitions


def plan_name(partition: tuple[tuple[int, ...], ...],
              clusters: int) -> str:
    if len(partition) == 1:
        return "unified"
    if len(partition) == clusters:
        return "per-cluster"
    return f"domains-{len(partition)}"


def characterize_plan(partition: tuple[tuple[int, ...], ...],
                      transients: Sequence[ClusterTransient],
                      budget_ma: float
                      ) -> tuple[DomainPlan, list[float]]:
    """Characterize one partition against one corner's transients.

    Each domain's wake-up is scheduled by the rush scheduler over the
    member transients alone (domains wake independently), under the
    network-wide di/dt budget.  Besides the plan, returns each
    cluster's transition overhead (ns) in ``transients`` order: the
    domain's sleep-entry latency (the group gates as one unit, so
    entry completes with the slowest member) plus the member's own
    scheduled settle inside the domain's wake sequence.
    """
    by_index = {tr.cluster_index: tr for tr in transients}
    domains = []
    settle: dict[int, float] = {}
    entry: dict[int, float] = {}
    for position, members in enumerate(partition):
        group = [by_index[index] for index in members]
        schedule = RushScheduler(group, budget_ma).schedule()
        sleep_latency = max(tr.sleep_latency_ns for tr in group)
        savings = sum(tr.leakage_savings_nw for tr in group)
        energy = sum(tr.energy_per_cycle_pj for tr in group)
        overhead = sleep_latency + schedule.total_latency_ns
        for event in schedule.events:
            settle[event.cluster_index] = event.settle_ns
            entry[event.cluster_index] = sleep_latency
        domains.append(PowerDomain(
            name=f"d{position}",
            clusters=tuple(members),
            wake_latency_ns=schedule.total_latency_ns,
            serial_wake_latency_ns=schedule.serial_latency_ns,
            sleep_latency_ns=sleep_latency,
            peak_rush_ma=schedule.peak_aggregate_ma,
            bins=schedule.bins,
            leakage_savings_nw=savings,
            cycle_energy_pj=energy,
            break_even_ns=break_even_ns(savings, overhead, energy)))
    plan = DomainPlan(
        name=plan_name(partition, len(by_index)),
        domains=tuple(domains))
    overheads = [entry[tr.cluster_index] + settle[tr.cluster_index]
                 for tr in transients]
    return plan, overheads
