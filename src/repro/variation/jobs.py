"""Picklable variation jobs for the parallel experiment runner.

Two job shapes ride :meth:`repro.runner.ExperimentRunner.map`:

* :class:`CornerJob` — one (circuit, technique) flow run followed by
  corner signoff over a corner-name list (via the flow's
  ``corner_signoff`` stage), returning slim per-corner rows;
* :class:`McJob` — one flow run followed by Monte-Carlo samples
  ``start .. start + count - 1``.  Because sample ``k`` is a pure
  function of ``(seed, k)``, a sample grid can be chunked across any
  number of jobs and merged in submission order without changing a
  digit.

Both inherit the runner's per-job-seed determinism contract: the
placement seed rides in the job, so outcomes are pure functions of the
job and independent of scheduling or worker count.
"""

from __future__ import annotations

import dataclasses
import time
import traceback

from repro.benchcircuits.suite import load_circuit
from repro.config import FlowConfig, Technique
from repro.core.flow import FlowResult, SelectiveMtFlow
from repro.liberty.library import Library
from repro.netlist.core import Netlist
from repro.variation.corners import (
    derive_corner_library_cached,
    resolve_corner,
)
from repro.variation.montecarlo import McConfig, McSample, MonteCarloEngine


@dataclasses.dataclass(frozen=True)
class CornerJob:
    """One circuit x technique flow plus multi-corner signoff."""

    circuit: str
    technique: Technique
    config: FlowConfig = dataclasses.field(default_factory=FlowConfig)
    corners: tuple[str, ...] = ()
    seed: int | None = None

    def resolved_config(self) -> FlowConfig:
        changes: dict = {"signoff_corners": tuple(self.corners)}
        if self.seed is not None:
            changes["placement_seed"] = self.seed
        return dataclasses.replace(self.config, **changes)


@dataclasses.dataclass
class CornerRow:
    """One corner's signoff numbers (slim, picklable)."""

    corner: str
    leakage_nw: float
    wns: float
    hold_wns: float


@dataclasses.dataclass
class CornerOutcome:
    """Result of one :class:`CornerJob`."""

    circuit: str
    technique: Technique
    area_um2: float
    nominal_leakage_nw: float
    nominal_wns: float
    rows: list[CornerRow]
    #: Wall-clock, not part of the result's identity (so serial and
    #: parallel runs of the same grid compare equal).
    elapsed_s: float = dataclasses.field(compare=False, default=0.0)
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def row(self, corner: str) -> CornerRow:
        for row in self.rows:
            if row.corner == corner:
                return row
        raise KeyError(f"no signoff row for corner {corner!r}")


def run_corner_job(job: CornerJob, library: Library) -> CornerOutcome:
    """Execute one corner job; never raises (errors land in the outcome)."""
    started = time.perf_counter()
    try:
        netlist = load_circuit(job.circuit)
        flow = SelectiveMtFlow(netlist, library, job.technique,
                               job.resolved_config())
        result = flow.run()
        rows = [CornerRow(corner=name, leakage_nw=res.leakage_nw,
                          wns=res.wns, hold_wns=res.hold_wns)
                for name, res in result.corners.items()]
        return CornerOutcome(
            circuit=job.circuit,
            technique=job.technique,
            area_um2=result.total_area,
            nominal_leakage_nw=result.leakage_nw,
            nominal_wns=result.timing.wns,
            rows=rows,
            elapsed_s=time.perf_counter() - started)
    except Exception:
        return CornerOutcome(
            circuit=job.circuit, technique=job.technique, area_um2=0.0,
            nominal_leakage_nw=0.0, nominal_wns=0.0, rows=[],
            elapsed_s=time.perf_counter() - started,
            error=traceback.format_exc())


@dataclasses.dataclass(frozen=True)
class McJob:
    """One flow run plus a contiguous chunk of Monte-Carlo samples."""

    circuit: str
    technique: Technique
    config: FlowConfig = dataclasses.field(default_factory=FlowConfig)
    mc: McConfig = dataclasses.field(default_factory=McConfig)
    #: Evaluate samples around this corner instead of nominal.
    corner: str | None = None
    start: int = 0
    count: int = 0
    #: In-memory netlist override (pickled to workers) for circuits
    #: that are not loadable by registry name (adopted ad-hoc
    #: designs); ``circuit`` then only labels the outcome.
    netlist: Netlist | None = None

    def resolved_config(self) -> FlowConfig:
        return self.config


@dataclasses.dataclass
class McChunkOutcome:
    """Result of one :class:`McJob`."""

    circuit: str
    technique: Technique
    corner: str | None
    start: int
    nominal_leakage_nw: float
    nominal_wns: float | None
    area_um2: float
    samples: list[McSample]
    elapsed_s: float
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


def build_engine(result: FlowResult, library: Library, mc: McConfig,
                 corner_name: str | None = None,
                 compute_backend: str | None = None) -> MonteCarloEngine:
    """A Monte-Carlo engine over a finished flow result.

    With a corner name, the evaluation library (and the bounce derates
    that feed the session) are corner-derived — samples then describe
    variation *around that corner*.
    """
    eval_library = library
    if corner_name is not None:
        corner = resolve_corner(corner_name, library.tech)
        eval_library = derive_corner_library_cached(library, corner)
    derates = None
    if result.network is not None:
        assumed = eval_library.mt_assumed_bounce_v
        if assumed is None:
            assumed = eval_library.tech.vdd * 0.04
        derates = result.network.derates(result.netlist, eval_library,
                                         assumed)
    clock_arrivals = result.cts.clock_arrivals if result.cts else None
    return MonteCarloEngine(
        result.netlist, eval_library, config=mc,
        constraints=result.constraints, parasitics=result.parasitics,
        derates=derates, clock_arrivals=clock_arrivals,
        compute_backend=compute_backend)


def run_mc_job(job: McJob, library: Library) -> McChunkOutcome:
    """Execute one Monte-Carlo chunk; never raises."""
    started = time.perf_counter()
    try:
        netlist = job.netlist if job.netlist is not None \
            else load_circuit(job.circuit)
        flow = SelectiveMtFlow(netlist, library, job.technique,
                               job.resolved_config())
        result = flow.run()
        engine = build_engine(result, library, job.mc, job.corner,
                              compute_backend=job.config.compute_backend)
        count = job.count or job.mc.samples
        samples = engine.run(start=job.start, count=count)
        return McChunkOutcome(
            circuit=job.circuit,
            technique=job.technique,
            corner=job.corner,
            start=job.start,
            nominal_leakage_nw=engine.nominal_leakage_nw,
            nominal_wns=engine.nominal_wns,
            area_um2=result.total_area,
            samples=samples,
            elapsed_s=time.perf_counter() - started)
    except Exception:
        return McChunkOutcome(
            circuit=job.circuit, technique=job.technique, corner=job.corner,
            start=job.start, nominal_leakage_nw=0.0, nominal_wns=None,
            area_um2=0.0, samples=[],
            elapsed_s=time.perf_counter() - started,
            error=traceback.format_exc())
