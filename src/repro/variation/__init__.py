"""PVT-corner and Monte-Carlo variation engine.

Signoff-grade robustness analysis for the Selective-MT reproduction:

* :mod:`repro.variation.scaling` — physical scaling laws (alpha-power
  delay, exponential subthreshold leakage with DIBL and temperature);
* :mod:`repro.variation.corners` — named PVT corners and non-mutating
  corner-library derivation;
* :mod:`repro.variation.signoff` — multi-corner evaluation of a
  finished design (drives the flow's ``corner_signoff`` stage);
* :mod:`repro.variation.montecarlo` — seeded per-instance Vth
  sampling, log-normal leakage statistics and yield;
* :mod:`repro.variation.jobs` — picklable corner / Monte-Carlo jobs
  for the parallel experiment runner.
"""

from repro.variation.corners import (
    DEFAULT_SIGNOFF_CORNERS,
    PvtCorner,
    corner_scales,
    default_signoff_corners,
    derive_corner_library,
    nominal_corner,
    resolve_corner,
    standard_corners,
)
from repro.variation.montecarlo import (
    McConfig,
    McSample,
    McStatistics,
    MonteCarloEngine,
    summarize,
)
from repro.variation.scaling import (
    OperatingPoint,
    delay_factor,
    effective_vth,
    leakage_factor,
)
from repro.variation.signoff import (
    CornerResult,
    evaluate_corner,
    evaluate_corners,
)

__all__ = [
    "DEFAULT_SIGNOFF_CORNERS",
    "PvtCorner",
    "corner_scales",
    "default_signoff_corners",
    "derive_corner_library",
    "nominal_corner",
    "resolve_corner",
    "standard_corners",
    "McConfig",
    "McSample",
    "McStatistics",
    "MonteCarloEngine",
    "summarize",
    "OperatingPoint",
    "delay_factor",
    "effective_vth",
    "leakage_factor",
    "CornerResult",
    "evaluate_corner",
    "evaluate_corners",
]
