"""Physical scaling laws for PVT variation analysis.

Everything in :mod:`repro.variation` reduces to two questions about a
transistor at an off-nominal operating point: *how much slower/faster
is it* and *how much more/less does it leak*.  This module answers
both as pure ratio functions of a :class:`~repro.device.process.Technology`
and an :class:`OperatingPoint`, so corner libraries and Monte-Carlo
samples can be derived by scaling the nominal characterization instead
of re-running it.

The models (all relative to the technology's nominal point):

* **Effective threshold** — the nominal Vth shifted by the process
  sample (``vth_shift_v``), the threshold temperature coefficient
  (Vth drops as the die heats), and DIBL (Vth drops as Vds ~ Vdd
  rises).

* **Delay** (alpha-power law): ``t ~ Vdd * (T/T0)^m / (Vdd - Vth)^alpha``
  — mobility degrades with temperature, drive grows with overdrive.

* **Subthreshold leakage power**:
  ``P ~ Vdd * (T/T0)^2 * exp(-Vth_eff / (n * vT(T)))`` — the exact
  exponential sensitivity to Vth and temperature that the Selective-MT
  methodology trades on.

At the nominal point every factor is exactly ``1.0`` (same float
operations in numerator and denominator), which is what lets the TT
nominal corner reproduce single-point results bit-identically.
"""

from __future__ import annotations

import dataclasses
import math

from repro import units
from repro.device.process import Technology

#: Overdrive floor (volts): keeps the alpha-power law finite when a
#: corner pushes Vdd - Vth towards zero.
OVERDRIVE_FLOOR = 1e-3


@dataclasses.dataclass(frozen=True)
class OperatingPoint:
    """One (voltage, temperature, process shift) evaluation point.

    ``vth_shift_v`` is the *global* process component: positive for a
    slow (high-Vth) sample, negative for a fast one.  Per-instance
    local mismatch rides on top of this in the Monte-Carlo engine.
    """

    vdd: float
    temperature_k: float
    vth_shift_v: float = 0.0

    @classmethod
    def nominal(cls, tech: Technology) -> "OperatingPoint":
        return cls(vdd=tech.vdd, temperature_k=tech.temperature_k)


def effective_vth(tech: Technology, vth_nominal: float,
                  point: OperatingPoint) -> float:
    """Threshold voltage of a device at the operating point (volts)."""
    return (vth_nominal
            + point.vth_shift_v
            + tech.vth_temp_v_per_k * (point.temperature_k
                                       - tech.temperature_k)
            - tech.dibl_v_per_v * (point.vdd - tech.vdd))


def _overdrive(vdd: float, vth: float) -> float:
    return max(vdd - vth, OVERDRIVE_FLOOR)


def drive_current_factor(tech: Technology, vth_nominal: float,
                         point: OperatingPoint) -> float:
    """Saturation-current ratio Id(point) / Id(nominal)."""
    od_nom = _overdrive(tech.vdd, vth_nominal)
    od = _overdrive(point.vdd, effective_vth(tech, vth_nominal, point))
    mobility = (point.temperature_k / tech.temperature_k) \
        ** tech.mobility_temp_exp
    return (od / od_nom) ** tech.alpha / mobility


def delay_factor(tech: Technology, vth_nominal: float,
                 point: OperatingPoint) -> float:
    """Gate-delay ratio t(point) / t(nominal).

    Delay ~ C * Vdd / Id; the capacitance is voltage/temperature
    independent in this model, so the ratio is the supply ratio over
    the current ratio.
    """
    return (point.vdd / tech.vdd) \
        / drive_current_factor(tech, vth_nominal, point)


def leakage_factor(tech: Technology, vth_nominal: float,
                   point: OperatingPoint) -> float:
    """Standby-leakage-power ratio P(point) / P(nominal).

    Strictly increasing in temperature (prefactor, thermal voltage and
    the negative Vth temperature coefficient all push the same way)
    and strictly decreasing in ``vth_shift_v``.
    """
    swing_nom = tech.subthreshold_n * units.thermal_voltage(
        tech.temperature_k)
    swing = tech.subthreshold_n * units.thermal_voltage(point.temperature_k)
    vth = effective_vth(tech, vth_nominal, point)
    current_ratio = (
        (point.temperature_k / tech.temperature_k) ** tech.leakage_temp_exp
        * math.exp(vth_nominal / swing_nom - vth / swing))
    return current_ratio * (point.vdd / tech.vdd)


def local_leakage_factor(tech: Technology, dvth_v: float) -> float:
    """Leakage multiplier of a single device whose Vth moved by ``dvth_v``.

    Used per instance by the Monte-Carlo engine: a Gaussian Vth
    mismatch maps through this exponential to the classic log-normal
    leakage distribution.
    """
    return math.exp(-dvth_v / tech.subthreshold_swing())


def local_delay_factor(tech: Technology, vth_nominal: float,
                       dvth_v: float) -> float:
    """Delay multiplier of a single device whose Vth moved by ``dvth_v``."""
    od_nom = _overdrive(tech.vdd, vth_nominal)
    od = _overdrive(tech.vdd, vth_nominal + dvth_v)
    return (od_nom / od) ** tech.alpha
