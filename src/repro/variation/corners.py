"""Named PVT corners and corner-library derivation.

A :class:`PvtCorner` is (process letter, supply, temperature); the
standard signoff grid is SS/TT/FF x Vdd +/-10 % x {-40, 25, 125} C —
27 corners — plus ``tt_nom``, the technology's own nominal point.

:func:`derive_corner_library` maps a nominal
:class:`~repro.liberty.library.Library` to a *new* library whose
timing tables and leakage numbers are scaled per Vth class by the
:mod:`repro.variation.scaling` laws.  The contract:

* the nominal library is **never mutated** — every cell, pin, arc and
  LUT in the derived library is a fresh object;
* the ``tt_nom`` corner derives a library that is numerically
  **bit-identical** to the nominal one (all scale factors are exactly
  1.0), so nominal signoff reproduces single-point results digit for
  digit;
* MT / switch / holder cells scale their *standby leakage* with the
  high-Vth law (their standby path is the high-Vth sleep switch) while
  their *delay* follows their own Vth class.
"""

from __future__ import annotations

import dataclasses
import threading
from collections import OrderedDict

from repro.device.process import DEFAULT_TECHNOLOGY, Technology
from repro.errors import FlowError
from repro.liberty.library import (
    CellDef,
    CellKind,
    LeakageState,
    Library,
    PinDef,
    TimingArc,
    VthClass,
)
from repro.variation.scaling import (
    OperatingPoint,
    delay_factor,
    drive_current_factor,
    effective_vth,
    leakage_factor,
)

#: Global Vth shift (volts) of the SS / TT / FF process letters.
PROCESS_VTH_SHIFT_V = {"ss": +0.045, "tt": 0.0, "ff": -0.045}

#: The standard signoff grid axes.
SUPPLY_SCALES = (0.9, 1.0, 1.1)
TEMPERATURES_C = (-40.0, 25.0, 125.0)

KELVIN_OFFSET = 273.15


@dataclasses.dataclass(frozen=True)
class PvtCorner:
    """One named process/voltage/temperature corner."""

    name: str
    process: str            # "ss" | "tt" | "ff"
    vdd: float              # volts
    temperature_k: float    # kelvin

    def __post_init__(self):
        if self.process not in PROCESS_VTH_SHIFT_V:
            raise FlowError(
                f"unknown process letter {self.process!r}; "
                f"known: {sorted(PROCESS_VTH_SHIFT_V)}")

    @property
    def vth_shift_v(self) -> float:
        return PROCESS_VTH_SHIFT_V[self.process]

    @property
    def temperature_c(self) -> float:
        return self.temperature_k - KELVIN_OFFSET

    def operating_point(self) -> OperatingPoint:
        return OperatingPoint(vdd=self.vdd,
                              temperature_k=self.temperature_k,
                              vth_shift_v=self.vth_shift_v)

    def describe(self) -> str:
        return (f"{self.process.upper()} {self.vdd:.2f}V "
                f"{self.temperature_c:+.0f}C")


def _temp_label(celsius: float) -> str:
    """CLI-safe temperature tag: -40 -> ``m40c``, 125 -> ``125c``."""
    rounded = int(round(celsius))
    return f"m{-rounded}c" if rounded < 0 else f"{rounded}c"


def corner_name(process: str, vdd: float, celsius: float) -> str:
    return f"{process}_{vdd:.2f}v_{_temp_label(celsius)}"


def nominal_corner(tech: Technology) -> PvtCorner:
    """The TT corner at the technology's exact nominal point.

    Every scale factor evaluates to exactly 1.0 here, which is what
    guarantees nominal signoff is bit-identical to the single-point
    flow.
    """
    return PvtCorner(name="tt_nom", process="tt", vdd=tech.vdd,
                     temperature_k=tech.temperature_k)


def standard_corners(tech: Technology) -> dict[str, PvtCorner]:
    """``tt_nom`` plus the full 27-corner signoff grid, name-keyed."""
    corners: dict[str, PvtCorner] = {}
    nominal = nominal_corner(tech)
    corners[nominal.name] = nominal
    for process in ("ss", "tt", "ff"):
        for scale in SUPPLY_SCALES:
            vdd = tech.vdd * scale
            for celsius in TEMPERATURES_C:
                name = corner_name(process, vdd, celsius)
                corners[name] = PvtCorner(
                    name=name, process=process, vdd=vdd,
                    temperature_k=celsius + KELVIN_OFFSET)
    return corners


def default_signoff_corners(tech: Technology) -> tuple[str, ...]:
    """Compact default signoff set for a technology: nominal, the
    worst-leakage corner (fast, hot, high supply) and the worst-timing
    corner (slow, hot, low supply)."""
    hot = TEMPERATURES_C[-1]
    return ("tt_nom",
            corner_name("ff", tech.vdd * SUPPLY_SCALES[-1], hot),
            corner_name("ss", tech.vdd * SUPPLY_SCALES[0], hot))


#: The default set for the default technology (vdd = 1.2 V).
DEFAULT_SIGNOFF_CORNERS = default_signoff_corners(DEFAULT_TECHNOLOGY)


def resolve_corner(name: str, tech: Technology) -> PvtCorner:
    """Look up a corner by name in the standard grid."""
    corners = standard_corners(tech)
    try:
        return corners[name]
    except KeyError:
        raise FlowError(
            f"unknown corner {name!r}; known: {sorted(corners)}") from None


@dataclasses.dataclass(frozen=True)
class CornerScales:
    """The four per-Vth-class multipliers one corner reduces to."""

    corner: PvtCorner
    delay_low: float
    delay_high: float
    leakage_low: float
    leakage_high: float
    current_low: float
    current_high: float
    vth_low_eff: float
    vth_high_eff: float


def corner_scales(tech: Technology, corner: PvtCorner) -> CornerScales:
    """Evaluate the scaling laws for both Vth classes at one corner."""
    point = corner.operating_point()
    return CornerScales(
        corner=corner,
        delay_low=delay_factor(tech, tech.vth_low, point),
        delay_high=delay_factor(tech, tech.vth_high, point),
        leakage_low=leakage_factor(tech, tech.vth_low, point),
        leakage_high=leakage_factor(tech, tech.vth_high, point),
        current_low=drive_current_factor(tech, tech.vth_low, point),
        current_high=drive_current_factor(tech, tech.vth_high, point),
        vth_low_eff=effective_vth(tech, tech.vth_low, point),
        vth_high_eff=effective_vth(tech, tech.vth_high, point))


def _scaled_lut(lut, factor: float):
    if lut is None:
        return None
    return lut.scaled(factor)


def _scaled_arc(arc: TimingArc, factor: float) -> TimingArc:
    return TimingArc(
        related_pin=arc.related_pin,
        timing_sense=arc.timing_sense,
        timing_type=arc.timing_type,
        cell_rise=_scaled_lut(arc.cell_rise, factor),
        cell_fall=_scaled_lut(arc.cell_fall, factor),
        rise_transition=_scaled_lut(arc.rise_transition, factor),
        fall_transition=_scaled_lut(arc.fall_transition, factor),
        rise_constraint=_scaled_lut(arc.rise_constraint, factor),
        fall_constraint=_scaled_lut(arc.fall_constraint, factor))


def _scaled_pin(pin: PinDef, factor: float) -> PinDef:
    return PinDef(
        name=pin.name,
        direction=pin.direction,
        capacitance=pin.capacitance,
        function=pin.function,
        max_capacitance=pin.max_capacitance,
        is_clock=pin.is_clock,
        timing_arcs=[_scaled_arc(arc, factor) for arc in pin.timing_arcs])


def leakage_class_is_high(cell: CellDef) -> bool:
    """True when the cell's *standby* leakage path is high-Vth.

    HVT logic leaks through its own high-Vth stacks; MT-cells (both
    styles), discrete switches and holders all leak through a high-Vth
    sleep-switch / keeper device in standby, so their leakage tracks
    the high-Vth law even though MT logic delay is low-Vth class.
    """
    return (cell.vth_class == VthClass.HIGH
            or cell.is_mt
            or cell.kind in (CellKind.SWITCH, CellKind.HOLDER))


def _scaled_cell(cell: CellDef, scales: CornerScales) -> CellDef:
    delay_f = (scales.delay_high if cell.vth_class == VthClass.HIGH
               else scales.delay_low)
    leak_f = (scales.leakage_high if leakage_class_is_high(cell)
              else scales.leakage_low)
    current_f = (scales.current_high if cell.vth_class == VthClass.HIGH
                 else scales.current_low)
    scaled = CellDef(
        name=cell.name,
        area=cell.area,
        pins={name: _scaled_pin(pin, delay_f)
              for name, pin in cell.pins.items()},
        leakage_states=[LeakageState(value_nw=state.value_nw * leak_f,
                                     when=state.when)
                        for state in cell.leakage_states],
        default_leakage_nw=cell.default_leakage_nw * leak_f,
        base_name=cell.base_name,
        variant=cell.variant,
        vth_class=cell.vth_class,
        kind=cell.kind,
        has_vgnd_port=cell.has_vgnd_port,
        switch_width_um=cell.switch_width_um,
        switching_current_ma=cell.switching_current_ma * current_f,
        footprint=cell.footprint,
        ff_next_state=cell.ff_next_state,
        ff_clocked_on=cell.ff_clocked_on)
    return scaled


def derive_corner_library(library: Library, corner: PvtCorner) -> Library:
    """A new library re-characterized at ``corner``.

    The nominal library is left untouched; the derived one carries a
    corner-adjusted :class:`Technology` (supply, temperature, shifted
    thresholds) so downstream consumers (bounce limits, device models)
    see consistent corner physics.
    """
    tech = library.tech
    if tech is None:
        raise FlowError("cannot derive a corner library without a "
                        "technology")
    scales = corner_scales(tech, corner)
    corner_tech = tech.with_updates(
        name=f"{tech.name}@{corner.name}",
        vdd=corner.vdd,
        temperature_k=corner.temperature_k,
        vth_low=tech.vth_low + corner.vth_shift_v,
        vth_high=tech.vth_high + corner.vth_shift_v)
    derived = Library(f"{library.name}@{corner.name}", tech=corner_tech)
    if library.mt_assumed_bounce_v is not None:
        derived.mt_assumed_bounce_v = \
            library.mt_assumed_bounce_v * (corner.vdd / tech.vdd)
    for cell in library:
        derived.add_cell(_scaled_cell(cell, scales))
    return derived


# --- memoized derivation ---------------------------------------------------

#: Bounded process-wide memo of derived corner libraries, keyed by the
#: nominal library's content digest plus the full corner identity.
_CORNER_MEMO_MAX = 64
_corner_memo: "OrderedDict[tuple, Library]" = OrderedDict()
_corner_memo_lock = threading.Lock()
_corner_memo_counters = {"hits": 0, "misses": 0, "evictions": 0}


def derive_corner_library_cached(library: Library,
                                 corner: PvtCorner) -> Library:
    """Memoized :func:`derive_corner_library`.

    Derivation is a pure function of (library content, corner), so a
    process-wide LRU keyed by ``(library.content_digest(), corner)``
    makes every entry point — workspace signoff, the flow's
    ``corner_signoff`` stage, the standby engine, runner jobs — derive
    each corner of a given library at most once.  The returned library
    is shared: callers must treat it as immutable (they all do — a
    derived library is only ever read).
    """
    key = (library.content_digest(), corner.name, corner.process,
           corner.vdd, corner.temperature_k)
    with _corner_memo_lock:
        found = _corner_memo.get(key)
        if found is not None:
            _corner_memo.move_to_end(key)
            _corner_memo_counters["hits"] += 1
            return found
        _corner_memo_counters["misses"] += 1
    derived = derive_corner_library(library, corner)
    with _corner_memo_lock:
        _corner_memo[key] = derived
        while len(_corner_memo) > _CORNER_MEMO_MAX:
            _corner_memo.popitem(last=False)
            _corner_memo_counters["evictions"] += 1
    return derived


def corner_memo_stats() -> dict[str, int]:
    """Hit/miss/eviction counters of the corner-derivation memo."""
    with _corner_memo_lock:
        return dict(_corner_memo_counters)


def reset_corner_memo():
    """Clear the memo and its counters (test isolation)."""
    with _corner_memo_lock:
        _corner_memo.clear()
        for name in _corner_memo_counters:
            _corner_memo_counters[name] = 0
