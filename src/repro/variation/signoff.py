"""Multi-corner signoff evaluation of a finished design.

The design is optimized once at the nominal point (the paper's flow);
signoff then re-evaluates the *final* netlist at each requested PVT
corner with a corner-derived library — the industry pattern Hillman
(arXiv:0710.4842) describes for power-management IP.  Per corner this
is one leakage pass plus one STA, so a full 27-corner sweep costs a
small multiple of the final-STA stage, not of the whole flow.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Mapping

from repro.liberty.library import Library
from repro.netlist.core import Netlist
from repro.power.leakage import LeakageAnalyzer, LeakageBreakdown
from repro.timing.constraints import Constraints
from repro.timing.sta import TimingAnalyzer
from repro.variation.corners import (
    PvtCorner,
    corner_scales,
    derive_corner_library,
    resolve_corner,
)


@dataclasses.dataclass
class CornerResult:
    """Leakage / timing of the final design at one PVT corner."""

    corner: PvtCorner
    leakage_nw: float
    wns: float
    hold_wns: float
    delay_scale_low: float
    delay_scale_high: float
    leakage_scale_low: float
    leakage_scale_high: float
    leakage: LeakageBreakdown | None = None

    def as_dict(self) -> dict[str, Any]:
        from repro.api import schemas  # lazy: loads the registry

        return schemas.to_dict(self)


def evaluate_corner(netlist: Netlist, library: Library, corner: PvtCorner,
                    constraints: Constraints,
                    parasitics: Mapping[str, object] | None = None,
                    network=None,
                    clock_arrivals: Mapping[str, float] | None = None,
                    keep_breakdown: bool = False,
                    compute_backend: str | None = None,
                    corner_library: Library | None = None) -> CornerResult:
    """One corner: derive the library, run leakage + STA on the design.

    Mirrors the flow's final STA setup (VGND-bounce derates, CTS clock
    arrivals), so the ``tt_nom`` corner reproduces the single-point
    result bit-identically.  ``compute_backend`` selects the numeric
    engine for both the STA and the leakage summation.  A pre-derived
    ``corner_library`` (e.g. from the
    :class:`~repro.api.Workspace` corner-library cache) skips the
    per-call derivation; results are identical either way because
    :func:`derive_corner_library` is a pure function.
    """
    if corner_library is None:
        corner_library = derive_corner_library(library, corner)
    derates = None
    if network is not None:
        assumed = corner_library.mt_assumed_bounce_v
        if assumed is None:
            assumed = corner_library.tech.vdd * 0.04
        derates = network.derates(netlist, corner_library, assumed)
    report = TimingAnalyzer(netlist, corner_library, constraints,
                            parasitics=parasitics, derates=derates,
                            clock_arrivals=clock_arrivals,
                            compute_backend=compute_backend).run()
    breakdown = LeakageAnalyzer(
        netlist, corner_library,
        compute_backend=compute_backend).standby_leakage()
    scales = corner_scales(library.tech, corner)
    return CornerResult(
        corner=corner,
        leakage_nw=breakdown.total_nw,
        wns=report.wns,
        hold_wns=report.hold_wns,
        delay_scale_low=scales.delay_low,
        delay_scale_high=scales.delay_high,
        leakage_scale_low=scales.leakage_low,
        leakage_scale_high=scales.leakage_high,
        leakage=breakdown if keep_breakdown else None)


def evaluate_corners(netlist: Netlist, library: Library,
                     corner_names, constraints: Constraints,
                     parasitics: Mapping[str, object] | None = None,
                     network=None,
                     clock_arrivals: Mapping[str, float] | None = None,
                     compute_backend: str | None = None,
                     corner_libraries: Mapping[str, Library] | None = None
                     ) -> dict[str, CornerResult]:
    """Evaluate a list of corner names, preserving input order.

    ``corner_libraries`` optionally supplies pre-derived libraries by
    corner name (cache pass-through); missing names derive on the fly.
    """
    results: dict[str, CornerResult] = {}
    for name in corner_names:
        corner = resolve_corner(name, library.tech)
        derived = corner_libraries.get(name) if corner_libraries else None
        results[name] = evaluate_corner(
            netlist, library, corner, constraints, parasitics=parasitics,
            network=network, clock_arrivals=clock_arrivals,
            compute_backend=compute_backend, corner_library=derived)
    return results
