"""Multi-corner signoff evaluation of a finished design.

The design is optimized once at the nominal point (the paper's flow);
signoff then re-evaluates the *final* netlist at each requested PVT
corner with a corner-derived library — the industry pattern Hillman
(arXiv:0710.4842) describes for power-management IP.  Per corner this
is one leakage pass plus one STA, so a full 27-corner sweep costs a
small multiple of the final-STA stage, not of the whole flow.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Mapping

from repro.liberty.library import Library
from repro.netlist.core import Netlist
from repro.obs.spans import span
from repro.power.leakage import LeakageAnalyzer, LeakageBreakdown
from repro.timing.constraints import Constraints
from repro.timing.sta import TimingAnalyzer
from repro.variation.corners import (
    PvtCorner,
    corner_scales,
    derive_corner_library,
    derive_corner_library_cached,
    leakage_class_is_high,
    resolve_corner,
)


@dataclasses.dataclass
class CornerResult:
    """Leakage / timing of the final design at one PVT corner."""

    corner: PvtCorner
    leakage_nw: float
    wns: float
    hold_wns: float
    delay_scale_low: float
    delay_scale_high: float
    leakage_scale_low: float
    leakage_scale_high: float
    leakage: LeakageBreakdown | None = None

    def as_dict(self) -> dict[str, Any]:
        from repro.api import schemas  # lazy: loads the registry

        return schemas.to_dict(self)


def evaluate_corner(netlist: Netlist, library: Library, corner: PvtCorner,
                    constraints: Constraints,
                    parasitics: Mapping[str, object] | None = None,
                    network=None,
                    clock_arrivals: Mapping[str, float] | None = None,
                    keep_breakdown: bool = False,
                    compute_backend: str | None = None,
                    corner_library: Library | None = None) -> CornerResult:
    """One corner: derive the library, run leakage + STA on the design.

    Mirrors the flow's final STA setup (VGND-bounce derates, CTS clock
    arrivals), so the ``tt_nom`` corner reproduces the single-point
    result bit-identically.  ``compute_backend`` selects the numeric
    engine for both the STA and the leakage summation.  A pre-derived
    ``corner_library`` (e.g. from the
    :class:`~repro.api.Workspace` corner-library cache) skips the
    per-call derivation; results are identical either way because
    :func:`derive_corner_library` is a pure function.
    """
    with span("signoff.corner", corner=corner.name,
              instances=len(netlist.instances)):
        if corner_library is None:
            corner_library = derive_corner_library(library, corner)
        derates = None
        if network is not None:
            assumed = corner_library.mt_assumed_bounce_v
            if assumed is None:
                assumed = corner_library.tech.vdd * 0.04
            derates = network.derates(netlist, corner_library, assumed)
        report = TimingAnalyzer(netlist, corner_library, constraints,
                                parasitics=parasitics, derates=derates,
                                clock_arrivals=clock_arrivals,
                                compute_backend=compute_backend).run()
        breakdown = LeakageAnalyzer(
            netlist, corner_library,
            compute_backend=compute_backend).standby_leakage()
        scales = corner_scales(library.tech, corner)
    return CornerResult(
        corner=corner,
        leakage_nw=breakdown.total_nw,
        wns=report.wns,
        hold_wns=report.hold_wns,
        delay_scale_low=scales.delay_low,
        delay_scale_high=scales.delay_high,
        leakage_scale_low=scales.leakage_low,
        leakage_scale_high=scales.leakage_high,
        leakage=breakdown if keep_breakdown else None)


def evaluate_corners(netlist: Netlist, library: Library,
                     corner_names, constraints: Constraints,
                     parasitics: Mapping[str, object] | None = None,
                     network=None,
                     clock_arrivals: Mapping[str, float] | None = None,
                     compute_backend: str | None = None,
                     corner_libraries: Mapping[str, Library] | None = None
                     ) -> dict[str, CornerResult]:
    """Evaluate a list of corner names, preserving input order.

    ``corner_libraries`` optionally supplies pre-derived libraries by
    corner name (cache pass-through); missing names derive on the fly.
    """
    results: dict[str, CornerResult] = {}
    for name in corner_names:
        corner = resolve_corner(name, library.tech)
        derived = corner_libraries.get(name) if corner_libraries else None
        results[name] = evaluate_corner(
            netlist, library, corner, constraints, parasitics=parasitics,
            network=network, clock_arrivals=clock_arrivals,
            compute_backend=compute_backend, corner_library=derived)
    return results


def evaluate_corners_batched(netlist: Netlist, library: Library,
                             corner_names, constraints: Constraints,
                             parasitics: Mapping[str, object] | None = None,
                             network=None,
                             clock_arrivals: Mapping[str, float] | None = None,
                             compute_backend: str | None = None,
                             corner_libraries: Mapping[str, Library] | None = None
                             ) -> dict[str, CornerResult]:
    """Span-instrumented front door for :func:`_corners_batched_impl`.

    The sequential fallback's per-corner ``signoff.corner`` spans nest
    under this one, so a trace shows at a glance whether the grid ran
    as one array pass or as a scalar loop.
    """
    from repro.compute import resolve_backend

    names = list(corner_names)
    with span("signoff.corners_batched", corners=len(names),
              backend=resolve_backend(compute_backend)):
        return _corners_batched_impl(
            netlist, library, names, constraints, parasitics=parasitics,
            network=network, clock_arrivals=clock_arrivals,
            compute_backend=compute_backend,
            corner_libraries=corner_libraries)


def _corners_batched_impl(netlist: Netlist, library: Library,
                          corner_names, constraints: Constraints,
                          parasitics: Mapping[str, object] | None = None,
                          network=None,
                          clock_arrivals: Mapping[str, float] | None = None,
                          compute_backend: str | None = None,
                          corner_libraries: Mapping[str, Library] | None = None
                          ) -> dict[str, CornerResult]:
    """The whole corner grid in one array pass (numpy backend).

    Derived corner libraries differ from the nominal one only by
    per-Vth-class scale factors, so instead of lowering K libraries
    this lowers the *nominal* netlist once and evaluates a
    ``(corners x tables)`` LUT stack — per corner bit-identical to
    :func:`evaluate_corners`:

    * LUT values are scaled elementwise before interpolation, exactly
      like :meth:`Lut.scaled`, and the index grids are scale-invariant;
    * per-corner derates and endpoint setup/hold constraints are
      computed with the same scalar code on the derived libraries;
    * leakage totals sum the identical corner-scaled value array in
      the same index-sorted order.

    Off the numpy backend (or for a 0/1-corner grid) this simply
    delegates to the sequential loop.
    """
    from repro.compute import resolve_backend

    names = list(corner_names)
    backend = resolve_backend(compute_backend)
    if backend != "numpy" or len(names) <= 1:
        return evaluate_corners(
            netlist, library, names, constraints, parasitics=parasitics,
            network=network, clock_arrivals=clock_arrivals,
            compute_backend=compute_backend,
            corner_libraries=corner_libraries)
    try:
        import numpy as np

        from repro.compute.kernels import batched_wns
        from repro.compute.lowercache import cached_view
    except ImportError:  # pragma: no cover - backend resolution guards
        return evaluate_corners(
            netlist, library, names, constraints, parasitics=parasitics,
            network=network, clock_arrivals=clock_arrivals,
            compute_backend=compute_backend,
            corner_libraries=corner_libraries)

    from repro.timing.delay import NetModel
    from repro.timing.sta import cell_constraint_value

    corners = [resolve_corner(name, library.tech) for name in names]
    libs: list[Library] = []
    for name, corner in zip(names, corners):
        derived = corner_libraries.get(name) if corner_libraries else None
        if derived is None:
            derived = derive_corner_library_cached(library, corner)
        libs.append(derived)
    scales_list = [corner_scales(library.tech, corner)
                   for corner in corners]

    net_model = NetModel(netlist, library, constraints,
                         parasitics=parasitics)
    view = cached_view(netlist, library, constraints, net_model,
                       clock_arrivals=clock_arrivals)
    view.ensure()

    if network is not None:
        rows = []
        for lib_k in libs:
            assumed = lib_k.mt_assumed_bounce_v
            if assumed is None:
                assumed = lib_k.tech.vdd * 0.04
            rows.append(view.derate_vector(
                network.derates(netlist, lib_k, assumed)))
        derates = np.vstack(rows)
    else:
        derates = np.ones((len(names), len(view.inst_names)))

    lut_arrays = view.corner_stack(
        [[s.delay_low, s.delay_high] for s in scales_list])

    input_slew = constraints.input_slew
    ff_cells = [netlist.instances[name].cell_name
                for name in view.ff_ep_names]
    setup = np.empty((len(names), len(ff_cells)))
    hold = np.empty((len(names), len(ff_cells)))
    for k, lib_k in enumerate(libs):
        for j, cell_name in enumerate(ff_cells):
            cell = lib_k.cell(cell_name)
            setup[k, j] = cell_constraint_value(cell, "setup", input_slew)
            hold[k, j] = cell_constraint_value(cell, "hold", input_slew)

    wns, hold_wns = batched_wns(view, derates, lut_arrays=lut_arrays,
                                setup=setup, hold=hold)

    # Leakage: nominal per-instance defaults (index-sorted) times each
    # corner's per-class leakage factor, summed in the identical order
    # the sequential numpy path sums its corner-scaled values.
    inst_order = sorted(netlist.instances)
    nominal_nw = np.array(
        [library.cell(netlist.instances[name].cell_name).default_leakage_nw
         for name in inst_order], dtype=float)
    is_high = np.array(
        [leakage_class_is_high(
            library.cell(netlist.instances[name].cell_name))
         for name in inst_order], dtype=bool)

    results: dict[str, CornerResult] = {}
    for k, name in enumerate(names):
        scales = scales_list[k]
        leak_f = np.where(is_high, scales.leakage_high,
                          scales.leakage_low)
        leakage_nw = float((nominal_nw * leak_f).sum())
        results[name] = CornerResult(
            corner=corners[k],
            leakage_nw=leakage_nw,
            wns=float(wns[k]),
            hold_wns=float(hold_wns[k]),
            delay_scale_low=scales.delay_low,
            delay_scale_high=scales.delay_high,
            leakage_scale_low=scales.leakage_low,
            leakage_scale_high=scales.leakage_high)
    return results
