"""Seeded Monte-Carlo Vth-variation analysis.

Per-sample model: one **global** Vth shift (die-to-die, shared by every
instance) plus an independent **local** mismatch per instance, both
Gaussian.  Each instance's standby leakage scales exponentially with
its Vth sample (so totals follow the classic log-normal shape) and its
delay scales by the alpha-power law, applied as per-instance STA
derates through one incremental
:class:`~repro.timing.session.TimingSession`.

Determinism contract (same as the experiment runner's):

* sample ``k`` of seed ``s`` is a pure function of ``(s, k)`` — the
  RNG is seeded from the string ``"{s}:{k}"`` (string seeding is
  deterministic, unaffected by hash randomization) and instances are
  visited in sorted-name order;
* results are therefore independent of how samples are chunked across
  worker processes (``jobs=N`` invariance), and the timing numbers are
  chunk-independent too because the shared session is bit-exact with
  respect to a fresh analyzer after any tracked edit sequence.
"""

from __future__ import annotations

import dataclasses
import math
import random
from typing import Mapping, Sequence

from repro.errors import ConfigError, FlowError
from repro.liberty.library import Library, VthClass
from repro.netlist.core import Netlist
from repro.obs.spans import span
from repro.power.leakage import LeakageAnalyzer
from repro.timing.constraints import Constraints
from repro.timing.session import TimingSession
from repro.variation.scaling import local_delay_factor, local_leakage_factor


@dataclasses.dataclass(frozen=True)
class McConfig:
    """Monte-Carlo sampling parameters."""

    samples: int = 64
    seed: int = 1
    #: Die-to-die (global) Vth sigma in volts.
    sigma_global_v: float = 0.03
    #: Within-die (local, per-instance) Vth sigma in volts.
    sigma_local_v: float = 0.015
    #: Evaluate per-sample WNS through an incremental timing session.
    timing: bool = True
    #: Leakage budget for yield; ``None`` derives one per study
    #: (``budget_factor`` x the design's nominal standby leakage).
    leakage_budget_nw: float | None = None
    budget_factor: float = 2.0

    def __post_init__(self):
        if self.samples < 1:
            raise ConfigError(
                "samples",
                f"Monte-Carlo needs at least one sample, got {self.samples}")
        if self.sigma_global_v < 0:
            raise ConfigError(
                "sigma_global_v",
                f"must be non-negative, got {self.sigma_global_v!r}")
        if self.sigma_local_v < 0:
            raise ConfigError(
                "sigma_local_v",
                f"must be non-negative, got {self.sigma_local_v!r}")


@dataclasses.dataclass(frozen=True)
class McSample:
    """One sampled die."""

    index: int
    global_dvth_v: float
    leakage_nw: float
    wns: float | None = None


@dataclasses.dataclass
class McStatistics:
    """Distribution summary of a sample set."""

    samples: int
    mean_nw: float
    std_nw: float
    min_nw: float
    max_nw: float
    p50_nw: float
    p95_nw: float
    p99_nw: float
    leakage_budget_nw: float | None = None
    leakage_yield: float | None = None
    mean_wns: float | None = None
    std_wns: float | None = None
    worst_wns: float | None = None
    timing_yield: float | None = None

    def as_dict(self) -> dict[str, float | int | None]:
        from repro.api import schemas  # lazy: loads the registry

        return schemas.to_dict(self)


def percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Linear-interpolated percentile of an ascending sequence."""
    if not sorted_values:
        raise FlowError("percentile of an empty sample set")
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = fraction * (len(sorted_values) - 1)
    low = int(math.floor(position))
    high = min(low + 1, len(sorted_values) - 1)
    weight = position - low
    return sorted_values[low] * (1.0 - weight) + sorted_values[high] * weight


def summarize(samples: Sequence[McSample],
              leakage_budget_nw: float | None = None) -> McStatistics:
    """Mean / sigma / percentiles / yields over a sample set.

    Only depends on the sample values, not their order or chunking.
    """
    if not samples:
        raise FlowError("cannot summarize zero Monte-Carlo samples")
    leak = sorted(s.leakage_nw for s in samples)
    n = len(leak)
    mean = sum(leak) / n
    variance = sum((v - mean) ** 2 for v in leak) / n
    stats = McStatistics(
        samples=n,
        mean_nw=mean,
        std_nw=math.sqrt(variance),
        min_nw=leak[0],
        max_nw=leak[-1],
        p50_nw=percentile(leak, 0.50),
        p95_nw=percentile(leak, 0.95),
        p99_nw=percentile(leak, 0.99))
    if leakage_budget_nw is not None:
        stats.leakage_budget_nw = leakage_budget_nw
        stats.leakage_yield = sum(
            1 for v in leak if v <= leakage_budget_nw) / n
    wns_values = [s.wns for s in samples if s.wns is not None]
    if wns_values:
        mean_wns = sum(wns_values) / len(wns_values)
        var_wns = sum((v - mean_wns) ** 2 for v in wns_values) \
            / len(wns_values)
        stats.mean_wns = mean_wns
        stats.std_wns = math.sqrt(var_wns)
        stats.worst_wns = min(wns_values)
        stats.timing_yield = sum(1 for v in wns_values if v >= 0.0) \
            / len(wns_values)
    return stats


class MonteCarloEngine:
    """Samples Vth variation over one finished design.

    The netlist is the *final* (post-flow) design; the library may be
    the nominal one or a corner-derived one, in which case the samples
    describe variation **around that corner**.
    """

    def __init__(self, netlist: Netlist, library: Library,
                 config: McConfig | None = None,
                 constraints: Constraints | None = None,
                 parasitics: Mapping[str, object] | None = None,
                 derates: Mapping[str, float] | None = None,
                 clock_arrivals: Mapping[str, float] | None = None,
                 compute_backend: str | None = None):
        from repro.compute import resolve_backend

        self.netlist = netlist
        self.library = library
        self.config = config or McConfig()
        self.compute_backend = resolve_backend(compute_backend)
        self.tech = library.tech
        if self.tech is None:
            raise FlowError("Monte-Carlo needs a library with a technology")
        self.constraints = constraints
        self.base_derates = dict(derates or {})
        # Per-instance standby leakage and timing sensitivity basis, in
        # sorted-name order so sampling is iteration-order independent.
        breakdown = LeakageAnalyzer(
            netlist, library,
            compute_backend=self.compute_backend).standby_leakage()
        self.nominal_leakage_nw = breakdown.total_nw
        self._basis = []
        for name in sorted(breakdown.per_instance):
            cell = library.cell(netlist.instances[name].cell_name)
            vth = (self.tech.vth_high if cell.vth_class == VthClass.HIGH
                   else self.tech.vth_low)
            self._basis.append((name, breakdown.per_instance[name], vth))
        self._session: TimingSession | None = None
        self._view = None
        self._arrays = None
        if self.config.timing and constraints is None:
            raise FlowError("timing-enabled Monte-Carlo needs constraints")
        if self.compute_backend == "numpy":
            self._init_numpy(parasitics, clock_arrivals)
        if self.config.timing and self.compute_backend == "python":
            self._session = TimingSession(
                netlist, library, constraints, parasitics=parasitics,
                derates=self.base_derates, clock_arrivals=clock_arrivals,
                compute_backend=self.compute_backend)
        self.nominal_wns: float | None = None
        if self._session is not None:
            self.nominal_wns = self._session.report().wns
        elif self._view is not None:
            from repro.compute.kernels import setup_wns

            base = self._arrays["base_derate"]
            self.nominal_wns = float(setup_wns(self._view, base[None, :])[0])

    def _init_numpy(self, parasitics, clock_arrivals):
        """Lower the sampling basis into arrays; build the STA view.

        Falls back to the scalar engine if numpy is unavailable (the
        resolve step normally catches this; an import race downgrades
        here too).
        """
        try:
            import numpy as np

            from repro.compute.view import NetlistArrayView
        except ImportError:
            self.compute_backend = "python"
            return
        self._arrays = {
            "base_nw": np.array([nw for _n, nw, _v in self._basis]),
            "vth": np.array([vth for _n, _nw, vth in self._basis]),
            "base_derate": np.array(
                [self.base_derates.get(name, 1.0)
                 for name, _nw, _v in self._basis]),
        }
        if self.config.timing:
            from repro.timing.delay import NetModel

            net_model = NetModel(self.netlist, self.library,
                                 self.constraints, parasitics)
            self._view = NetlistArrayView(
                self.netlist, self.library, self.constraints, net_model,
                clock_arrivals=clock_arrivals)

    @property
    def session_stats(self):
        return self._session.stats if self._session is not None else None

    def _rng(self, index: int) -> random.Random:
        return random.Random(f"{self.config.seed}:{index}")

    def sample(self, index: int) -> McSample:
        """Evaluate sampled die ``index`` (pure in (seed, index))."""
        if self.compute_backend == "numpy":
            return self._run_batch(index, 1)[0]
        rng = self._rng(index)
        global_dvth = rng.gauss(0.0, self.config.sigma_global_v)
        total_nw = 0.0
        derates: dict[str, float] = {}
        for name, base_nw, vth in self._basis:
            dvth = global_dvth + rng.gauss(0.0, self.config.sigma_local_v)
            total_nw += base_nw * local_leakage_factor(self.tech, dvth)
            if self._session is not None:
                factor = local_delay_factor(self.tech, vth, dvth)
                base = self.base_derates.get(name, 1.0)
                derates[name] = base * factor
        wns = None
        if self._session is not None:
            self._session.set_derates(derates)
            wns = self._session.report().wns
        return McSample(index=index, global_dvth_v=global_dvth,
                        leakage_nw=total_nw, wns=wns)

    def run(self, start: int = 0,
            count: int | None = None) -> list[McSample]:
        """Evaluate samples ``start .. start + count - 1`` in order."""
        if count is None:
            count = self.config.samples
        with span("mc.chunk", start=start, count=count,
                  backend=self.compute_backend):
            if self.compute_backend == "numpy":
                return self._run_batch(start, count)
            return [self.sample(index)
                    for index in range(start, start + count)]

    #: Memory bound for one batched tile: samples-per-tile is chosen so
    #: the (samples x instances) work arrays stay around this many
    #: elements, keeping peak memory flat in the requested sample count.
    _TILE_ELEMENTS = 2_000_000

    def _run_batch(self, start: int, count: int) -> list[McSample]:
        """Batched ``(samples x instances)`` array passes over the chunk.

        The Vth draws come from the *same* seeded scalar RNG as the
        reference path (sample ``k`` stays a pure function of
        ``(seed, k)`` on every backend); the per-instance exponential
        leakage scaling, the alpha-power delay derates and the
        per-sample STA all evaluate as batched array kernels.  The
        sample axis is tiled to ``_TILE_ELEMENTS`` so memory stays
        bounded for arbitrarily large chunks — per-sample purity makes
        tiling invisible in the results.
        """
        tile = max(1, self._TILE_ELEMENTS // max(len(self._basis), 1))
        if count > tile:
            samples: list[McSample] = []
            for tile_start in range(start, start + count, tile):
                tile_count = min(tile, start + count - tile_start)
                samples.extend(self._run_batch(tile_start, tile_count))
            return samples
        import numpy as np

        from repro.compute.kernels import (
            local_delay_factors,
            local_leakage_factors,
            setup_wns,
        )
        from repro.variation.scaling import OVERDRIVE_FLOOR

        n = len(self._basis)
        sigma_local = self.config.sigma_local_v
        dvth = np.empty((count, n))
        global_dvth = np.empty(count)
        for row, index in enumerate(range(start, start + count)):
            rng = self._rng(index)
            gauss = rng.gauss
            shift = gauss(0.0, self.config.sigma_global_v)
            global_dvth[row] = shift
            dvth[row] = [shift + gauss(0.0, sigma_local)
                         for _ in range(n)]
        factors = local_leakage_factors(dvth, self.tech.subthreshold_swing())
        leakage = (self._arrays["base_nw"] * factors).sum(axis=1)
        wns_values = None
        if self._view is not None:
            derates = self._arrays["base_derate"] * local_delay_factors(
                dvth, self._arrays["vth"], self.tech.vdd, self.tech.alpha,
                OVERDRIVE_FLOOR)
            wns_values = setup_wns(self._view, derates)
        return [
            McSample(
                index=start + row,
                global_dvth_v=float(global_dvth[row]),
                leakage_nw=float(leakage[row]),
                wns=(float(wns_values[row])
                     if wns_values is not None else None))
            for row in range(count)
        ]
