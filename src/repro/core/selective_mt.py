"""Conventional Selective-MT construction (Fig. 2).

Every cell the timing optimizer keeps "fast" becomes a conventional
MT-cell (Fig. 1(a)): low-Vth logic with an *embedded* high-Vth switch
transistor and built-in output holder.  Each such cell carries its own
switch — the area and leakage overhead the improved technique halves —
and its MTE pin connects to the sleep signal.
"""

from __future__ import annotations

import dataclasses

from repro.liberty.library import Library, VARIANT_CMT, VARIANT_HVT, VARIANT_MT
from repro.netlist.core import Netlist, PinDirection
from repro.netlist.transform import swap_variant
from repro.core.dual_vth import AssignmentResult, DualVthAssigner
from repro.timing.constraints import Constraints
from repro.timing.session import TimingSession


@dataclasses.dataclass
class ConventionalSmtResult:
    """Outcome of the conventional Selective-MT construction."""

    assignment: AssignmentResult
    mt_cell_names: list[str]
    mte_net_name: str

    @property
    def mt_count(self) -> int:
        return len(self.mt_cell_names)


class ConventionalSmtBuilder:
    """Builds a conventional Selective-MT circuit in place."""

    def __init__(self, netlist: Netlist, library: Library,
                 constraints: Constraints,
                 parasitics=None, rounds: int = 4,
                 mte_net_name: str = "MTE",
                 session: TimingSession | None = None,
                 compute_backend: str | None = None):
        self.netlist = netlist
        self.library = library
        self.constraints = constraints
        self.parasitics = parasitics
        self.rounds = rounds
        self.mte_net_name = mte_net_name
        self.session = session
        self.compute_backend = compute_backend

    def run(self) -> ConventionalSmtResult:
        # Assignment with the MT variant as the fast class: cells on
        # critical paths stay MT, everything else becomes high-Vth.
        # (MT timing tables already include the virtual-ground derate,
        # so the timing constraint holds for the final MT circuit.)
        assigner = DualVthAssigner(
            self.netlist, self.library, self.constraints,
            parasitics=self.parasitics,
            fast_variant=VARIANT_MT, slow_variant=VARIANT_HVT,
            rounds=self.rounds, session=self.session,
            compute_backend=self.compute_backend)
        assignment = assigner.run()

        # Ensure an MTE port exists.
        if self.mte_net_name not in self.netlist.ports:
            self.netlist.add_input(self.mte_net_name)
        mte_net = self.netlist.net(self.mte_net_name)

        # Swap the fast set to conventional MT-cells and hook up MTE.
        mt_names = []
        for name in assignment.fast_instances:
            inst = self.netlist.instances[name]
            cell = self.library.cell(inst.cell_name)
            if not self.library.has_variant(cell, VARIANT_CMT):
                continue  # sequential cells stay powered
            if self.session is not None:
                self.session.swap_variant(inst, VARIANT_CMT)
            else:
                swap_variant(self.netlist, inst, self.library, VARIANT_CMT)
            mte_pin = inst.pins.get("MTE")
            if mte_pin is not None and mte_pin.net is None:
                self.netlist.connect(inst, "MTE", mte_net,
                                     PinDirection.INPUT)
            mt_names.append(name)
        if self.session is not None and mt_names:
            # New MTE sinks reshape the dependency graph and MTE loading.
            self.session.touch_structural()
            self.session.touch_net(mte_net)
        return ConventionalSmtResult(
            assignment=assignment,
            mt_cell_names=mt_names,
            mte_net_name=self.mte_net_name)
