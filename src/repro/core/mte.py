"""MTE (sleep signal) buffer tree.

"The MT enable signal MTE ... has many fanouts, as MTE is necessary to
be connected to all switch transistors and output holders.  So, buffers
need to be inserted to the MTE net appropriately."

The tree is built like a small CTS: MTE sinks are grouped geometrically
under high-Vth buffers (high-Vth so the tree itself does not leak; MTE
is not timing-critical — it only gates wake-up latency, which we
report).
"""

from __future__ import annotations

import dataclasses
import statistics

from repro.errors import FlowError
from repro.liberty.library import Library
from repro.netlist.core import Netlist, PinDirection
from repro.placement.placer import Placement, place_incremental


@dataclasses.dataclass
class MteTreeResult:
    """Outcome of MTE buffering."""

    buffer_instances: list[str]
    sink_count: int
    levels: int
    wakeup_delay_ns: float

    @property
    def buffer_count(self) -> int:
        return len(self.buffer_instances)


class MteBufferTree:
    """Buffers the high-fanout MTE net of an SMT netlist."""

    def __init__(self, netlist: Netlist, library: Library,
                 placement: Placement, mte_net_name: str = "MTE",
                 buffer_cell: str = "BUF_X8_HVT",
                 fanout_limit: int = 16):
        if fanout_limit < 2:
            raise FlowError("MTE fanout limit must be at least 2")
        self.netlist = netlist
        self.library = library
        self.placement = placement
        self.mte_net_name = mte_net_name
        self.buffer_cell = buffer_cell
        self.fanout_limit = fanout_limit

    def run(self) -> MteTreeResult:
        if self.mte_net_name not in self.netlist.nets:
            return MteTreeResult([], 0, 0, 0.0)
        if self.buffer_cell not in self.library:
            raise FlowError(f"MTE buffer cell {self.buffer_cell!r} missing")
        mte_net = self.netlist.net(self.mte_net_name)
        sinks = list(mte_net.sinks)
        sink_count = len(sinks)
        if sink_count <= self.fanout_limit:
            return MteTreeResult([], sink_count, 0,
                                 self._stage_delay(sink_count))

        buffers: list[str] = []
        level = 0
        # Current "frontier": pins that must be driven.  Each pass packs
        # them geometrically under new buffers until the root fans out
        # within the limit.
        frontier = [(pin.instance.name, pin.name) for pin in sinks]
        while len(frontier) > self.fanout_limit:
            groups = self._group(frontier)
            new_frontier = []
            for members in groups:
                buffer_name = self._insert_buffer(members, level, mte_net)
                buffers.append(buffer_name)
                new_frontier.append((buffer_name, "A"))
            frontier = new_frontier
            level += 1
        wakeup = (level + 1) * self._stage_delay(self.fanout_limit)
        return MteTreeResult(buffers, sink_count, level, wakeup)

    # --- internals -----------------------------------------------------------

    def _position(self, inst_name: str) -> tuple[float, float]:
        if inst_name in self.placement.locations:
            return self.placement.locations[inst_name]
        return (0.0, 0.0)

    def _group(self, frontier: list[tuple[str, str]]) -> list[list[tuple[str, str]]]:
        entries = sorted(
            frontier,
            key=lambda e: (self._position(e[0])[1], self._position(e[0])[0]))
        return [entries[i:i + self.fanout_limit]
                for i in range(0, len(entries), self.fanout_limit)]

    def _insert_buffer(self, members: list[tuple[str, str]], level: int,
                       mte_net) -> str:
        name = self.netlist.unique_name(f"mtebuf_l{level}")
        net_name = self.netlist.unique_name(f"mte_l{level}")
        buffer_inst = self.netlist.add_instance(name, self.buffer_cell)
        out_net = self.netlist.get_or_create_net(net_name)
        self.netlist.connect(buffer_inst, "Z", out_net, PinDirection.OUTPUT)
        self.netlist.connect(buffer_inst, "A", mte_net, PinDirection.INPUT)
        xs = []
        ys = []
        for inst_name, pin_name in members:
            inst = self.netlist.instance(inst_name)
            pin = inst.pin(pin_name)
            self.netlist.disconnect(pin)
            self.netlist.connect(inst, pin_name, out_net, pin.direction)
            x, y = self._position(inst_name)
            xs.append(x)
            ys.append(y)
        place_incremental(self.placement, self.netlist, self.library, name,
                          (statistics.fmean(xs), statistics.fmean(ys)))
        return name

    def _stage_delay(self, fanout: int) -> float:
        """Delay of one buffer stage driving ``fanout`` typical sinks."""
        cell = self.library.cell(self.buffer_cell)
        arc = cell.single_output().arc_from("A")
        if arc is None:
            return 0.0
        load = fanout * 0.002  # typical MTE pin load in pF
        rise, fall = arc.delay(0.05, load)
        return max(rise, fall)
