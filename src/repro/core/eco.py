"""Engineering-change-order (ECO) timing fixes.

The last Fig. 4 box: "ECO and timing analysis are performed for fixing
the hold violation and for verification".

* :class:`HoldFixer` — hold violations (early paths after CTS skew)
  are fixed with small high-Vth delay buffers before the violating
  flip-flop D pins.
* :class:`SetupFixer` — residual setup violations (post-route wire
  growth beyond the assignment guardband, e.g. the conventional SMT
  netlist bloating the die) are fixed by swapping slow-variant cells
  on violating paths back to the technique's fast class, via a
  technique-specific ``fast_swap`` callback supplied by the flow.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Mapping

from repro.liberty.library import Library, VthClass
from repro.netlist.core import Instance, Netlist
from repro.netlist.transform import insert_buffer
from repro.timing.constraints import Constraints
from repro.timing.paths import extract_path
from repro.timing.session import TimingSession
from repro.timing.sta import TimingAnalyzer, TimingReport


@dataclasses.dataclass
class EcoResult:
    """Outcome of the hold-fix ECO."""

    buffers_added: list[str]
    passes: int
    final_report: TimingReport

    @property
    def buffer_count(self) -> int:
        return len(self.buffers_added)


class HoldFixer:
    """Fixes hold violations by delay-buffer insertion."""

    def __init__(self, netlist: Netlist, library: Library,
                 constraints: Constraints,
                 parasitics: Mapping[str, object] | None = None,
                 derates: Mapping[str, float] | None = None,
                 clock_arrivals: Mapping[str, float] | None = None,
                 buffer_cell: str = "BUF_X1_HVT",
                 max_passes: int = 3,
                 session: TimingSession | None = None,
                 compute_backend: str | None = None):
        self.netlist = netlist
        self.library = library
        self.constraints = constraints
        self.compute_backend = compute_backend
        self.parasitics = parasitics
        self.derates = derates
        self.clock_arrivals = clock_arrivals
        self.buffer_cell = buffer_cell
        self.max_passes = max_passes
        #: Optional incremental STA engine; buffer insertions are routed
        #: through it so each pass re-propagates only the padded cones.
        self.session = session

    def _sta(self) -> TimingReport:
        if self.session is not None:
            return self.session.report()
        return TimingAnalyzer(
            self.netlist, self.library, self.constraints,
            parasitics=self.parasitics, derates=self.derates,
            clock_arrivals=self.clock_arrivals,
            compute_backend=self.compute_backend).run()

    def _insert_buffer(self, net, sinks):
        if self.session is not None:
            return self.session.insert_buffer(
                net, self.buffer_cell, sinks=sinks, name_prefix="holdfix")
        return insert_buffer(self.netlist, net, self.buffer_cell,
                             sinks=sinks, name_prefix="holdfix")

    def _buffer_delay_estimate(self) -> float:
        """Nominal delay of one padding buffer (ns)."""
        cell = self.library.cell(self.buffer_cell)
        arc = cell.single_output().arc_from("A")
        if arc is None:
            return 0.02
        rise, fall = arc.delay(0.02, cell.single_output().capacitance
                               if cell.single_output().capacitance
                               else 0.002)
        return max(min(rise, fall), 1e-3)

    def run(self) -> EcoResult:
        buffers: list[str] = []
        passes = 0
        report = self._sta()
        unit_delay = self._buffer_delay_estimate()
        while not report.hold_met and passes < self.max_passes:
            passes += 1
            fixed_any = False
            for check in report.endpoint_checks:
                if check.kind != "hold" or check.slack >= 0.0:
                    continue
                inst_name, pin_name = check.endpoint.split("/", 1)
                inst = self.netlist.instances.get(inst_name)
                if inst is None:
                    continue
                pin = inst.pins.get(pin_name)
                if pin is None or pin.net is None:
                    continue
                # Insert enough buffers in a chain to close the window.
                needed = min(int(-check.slack / unit_delay) + 1, 20)
                for _ in range(needed):
                    buffer_inst = self._insert_buffer(pin.net, [pin])
                    buffers.append(buffer_inst.name)
                fixed_any = True
            if not fixed_any:
                break
            report = self._sta()
        return EcoResult(buffers_added=buffers, passes=passes,
                         final_report=report)


@dataclasses.dataclass
class SetupEcoResult:
    """Outcome of the setup-repair ECO."""

    swapped: list[str]
    passes: int
    final_report: TimingReport

    @property
    def swap_count(self) -> int:
        return len(self.swapped)


class SetupFixer:
    """Fixes setup violations by re-accelerating cells on bad paths.

    ``fast_swap(instance) -> bool`` performs the technique-specific
    swap (HVT -> LVT for Dual-Vth, HVT -> CMT for conventional SMT,
    HVT -> MTV + cluster join for improved SMT) and returns whether it
    changed the instance.
    """

    def __init__(self, netlist: Netlist, library: Library,
                 constraints: Constraints,
                 fast_swap: Callable[[Instance], bool],
                 parasitics: Mapping[str, object] | None = None,
                 derates: Mapping[str, float] | None = None,
                 clock_arrivals: Mapping[str, float] | None = None,
                 max_passes: int = 16, endpoints_per_pass: int = 16,
                 session: TimingSession | None = None,
                 compute_backend: str | None = None):
        self.netlist = netlist
        self.library = library
        self.constraints = constraints
        self.compute_backend = compute_backend
        self.fast_swap = fast_swap
        self.parasitics = parasitics
        self.derates = derates
        self.clock_arrivals = clock_arrivals
        self.max_passes = max_passes
        self.endpoints_per_pass = endpoints_per_pass
        #: Optional incremental STA engine.  ``fast_swap`` performs the
        #: netlist edits, so a caller supplying a session must make its
        #: callback report them (swap through the session / touch nets).
        self.session = session

    def _sta(self) -> TimingReport:
        if self.session is not None:
            return self.session.report()
        return TimingAnalyzer(
            self.netlist, self.library, self.constraints,
            parasitics=self.parasitics, derates=self.derates,
            clock_arrivals=self.clock_arrivals,
            compute_backend=self.compute_backend).run()

    def run(self) -> SetupEcoResult:
        swapped: list[str] = []
        passes = 0
        report = self._sta()
        while report.wns < 0.0 and passes < self.max_passes:
            passes += 1
            changed = self._repair_pass(report, swapped)
            if not changed:
                break
            report = self._sta()
        return SetupEcoResult(swapped=swapped, passes=passes,
                              final_report=report)

    def _repair_pass(self, report: TimingReport,
                     swapped: list[str]) -> bool:
        violating = sorted(
            (c for c in report.endpoint_checks
             if c.kind in ("setup", "output") and c.slack < 0.0),
            key=lambda c: c.slack)
        changed = False
        seen: set[str] = set()
        for check in violating[:self.endpoints_per_pass]:
            path = extract_path(self.netlist, report, check.endpoint)
            if path is None or not path.instances():
                continue
            # Swap only about as many cells as the violation needs: a
            # fast swap recovers roughly a quarter of one stage delay.
            stage_delay = max(check.arrival / max(len(path.steps), 1), 1e-6)
            budget = int(-check.slack / (0.25 * stage_delay)) + 1
            # Start from the endpoint backwards — the tail of the path
            # is most likely shared across the violating endpoints.
            for inst_name in reversed(path.instances()):
                if budget <= 0:
                    break
                if inst_name in seen:
                    continue
                seen.add(inst_name)
                inst = self.netlist.instances.get(inst_name)
                if inst is None or inst.cell_name not in self.library:
                    continue
                cell = self.library.cell(inst.cell_name)
                if cell.vth_class != VthClass.HIGH or cell.is_sequential:
                    continue
                if self.fast_swap(inst):
                    swapped.append(inst_name)
                    changed = True
                    budget -= 1
        return changed
