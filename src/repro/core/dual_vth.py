"""Slack-driven Vth assignment.

This is both the Dual-Vth baseline [Wei et al., CICC 2000] and — run
with MT-cells as the fast class — the replacement step of the
Selective-MT flow, which the paper performs "by the method which is
similar to the way of generating the Dual-Vth circuit".

Algorithm (deterministic, STA-in-the-loop):

1. every candidate starts as the *fast* variant; STA must pass;
2. candidates are sorted by output slack (most slack first);
3. a bisection finds the largest slack-ordered prefix that can be
   swapped to the *slow* variant while the worst slack stays >= 0
   (each probe is a real STA run, so path reconvergence is handled
   exactly, not estimated);
4. the prefix is committed, slacks are refreshed, and the process
   repeats for a few rounds to pick up cells whose slack grew.

Flip-flops participate: a flip-flop off the critical path becomes
high-Vth like any gate.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping

from repro.errors import FlowError
from repro.liberty.library import Library, VARIANT_HVT, VARIANT_LVT
from repro.netlist.core import Instance, Netlist
from repro.netlist.transform import swap_variant
from repro.timing.constraints import Constraints
from repro.timing.session import TimingSession
from repro.timing.sta import TimingAnalyzer, TimingReport


@dataclasses.dataclass
class AssignmentResult:
    """Outcome of one assignment run."""

    fast_variant: str
    slow_variant: str
    fast_instances: list[str]
    slow_instances: list[str]
    final_report: TimingReport
    sta_runs: int

    @property
    def fast_count(self) -> int:
        return len(self.fast_instances)

    @property
    def slow_count(self) -> int:
        return len(self.slow_instances)

    @property
    def fast_fraction(self) -> float:
        total = self.fast_count + self.slow_count
        return self.fast_count / total if total else 0.0


class DualVthAssigner:
    """Assigns fast/slow variants under a timing constraint."""

    def __init__(self, netlist: Netlist, library: Library,
                 constraints: Constraints,
                 parasitics: Mapping[str, object] | None = None,
                 fast_variant: str = VARIANT_LVT,
                 slow_variant: str = VARIANT_HVT,
                 rounds: int = 4,
                 include_sequential: bool = False,
                 session: TimingSession | None = None,
                 compute_backend: str | None = None):
        self.netlist = netlist
        self.library = library
        self.constraints = constraints
        self.parasitics = parasitics
        self.fast_variant = fast_variant
        self.slow_variant = slow_variant
        self.rounds = rounds
        self.include_sequential = include_sequential
        self.compute_backend = compute_backend
        #: Optional incremental STA engine; swaps are routed through it
        #: so probes re-propagate only the affected cones.
        if session is not None and session.netlist is not netlist:
            raise FlowError("timing session is bound to a different netlist")
        self.session = session
        self._sta_runs = 0
        self._depth_cache: dict[str, int] | None = None

    # --- helpers -------------------------------------------------------------

    def _sta(self) -> TimingReport:
        self._sta_runs += 1
        if self.session is not None:
            return self.session.report()
        analyzer = TimingAnalyzer(self.netlist, self.library,
                                  self.constraints, self.parasitics,
                                  compute_backend=self.compute_backend)
        return analyzer.run()

    def _candidates(self) -> list[Instance]:
        """Instances eligible for slow assignment (currently fast)."""
        result = []
        for inst in self.netlist.instances.values():
            if inst.cell_name not in self.library:
                continue
            cell = self.library.cell(inst.cell_name)
            if cell.is_sequential and not self.include_sequential:
                continue
            if cell.variant != self.fast_variant:
                continue
            if not self.library.has_variant(cell, self.slow_variant):
                continue
            result.append(inst)
        return result

    def _depth_of(self, inst: Instance) -> int:
        """Topological depth, used to keep slow conversions contiguous.

        Converting cells in depth order groups the slow cells into
        contiguous runs along each path, which minimizes MT-to-powered
        boundaries (and therefore output holders) in the SMT flows —
        mirroring the runs of MT-cells Fig. 3 depicts.
        """
        if self._depth_cache is None:
            is_seq = lambda i: (i.cell_name in self.library
                                and self.library.cell(i.cell_name).is_sequential)
            depth: dict[str, int] = {}
            for node in self.netlist.topological_order(is_seq):
                if is_seq(node):
                    depth[node.name] = 0
                    continue
                best = 0
                for pin in node.input_pins():
                    if pin.net is not None and pin.net.driver is not None:
                        source = pin.net.driver.instance
                        if not is_seq(source):
                            best = max(best, depth.get(source.name, 0))
                depth[node.name] = best + 1
            self._depth_cache = depth
        return self._depth_cache.get(inst.name, 0)

    def _slack_of(self, inst: Instance, report: TimingReport) -> float:
        # Unobserved (dangling) cones have infinite slack; clamp so the
        # value stays sortable.
        worst = 10.0 * self.constraints.clock_period
        for pin in inst.output_pins():
            if pin.net is not None:
                worst = min(worst, report.slack_of_net(pin.net.name))
        return worst

    def _swap(self, instances: list[Instance], variant: str):
        if self.session is not None:
            for inst in instances:
                self.session.swap_variant(inst, variant)
            return
        for inst in instances:
            swap_variant(self.netlist, inst, self.library, variant)

    # --- main -----------------------------------------------------------------

    def prepare(self):
        """Force every candidate cell to the fast variant."""
        for inst in self.netlist.instances.values():
            if inst.cell_name not in self.library:
                continue
            cell = self.library.cell(inst.cell_name)
            if cell.kind.value in ("switch", "holder"):
                continue
            if cell.is_sequential and not self.include_sequential:
                continue
            if cell.variant != self.fast_variant \
                    and self.library.has_variant(cell, self.fast_variant):
                if self.session is not None:
                    self.session.swap_variant(inst, self.fast_variant)
                else:
                    swap_variant(self.netlist, inst, self.library,
                                 self.fast_variant)

    def run(self, prepare: bool = True) -> AssignmentResult:
        if prepare:
            self.prepare()
        report = self._sta()
        if not report.setup_met:
            raise FlowError(
                f"timing infeasible even with all-{self.fast_variant} "
                f"cells: WNS {report.wns:.4f} ns at period "
                f"{self.constraints.clock_period:.3f} ns")

        slack_bucket = max(self.constraints.clock_period * 0.01, 1e-6)
        for _ in range(self.rounds):
            candidates = self._candidates()
            if not candidates:
                break
            # Most slack first; depth breaks ties so conversions form
            # contiguous runs along paths (fewer holder boundaries).
            candidates.sort(key=lambda inst: (
                -round(self._slack_of(inst, report) / slack_bucket),
                self._depth_of(inst)))
            committed = self._bisect_prefix(candidates)
            if committed == 0:
                break
            report = self._sta()

        final_report = self._sta()
        fast = []
        slow = []
        for inst in self.netlist.instances.values():
            if inst.cell_name not in self.library:
                continue
            variant = self.library.cell(inst.cell_name).variant
            if variant == self.fast_variant:
                fast.append(inst.name)
            elif variant == self.slow_variant:
                slow.append(inst.name)
        return AssignmentResult(
            fast_variant=self.fast_variant,
            slow_variant=self.slow_variant,
            fast_instances=fast,
            slow_instances=slow,
            final_report=final_report,
            sta_runs=self._sta_runs)

    def _bisect_prefix(self, candidates: list[Instance]) -> int:
        """Largest slack-ordered prefix swappable without violation.

        Invariant: candidates[:low] are known-safe as slow.  The probe
        swaps candidates[low:mid] (the already-safe prefix stays slow),
        reverting on failure.
        """
        low = 0
        high = len(candidates)
        first_probe = True
        while low < high:
            # First probe is optimistic (all candidates at once); later
            # probes bisect the remaining range.
            mid = high if first_probe else (low + high + 1) // 2
            first_probe = False
            trial = candidates[low:mid]
            self._swap(trial, self.slow_variant)
            report = self._sta()
            if report.setup_met:
                low = mid
            else:
                self._swap(trial, self.fast_variant)
                high = mid - 1
        return low
