"""Improved Selective-MT construction (Fig. 3, this paper).

The stages mirror Fig. 4's middle boxes:

1. Vth assignment with MT-cells (without VGND ports) as the fast class
   — identical machinery to the conventional technique;
2. every remaining MT-cell is swapped to its VGND-port variant
   ("replacing MT-cells(without VGND ports) by the ones(with VGND
   ports)");
3. one switch transistor is inserted and every VGND port connects to
   its drain ("one switch transistor is added, and all VGND ports at
   the MT-cells are connected to the drain of the switch transistor for
   generating an initial switch transistor structure");
4. output holders are inserted only where an MT output feeds powered
   logic;
5. the back-end optimizer (our CoolPower substitute,
   :mod:`repro.vgnd`) replaces the single initial switch with sized
   per-cluster switches honouring bounce / wire length / EM limits.
"""

from __future__ import annotations

import dataclasses
import statistics

from repro.core.dual_vth import AssignmentResult, DualVthAssigner
from repro.core.output_holder import insert_output_holders
from repro.errors import FlowError
from repro.liberty.library import Library, VARIANT_HVT, VARIANT_MT, VARIANT_MTV
from repro.netlist.core import Netlist, PinDirection
from repro.netlist.transform import swap_variant
from repro.placement.placer import Placement, place_incremental
from repro.timing.constraints import Constraints
from repro.timing.session import TimingSession
from repro.vgnd.cluster import ClusterConfig, MtClusterer
from repro.vgnd.network import VgndNetwork
from repro.vgnd.sizing import SwitchSizer


@dataclasses.dataclass
class ImprovedSmtResult:
    """Outcome of the improved Selective-MT construction."""

    assignment: AssignmentResult
    mt_cell_names: list[str]
    holder_names: list[str]
    network: VgndNetwork
    mte_net_name: str

    @property
    def mt_count(self) -> int:
        return len(self.mt_cell_names)

    @property
    def holder_count(self) -> int:
        return len(self.holder_names)


class ImprovedSmtBuilder:
    """Builds an improved Selective-MT circuit in place."""

    def __init__(self, netlist: Netlist, library: Library,
                 constraints: Constraints, placement: Placement,
                 cluster_config: ClusterConfig | None = None,
                 parasitics=None, rounds: int = 4,
                 mte_net_name: str = "MTE",
                 session: TimingSession | None = None,
                 compute_backend: str | None = None):
        self.compute_backend = compute_backend
        self.netlist = netlist
        self.library = library
        self.constraints = constraints
        self.placement = placement
        self.cluster_config = cluster_config or ClusterConfig()
        self.parasitics = parasitics
        self.rounds = rounds
        self.mte_net_name = mte_net_name
        #: Optional incremental STA engine for the assignment stage.
        #: The structural stages (VGND ports, switches, holders) run
        #: after the last timing probe, so only :meth:`assign` uses it.
        self.session = session

    # --- stages ---------------------------------------------------------------

    def assign(self) -> AssignmentResult:
        """Stage 1: Vth assignment with MT (no VGND port) as fast class."""
        assigner = DualVthAssigner(
            self.netlist, self.library, self.constraints,
            parasitics=self.parasitics,
            fast_variant=VARIANT_MT, slow_variant=VARIANT_HVT,
            rounds=self.rounds, session=self.session,
            compute_backend=self.compute_backend)
        return assigner.run()

    def add_vgnd_ports(self, assignment: AssignmentResult) -> list[str]:
        """Stage 2: swap MT -> MTV (adds the VGND pin)."""
        mt_names = []
        for name in assignment.fast_instances:
            inst = self.netlist.instances[name]
            cell = self.library.cell(inst.cell_name)
            if not self.library.has_variant(cell, VARIANT_MTV):
                continue  # sequential cells stay on true ground
            swap_variant(self.netlist, inst, self.library, VARIANT_MTV)
            mt_names.append(name)
        return mt_names

    def insert_initial_switch(self, mt_names: list[str]) -> str | None:
        """Stage 3: one switch, all VGND ports on its drain."""
        if not mt_names:
            return None
        if self.mte_net_name not in self.netlist.ports:
            self.netlist.add_input(self.mte_net_name)
        mte_net = self.netlist.net(self.mte_net_name)
        switches = self.library.switch_cells()
        if not switches:
            raise FlowError("library has no switch cells")
        switch_cell = switches[-1]  # the initial structure is one big switch
        name = self.netlist.unique_name("vgnd_switch_init")
        vgnd_net = self.netlist.get_or_create_net("vgnd_all")
        inst = self.netlist.add_instance(name, switch_cell.name)
        self.netlist.connect(inst, "VGND", vgnd_net, PinDirection.INOUT,
                             keeper=True)
        self.netlist.connect(inst, "MTE", mte_net, PinDirection.INPUT)
        for mt_name in mt_names:
            mt_inst = self.netlist.instances[mt_name]
            vgnd_pin = mt_inst.pins.get("VGND")
            if vgnd_pin is not None and vgnd_pin.net is None:
                self.netlist.connect(mt_inst, "VGND", vgnd_net,
                                     PinDirection.INOUT, keeper=True)
        xs = [self.placement.location(n)[0] for n in mt_names]
        ys = [self.placement.location(n)[1] for n in mt_names]
        place_incremental(self.placement, self.netlist, self.library, name,
                          (statistics.fmean(xs), statistics.fmean(ys)))
        return name

    def insert_holders(self) -> list[str]:
        """Stage 4: output holders on MT-region boundaries only."""
        holders = insert_output_holders(self.netlist, self.library,
                                        self.mte_net_name)
        for holder_name in holders:
            inst = self.netlist.instances[holder_name]
            z_net = inst.pin("Z").net
            near = (0.0, 0.0)
            if z_net is not None and z_net.driver is not None:
                near = self.placement.location(z_net.driver.instance.name)
            place_incremental(self.placement, self.netlist, self.library,
                              holder_name, near)
        return holders

    def teardown_initial_switch(self, mt_names: list[str],
                                initial_switch: str | None):
        """Remove the transient single-switch structure (pre-cluster)."""
        if initial_switch is None:
            return
        for mt_name in mt_names:
            inst = self.netlist.instances[mt_name]
            pin = inst.pins.get("VGND")
            if pin is not None and pin.net is not None:
                self.netlist.disconnect(pin)
        old_net = self.netlist.nets.get("vgnd_all")
        if initial_switch in self.netlist.instances:
            self.netlist.remove_instance(initial_switch)
        self.placement.locations.pop(initial_switch, None)
        if old_net is not None:
            self.netlist.remove_net_if_dangling(old_net)

    def build_switch_structure(self, mt_names: list[str],
                               initial_switch: str | None = None
                               ) -> VgndNetwork:
        """Stage 5: cluster, insert per-cluster switches, size them."""
        self.teardown_initial_switch(mt_names, initial_switch)

        clusterer = MtClusterer(self.netlist, self.library, self.placement,
                                self.cluster_config)
        network = clusterer.build(mt_names)
        sizer = SwitchSizer(self.library,
                            self.cluster_config.bounce_limit_v)
        sizer.size_network(network)

        mte_net = self.netlist.net(self.mte_net_name)
        for cluster in network.clusters:
            vgnd_net = self.netlist.get_or_create_net(cluster.net_name)
            switch_name = self.netlist.unique_name(
                f"vgnd_switch_{cluster.index}")
            inst = self.netlist.add_instance(switch_name,
                                             cluster.switch_cell)
            self.netlist.connect(inst, "VGND", vgnd_net, PinDirection.INOUT,
                                 keeper=True)
            self.netlist.connect(inst, "MTE", mte_net, PinDirection.INPUT)
            cluster.switch_instance = switch_name
            place_incremental(self.placement, self.netlist, self.library,
                              switch_name, cluster.centroid)
            for member in cluster.members:
                mt_inst = self.netlist.instances[member]
                pin = mt_inst.pins.get("VGND")
                if pin is not None:
                    if pin.net is not None:
                        self.netlist.disconnect(pin)
                    self.netlist.connect(mt_inst, "VGND", vgnd_net,
                                         PinDirection.INOUT, keeper=True)
        return network

    # --- orchestration -----------------------------------------------------------

    def run(self) -> ImprovedSmtResult:
        assignment = self.assign()
        mt_names = self.add_vgnd_ports(assignment)
        initial_switch = self.insert_initial_switch(mt_names)
        holders = self.insert_holders()
        network = self.build_switch_structure(mt_names,
                                              initial_switch=initial_switch)
        return ImprovedSmtResult(
            assignment=assignment,
            mt_cell_names=mt_names,
            holder_names=holders,
            network=network,
            mte_net_name=self.mte_net_name)
