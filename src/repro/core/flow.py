"""The complete Fig. 4 design flow.

``RTL -> physical synthesis (low-Vth) -> Vth/MT replacement -> VGND
ports + switch + holders -> switch structure construction -> routing +
CTS + MTE buffering -> post-route (SPEF) switch re-optimization -> ECO
+ final timing analysis``

:class:`SelectiveMtFlow` drives any of the three techniques over a
generic-gate netlist ("the RTL"), recording a :class:`StageReport` per
box so Fig. 4 itself is reproducible as an executable artifact.

The flow is assembled from the composable stage registry in
:mod:`repro.core.stages`: a technique is a list of stage keys, and a
custom pipeline (subset, reorder, extra stages) can be passed via the
``stages`` argument or run directly with
:meth:`SelectiveMtFlow.run_context`.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable

from repro.config import FlowConfig, Technique
from repro.core.dual_vth import AssignmentResult
from repro.core.eco import EcoResult
from repro.core.improved_smt import ImprovedSmtResult
from repro.core.mte import MteTreeResult
from repro.core.selective_mt import ConventionalSmtResult
from repro.core.stages import (
    FlowContext,
    Stage,
    StageReport,
    StageRunner,
    build_pipeline,
)
from repro.cts.tree import CtsResult
from repro.errors import FlowError
from repro.liberty.library import Library
from repro.netlist.core import Netlist
from repro.obs.spans import span
from repro.placement.placer import Placement
from repro.power.leakage import LeakageBreakdown
from repro.routing.extract import NetParasitics
from repro.policy.optimize import PolicyResult
from repro.standby.engine import StandbyResult
from repro.timing.constraints import Constraints
from repro.timing.sta import TimingReport
from repro.variation.signoff import CornerResult
from repro.vgnd.network import VgndNetwork

__all__ = [
    "FlowResult",
    "SelectiveMtFlow",
    "StageReport",
]


@dataclasses.dataclass
class FlowResult:
    """Everything the flow produced."""

    technique: Technique
    netlist: Netlist
    placement: Placement
    constraints: Constraints
    parasitics: dict[str, NetParasitics]
    assignment: AssignmentResult | None
    smt_result: ConventionalSmtResult | ImprovedSmtResult | None
    network: VgndNetwork | None
    cts: CtsResult | None
    mte: MteTreeResult | None
    eco: EcoResult | None
    timing: TimingReport
    leakage: LeakageBreakdown
    total_area: float
    stages: list[StageReport]
    sta_stats: dict[str, dict[str, int]] = dataclasses.field(
        default_factory=dict)
    #: Per-corner signoff results (empty unless
    #: ``FlowConfig.signoff_corners`` was set).
    corners: dict[str, "CornerResult"] = dataclasses.field(
        default_factory=dict)
    #: Standby-transition signoff (None unless
    #: ``FlowConfig.standby_scenarios`` was set and the technique
    #: built a shared-switch VGND network).
    standby: "StandbyResult | None" = None
    #: Sleep-policy signoff (None unless ``FlowConfig.policy_candidates``
    #: was positive alongside standby scenarios and a VGND network).
    policy: "PolicyResult | None" = None

    @property
    def leakage_nw(self) -> float:
        return self.leakage.total_nw

    def stage(self, name: str) -> StageReport:
        for report in self.stages:
            if report.name == name:
                return report
        raise KeyError(f"no stage named {name!r}")

    def render_stages(self) -> str:
        return "\n".join(stage.render() for stage in self.stages)

    @classmethod
    def from_context(cls, ctx: FlowContext) -> "FlowResult":
        """Package a completed pipeline context.

        Requires the pipeline to have produced final timing and
        leakage; partial pipelines should keep working with the
        :class:`FlowContext` itself.
        """
        for field in ("netlist", "placement", "constraints", "timing",
                      "leakage"):
            if getattr(ctx, field) is None:
                raise FlowError(
                    f"pipeline finished without producing {field!r}; "
                    f"use run_context() for partial pipelines")
        return cls(
            technique=ctx.technique,
            netlist=ctx.netlist,
            placement=ctx.placement,
            constraints=ctx.constraints,
            parasitics=ctx.parasitics,
            assignment=ctx.assignment,
            smt_result=ctx.smt_result,
            network=ctx.network,
            cts=ctx.cts,
            mte=ctx.mte,
            eco=ctx.eco,
            timing=ctx.timing,
            leakage=ctx.leakage,
            total_area=ctx.total_area,
            stages=list(ctx.stages),
            sta_stats=dict(ctx.sta_stats),
            corners=dict(ctx.corners),
            standby=ctx.standby,
            policy=ctx.policy)


class SelectiveMtFlow:
    """Runs one technique end to end on a generic-gate netlist."""

    def __init__(self, netlist: Netlist, library: Library,
                 technique: Technique = Technique.IMPROVED_SMT,
                 config: FlowConfig | None = None,
                 stages: Iterable[Stage | str] | None = None):
        self.source_netlist = netlist
        self.library = library
        self.technique = technique
        self.config = config or FlowConfig()
        self.tech = library.tech
        if self.tech is None:
            raise FlowError("library carries no technology")
        #: Optional custom pipeline (stage keys or Stage objects);
        #: defaults to the technique's registered stage list.
        self.stages = list(stages) if stages is not None else None

    def pipeline(self) -> list[Stage]:
        if self.stages is not None:
            runner = StageRunner(self.stages)
            return runner.stages
        return build_pipeline(self.technique)

    def run_context(self) -> FlowContext:
        """Run the pipeline and return the raw context.

        Unlike :meth:`run` this does not require the pipeline to be
        complete — useful for assembling partial or experimental
        pipelines from the stage registry.
        """
        ctx = FlowContext.create(self.source_netlist, self.library,
                                 self.technique, self.config)
        with span("flow.run", circuit=self.source_netlist.name,
                  technique=self.technique.value):
            StageRunner(self.pipeline()).run(ctx)
        return ctx

    def run(self) -> FlowResult:
        return FlowResult.from_context(self.run_context())
