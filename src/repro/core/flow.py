"""The complete Fig. 4 design flow.

``RTL -> physical synthesis (low-Vth) -> Vth/MT replacement -> VGND
ports + switch + holders -> switch structure construction -> routing +
CTS + MTE buffering -> post-route (SPEF) switch re-optimization -> ECO
+ final timing analysis``

:class:`SelectiveMtFlow` drives any of the three techniques over a
generic-gate netlist ("the RTL"), recording a :class:`StageReport` per
box so Fig. 4 itself is reproducible as an executable artifact.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any

from repro.config import FlowConfig, Technique
from repro.core.dual_vth import AssignmentResult, DualVthAssigner
from repro.core.eco import EcoResult, HoldFixer, SetupFixer
from repro.core.improved_smt import ImprovedSmtBuilder, ImprovedSmtResult
from repro.core.mte import MteBufferTree, MteTreeResult
from repro.core.output_holder import insert_output_holders
from repro.core.selective_mt import ConventionalSmtBuilder
from repro.cts.tree import ClockTreeSynthesizer, CtsResult
from repro.errors import FlowError
from repro.liberty.library import Library, VARIANT_HVT, VARIANT_LVT
from repro.netlist.core import Netlist, PinDirection
from repro.netlist.techmap import technology_map
from repro.netlist.transform import swap_variant
from repro.netlist.validate import check_netlist
from repro.placement.legalize import legalize
from repro.placement.placer import (
    GlobalPlacer,
    Placement,
    place_incremental,
)
from repro.power.leakage import LeakageAnalyzer, LeakageBreakdown
from repro.routing.extract import PostRouteExtractor, PreRouteEstimator
from repro.routing.steiner import build_mst
from repro.timing.constraints import Constraints
from repro.timing.sta import TimingAnalyzer, TimingReport
from repro.vgnd.cluster import ClusterConfig
from repro.vgnd.em import check_em
from repro.vgnd.network import VgndNetwork
from repro.vgnd.refine import repair_unsizeable
from repro.vgnd.sizing import SwitchSizer


@dataclasses.dataclass
class StageReport:
    """One executed flow stage (one Fig. 4 box)."""

    name: str
    elapsed_s: float
    details: dict[str, Any] = dataclasses.field(default_factory=dict)

    def render(self) -> str:
        detail_text = ", ".join(f"{k}={v}" for k, v in self.details.items())
        return f"[{self.name}] ({self.elapsed_s:.2f}s) {detail_text}"


@dataclasses.dataclass
class FlowResult:
    """Everything the flow produced."""

    technique: Technique
    netlist: Netlist
    placement: Placement
    constraints: Constraints
    parasitics: dict[str, Any]
    assignment: AssignmentResult | None
    smt_result: Any | None                 # technique-specific result
    network: VgndNetwork | None
    cts: CtsResult | None
    mte: MteTreeResult | None
    eco: EcoResult | None
    timing: TimingReport
    leakage: LeakageBreakdown
    total_area: float
    stages: list[StageReport]

    @property
    def leakage_nw(self) -> float:
        return self.leakage.total_nw

    def stage(self, name: str) -> StageReport:
        for report in self.stages:
            if report.name == name:
                return report
        raise KeyError(f"no stage named {name!r}")

    def render_stages(self) -> str:
        return "\n".join(stage.render() for stage in self.stages)


class SelectiveMtFlow:
    """Runs one technique end to end on a generic-gate netlist."""

    def __init__(self, netlist: Netlist, library: Library,
                 technique: Technique = Technique.IMPROVED_SMT,
                 config: FlowConfig | None = None):
        self.source_netlist = netlist
        self.library = library
        self.technique = technique
        self.config = config or FlowConfig()
        self.tech = library.tech
        if self.tech is None:
            raise FlowError("library carries no technology")
        self._stages: list[StageReport] = []

    # --- stage bookkeeping ------------------------------------------------------

    def _record(self, name: str, started: float, **details) -> StageReport:
        report = StageReport(name=name, elapsed_s=time.perf_counter() - started,
                             details=details)
        self._stages.append(report)
        return report

    # --- stages -------------------------------------------------------------------

    def _stage_physical_synthesis(self) -> tuple[Netlist, Placement]:
        """Fig. 4 box 1: synthesis with low-Vth cells + initial placement."""
        started = time.perf_counter()
        netlist = self.source_netlist.clone()
        technology_map(netlist, self.library, VARIANT_LVT)
        problems = check_netlist(netlist, self.library)
        if problems:
            raise FlowError(f"netlist invalid after mapping: {problems[:3]}")
        placer = GlobalPlacer(netlist, self.library,
                              utilization=self.config.utilization,
                              aspect_ratio=self.config.aspect_ratio,
                              iterations=self.config.placer_iterations,
                              seed=self.config.placement_seed)
        placement = placer.run()
        legalize(placement, netlist, self.library)
        self._record("physical_synthesis", started,
                     instances=len(netlist.instances),
                     die=f"{placement.floorplan.width:.0f}x"
                         f"{placement.floorplan.height:.0f}um")
        return netlist, placement

    def _derive_constraints(self, netlist: Netlist,
                            parasitics) -> Constraints:
        """Clock period = all-LVT critical delay x (1 + margin)."""
        if self.config.clock_period_ns is not None:
            return Constraints(clock_period=self.config.clock_period_ns)
        probe = Constraints(clock_period=1000.0)
        report = TimingAnalyzer(netlist, self.library, probe,
                                parasitics=parasitics).run()
        min_period = 1000.0 - report.wns
        if min_period <= 0:
            raise FlowError("could not derive a positive minimum period")
        return Constraints(
            clock_period=min_period * (1.0 + self.config.timing_margin))

    def _stage_assignment(self, netlist: Netlist, placement: Placement,
                          constraints: Constraints, parasitics):
        """Fig. 4 box 2 (+3 for improved): cell replacement.

        The assignment sees a guardbanded (slightly shorter) period so
        pre-route estimation error cannot break final timing closure.
        """
        constraints = constraints.scaled(
            1.0 - self.config.assignment_guardband)
        started = time.perf_counter()
        smt_result = None
        network = None
        if self.technique == Technique.DUAL_VTH:
            assigner = DualVthAssigner(
                netlist, self.library, constraints, parasitics=parasitics,
                fast_variant=VARIANT_LVT, slow_variant=VARIANT_HVT,
                rounds=self.config.assignment_rounds)
            assignment = assigner.run()
            self._record("vth_assignment", started,
                         low_vth=assignment.fast_count,
                         high_vth=assignment.slow_count,
                         sta_runs=assignment.sta_runs)
        elif self.technique == Technique.CONVENTIONAL_SMT:
            builder = ConventionalSmtBuilder(
                netlist, self.library, constraints, parasitics=parasitics,
                rounds=self.config.assignment_rounds)
            smt_result = builder.run()
            assignment = smt_result.assignment
            self._record("vth_assignment", started,
                         mt_cells=smt_result.mt_count,
                         high_vth=assignment.slow_count,
                         sta_runs=assignment.sta_runs)
        else:
            cluster_config = ClusterConfig(
                bounce_limit_v=self.config.bounce_limit_v(self.tech.vdd),
                max_rail_length_um=self.config.max_rail_length_um,
                max_cells_per_switch=self.config.max_cells_per_switch)
            builder = ImprovedSmtBuilder(
                netlist, self.library, constraints, placement,
                cluster_config=cluster_config, parasitics=parasitics,
                rounds=self.config.assignment_rounds)
            assignment = builder.assign()
            mt_names = builder.add_vgnd_ports(assignment)
            initial_switch = builder.insert_initial_switch(mt_names)
            holders = builder.insert_holders()
            self._record("vth_assignment", started,
                         mt_cells=len(mt_names),
                         high_vth=assignment.slow_count,
                         sta_runs=assignment.sta_runs)
            # The switch structure is built after ECO placement (the
            # replaced cells changed footprint); stash the context.
            self._improved_ctx = (builder, assignment, mt_names,
                                  initial_switch, holders)
        return assignment, smt_result, network

    def _stage_eco_placement(self, netlist: Netlist) -> Placement:
        """Re-place after replacement: MTV/CMT cells changed footprint.

        LVT/HVT/MT swaps are footprint-compatible, but the VGND-port
        and embedded-switch variants are larger, so the initial rows no
        longer fit; an ECO placement restores a legal, congestion-aware
        layout before the switch structure and routing are built.
        """
        started = time.perf_counter()
        placer = GlobalPlacer(netlist, self.library,
                              utilization=self.config.utilization,
                              aspect_ratio=self.config.aspect_ratio,
                              iterations=self.config.placer_iterations,
                              seed=self.config.placement_seed)
        placement = placer.run()
        legalize(placement, netlist, self.library)
        for port_name in netlist.ports:
            placement.ensure_port_location(port_name)
        self._record("eco_placement", started,
                     die=f"{placement.floorplan.width:.0f}x"
                         f"{placement.floorplan.height:.0f}um")
        return placement

    def _stage_switch_structure(self, placement: Placement):
        """Fig. 4 box 4: construct the shared switch structure."""
        if self._improved_ctx is None:
            return None, None
        builder, assignment, mt_names, initial_switch, holders = \
            self._improved_ctx
        builder.placement = placement
        started = time.perf_counter()
        network = builder.build_switch_structure(mt_names, initial_switch)
        smt_result = ImprovedSmtResult(
            assignment=assignment, mt_cell_names=mt_names,
            holder_names=holders, network=network,
            mte_net_name=builder.mte_net_name)
        self._record("switch_structure", started,
                     clusters=len(network.clusters),
                     holders=len(holders),
                     worst_bounce_mv=round(
                         network.worst_bounce_v() * 1e3, 2))
        return smt_result, network

    def _stage_routing(self, netlist: Netlist, placement: Placement,
                       constraints: Constraints, smt_result):
        """Fig. 4 box 5: routing including CTS, MTE buffering."""
        started = time.perf_counter()
        cts_result = None
        if any(inst.cell_name in self.library
               and self.library.cell(inst.cell_name).is_sequential
               for inst in netlist.instances.values()):
            cts = ClockTreeSynthesizer(
                netlist, self.library, placement,
                buffer_cell=self.config.cts_buffer_cell,
                fanout_limit=self.config.cts_fanout_limit)
            cts_result = cts.run()
        mte_result = None
        if self.technique != Technique.DUAL_VTH:
            mte = MteBufferTree(
                netlist, self.library, placement,
                buffer_cell=self.config.mte_buffer_cell,
                fanout_limit=self.config.mte_fanout_limit)
            mte_result = mte.run()
        legalize(placement, netlist, self.library)
        for port_name in netlist.ports:
            placement.ensure_port_location(port_name)
        extractor = PostRouteExtractor(netlist, placement, self.library)
        parasitics = extractor.extract()
        self._record(
            "routing_cts_mte", started,
            cts_buffers=cts_result.buffer_count if cts_result else 0,
            cts_skew_ps=round(cts_result.skew * 1e3, 1) if cts_result else 0,
            mte_buffers=mte_result.buffer_count if mte_result else 0,
            extracted_nets=len(parasitics))
        return parasitics, cts_result, mte_result

    def _stage_reoptimize(self, netlist: Netlist, placement: Placement,
                          network: VgndNetwork | None):
        """Fig. 4 box 6: switch re-optimization on post-route (SPEF) RC."""
        if network is None:
            return
        started = time.perf_counter()
        measured: dict[int, float] = {}
        for cluster in network.clusters:
            names = list(cluster.members)
            if cluster.switch_instance:
                names.append(cluster.switch_instance)
            points = [placement.locations.get(n, (0.0, 0.0)) for n in names]
            tree = build_mst(names, points)
            measured[cluster.index] = tree.total_length
        sizer = SwitchSizer(self.library, network.bounce_limit_v)
        outcome = sizer.reoptimize(network, measured, strict=False)
        splits = 0
        if outcome.unsizeable_clusters:
            # Structural half of the re-optimization: split clusters the
            # extracted rails show to be un-sizeable.
            splits = repair_unsizeable(
                netlist, self.library, placement, network, sizer,
                outcome.unsizeable_clusters)
            outcome = sizer.size_network(network)
        # Apply changed switch cells to the netlist instances.
        changed = 0
        for cluster in network.clusters:
            if cluster.switch_instance is None or cluster.switch_cell is None:
                continue
            inst = netlist.instances.get(cluster.switch_instance)
            if inst is not None and inst.cell_name != cluster.switch_cell:
                inst.cell_name = cluster.switch_cell
                changed += 1
        violations = check_em(network, self.library,
                              self.config.max_cells_per_switch)
        if violations:
            raise FlowError("EM violations after re-optimization: "
                            + "; ".join(v.render() for v in violations[:3]))
        self._record("spef_reoptimization", started,
                     resized=outcome.resized_clusters,
                     applied=changed, splits=splits,
                     worst_bounce_mv=round(outcome.worst_bounce_v * 1e3, 2))

    def _make_fast_swap(self, netlist: Netlist, network,
                        placement: Placement | None = None):
        """Technique-specific "re-accelerate this cell" ECO operation."""
        library = self.library

        def swap_dual(inst) -> bool:
            cell = library.cell(inst.cell_name)
            if not library.has_variant(cell, VARIANT_LVT):
                return False
            swap_variant(netlist, inst, library, VARIANT_LVT)
            return True

        def swap_conventional(inst) -> bool:
            from repro.liberty.library import VARIANT_CMT
            cell = library.cell(inst.cell_name)
            if not library.has_variant(cell, VARIANT_CMT):
                return False
            swap_variant(netlist, inst, library, VARIANT_CMT)
            mte_net = netlist.get_or_create_net("MTE")
            mte_pin = inst.pins.get("MTE")
            if mte_pin is not None and mte_pin.net is None:
                netlist.connect(inst, "MTE", mte_net, PinDirection.INPUT)
            return True

        def swap_improved(inst) -> bool:
            from repro.liberty.library import VARIANT_MTV
            cell = library.cell(inst.cell_name)
            if not library.has_variant(cell, VARIANT_MTV) \
                    or network is None or not network.clusters:
                return False
            swap_variant(netlist, inst, library, VARIANT_MTV)
            # Join the geometrically nearest cluster's rail.
            x = inst.attributes.get("x", 0.0)
            y = inst.attributes.get("y", 0.0)
            cluster = min(network.clusters,
                          key=lambda c: abs(c.centroid[0] - x)
                          + abs(c.centroid[1] - y))
            vgnd_net = netlist.get_or_create_net(cluster.net_name)
            vgnd_pin = inst.pins.get("VGND")
            if vgnd_pin is not None and vgnd_pin.net is None:
                netlist.connect(inst, "VGND", vgnd_net,
                                PinDirection.INOUT, keeper=True)
            cluster.members.append(inst.name)
            new_cell = library.cell(inst.cell_name)
            cluster.current_ma += new_cell.switching_current_ma \
                / max(len(cluster.members) ** 0.5, 1.0)
            sizer = SwitchSizer(library, network.bounce_limit_v)
            sizer.size_cluster(cluster)
            switch_inst = netlist.instances.get(cluster.switch_instance or "")
            if switch_inst is not None \
                    and switch_inst.cell_name != cluster.switch_cell:
                switch_inst.cell_name = cluster.switch_cell
            # The re-accelerated cell may now drive powered logic.
            new_holders = insert_output_holders(netlist, library, "MTE")
            if placement is not None:
                for holder_name in new_holders:
                    place_incremental(placement, netlist, library,
                                      holder_name, (x, y))
            return True

        if self.technique == Technique.DUAL_VTH:
            return swap_dual
        if self.technique == Technique.CONVENTIONAL_SMT:
            return swap_conventional
        return swap_improved

    def _stage_eco(self, netlist: Netlist, constraints: Constraints,
                   parasitics, network, cts_result,
                   placement: Placement | None = None):
        """Fig. 4 box 7: ECO (setup repair + hold fixing), final STA."""
        started = time.perf_counter()
        derates = None
        if network is not None:
            assumed = self.library.mt_assumed_bounce_v
            if assumed is None:
                assumed = self.library.tech.vdd * 0.04
            derates = network.derates(netlist, self.library, assumed)
        clock_arrivals = cts_result.clock_arrivals if cts_result else None

        setup_fixer = SetupFixer(
            netlist, self.library, constraints,
            fast_swap=self._make_fast_swap(netlist, network, placement),
            parasitics=parasitics, derates=derates,
            clock_arrivals=clock_arrivals)
        setup_result = setup_fixer.run()
        if network is not None and setup_result.swapped:
            # Cluster membership may have grown: refresh the derates.
            assumed = self.library.mt_assumed_bounce_v or \
                self.library.tech.vdd * 0.04
            derates = network.derates(netlist, self.library, assumed)

        fixer = HoldFixer(
            netlist, self.library, constraints, parasitics=parasitics,
            derates=derates, clock_arrivals=clock_arrivals,
            buffer_cell=self.config.hold_fix_buffer_cell,
            max_passes=self.config.max_hold_fix_passes)
        eco_result = fixer.run()
        self._record("eco_and_sta", started,
                     setup_swaps=setup_result.swap_count,
                     hold_buffers=eco_result.buffer_count,
                     wns=round(eco_result.final_report.wns, 4),
                     hold_wns=round(eco_result.final_report.hold_wns, 4))
        return eco_result

    # --- main ------------------------------------------------------------------------

    def run(self) -> FlowResult:
        self._stages = []
        self._improved_ctx = None
        netlist, placement = self._stage_physical_synthesis()
        pre_route = PreRouteEstimator(netlist, placement,
                                      self.library).extract()
        constraints = self._derive_constraints(netlist, pre_route)

        assignment, smt_result, network = self._stage_assignment(
            netlist, placement, constraints, pre_route)

        # Replacement changed cell footprints (MTV/CMT are larger):
        # refresh the placement, then build the switch structure on it.
        # The transient single-switch structure is torn down first (it
        # is about to be replaced by the clustered structure anyway).
        if self._improved_ctx is not None:
            builder, _a, mt_names, initial_switch, _h = self._improved_ctx
            builder.teardown_initial_switch(mt_names, initial_switch)
            self._improved_ctx = (builder, _a, mt_names, None, _h)
        placement = self._stage_eco_placement(netlist)
        if self._improved_ctx is not None:
            smt_result, network = self._stage_switch_structure(placement)

        parasitics, cts_result, mte_result = self._stage_routing(
            netlist, placement, constraints, smt_result)

        self._stage_reoptimize(netlist, placement, network)

        eco_result = self._stage_eco(netlist, constraints, parasitics,
                                     network, cts_result, placement)

        analyzer = LeakageAnalyzer(netlist, self.library)
        leakage = analyzer.standby_leakage()
        total_area = analyzer.total_area()
        return FlowResult(
            technique=self.technique,
            netlist=netlist,
            placement=placement,
            constraints=constraints,
            parasitics=parasitics,
            assignment=assignment,
            smt_result=smt_result,
            network=network,
            cts=cts_result,
            mte=mte_result,
            eco=eco_result,
            timing=eco_result.final_report,
            leakage=leakage,
            total_area=total_area,
            stages=list(self._stages))
