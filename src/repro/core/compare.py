"""Three-technique comparison (the Table 1 harness).

Runs Dual-Vth, conventional Selective-MT and improved Selective-MT on
the same circuit with identical constraints and reports area/leakage
normalized to the Dual-Vth baseline — the exact format of Table 1.
"""

from __future__ import annotations

import dataclasses

from repro.config import FlowConfig, Technique
from repro.core.flow import FlowResult, SelectiveMtFlow
from repro.liberty.library import Library
from repro.netlist.core import Netlist


@dataclasses.dataclass
class ComparisonRow:
    """Normalized area/leakage of one technique on one circuit."""

    circuit: str
    technique: Technique
    area_um2: float
    leakage_nw: float
    area_pct: float
    leakage_pct: float
    mt_cells: int = 0
    switches: int = 0
    holders: int = 0


@dataclasses.dataclass
class TechniqueComparison:
    """All three techniques on one circuit."""

    circuit: str
    rows: list[ComparisonRow]
    results: dict[Technique, FlowResult]

    def row(self, technique: Technique) -> ComparisonRow:
        for row in self.rows:
            if row.technique == technique:
                return row
        raise KeyError(f"no row for {technique}")

    def render(self) -> str:
        lines = [
            f"Circuit {self.circuit}",
            f"{'Technique':<18} {'Area':>10} {'Leakage':>10} "
            f"{'MT':>6} {'SW':>5} {'HOLD':>5}",
        ]
        for row in self.rows:
            lines.append(
                f"{row.technique.value:<18} {row.area_pct:9.2f}% "
                f"{row.leakage_pct:9.2f}% {row.mt_cells:6d} "
                f"{row.switches:5d} {row.holders:5d}")
        return "\n".join(lines)


def _count_kinds(result: FlowResult, library: Library) -> tuple[int, int, int]:
    mt = switches = holders = 0
    for inst in result.netlist.instances.values():
        if inst.cell_name not in library:
            continue
        cell = library.cell(inst.cell_name)
        if cell.is_mt:
            mt += 1
        elif cell.is_switch:
            switches += 1
        elif cell.is_holder:
            holders += 1
    return mt, switches, holders


def compare_techniques(netlist: Netlist, library: Library,
                       config: FlowConfig | None = None,
                       circuit_name: str | None = None,
                       techniques: tuple[Technique, ...] = (
                           Technique.DUAL_VTH,
                           Technique.CONVENTIONAL_SMT,
                           Technique.IMPROVED_SMT)) -> TechniqueComparison:
    """Run the requested techniques and normalize to Dual-Vth."""
    config = config or FlowConfig()
    circuit_name = circuit_name or netlist.name
    results: dict[Technique, FlowResult] = {}
    for technique in techniques:
        flow = SelectiveMtFlow(netlist, library, technique, config)
        results[technique] = flow.run()

    baseline = results.get(Technique.DUAL_VTH)
    base_area = baseline.total_area if baseline else 1.0
    base_leak = baseline.leakage_nw if baseline else 1.0

    rows = []
    for technique in techniques:
        result = results[technique]
        mt, switches, holders = _count_kinds(result, library)
        rows.append(ComparisonRow(
            circuit=circuit_name,
            technique=technique,
            area_um2=result.total_area,
            leakage_nw=result.leakage_nw,
            area_pct=100.0 * result.total_area / base_area,
            leakage_pct=100.0 * result.leakage_nw / base_leak,
            mt_cells=mt, switches=switches, holders=holders))
    return TechniqueComparison(circuit=circuit_name, rows=rows,
                               results=results)
