"""Three-technique comparison (the Table 1 harness).

Runs Dual-Vth, conventional Selective-MT and improved Selective-MT on
the same circuit with identical constraints and reports area/leakage
normalized to the Dual-Vth baseline — the exact format of Table 1.
"""

from __future__ import annotations

import dataclasses

from repro.config import FlowConfig, Technique
from repro.core.flow import FlowResult
from repro.liberty.library import Library
from repro.netlist.core import Netlist


@dataclasses.dataclass
class ComparisonRow:
    """Normalized area/leakage of one technique on one circuit."""

    circuit: str
    technique: Technique
    area_um2: float
    leakage_nw: float
    area_pct: float
    leakage_pct: float
    mt_cells: int = 0
    switches: int = 0
    holders: int = 0


@dataclasses.dataclass
class TechniqueComparison:
    """All three techniques on one circuit."""

    circuit: str
    rows: list[ComparisonRow]
    results: dict[Technique, FlowResult]

    def row(self, technique: Technique) -> ComparisonRow:
        for row in self.rows:
            if row.technique == technique:
                return row
        raise KeyError(f"no row for {technique}")

    def render(self) -> str:
        lines = [
            f"Circuit {self.circuit}",
            f"{'Technique':<18} {'Area':>10} {'Leakage':>10} "
            f"{'MT':>6} {'SW':>5} {'HOLD':>5}",
        ]
        for row in self.rows:
            lines.append(
                f"{row.technique.value:<18} {row.area_pct:9.2f}% "
                f"{row.leakage_pct:9.2f}% {row.mt_cells:6d} "
                f"{row.switches:5d} {row.holders:5d}")
        return "\n".join(lines)


def count_cell_kinds(netlist: Netlist,
                     library: Library) -> tuple[int, int, int]:
    """(MT cells, switches, holders) in a netlist — the Table 1 columns."""
    mt = switches = holders = 0
    for inst in netlist.instances.values():
        if inst.cell_name not in library:
            continue
        cell = library.cell(inst.cell_name)
        if cell.is_mt:
            mt += 1
        elif cell.is_switch:
            switches += 1
        elif cell.is_holder:
            holders += 1
    return mt, switches, holders


def compare_techniques(netlist: Netlist, library: Library,
                       config: FlowConfig | None = None,
                       circuit_name: str | None = None,
                       techniques: tuple[Technique, ...] = (
                           Technique.DUAL_VTH,
                           Technique.CONVENTIONAL_SMT,
                           Technique.IMPROVED_SMT),
                       jobs: int = 1) -> TechniqueComparison:
    """Run the requested techniques and normalize to Dual-Vth.

    .. deprecated:: shim over
        :func:`repro.api.studies.technique_comparison` — identical
        rows and ``results`` dict, but each call compiles a fresh
        workspace; hold a :class:`repro.api.Workspace` to reuse flow
        results across calls.

    ``jobs > 1`` fans the techniques out over the process-pool
    experiment runner; the rows are bit-identical to the serial path,
    but the heavyweight per-technique ``results`` dict stays empty
    (full :class:`FlowResult` objects do not cross process
    boundaries).
    """
    import warnings

    warnings.warn(
        "repro.core.compare.compare_techniques() is deprecated; use "
        "repro.api (Workspace.design(...).sweep() or "
        "repro.api.studies.technique_comparison)",
        DeprecationWarning, stacklevel=2)
    from repro.api.studies import technique_comparison

    return technique_comparison(netlist, library, config=config,
                                circuit_name=circuit_name,
                                techniques=techniques, jobs=jobs)
