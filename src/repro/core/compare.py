"""Three-technique comparison (the Table 1 harness).

Runs Dual-Vth, conventional Selective-MT and improved Selective-MT on
the same circuit with identical constraints and reports area/leakage
normalized to the Dual-Vth baseline — the exact format of Table 1.
"""

from __future__ import annotations

import dataclasses

from repro.config import FlowConfig, Technique
from repro.core.flow import FlowResult, SelectiveMtFlow
from repro.liberty.library import Library
from repro.netlist.core import Netlist


@dataclasses.dataclass
class ComparisonRow:
    """Normalized area/leakage of one technique on one circuit."""

    circuit: str
    technique: Technique
    area_um2: float
    leakage_nw: float
    area_pct: float
    leakage_pct: float
    mt_cells: int = 0
    switches: int = 0
    holders: int = 0


@dataclasses.dataclass
class TechniqueComparison:
    """All three techniques on one circuit."""

    circuit: str
    rows: list[ComparisonRow]
    results: dict[Technique, FlowResult]

    def row(self, technique: Technique) -> ComparisonRow:
        for row in self.rows:
            if row.technique == technique:
                return row
        raise KeyError(f"no row for {technique}")

    def render(self) -> str:
        lines = [
            f"Circuit {self.circuit}",
            f"{'Technique':<18} {'Area':>10} {'Leakage':>10} "
            f"{'MT':>6} {'SW':>5} {'HOLD':>5}",
        ]
        for row in self.rows:
            lines.append(
                f"{row.technique.value:<18} {row.area_pct:9.2f}% "
                f"{row.leakage_pct:9.2f}% {row.mt_cells:6d} "
                f"{row.switches:5d} {row.holders:5d}")
        return "\n".join(lines)


def count_cell_kinds(netlist: Netlist,
                     library: Library) -> tuple[int, int, int]:
    """(MT cells, switches, holders) in a netlist — the Table 1 columns."""
    mt = switches = holders = 0
    for inst in netlist.instances.values():
        if inst.cell_name not in library:
            continue
        cell = library.cell(inst.cell_name)
        if cell.is_mt:
            mt += 1
        elif cell.is_switch:
            switches += 1
        elif cell.is_holder:
            holders += 1
    return mt, switches, holders


def compare_techniques(netlist: Netlist, library: Library,
                       config: FlowConfig | None = None,
                       circuit_name: str | None = None,
                       techniques: tuple[Technique, ...] = (
                           Technique.DUAL_VTH,
                           Technique.CONVENTIONAL_SMT,
                           Technique.IMPROVED_SMT),
                       jobs: int = 1) -> TechniqueComparison:
    """Run the requested techniques and normalize to Dual-Vth.

    ``jobs > 1`` fans the techniques out over the process-pool
    experiment runner; the rows are bit-identical to the serial path,
    but the heavyweight per-technique ``results`` dict stays empty
    (full :class:`FlowResult` objects do not cross process
    boundaries).
    """
    config = config or FlowConfig()
    circuit_name = circuit_name or netlist.name
    if jobs > 1:
        from repro.runner import (
            ExperimentRunner,
            FlowJob,
            comparison_from_outcomes,
        )

        flow_jobs = [FlowJob(circuit=circuit_name, technique=technique,
                             config=config, netlist=netlist)
                     for technique in techniques]
        outcomes = ExperimentRunner(jobs=jobs, library=library).run(flow_jobs)
        return comparison_from_outcomes(circuit_name, outcomes)
    results: dict[Technique, FlowResult] = {}
    for technique in techniques:
        flow = SelectiveMtFlow(netlist, library, technique, config)
        results[technique] = flow.run()

    # Normalize to Dual-Vth when present; otherwise the first
    # requested technique becomes the 100 % reference (so a subset
    # comparison still prints meaningful relative numbers).
    baseline = results.get(Technique.DUAL_VTH)
    if baseline is None and techniques:
        baseline = results[techniques[0]]
    base_area = baseline.total_area if baseline else 1.0
    base_leak = baseline.leakage_nw if baseline else 1.0

    rows = []
    for technique in techniques:
        result = results[technique]
        mt, switches, holders = count_cell_kinds(result.netlist, library)
        rows.append(ComparisonRow(
            circuit=circuit_name,
            technique=technique,
            area_um2=result.total_area,
            leakage_nw=result.leakage_nw,
            area_pct=100.0 * result.total_area / base_area,
            leakage_pct=100.0 * result.leakage_nw / base_leak,
            mt_cells=mt, switches=switches, holders=holders))
    return TechniqueComparison(circuit=circuit_name, rows=rows,
                               results=results)
