"""Composable stage pipeline for the Fig. 4 design flow.

Every Fig. 4 box is a named :class:`Stage` in a module-level registry;
a *technique* is nothing more than a list of stage keys
(:data:`PIPELINES`).  Stages communicate through a typed
:class:`FlowContext` instead of positional returns or ad-hoc tuples,
so custom pipelines can be assembled, reordered or truncated in tests
and examples::

    from repro.core.stages import FlowContext, StageRunner, build_pipeline

    ctx = FlowContext.create(netlist, library, Technique.DUAL_VTH, config)
    StageRunner(build_pipeline(Technique.DUAL_VTH)).run(ctx)

or, with a hand-picked stage list::

    StageRunner(["physical_synthesis", "pre_route_estimation",
                 "derive_constraints"]).run(ctx)

A stage returns a details dict (recorded as a
:class:`StageReport` with its wall-clock) or ``None`` for hidden
plumbing stages (estimation, teardown, finalize) that Fig. 4 does not
draw as boxes.  Timing-heavy stages share one incremental
:class:`~repro.timing.session.TimingSession` per (constraints,
parasitics) regime — see ``ARCHITECTURE.md``.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Iterable

from repro.config import FlowConfig, Technique
from repro.core.dual_vth import AssignmentResult, DualVthAssigner
from repro.core.eco import EcoResult, HoldFixer, SetupFixer
from repro.core.improved_smt import ImprovedSmtBuilder, ImprovedSmtResult
from repro.core.mte import MteBufferTree, MteTreeResult
from repro.core.output_holder import insert_output_holders
from repro.core.selective_mt import ConventionalSmtBuilder, ConventionalSmtResult
from repro.cts.tree import ClockTreeSynthesizer, CtsResult
from repro.errors import FlowError
from repro.liberty.library import Library, VARIANT_HVT, VARIANT_LVT
from repro.netlist.core import Instance, Netlist, PinDirection
from repro.netlist.techmap import technology_map
from repro.netlist.transform import swap_variant
from repro.netlist.validate import check_netlist
from repro.obs.spans import timed_span
from repro.placement.legalize import legalize
from repro.placement.placer import (
    GlobalPlacer,
    Placement,
    place_incremental,
)
from repro.power.leakage import LeakageAnalyzer, LeakageBreakdown
from repro.routing.extract import (
    NetParasitics,
    PostRouteExtractor,
    PreRouteEstimator,
)
from repro.routing.steiner import build_mst
from repro.policy.optimize import PolicyOptimizer, PolicyResult
from repro.standby.engine import StandbyEngine, StandbyResult
from repro.standby.scenario import resolve_scenario
from repro.timing.constraints import Constraints
from repro.timing.session import TimingSession
from repro.timing.sta import TimingAnalyzer, TimingReport
from repro.variation.signoff import CornerResult
from repro.vgnd.cluster import ClusterConfig
from repro.vgnd.em import check_em
from repro.vgnd.network import VgndNetwork
from repro.vgnd.refine import repair_unsizeable
from repro.vgnd.sizing import SwitchSizer


@dataclasses.dataclass
class StageReport:
    """One executed flow stage (one Fig. 4 box)."""

    name: str
    elapsed_s: float
    details: dict[str, Any] = dataclasses.field(default_factory=dict)

    def render(self) -> str:
        detail_text = ", ".join(f"{k}={v}" for k, v in self.details.items())
        return f"[{self.name}] ({self.elapsed_s:.2f}s) {detail_text}"


@dataclasses.dataclass
class FlowContext:
    """Typed working state threaded through the stage pipeline.

    Replaces the old ``SelectiveMtFlow._improved_ctx`` tuple
    side-channel: every intermediate the improved technique carries
    between its boxes is a named field.
    """

    # Inputs (set at creation).
    technique: Technique
    config: FlowConfig
    library: Library
    source_netlist: Netlist

    # Produced by the pipeline.
    netlist: Netlist | None = None
    placement: Placement | None = None
    constraints: Constraints | None = None
    parasitics: dict[str, NetParasitics] = dataclasses.field(
        default_factory=dict)
    assignment: AssignmentResult | None = None
    smt_result: ConventionalSmtResult | ImprovedSmtResult | None = None
    network: VgndNetwork | None = None
    cts: CtsResult | None = None
    mte: MteTreeResult | None = None
    eco: EcoResult | None = None
    timing: TimingReport | None = None
    leakage: LeakageBreakdown | None = None
    total_area: float = 0.0
    corners: dict[str, CornerResult] = dataclasses.field(
        default_factory=dict)
    #: Corner-derived libraries shared by the signoff stages (derived
    #: at most once per corner per flow run).
    corner_libraries: dict[str, Library] = dataclasses.field(
        default_factory=dict)
    standby: "StandbyResult | None" = None
    policy: "PolicyResult | None" = None

    # Improved-SMT intermediates (between replacement and the switch
    # structure construction).
    improved_builder: ImprovedSmtBuilder | None = None
    mt_names: list[str] = dataclasses.field(default_factory=list)
    initial_switch: str | None = None
    holders: list[str] = dataclasses.field(default_factory=list)

    # Bookkeeping.
    stages: list[StageReport] = dataclasses.field(default_factory=list)
    sta_stats: dict[str, dict[str, int]] = dataclasses.field(
        default_factory=dict)

    @classmethod
    def create(cls, netlist: Netlist, library: Library,
               technique: Technique = Technique.IMPROVED_SMT,
               config: FlowConfig | None = None) -> "FlowContext":
        if library.tech is None:
            raise FlowError("library carries no technology")
        return cls(technique=technique, config=config or FlowConfig(),
                   library=library, source_netlist=netlist)

    @property
    def tech(self):
        return self.library.tech

    def require(self, *fields: str) -> None:
        """Fail fast when a stage runs before its prerequisites."""
        for field in fields:
            if getattr(self, field) is None:
                raise FlowError(
                    f"stage prerequisite {field!r} missing from the "
                    f"context; reorder the pipeline")

    def _make_session(self, constraints: Constraints,
                      derates=None, clock_arrivals=None
                      ) -> TimingSession | None:
        if not self.config.incremental_sta:
            return None
        return TimingSession(
            self.netlist, self.library, constraints,
            parasitics=self.parasitics, derates=derates,
            clock_arrivals=clock_arrivals,
            compute_backend=self.config.compute_backend)

    def _note_session(self, label: str, session: TimingSession | None,
                      details: dict[str, Any]) -> dict[str, Any]:
        if session is not None:
            stats = session.stats
            self.sta_stats[label] = stats.as_dict()
            details["sta_full"] = stats.full_runs
            details["sta_incremental"] = stats.incremental_runs
            details["sta_cached"] = stats.cached_reports
        return details


# --- registry ---------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class Stage:
    """A named, reusable flow step.

    ``key`` is the unique registry handle; ``label`` is the name the
    stage reports under (the three assignment stages all report as
    ``vth_assignment``, matching Fig. 4's single replacement box).
    """

    key: str
    fn: Callable[[FlowContext], dict[str, Any] | None]
    label: str

    def run(self, ctx: FlowContext) -> dict[str, Any] | None:
        return self.fn(ctx)


STAGES: dict[str, Stage] = {}


def register_stage(stage: Stage) -> Stage:
    if stage.key in STAGES:
        raise FlowError(f"duplicate stage key {stage.key!r}")
    STAGES[stage.key] = stage
    return stage


def flow_stage(key: str, label: str | None = None):
    """Decorator: register a function as a named flow stage."""
    def decorate(fn):
        register_stage(Stage(key=key, fn=fn, label=label or key))
        return fn
    return decorate


def resolve_stage(stage: "Stage | str") -> Stage:
    if isinstance(stage, Stage):
        return stage
    try:
        return STAGES[stage]
    except KeyError:
        raise FlowError(
            f"unknown stage {stage!r}; known: {sorted(STAGES)}") from None


#: The three Fig. 4 techniques expressed as stage lists.
PIPELINES: dict[Technique, tuple[str, ...]] = {
    Technique.DUAL_VTH: (
        "physical_synthesis",
        "pre_route_estimation",
        "derive_constraints",
        "dual_vth_assignment",
        "eco_placement",
        "routing_cts_mte",
        "eco_and_sta",
        "corner_signoff",
        "standby_signoff",
        "policy_signoff",
        "finalize",
    ),
    Technique.CONVENTIONAL_SMT: (
        "physical_synthesis",
        "pre_route_estimation",
        "derive_constraints",
        "conventional_smt_assignment",
        "eco_placement",
        "routing_cts_mte",
        "eco_and_sta",
        "corner_signoff",
        "standby_signoff",
        "policy_signoff",
        "finalize",
    ),
    Technique.IMPROVED_SMT: (
        "physical_synthesis",
        "pre_route_estimation",
        "derive_constraints",
        "improved_smt_assignment",
        "initial_switch_teardown",
        "eco_placement",
        "switch_structure",
        "routing_cts_mte",
        "spef_reoptimization",
        "eco_and_sta",
        "corner_signoff",
        "standby_signoff",
        "policy_signoff",
        "finalize",
    ),
}


def build_pipeline(technique: Technique) -> list[Stage]:
    """The registered stage list for one of the paper's techniques."""
    return [resolve_stage(key) for key in PIPELINES[technique]]


class StageRunner:
    """Executes a stage list over a context, recording stage reports."""

    def __init__(self, stages: Iterable[Stage | str]):
        self.stages = [resolve_stage(stage) for stage in stages]

    def run(self, ctx: FlowContext) -> FlowContext:
        for stage in self.stages:
            # timed_span is the same perf_counter enter/exit pair the
            # runner always used (StageReport.elapsed_s unchanged);
            # with tracing on it additionally records a nested span
            # per stage, carrying the stage's report details.
            sp = timed_span(f"stage.{stage.key}", label=stage.label)
            with sp:
                details = stage.run(ctx)
                if details is not None:
                    sp.set(**details)
            if details is not None:
                ctx.stages.append(StageReport(
                    name=stage.label, elapsed_s=sp.elapsed_s,
                    details=details))
        return ctx


# --- stage implementations (the Fig. 4 boxes) -------------------------------


@flow_stage("physical_synthesis")
def stage_physical_synthesis(ctx: FlowContext) -> dict[str, Any]:
    """Fig. 4 box 1: synthesis with low-Vth cells + initial placement."""
    netlist = ctx.source_netlist.clone()
    technology_map(netlist, ctx.library, VARIANT_LVT)
    problems = check_netlist(netlist, ctx.library)
    if problems:
        raise FlowError(f"netlist invalid after mapping: {problems[:3]}")
    placer = GlobalPlacer(netlist, ctx.library,
                          utilization=ctx.config.utilization,
                          aspect_ratio=ctx.config.aspect_ratio,
                          iterations=ctx.config.placer_iterations,
                          seed=ctx.config.placement_seed)
    placement = placer.run()
    legalize(placement, netlist, ctx.library)
    ctx.netlist = netlist
    ctx.placement = placement
    return {
        "instances": len(netlist.instances),
        "die": f"{placement.floorplan.width:.0f}x"
               f"{placement.floorplan.height:.0f}um",
    }


@flow_stage("pre_route_estimation")
def stage_pre_route_estimation(ctx: FlowContext) -> None:
    """Hidden plumbing: pre-route RC estimates for the assignment STA."""
    ctx.require("netlist", "placement")
    ctx.parasitics = PreRouteEstimator(ctx.netlist, ctx.placement,
                                       ctx.library).extract()
    return None


@flow_stage("derive_constraints")
def stage_derive_constraints(ctx: FlowContext) -> None:
    """Clock period = all-LVT critical delay x (1 + margin)."""
    ctx.require("netlist")
    if ctx.config.clock_period_ns is not None:
        ctx.constraints = Constraints(clock_period=ctx.config.clock_period_ns)
        return None
    probe = Constraints(clock_period=1000.0)
    report = TimingAnalyzer(ctx.netlist, ctx.library, probe,
                            parasitics=ctx.parasitics,
                            compute_backend=ctx.config.compute_backend).run()
    min_period = 1000.0 - report.wns
    if min_period <= 0:
        raise FlowError("could not derive a positive minimum period")
    ctx.constraints = Constraints(
        clock_period=min_period * (1.0 + ctx.config.timing_margin))
    return None


def _guardbanded(ctx: FlowContext) -> Constraints:
    """The assignment sees a guardbanded (slightly shorter) period so
    pre-route estimation error cannot break final timing closure."""
    ctx.require("constraints")
    return ctx.constraints.scaled(1.0 - ctx.config.assignment_guardband)


@flow_stage("dual_vth_assignment", label="vth_assignment")
def stage_dual_vth_assignment(ctx: FlowContext) -> dict[str, Any]:
    """Fig. 4 box 2 for the Dual-Vth baseline [Wei et al. 2000]."""
    ctx.require("netlist")
    constraints = _guardbanded(ctx)
    session = ctx._make_session(constraints)
    assigner = DualVthAssigner(
        ctx.netlist, ctx.library, constraints, parasitics=ctx.parasitics,
        fast_variant=VARIANT_LVT, slow_variant=VARIANT_HVT,
        rounds=ctx.config.assignment_rounds, session=session,
        compute_backend=ctx.config.compute_backend)
    assignment = assigner.run()
    ctx.assignment = assignment
    return ctx._note_session("vth_assignment", session, {
        "low_vth": assignment.fast_count,
        "high_vth": assignment.slow_count,
        "sta_runs": assignment.sta_runs,
    })


@flow_stage("conventional_smt_assignment", label="vth_assignment")
def stage_conventional_smt_assignment(ctx: FlowContext) -> dict[str, Any]:
    """Fig. 4 box 2, fast class = conventional MT-cells (Fig. 2)."""
    ctx.require("netlist")
    constraints = _guardbanded(ctx)
    session = ctx._make_session(constraints)
    builder = ConventionalSmtBuilder(
        ctx.netlist, ctx.library, constraints, parasitics=ctx.parasitics,
        rounds=ctx.config.assignment_rounds, session=session,
        compute_backend=ctx.config.compute_backend)
    smt_result = builder.run()
    ctx.smt_result = smt_result
    ctx.assignment = smt_result.assignment
    return ctx._note_session("vth_assignment", session, {
        "mt_cells": smt_result.mt_count,
        "high_vth": smt_result.assignment.slow_count,
        "sta_runs": smt_result.assignment.sta_runs,
    })


@flow_stage("improved_smt_assignment", label="vth_assignment")
def stage_improved_smt_assignment(ctx: FlowContext) -> dict[str, Any]:
    """Fig. 4 boxes 2+3: MT replacement, VGND ports, initial switch."""
    ctx.require("netlist", "placement")
    constraints = _guardbanded(ctx)
    config = ctx.config
    cluster_config = ClusterConfig(
        bounce_limit_v=config.bounce_limit_v(ctx.tech.vdd),
        max_rail_length_um=config.max_rail_length_um,
        max_cells_per_switch=config.max_cells_per_switch,
        simultaneity_exponent=config.simultaneity_exponent,
        simultaneity_floor=config.simultaneity_floor)
    session = ctx._make_session(constraints)
    builder = ImprovedSmtBuilder(
        ctx.netlist, ctx.library, constraints, ctx.placement,
        cluster_config=cluster_config, parasitics=ctx.parasitics,
        rounds=config.assignment_rounds, session=session,
        compute_backend=config.compute_backend)
    assignment = builder.assign()
    mt_names = builder.add_vgnd_ports(assignment)
    initial_switch = builder.insert_initial_switch(mt_names)
    holders = builder.insert_holders()
    # The switch structure is built after ECO placement (the replaced
    # cells changed footprint); keep the intermediates on the context.
    ctx.assignment = assignment
    ctx.improved_builder = builder
    ctx.mt_names = mt_names
    ctx.initial_switch = initial_switch
    ctx.holders = holders
    return ctx._note_session("vth_assignment", session, {
        "mt_cells": len(mt_names),
        "high_vth": assignment.slow_count,
        "sta_runs": assignment.sta_runs,
    })


@flow_stage("initial_switch_teardown")
def stage_initial_switch_teardown(ctx: FlowContext) -> None:
    """Hidden plumbing: drop the transient single-switch structure.

    It is about to be replaced by the clustered structure, and the
    replaced cells changed footprint, so it must not survive into the
    ECO placement.
    """
    if ctx.improved_builder is None:
        return None
    ctx.improved_builder.teardown_initial_switch(ctx.mt_names,
                                                 ctx.initial_switch)
    ctx.initial_switch = None
    return None


@flow_stage("eco_placement")
def stage_eco_placement(ctx: FlowContext) -> dict[str, Any]:
    """Re-place after replacement: MTV/CMT cells changed footprint.

    LVT/HVT/MT swaps are footprint-compatible, but the VGND-port and
    embedded-switch variants are larger, so the initial rows no longer
    fit; an ECO placement restores a legal, congestion-aware layout
    before the switch structure and routing are built.
    """
    ctx.require("netlist")
    placer = GlobalPlacer(ctx.netlist, ctx.library,
                          utilization=ctx.config.utilization,
                          aspect_ratio=ctx.config.aspect_ratio,
                          iterations=ctx.config.placer_iterations,
                          seed=ctx.config.placement_seed)
    placement = placer.run()
    legalize(placement, ctx.netlist, ctx.library)
    for port_name in ctx.netlist.ports:
        placement.ensure_port_location(port_name)
    ctx.placement = placement
    return {
        "die": f"{placement.floorplan.width:.0f}x"
               f"{placement.floorplan.height:.0f}um",
    }


@flow_stage("switch_structure")
def stage_switch_structure(ctx: FlowContext) -> dict[str, Any] | None:
    """Fig. 4 box 4: construct the shared switch structure."""
    if ctx.improved_builder is None:
        return None
    ctx.require("placement")
    builder = ctx.improved_builder
    builder.placement = ctx.placement
    network = builder.build_switch_structure(ctx.mt_names,
                                             ctx.initial_switch)
    ctx.network = network
    ctx.smt_result = ImprovedSmtResult(
        assignment=ctx.assignment, mt_cell_names=ctx.mt_names,
        holder_names=ctx.holders, network=network,
        mte_net_name=builder.mte_net_name)
    return {
        "clusters": len(network.clusters),
        "holders": len(ctx.holders),
        "worst_bounce_mv": round(network.worst_bounce_v() * 1e3, 2),
    }


@flow_stage("routing_cts_mte")
def stage_routing_cts_mte(ctx: FlowContext) -> dict[str, Any]:
    """Fig. 4 box 5: routing including CTS, MTE buffering."""
    ctx.require("netlist", "placement")
    netlist = ctx.netlist
    placement = ctx.placement
    cts_result = None
    if any(inst.cell_name in ctx.library
           and ctx.library.cell(inst.cell_name).is_sequential
           for inst in netlist.instances.values()):
        cts = ClockTreeSynthesizer(
            netlist, ctx.library, placement,
            buffer_cell=ctx.config.cts_buffer_cell,
            fanout_limit=ctx.config.cts_fanout_limit)
        cts_result = cts.run()
    mte_result = None
    if ctx.technique != Technique.DUAL_VTH:
        mte = MteBufferTree(
            netlist, ctx.library, placement,
            buffer_cell=ctx.config.mte_buffer_cell,
            fanout_limit=ctx.config.mte_fanout_limit)
        mte_result = mte.run()
    legalize(placement, netlist, ctx.library)
    for port_name in netlist.ports:
        placement.ensure_port_location(port_name)
    extractor = PostRouteExtractor(netlist, placement, ctx.library)
    ctx.parasitics = extractor.extract()
    ctx.cts = cts_result
    ctx.mte = mte_result
    return {
        "cts_buffers": cts_result.buffer_count if cts_result else 0,
        "cts_skew_ps": round(cts_result.skew * 1e3, 1) if cts_result else 0,
        "mte_buffers": mte_result.buffer_count if mte_result else 0,
        "extracted_nets": len(ctx.parasitics),
    }


@flow_stage("spef_reoptimization")
def stage_spef_reoptimization(ctx: FlowContext) -> dict[str, Any] | None:
    """Fig. 4 box 6: switch re-optimization on post-route (SPEF) RC."""
    network = ctx.network
    if network is None:
        return None
    ctx.require("netlist", "placement")
    netlist = ctx.netlist
    placement = ctx.placement
    measured: dict[int, float] = {}
    for cluster in network.clusters:
        names = list(cluster.members)
        if cluster.switch_instance:
            names.append(cluster.switch_instance)
        points = [placement.locations.get(n, (0.0, 0.0)) for n in names]
        tree = build_mst(names, points)
        measured[cluster.index] = tree.total_length
    sizer = SwitchSizer(ctx.library, network.bounce_limit_v)
    outcome = sizer.reoptimize(network, measured, strict=False)
    splits = 0
    if outcome.unsizeable_clusters:
        # Structural half of the re-optimization: split clusters the
        # extracted rails show to be un-sizeable.
        splits = repair_unsizeable(
            netlist, ctx.library, placement, network, sizer,
            outcome.unsizeable_clusters,
            simultaneity_exponent=ctx.config.simultaneity_exponent,
            simultaneity_floor=ctx.config.simultaneity_floor)
        outcome = sizer.size_network(network)
    # Apply changed switch cells to the netlist instances.
    changed = 0
    for cluster in network.clusters:
        if cluster.switch_instance is None or cluster.switch_cell is None:
            continue
        inst = netlist.instances.get(cluster.switch_instance)
        if inst is not None and inst.cell_name != cluster.switch_cell:
            inst.cell_name = cluster.switch_cell
            changed += 1
    violations = check_em(network, ctx.library,
                          ctx.config.max_cells_per_switch)
    if violations:
        raise FlowError("EM violations after re-optimization: "
                        + "; ".join(v.render() for v in violations[:3]))
    return {
        "resized": outcome.resized_clusters,
        "applied": changed,
        "splits": splits,
        "worst_bounce_mv": round(outcome.worst_bounce_v * 1e3, 2),
    }


def make_fast_swap(ctx: FlowContext,
                   session: TimingSession | None = None
                   ) -> Callable[[Instance], bool]:
    """Technique-specific "re-accelerate this cell" ECO operation.

    When a timing session is supplied, every netlist mutation the swap
    performs is reported to it so the ECO loop stays incremental.
    """
    library = ctx.library
    netlist = ctx.netlist
    network = ctx.network
    placement = ctx.placement

    def swap_cell(inst, variant) -> None:
        if session is not None:
            session.swap_variant(inst, variant)
        else:
            swap_variant(netlist, inst, library, variant)

    def swap_dual(inst) -> bool:
        cell = library.cell(inst.cell_name)
        if not library.has_variant(cell, VARIANT_LVT):
            return False
        swap_cell(inst, VARIANT_LVT)
        return True

    def swap_conventional(inst) -> bool:
        from repro.liberty.library import VARIANT_CMT
        cell = library.cell(inst.cell_name)
        if not library.has_variant(cell, VARIANT_CMT):
            return False
        swap_cell(inst, VARIANT_CMT)
        mte_net = netlist.get_or_create_net("MTE")
        mte_pin = inst.pins.get("MTE")
        if mte_pin is not None and mte_pin.net is None:
            netlist.connect(inst, "MTE", mte_net, PinDirection.INPUT)
            if session is not None:
                session.touch_structural()
                session.touch_net(mte_net)
        return True

    def swap_improved(inst) -> bool:
        from repro.liberty.library import VARIANT_MTV
        cell = library.cell(inst.cell_name)
        if not library.has_variant(cell, VARIANT_MTV) \
                or network is None or not network.clusters:
            return False
        swap_cell(inst, VARIANT_MTV)
        # Join the geometrically nearest cluster's rail.
        x = inst.attributes.get("x", 0.0)
        y = inst.attributes.get("y", 0.0)
        cluster = min(network.clusters,
                      key=lambda c: abs(c.centroid[0] - x)
                      + abs(c.centroid[1] - y))
        vgnd_net = netlist.get_or_create_net(cluster.net_name)
        vgnd_pin = inst.pins.get("VGND")
        if vgnd_pin is not None and vgnd_pin.net is None:
            netlist.connect(inst, "VGND", vgnd_net,
                            PinDirection.INOUT, keeper=True)
        cluster.members.append(inst.name)
        new_cell = library.cell(inst.cell_name)
        cluster.current_ma += new_cell.switching_current_ma \
            / max(len(cluster.members) ** 0.5, 1.0)
        sizer = SwitchSizer(library, network.bounce_limit_v)
        sizer.size_cluster(cluster)
        switch_inst = netlist.instances.get(cluster.switch_instance or "")
        if switch_inst is not None \
                and switch_inst.cell_name != cluster.switch_cell:
            switch_inst.cell_name = cluster.switch_cell
        # The re-accelerated cell may now drive powered logic.
        new_holders = insert_output_holders(netlist, library, "MTE")
        if placement is not None:
            for holder_name in new_holders:
                place_incremental(placement, netlist, library,
                                  holder_name, (x, y))
        if session is not None and new_holders:
            session.touch_structural()
            for holder_name in new_holders:
                holder = netlist.instances[holder_name]
                z_pin = holder.pins.get("Z")
                if z_pin is not None and z_pin.net is not None:
                    session.touch_net(z_pin.net)   # keeper adds load
        return True

    if ctx.technique == Technique.DUAL_VTH:
        return swap_dual
    if ctx.technique == Technique.CONVENTIONAL_SMT:
        return swap_conventional
    return swap_improved


@flow_stage("eco_and_sta")
def stage_eco_and_sta(ctx: FlowContext) -> dict[str, Any]:
    """Fig. 4 box 7: ECO (setup repair + hold fixing), final STA."""
    ctx.require("netlist", "constraints")
    netlist = ctx.netlist
    library = ctx.library
    network = ctx.network
    derates = None
    if network is not None:
        assumed = library.mt_assumed_bounce_v
        if assumed is None:
            assumed = library.tech.vdd * 0.04
        derates = network.derates(netlist, library, assumed)
    clock_arrivals = ctx.cts.clock_arrivals if ctx.cts else None
    session = ctx._make_session(ctx.constraints, derates=derates,
                                clock_arrivals=clock_arrivals)

    setup_fixer = SetupFixer(
        netlist, library, ctx.constraints,
        fast_swap=make_fast_swap(ctx, session),
        parasitics=ctx.parasitics, derates=derates,
        clock_arrivals=clock_arrivals, session=session,
        compute_backend=ctx.config.compute_backend)
    setup_result = setup_fixer.run()
    if network is not None and setup_result.swapped:
        # Cluster membership may have grown: refresh the derates.
        assumed = library.mt_assumed_bounce_v or library.tech.vdd * 0.04
        derates = network.derates(netlist, library, assumed)
        if session is not None:
            session.set_derates(derates)

    fixer = HoldFixer(
        netlist, library, ctx.constraints, parasitics=ctx.parasitics,
        derates=derates, clock_arrivals=clock_arrivals,
        buffer_cell=ctx.config.hold_fix_buffer_cell,
        max_passes=ctx.config.max_hold_fix_passes, session=session,
        compute_backend=ctx.config.compute_backend)
    eco_result = fixer.run()
    ctx.eco = eco_result
    ctx.timing = eco_result.final_report
    return ctx._note_session("eco_and_sta", session, {
        "setup_swaps": setup_result.swap_count,
        "hold_buffers": eco_result.buffer_count,
        "wns": round(eco_result.final_report.wns, 4),
        "hold_wns": round(eco_result.final_report.hold_wns, 4),
    })


@flow_stage("corner_signoff")
def stage_corner_signoff(ctx: FlowContext) -> dict[str, Any] | None:
    """PVT corner signoff of the finished design (variation engine).

    Re-evaluates the final netlist's standby leakage and timing at
    each corner named in ``FlowConfig.signoff_corners`` using
    corner-derived libraries; with no corners configured the stage is
    invisible (no report), so single-point flows are untouched.
    """
    names = ctx.config.signoff_corners
    if not names:
        return None
    ctx.require("netlist", "constraints")
    from repro.variation.corners import (
        derive_corner_library_cached,
        resolve_corner,
    )
    from repro.variation.signoff import evaluate_corners_batched

    for name in names:
        if name not in ctx.corner_libraries:
            corner = resolve_corner(name, ctx.tech)
            ctx.corner_libraries[name] = derive_corner_library_cached(
                ctx.library, corner)
    clock_arrivals = ctx.cts.clock_arrivals if ctx.cts else None
    ctx.corners = evaluate_corners_batched(
        ctx.netlist, ctx.library, names, ctx.constraints,
        parasitics=ctx.parasitics, network=ctx.network,
        clock_arrivals=clock_arrivals,
        compute_backend=ctx.config.compute_backend,
        corner_libraries=ctx.corner_libraries)
    worst_leak = max(ctx.corners.values(), key=lambda r: r.leakage_nw)
    worst_wns = min(ctx.corners.values(), key=lambda r: r.wns)
    return {
        "corners": len(ctx.corners),
        "worst_leakage_nw": round(worst_leak.leakage_nw, 3),
        "worst_leakage_corner": worst_leak.corner.name,
        "worst_wns": round(worst_wns.wns, 4),
        "worst_wns_corner": worst_wns.corner.name,
    }


@flow_stage("standby_signoff")
def stage_standby_signoff(ctx: FlowContext) -> dict[str, Any] | None:
    """Standby-transition signoff (repro.standby).

    Characterizes the VGND network's sleep/wake transients, builds the
    rush-current-bounded wake-up schedule and evaluates every
    power-mode scenario named in ``FlowConfig.standby_scenarios`` —
    at each signoff corner when corners are configured, at the
    technology's default signoff set otherwise (the same fallback
    ``Design.standby()`` uses, so the two entry points agree for any
    configuration).  Invisible (no report) with no scenarios
    configured, and for techniques without a shared-switch network
    (Dual-Vth and the conventional SMT have nothing to schedule).
    """
    names = ctx.config.standby_scenarios
    if not names:
        return None
    network = ctx.network
    if network is None or not network.clusters:
        return None
    ctx.require("netlist")
    from repro.variation.corners import default_signoff_corners

    scenarios = [resolve_scenario(name) for name in names]
    corners = ctx.config.signoff_corners \
        or default_signoff_corners(ctx.tech)
    engine = StandbyEngine(
        ctx.netlist, ctx.library, network, scenarios, corners=corners,
        settle_fraction=ctx.config.standby_settle_fraction,
        rush_budget_ma=ctx.config.standby_rush_budget_ma,
        parasitics=ctx.parasitics,
        compute_backend=ctx.config.compute_backend,
        corner_libraries=ctx.corner_libraries,
        circuit=ctx.source_netlist.name, technique=ctx.technique)
    result = engine.run()
    ctx.standby = result
    first = result.corner_rows[0]
    return {
        "scenarios": len(result.scenarios),
        "corners": len(result.corners),
        "corner": first.corner,   # the corner the numbers below are at
        "wake_latency_ns": round(first.wake_latency_ns, 4),
        "peak_rush_ma": round(first.peak_rush_ma, 3),
        "break_even_ns": (round(first.break_even_ns, 1)
                          if first.break_even_ns != float("inf")
                          else "inf"),
    }


@flow_stage("policy_signoff")
def stage_policy_signoff(ctx: FlowContext) -> dict[str, Any] | None:
    """Sleep-policy signoff (repro.policy).

    Sweeps ``FlowConfig.policy_candidates`` candidate
    (domain plan, per-domain threshold) policies against the standby
    workloads and signoff corners in one batched pass, keeping the
    Pareto front of (net savings, worst wake latency, peak rush).
    Invisible with ``policy_candidates == 0``, with no standby
    scenarios configured, and for techniques without a shared-switch
    network.  Reuses the corner libraries the earlier signoff stages
    derived.
    """
    if ctx.config.policy_candidates < 1:
        return None
    names = ctx.config.standby_scenarios
    if not names:
        return None
    network = ctx.network
    if network is None or not network.clusters:
        return None
    ctx.require("netlist")
    from repro.variation.corners import default_signoff_corners

    scenarios = [resolve_scenario(name) for name in names]
    corners = ctx.config.signoff_corners \
        or default_signoff_corners(ctx.tech)
    optimizer = PolicyOptimizer(
        ctx.netlist, ctx.library, network, scenarios, corners=corners,
        candidates=ctx.config.policy_candidates,
        max_domains=ctx.config.policy_max_domains,
        settle_fraction=ctx.config.standby_settle_fraction,
        rush_budget_ma=ctx.config.standby_rush_budget_ma,
        parasitics=ctx.parasitics,
        compute_backend=ctx.config.compute_backend,
        corner_libraries=ctx.corner_libraries,
        circuit=ctx.source_netlist.name, technique=ctx.technique)
    result = optimizer.run()
    ctx.policy = result
    best = result.best
    return {
        "candidates": result.candidates,
        "pareto_points": len(result.pareto),
        "best_plan": best.plan,
        "best_net_savings_pj": round(best.net_savings_pj, 3),
        "best_wake_latency_ns": round(best.worst_wake_latency_ns, 4),
        "oracle_net_savings_pj": round(result.oracle_net_savings_pj,
                                       3),
    }


@flow_stage("finalize")
def stage_finalize(ctx: FlowContext) -> None:
    """Hidden plumbing: standby leakage + area accounting."""
    ctx.require("netlist")
    analyzer = LeakageAnalyzer(ctx.netlist, ctx.library,
                               compute_backend=ctx.config.compute_backend)
    ctx.leakage = analyzer.standby_leakage()
    ctx.total_area = analyzer.total_area()
    return None
