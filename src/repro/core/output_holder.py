"""Output holder insertion (§2/§3 rule).

During standby an improved MT-cell's output floats (its ground is cut).
If that output feeds a *powered* cell (high-Vth gate, flip-flop, or a
primary output), the floating node would cause unexpected power
dissipation — so an output holder is inserted to pin the net to logic
one.  "The output holder is not necessary for all MT-cells ... when all
fanouts of the MT-cell are connected to MT-cells, an output holder is
unnecessary."

(The conventional MT-cell embeds a holder in every cell — part of its
area overhead; the improved technique pays for holders only on MT
region boundaries.)
"""

from __future__ import annotations

from repro.liberty.library import CellKind, Library
from repro.netlist.core import Net, Netlist, PinDirection

HOLDER_CELL = "HOLDER_X1"


def _is_mt_instance(netlist: Netlist, library: Library, inst_name: str) -> bool:
    inst = netlist.instances.get(inst_name)
    if inst is None or inst.cell_name not in library:
        return False
    return library.cell(inst.cell_name).is_improved_mt


def nets_needing_holders(netlist: Netlist, library: Library) -> list[Net]:
    """Nets driven by an improved MT-cell with at least one powered sink.

    Powered sinks are: non-MT instances (high-Vth cells, flip-flops,
    buffers), and primary output ports.  Switch cells never appear as
    logic sinks; holders already present are skipped by the caller.
    """
    result = []
    for net in netlist.nets.values():
        if net.driver is None:
            continue
        driver_inst = net.driver.instance
        if not _is_mt_instance(netlist, library, driver_inst.name):
            continue
        needs = bool(net.sink_ports)
        if not needs:
            for sink in net.sinks:
                cell = library.cells.get(sink.instance.cell_name)
                if cell is None:
                    continue
                if cell.kind in (CellKind.SWITCH, CellKind.HOLDER):
                    continue
                if not cell.is_improved_mt:
                    needs = True
                    break
        if needs:
            result.append(net)
    return result


def insert_output_holders(netlist: Netlist, library: Library,
                          mte_net_name: str = "MTE") -> list[str]:
    """Insert holders on every net that needs one; returns their names.

    Idempotent: nets that already carry a holder keeper are skipped.
    """
    mte_net = netlist.get_or_create_net(mte_net_name)
    inserted: list[str] = []
    for net in nets_needing_holders(netlist, library):
        if any(_is_holder(netlist, library, pin.instance.name)
               for pin in net.keepers):
            continue
        name = netlist.unique_name(f"hold_{net.name}")
        holder = netlist.add_instance(name, HOLDER_CELL)
        netlist.connect(holder, "Z", net, PinDirection.INOUT, keeper=True)
        netlist.connect(holder, "MTE", mte_net, PinDirection.INPUT)
        inserted.append(name)
    return inserted


def _is_holder(netlist: Netlist, library: Library, inst_name: str) -> bool:
    inst = netlist.instances.get(inst_name)
    if inst is None or inst.cell_name not in library:
        return False
    return library.cell(inst.cell_name).kind == CellKind.HOLDER


def holder_statistics(netlist: Netlist, library: Library) -> dict[str, int]:
    """Counts for reporting: MT cells, holders, boundary nets."""
    mt_count = 0
    holder_count = 0
    for inst in netlist.instances.values():
        if inst.cell_name not in library:
            continue
        cell = library.cell(inst.cell_name)
        if cell.is_improved_mt:
            mt_count += 1
        elif cell.kind == CellKind.HOLDER:
            holder_count += 1
    return {
        "mt_cells": mt_count,
        "holders": holder_count,
        "boundary_nets": len(nets_needing_holders(netlist, library)),
    }
