"""The paper's primary contribution: the Selective-MT methodology.

* :mod:`repro.core.dual_vth` — slack-driven Vth assignment (the
  Dual-Vth baseline [Wei, CICC'00] and the shared engine of both SMT
  techniques, which the paper says replace cells "by the method which
  is similar to the way of generating the Dual-Vth circuit").
* :mod:`repro.core.selective_mt` — conventional Selective-MT
  construction (Fig. 2): per-cell embedded switches.
* :mod:`repro.core.improved_smt` — improved Selective-MT construction
  (Fig. 3): VGND-port MT-cells, shared switch transistors, selective
  output holders.
* :mod:`repro.core.output_holder` — the holder insertion rule.
* :mod:`repro.core.mte` — sleep-signal (MTE) buffer tree.
* :mod:`repro.core.eco` — hold-violation fixing ECO.
* :mod:`repro.core.flow` — the full Fig. 4 flow driver.
* :mod:`repro.core.compare` — the three-technique Table 1 harness.
"""

from repro.core.compare import ComparisonRow, TechniqueComparison
from repro.core.dual_vth import AssignmentResult, DualVthAssigner
from repro.core.flow import FlowResult, SelectiveMtFlow, StageReport
from repro.core.improved_smt import ImprovedSmtBuilder
from repro.core.output_holder import insert_output_holders, nets_needing_holders
from repro.core.selective_mt import ConventionalSmtBuilder

__all__ = [
    "ComparisonRow",
    "TechniqueComparison",
    "AssignmentResult",
    "DualVthAssigner",
    "FlowResult",
    "SelectiveMtFlow",
    "StageReport",
    "ImprovedSmtBuilder",
    "insert_output_holders",
    "nets_needing_holders",
    "ConventionalSmtBuilder",
]
