"""Design-database export.

After a flow completes, a downstream team needs the full hand-off
package, not a Python object: gate-level Verilog, DEF placement, SPEF
parasitics, SDC constraints, the `.lib` the design was mapped against,
and human-readable reports.  :func:`export_design` writes all of them
plus a manifest, and :func:`verify_export` re-parses every machine-
readable artifact to prove the package is self-consistent.
"""

from __future__ import annotations

import dataclasses
import json
import os

from repro.core.flow import FlowResult
from repro.liberty.library import Library
from repro.liberty.parser import parse_liberty
from repro.liberty.library import library_from_ast
from repro.liberty.writer import write_liberty
from repro.netlist.verilog_io import parse_verilog, write_verilog
from repro.placement.defio import placement_from_def, write_def
from repro.power.report import render_leakage_table
from repro.routing.spef import parse_spef, write_spef
from repro.timing.sdc import parse_sdc, write_sdc


@dataclasses.dataclass
class ExportManifest:
    """What was written where."""

    directory: str
    design: str
    technique: str
    files: dict[str, str]

    def path(self, kind: str) -> str:
        return self.files[kind]

    def as_dict(self) -> dict:
        from repro.api import schemas  # lazy: loads the registry

        return schemas.to_dict(self)


def export_design(result: FlowResult, library: Library,
                  directory: str) -> ExportManifest:
    """Write the complete hand-off package for a finished flow."""
    os.makedirs(directory, exist_ok=True)
    design = result.netlist.name
    files: dict[str, str] = {}

    def emit(kind: str, filename: str, text: str):
        path = os.path.join(directory, filename)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
        files[kind] = path

    emit("verilog", f"{design}.v", write_verilog(result.netlist))
    emit("def", f"{design}.def", write_def(result.netlist,
                                           result.placement))
    emit("spef", f"{design}.spef",
         write_spef(result.parasitics, design_name=design))
    emit("sdc", f"{design}.sdc", write_sdc(result.constraints))
    emit("liberty", f"{library.name}.lib", write_liberty(library))

    report_lines = [
        f"Design   : {design}",
        f"Technique: {result.technique.value}",
        "",
        result.render_stages(),
        "",
        render_leakage_table(result.leakage),
        "",
        f"Total cell area: {result.total_area:.2f} um^2",
        f"Final timing   : {result.timing.summary()}",
    ]
    if result.network is not None:
        summary = result.network.summary()
        report_lines.append(
            f"VGND network   : {summary['clusters']:.0f} clusters, worst "
            f"bounce {summary['worst_bounce_v'] * 1e3:.1f} mV")
    emit("report", f"{design}_report.txt", "\n".join(report_lines) + "\n")

    manifest = ExportManifest(
        directory=directory, design=design,
        technique=result.technique.value, files=files)
    with open(os.path.join(directory, "manifest.json"), "w",
              encoding="utf-8") as handle:
        json.dump(manifest.as_dict(), handle, indent=2)
    return manifest


def verify_export(manifest: ExportManifest, library: Library) -> list[str]:
    """Re-parse every machine-readable artifact; returns problems."""
    problems: list[str] = []
    try:
        netlist = parse_verilog(
            open(manifest.path("verilog"), encoding="utf-8").read(),
            library=library)
        if not netlist.instances:
            problems.append("verilog: no instances")
    except Exception as exc:  # pragma: no cover - diagnostic path
        problems.append(f"verilog: {exc}")
        netlist = None

    try:
        if netlist is not None:
            placement_from_def(
                open(manifest.path("def"), encoding="utf-8").read(),
                netlist, library.tech)
    except Exception as exc:
        problems.append(f"def: {exc}")

    try:
        parasitics = parse_spef(
            open(manifest.path("spef"), encoding="utf-8").read())
        if not parasitics:
            problems.append("spef: empty")
    except Exception as exc:  # pragma: no cover
        problems.append(f"spef: {exc}")

    try:
        parse_sdc(open(manifest.path("sdc"), encoding="utf-8").read())
    except Exception as exc:  # pragma: no cover
        problems.append(f"sdc: {exc}")

    try:
        text = open(manifest.path("liberty"), encoding="utf-8").read()
        copy = library_from_ast(parse_liberty(text), tech=library.tech)
        if set(copy.cells) != set(library.cells):
            problems.append("liberty: cell set mismatch")
    except Exception as exc:  # pragma: no cover
        problems.append(f"liberty: {exc}")
    return problems
