"""Power-mode scenarios: when does the design actually get to sleep?

A :class:`PowerModeScenario` is the workload side of the standby
question: how long the design computes (ACTIVE), how long it idles
between bursts, and how those idle intervals are distributed.  The
power-management controller the scenario models is the standard
three-state machine:

    ACTIVE --(burst ends)--> STANDBY --(sleep entry)--> SLEEP
    SLEEP --(wake request)--> STANDBY --(VGND settled)--> ACTIVE

STANDBY is the shallow state (clocks gated, switches still on) the
design crosses while the VGND rails charge or discharge; its duration
is the transient latency computed by
:mod:`repro.standby.transient` / :mod:`repro.standby.schedule`.

**Distributions are deterministic quantile grids.**  Instead of
sampling, an idle-interval distribution is represented by a small
fixed set of ``(duration, weight)`` points (exact for fixed intervals,
mid-quantile discretization for exponential ones, explicit points for
empirical trace-derived workloads — see :mod:`repro.policy.traces`).
That keeps the scenario engine's big batched computation pure
arithmetic — which is what makes the numpy and scalar backends
bit-identical.
"""

from __future__ import annotations

import dataclasses
import enum
import math
from typing import Any

from repro.errors import ConfigError, StandbyError

#: Recognized idle-interval distributions.
DISTRIBUTIONS = ("fixed", "exponential", "empirical")

#: Relative slack allowed when empirical point weights are checked to
#: sum to one (they come from ``count / total`` divisions).
_WEIGHT_TOL = 1e-9


class PowerMode(enum.Enum):
    """The three controller states of the scenario state machine."""

    ACTIVE = "active"
    STANDBY = "standby"   # transitioning: clocks gated, rails moving
    SLEEP = "sleep"


@dataclasses.dataclass(frozen=True)
class PowerModeScenario:
    """One workload's duty-cycle and idle-interval description.

    ``active_ns`` / ``idle_ns`` are the (mean) burst and idle interval
    lengths; ``horizon_ns`` is the accounting window the engine
    projects savings over (default one second).
    """

    name: str
    active_ns: float
    idle_ns: float
    distribution: str = "fixed"
    quantile_points: int = 16
    horizon_ns: float = 1e9
    #: ``empirical`` only: the explicit (duration, weight) quantile
    #: grid, typically reduced from an idle-interval trace by
    #: :func:`repro.policy.traces.trace_scenario`.  Must be empty for
    #: the analytic distributions.
    points: tuple[tuple[float, float], ...] = ()

    def __post_init__(self):
        if not self.name:
            raise ConfigError("name", "scenario needs a non-empty name")
        if self.active_ns <= 0.0:
            raise ConfigError(
                "active_ns", f"must be positive, got {self.active_ns!r}")
        if self.idle_ns <= 0.0:
            raise ConfigError(
                "idle_ns", f"must be positive, got {self.idle_ns!r}")
        if self.distribution not in DISTRIBUTIONS:
            raise ConfigError(
                "distribution",
                f"must be one of {DISTRIBUTIONS}, got "
                f"{self.distribution!r}")
        if self.quantile_points < 1:
            raise ConfigError(
                "quantile_points",
                f"needs at least one, got {self.quantile_points!r}")
        if self.horizon_ns <= 0.0:
            raise ConfigError(
                "horizon_ns",
                f"must be positive, got {self.horizon_ns!r}")
        if self.distribution == "empirical":
            self._check_points()
        elif self.points:
            raise ConfigError(
                "points",
                f"only the 'empirical' distribution carries explicit "
                f"points, got {len(self.points)} for "
                f"{self.distribution!r}")

    def _check_points(self):
        if not self.points:
            raise ConfigError(
                "points", "the 'empirical' distribution needs at "
                          "least one (duration, weight) point")
        total = 0.0
        for point in self.points:
            if len(point) != 2:
                raise ConfigError(
                    "points",
                    f"points are (duration, weight) pairs, got {point!r}")
            duration, weight = point
            if duration <= 0.0:
                raise ConfigError(
                    "points",
                    f"durations must be positive, got {duration!r}")
            if weight <= 0.0:
                raise ConfigError(
                    "points", f"weights must be positive, got {weight!r}")
            total += weight
        if abs(total - 1.0) > _WEIGHT_TOL:
            raise ConfigError(
                "points", f"weights must sum to 1, got {total!r}")

    # --- duty accounting -----------------------------------------------------

    @property
    def duty_cycle(self) -> float:
        """Fraction of time the design is actively computing."""
        return self.active_ns / (self.active_ns + self.idle_ns)

    @property
    def sleep_events(self) -> float:
        """Idle intervals (= sleep opportunities) over the horizon."""
        return self.horizon_ns / (self.active_ns + self.idle_ns)

    def idle_points(self) -> tuple[tuple[float, float], ...]:
        """The idle-interval distribution as (duration, weight) points.

        ``fixed``: one point carrying all the weight.  ``exponential``
        with mean ``idle_ns``: mid-quantile durations
        ``-mean * ln(1 - (q + 0.5)/n)``, each weighted ``1/n`` —
        deterministic, and exact in the limit of many points.
        ``empirical``: the explicit trace-derived grid, verbatim.
        """
        if self.distribution == "fixed":
            return ((self.idle_ns, 1.0),)
        if self.distribution == "empirical":
            return self.points
        n = self.quantile_points
        weight = 1.0 / n
        return tuple(
            (-self.idle_ns * math.log(1.0 - (q + 0.5) / n), weight)
            for q in range(n))

    # --- the state machine ---------------------------------------------------

    def mode_at(self, t_ns: float, sleep_latency_ns: float,
                wake_latency_ns: float) -> PowerMode:
        """Controller state at time ``t`` for a fixed-interval cycle.

        One period is ``active -> standby (entry) -> sleep -> standby
        (wake) -> active``; when the idle interval is shorter than the
        combined transition latency the controller never reaches SLEEP
        and the whole idle interval is spent in STANDBY.
        """
        period = self.active_ns + self.idle_ns
        phase = t_ns % period if period > 0.0 else 0.0
        if phase < self.active_ns:
            return PowerMode.ACTIVE
        idle_phase = phase - self.active_ns
        overhead = sleep_latency_ns + wake_latency_ns
        if self.idle_ns <= overhead:
            return PowerMode.STANDBY
        if idle_phase < sleep_latency_ns:
            return PowerMode.STANDBY
        if idle_phase < self.idle_ns - wake_latency_ns:
            return PowerMode.SLEEP
        return PowerMode.STANDBY

    def as_dict(self) -> dict[str, Any]:
        from repro.api import schemas  # lazy: loads the registry

        return schemas.to_dict(self)


def standard_scenarios() -> dict[str, PowerModeScenario]:
    """The built-in scenario set, name-keyed (insertion = report order).

    Spans the regimes that matter for break-even analysis: idle
    intervals from far below any plausible break-even time up to
    deeply idle, both fixed and exponentially distributed.
    """
    scenarios = [
        # Back-to-back bursts: idling 500 ns at a time, sleeping can
        # never amortize the transition energy.
        PowerModeScenario(name="always_on", active_ns=2_000.0,
                          idle_ns=500.0),
        # A streaming pipeline with short deterministic gaps.
        PowerModeScenario(name="streaming", active_ns=20_000.0,
                          idle_ns=50_000.0),
        # A 60 Hz frame renderer: compute 2 ms, idle the rest.
        PowerModeScenario(name="periodic_frame",
                          active_ns=2_000_000.0,
                          idle_ns=14_600_000.0),
        # Interactive device: bursty exponential idle, 100 us mean.
        PowerModeScenario(name="interactive", active_ns=50_000.0,
                          idle_ns=100_000.0,
                          distribution="exponential"),
        # Event-driven sensor hub: long exponential idle, 10 ms mean.
        PowerModeScenario(name="bursty", active_ns=100_000.0,
                          idle_ns=10_000_000.0,
                          distribution="exponential"),
        # Mostly asleep: 1 ms of work every 100 ms.
        PowerModeScenario(name="mostly_idle", active_ns=1_000_000.0,
                          idle_ns=99_000_000.0),
    ]
    return {scenario.name: scenario for scenario in scenarios}


def resolve_scenario(name: str) -> PowerModeScenario:
    """Look up a built-in scenario by name."""
    scenarios = standard_scenarios()
    try:
        return scenarios[name]
    except KeyError:
        raise StandbyError(
            f"unknown power-mode scenario {name!r}; known: "
            f"{', '.join(sorted(scenarios))}") from None
