"""Analytic RC transients of one VGND cluster's MTE transitions.

When a cluster's sleep switch turns **off** (sleep entry) the virtual
ground is pulled up toward Vdd by the residual subthreshold leakage of
the still-powered member logic, fought only by the switch's own off
leakage: the rail settles at the leakage-divider voltage

    V_standby = Vdd * I_up / (I_up + I_off)

with a charging time constant ``tau_sleep = C * (R_up || R_off)``.

When the switch turns back **on** (wake-up) the stored rail charge is
dumped through the switch on-resistance plus the rail resistance to
the farthest member::

    V(t)  = V_standby * exp(-t / tau_wake)
    I(t)  = V(t) / (Ron + R_rail)         # the rush current
    tau_wake = (Ron + R_rail) * C

The VGND node capacitance ``C`` is the rail wire capacitance (from
post-route :class:`~repro.routing.extract.NetParasitics` when
available, the per-um estimate otherwise) plus the drain junctions of
every member and of the switch itself.  All constants come from the
same :class:`~repro.device.mosfet.MosfetModel` /
:class:`~repro.device.process.Technology` the sizing and bounce
analyses use, so a corner-derived library yields corner-consistent
transients.

Internal units as everywhere: ns, pF, kOhm, mA, nW, um — conveniently,
kOhm x pF = ns and pF x V^2 = pJ.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Mapping

from repro.device.mosfet import MosfetModel
from repro.errors import StandbyError
from repro.liberty.library import Library, VARIANT_LVT
from repro.netlist.core import Netlist
from repro.vgnd.bounce import rail_resistance_far
from repro.vgnd.network import VgndCluster, VgndNetwork


@dataclasses.dataclass(frozen=True)
class ClusterTransient:
    """The standby-transition characterization of one cluster."""

    cluster_index: int
    members: int
    switch_cell: str
    capacitance_pf: float       # VGND node cap (rail + drains)
    ron_kohm: float             # switch on-resistance
    rail_res_kohm: float        # rail resistance to the far member
    v_standby_v: float          # steady-state VGND voltage in sleep
    tau_wake_ns: float          # discharge time constant
    tau_sleep_ns: float         # charge time constant (0: no member
    #                             leakage, the rail never floats up)
    peak_rush_ma: float         # I(0+) on wake-up
    wake_latency_ns: float      # to VGND below the settle threshold
    sleep_latency_ns: float     # to within the threshold of V_standby
    energy_per_cycle_pj: float  # rail charge dump + MTE gate energy
    sleep_leakage_nw: float     # residual members + off switch
    active_leakage_nw: float    # members leaking like their LVT kin

    @property
    def leakage_savings_nw(self) -> float:
        """Leakage saved while this cluster sleeps."""
        return self.active_leakage_nw - self.sleep_leakage_nw

    def as_dict(self) -> dict[str, Any]:
        from repro.api import schemas  # lazy: loads the registry

        return schemas.to_dict(self)


@dataclasses.dataclass(frozen=True)
class Waveform:
    """A sampled VGND voltage waveform (one MTE transition)."""

    times_ns: tuple[float, ...]
    volts: tuple[float, ...]

    def at(self, index: int) -> tuple[float, float]:
        return self.times_ns[index], self.volts[index]


def wake_waveform(transient: ClusterTransient, points: int = 64,
                  horizon_ns: float | None = None) -> Waveform:
    """The VGND discharge waveform after the MTE enable."""
    if points < 2:
        raise StandbyError("a waveform needs at least two points")
    if horizon_ns is None:
        horizon_ns = 6.0 * transient.tau_wake_ns
    times = [horizon_ns * i / (points - 1) for i in range(points)]
    tau = transient.tau_wake_ns
    volts = [transient.v_standby_v * math.exp(-t / tau) if tau > 0.0
             else 0.0 for t in times]
    return Waveform(times_ns=tuple(times), volts=tuple(volts))


def sleep_waveform(transient: ClusterTransient, points: int = 64,
                   horizon_ns: float | None = None) -> Waveform:
    """The VGND charge-up waveform after the MTE disable."""
    if points < 2:
        raise StandbyError("a waveform needs at least two points")
    tau = transient.tau_sleep_ns
    if horizon_ns is None:
        horizon_ns = 6.0 * tau if math.isfinite(tau) else 1.0
    times = [horizon_ns * i / (points - 1) for i in range(points)]
    if not math.isfinite(tau) or tau <= 0.0:
        volts = [0.0 for _ in times]
    else:
        volts = [transient.v_standby_v * (1.0 - math.exp(-t / tau))
                 for t in times]
    return Waveform(times_ns=tuple(times), volts=tuple(volts))


class TransientSolver:
    """Solves the sleep/wake transients of a sized VGND network.

    ``settle_fraction`` sets the settle threshold as a fraction of Vdd:
    wake-up is "settled" once VGND drops below ``fraction * Vdd`` (the
    point at which MT-cell delays are back within the characterized
    droop), and sleep entry once VGND is within ``fraction`` of its
    standby steady state.  ``parasitics`` may supply post-route VGND
    rail capacitance by net name (the SPEF-accurate refinement).
    """

    def __init__(self, network: VgndNetwork, netlist: Netlist,
                 library: Library, settle_fraction: float = 0.05,
                 parasitics: Mapping[str, Any] | None = None):
        if not 0.0 < settle_fraction < 1.0:
            raise StandbyError(
                f"settle fraction must be in (0, 1), got "
                f"{settle_fraction!r}")
        self.network = network
        self.netlist = netlist
        self.library = library
        self.settle_fraction = settle_fraction
        self.parasitics = parasitics or {}
        self.tech = library.tech
        if self.tech is None:
            raise StandbyError("library carries no technology")
        self._switch_model = MosfetModel(self.tech, self.tech.vth_high,
                                         "nmos")

    # --- public -------------------------------------------------------------

    def solve(self) -> list[ClusterTransient]:
        """Every cluster's transient, in cluster-index order."""
        clusters = sorted(self.network.clusters, key=lambda c: c.index)
        return [self.solve_cluster(cluster) for cluster in clusters]

    def solve_cluster(self, cluster: VgndCluster) -> ClusterTransient:
        if not cluster.switch_cell:
            raise StandbyError(
                f"cluster {cluster.index} has no sized switch; run the "
                f"switch sizing before the standby analysis")
        tech = self.tech
        switch = self.library.cell(cluster.switch_cell)
        width = switch.switch_width_um
        ron = self._switch_model.on_resistance(width)
        rail_res = rail_resistance_far(cluster.rail_length_um, tech)
        cap = self._node_capacitance(cluster, width)

        # Leakage divider: members pull VGND up, the off switch down.
        i_up_ma = self._member_leak_ma(cluster)
        i_off_ma = self._switch_model.subthreshold_current(width)
        if i_up_ma > 0.0:
            v_standby = tech.vdd * i_up_ma / (i_up_ma + i_off_ma)
            r_up = tech.vdd / i_up_ma
            r_off = tech.vdd / i_off_ma if i_off_ma > 0.0 else math.inf
            if math.isfinite(r_off):
                r_parallel = r_up * r_off / (r_up + r_off)
            else:
                r_parallel = r_up
            tau_sleep = cap * r_parallel
            sleep_latency = tau_sleep * math.log(1.0 /
                                                 self.settle_fraction)
        else:
            v_standby = 0.0
            tau_sleep = 0.0
            sleep_latency = 0.0

        r_wake = ron + rail_res
        tau_wake = r_wake * cap
        peak_rush = v_standby / r_wake if r_wake > 0.0 else 0.0
        settle_v = self.settle_fraction * tech.vdd
        if v_standby > settle_v and tau_wake > 0.0:
            wake_latency = tau_wake * math.log(v_standby / settle_v)
        else:
            wake_latency = 0.0

        # One sleep/wake cycle dissipates the rail charge twice over
        # (charge up through the leakage divider, dump through the
        # switch) plus the MTE driver's switch-gate energy.
        energy = cap * v_standby * v_standby \
            + self._switch_model.gate_capacitance(width) \
            * tech.vdd * tech.vdd

        sleep_leak, active_leak = self._cluster_leakage(cluster, switch)
        return ClusterTransient(
            cluster_index=cluster.index,
            members=cluster.size,
            switch_cell=cluster.switch_cell,
            capacitance_pf=cap,
            ron_kohm=ron,
            rail_res_kohm=rail_res,
            v_standby_v=v_standby,
            tau_wake_ns=tau_wake,
            tau_sleep_ns=tau_sleep,
            peak_rush_ma=peak_rush,
            wake_latency_ns=wake_latency,
            sleep_latency_ns=sleep_latency,
            energy_per_cycle_pj=energy,
            sleep_leakage_nw=sleep_leak,
            active_leakage_nw=active_leak)

    # --- internals -----------------------------------------------------------

    def _node_capacitance(self, cluster: VgndCluster,
                          switch_width_um: float) -> float:
        """Rail wire cap plus member and switch drain junctions (pF)."""
        extracted = self.parasitics.get(cluster.net_name)
        if extracted is not None and \
                getattr(extracted, "total_cap_pf", None) is not None:
            rail_cap = extracted.total_cap_pf
        else:
            rail_cap = cluster.rail_length_um * self.tech.vgnd_cap_per_um
        cap = rail_cap + self._switch_model.drain_capacitance(
            switch_width_um)
        for name in cluster.members:
            inst = self.netlist.instances.get(name)
            if inst is None or inst.cell_name not in self.library:
                continue
            cell = self.library.cell(inst.cell_name)
            total_width = cell.area / self.tech.area_per_um_width
            if total_width > 0.0:
                cap += self._switch_model.drain_capacitance(total_width)
        return cap

    def _member_leak_ma(self, cluster: VgndCluster) -> float:
        """Powered-equivalent member leakage current into VGND (mA)."""
        total_nw = 0.0
        for name in cluster.members:
            inst = self.netlist.instances.get(name)
            if inst is None or inst.cell_name not in self.library:
                continue
            cell = self.library.cell(inst.cell_name)
            if cell.is_mt:
                cell = self.library.variant_of(cell, VARIANT_LVT)
            total_nw += cell.default_leakage_nw
        # nW -> mA at Vdd: 1 nW = 1e-6 mW.
        return total_nw * 1e-6 / self.tech.vdd

    def _cluster_leakage(self, cluster: VgndCluster,
                         switch) -> tuple[float, float]:
        """(sleeping, awake) leakage of the cluster in nW.

        Mirrors :class:`~repro.power.leakage.LeakageAnalyzer`: asleep,
        members contribute their MT residual and the switch its own
        subthreshold leakage; awake, members leak like their LVT
        siblings and the conducting switch contributes nothing.
        """
        sleep = switch.default_leakage_nw
        active = 0.0
        for name in cluster.members:
            inst = self.netlist.instances.get(name)
            if inst is None or inst.cell_name not in self.library:
                continue
            cell = self.library.cell(inst.cell_name)
            sleep += cell.default_leakage_nw
            lvt = self.library.variant_of(cell, VARIANT_LVT) \
                if cell.is_mt else cell
            active += lvt.default_leakage_nw
        return sleep, active
