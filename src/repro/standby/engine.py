"""The batched power-mode scenario engine.

For every requested PVT corner the engine characterizes the VGND
network (:class:`~repro.standby.transient.TransientSolver`), builds
the staged wake-up schedule
(:class:`~repro.standby.schedule.RushScheduler`), and then evaluates
every power-mode scenario against every cluster:

    net savings per idle interval
        = sum over clusters k of
            max(0, dP_k * (T - overhead_k) * 1e-6 - E_k)   [pJ]

where ``dP_k`` is the cluster's leakage saved while asleep (nW),
``overhead_k`` its sleep-entry latency plus its *scheduled* wake
settle (ns), ``E_k`` its per-cycle transition energy (pJ), and ``T``
an idle-interval duration from the scenario's quantile grid
(nW x ns = 1e-6 pJ).  The max(0, .) is the per-cluster sleep policy:
a cluster that cannot pay for its transition over an interval simply
keeps its switch on.

**Backend contract.**  The hot loop runs over every
``(scenario-quantile-point x cluster)`` pair per corner.  Both the
scalar reference and the numpy path perform *the same IEEE operations
in the same order* — all transcendentals are evaluated scalar-side
(transients, quantile grids), the batch is pure
multiply/subtract/max, and cluster accumulation is an ordered
left-to-right reduction on both paths — so ``StandbyResult`` numbers
are bit-identical across backends (enforced by ``tests/standby``).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Mapping, Sequence

from repro.compute import resolve_backend
from repro.config import Technique
from repro.errors import StandbyError
from repro.liberty.library import Library
from repro.netlist.core import Netlist
from repro.obs.spans import span
from repro.standby.scenario import PowerModeScenario
from repro.standby.schedule import (
    RushScheduler,
    WakeupSchedule,
    default_rush_budget_ma,
)
from repro.standby.transient import ClusterTransient, TransientSolver
from repro.vgnd.network import VgndNetwork

#: nW x ns -> pJ.
_NW_NS_TO_PJ = 1e-6

#: The corner every default analysis runs at.
NOMINAL_CORNER = "tt_nom"


@dataclasses.dataclass(frozen=True)
class ScenarioOutcome:
    """One (scenario, corner) cell of the analysis grid."""

    scenario: str
    corner: str
    sleep_events: float            # idle intervals over the horizon
    savings_per_event_pj: float    # expected net savings per interval
    net_savings_pj: float          # over the scenario horizon
    savings_fraction: float        # of the always-on leakage energy
    break_even_ns: float           # network-level break-even interval
    worthwhile: bool               # net savings > 0

    def as_dict(self) -> dict[str, Any]:
        from repro.api import schemas  # lazy: loads the registry

        return schemas.to_dict(self)


@dataclasses.dataclass(frozen=True)
class StandbyCornerRow:
    """The corner-dependent transition numbers (wake latency & co)."""

    corner: str
    wake_latency_ns: float         # staged-schedule makespan
    serial_wake_latency_ns: float  # daisy-chain reference
    sleep_latency_ns: float        # slowest cluster's entry
    peak_rush_ma: float
    rush_budget_ma: float
    bins: int
    cycle_energy_pj: float         # one full sleep/wake cycle
    sleep_leakage_nw: float
    active_leakage_nw: float
    break_even_ns: float

    def as_dict(self) -> dict[str, Any]:
        from repro.api import schemas  # lazy: loads the registry

        return schemas.to_dict(self)


@dataclasses.dataclass(frozen=True)
class StandbyResult:
    """The full standby-transition signoff of one design."""

    circuit: str
    technique: Technique
    compute_backend: str
    clusters: int
    settle_fraction: float
    scenarios: tuple[str, ...]
    corners: tuple[str, ...]
    #: Transients and schedule of the FIRST configured corner (the
    #: convenience properties below read the same row; per-corner
    #: numbers live in corner_rows).
    transients: tuple[ClusterTransient, ...]
    schedule: WakeupSchedule
    corner_rows: tuple[StandbyCornerRow, ...]
    outcomes: tuple[ScenarioOutcome, ...]      # scenario-major order

    @property
    def wake_latency_ns(self) -> float:
        """Staged wake latency at the first configured corner."""
        return self.corner_rows[0].wake_latency_ns

    @property
    def peak_rush_ma(self) -> float:
        """Peak aggregate rush at the first configured corner."""
        return self.corner_rows[0].peak_rush_ma

    @property
    def break_even_ns(self) -> float:
        """Break-even idle interval at the first configured corner."""
        return self.corner_rows[0].break_even_ns

    def corner_row(self, corner: str) -> StandbyCornerRow:
        for row in self.corner_rows:
            if row.corner == corner:
                return row
        raise KeyError(f"no standby corner row for {corner!r}")

    def outcome(self, scenario: str, corner: str) -> ScenarioOutcome:
        for outcome in self.outcomes:
            if outcome.scenario == scenario and outcome.corner == corner:
                return outcome
        raise KeyError(f"no outcome for ({scenario!r}, {corner!r})")

    def as_dict(self) -> dict[str, Any]:
        from repro.api import schemas  # lazy: loads the registry

        return schemas.to_dict(self)


# --- the batched kernel ------------------------------------------------------


def _point_savings_python(points: Sequence[tuple[float, float]],
                          dp_nw: Sequence[float],
                          overhead_ns: Sequence[float],
                          energy_pj: Sequence[float]) -> list[float]:
    """Scalar reference: net savings per quantile point, summed over
    clusters in index order."""
    acc = [0.0] * len(points)
    for k, dp in enumerate(dp_nw):
        oh = overhead_ns[k]
        energy = energy_pj[k]
        for p, (duration, _weight) in enumerate(points):
            value = dp * (duration - oh) * _NW_NS_TO_PJ - energy
            acc[p] = acc[p] + (value if value > 0.0 else 0.0)
    return acc


def _point_savings_numpy(points: Sequence[tuple[float, float]],
                         dp_nw: Sequence[float],
                         overhead_ns: Sequence[float],
                         energy_pj: Sequence[float]) -> list[float]:
    """Vectorized path: same operations, same order, over arrays.

    The cluster loop stays a left-to-right accumulation (one vector
    add per cluster), so every element's float-op sequence matches the
    scalar reference exactly.
    """
    import numpy as np

    durations = np.array([duration for duration, _w in points],
                         dtype=float)
    acc = np.zeros(len(points), dtype=float)
    zero = np.float64(0.0)
    for k, dp in enumerate(dp_nw):
        value = np.float64(dp) * (durations - np.float64(overhead_ns[k])) \
            * np.float64(_NW_NS_TO_PJ) - np.float64(energy_pj[k])
        acc = acc + np.maximum(value, zero)
    return acc.tolist()


def _point_savings_numpy_corners(points: Sequence[tuple[float, float]],
                                 dp_nw: Sequence[Sequence[float]],
                                 overhead_ns: Sequence[Sequence[float]],
                                 energy_pj: Sequence[Sequence[float]]
                                 ) -> list[list[float]]:
    """Corner-batched path: every corner's quantile grid in one stack.

    Inputs are ``(corners x clusters)`` tables; the result row for
    corner ``c`` is bit-identical to
    ``_point_savings_numpy(points, dp_nw[c], ...)`` because the
    per-element float-op sequence (multiply, subtract, multiply,
    subtract, max, ordered add per cluster) is unchanged — the corner
    axis only widens each vector op.
    """
    import numpy as np

    durations = np.array([duration for duration, _w in points],
                         dtype=float)
    dp = np.asarray(dp_nw, dtype=float)
    oh = np.asarray(overhead_ns, dtype=float)
    energy = np.asarray(energy_pj, dtype=float)
    acc = np.zeros((dp.shape[0], len(points)), dtype=float)
    zero = np.float64(0.0)
    for k in range(dp.shape[1]):
        value = dp[:, k, None] * (durations[None, :] - oh[:, k, None]) \
            * np.float64(_NW_NS_TO_PJ) - energy[:, k, None]
        acc = acc + np.maximum(value, zero)
    return acc.tolist()


class StandbyEngine:
    """Runs the standby-transition analysis for one finished design."""

    def __init__(self, netlist: Netlist, library: Library,
                 network: VgndNetwork,
                 scenarios: Sequence[PowerModeScenario],
                 corners: Sequence[str] = (NOMINAL_CORNER,),
                 settle_fraction: float = 0.05,
                 rush_budget_ma: float | None = None,
                 parasitics: Mapping[str, Any] | None = None,
                 compute_backend: str | None = None,
                 corner_libraries: Mapping[str, Library] | None = None,
                 circuit: str | None = None,
                 technique: Technique = Technique.IMPROVED_SMT):
        if not network.clusters:
            raise StandbyError(
                "the design has no VGND clusters; standby-transition "
                "analysis needs the improved-SMT switch structure")
        if not scenarios:
            raise StandbyError("no power-mode scenarios given")
        self.netlist = netlist
        self.library = library
        self.network = network
        self.scenarios = list(scenarios)
        self.corners = tuple(corners) or (NOMINAL_CORNER,)
        self.settle_fraction = settle_fraction
        self.rush_budget_ma = rush_budget_ma
        self.parasitics = parasitics
        self.compute_backend = resolve_backend(compute_backend)
        self.corner_libraries = dict(corner_libraries or {})
        self.circuit = circuit or netlist.name
        self.technique = Technique(technique)

    # --- public -------------------------------------------------------------

    def run(self) -> StandbyResult:
        with span("standby.run", corners=len(self.corners),
                  scenarios=len(self.scenarios),
                  clusters=len(self.network.clusters)):
            return self._run_impl()

    def _run_impl(self) -> StandbyResult:
        # The quantile grids are corner-independent: build them once.
        points: list[tuple[float, float]] = []
        spans: list[tuple[int, int]] = []
        for scenario in self.scenarios:
            start = len(points)
            points.extend(scenario.idle_points())
            spans.append((start, len(points)))

        # Per-corner scalar work (transients, scheduling) runs first;
        # the break-even sweep itself is deferred so every corner's
        # quantile grid rides ONE stacked kernel call on numpy.
        first_transients: tuple[ClusterTransient, ...] | None = None
        first_schedule: WakeupSchedule | None = None
        corner_rows: list[StandbyCornerRow] = []
        dp_rows: list[list[float]] = []
        oh_rows: list[list[float]] = []
        energy_rows: list[list[float]] = []
        for corner_name in self.corners:
            library = self._corner_library(corner_name)
            transients = TransientSolver(
                self.network, self.netlist, library,
                settle_fraction=self.settle_fraction,
                parasitics=self.parasitics).solve()
            budget = self.rush_budget_ma
            if budget is None:
                budget = default_rush_budget_ma(transients)
            schedule = RushScheduler(transients, budget).schedule()
            if first_transients is None:
                first_transients = tuple(transients)
                first_schedule = schedule
            corner_rows.append(
                self._corner_row(corner_name, transients, schedule))
            dp_nw, overhead_ns, energy_pj = self._cluster_vectors(
                transients, schedule)
            dp_rows.append(dp_nw)
            oh_rows.append(overhead_ns)
            energy_rows.append(energy_pj)

        if self.compute_backend == "numpy" and len(self.corners) > 1:
            accs = _point_savings_numpy_corners(points, dp_rows,
                                               oh_rows, energy_rows)
        elif self.compute_backend == "numpy":
            accs = [_point_savings_numpy(points, dp_rows[0], oh_rows[0],
                                         energy_rows[0])]
        else:
            accs = [_point_savings_python(points, dp, oh, energy)
                    for dp, oh, energy in zip(dp_rows, oh_rows,
                                              energy_rows)]

        grid: dict[tuple[str, str], ScenarioOutcome] = {}
        for corner_name, row, acc in zip(self.corners, corner_rows,
                                         accs):
            for scenario, outcome in self._scenario_outcomes(
                    corner_name, row, acc, points, spans):
                grid[(scenario, corner_name)] = outcome

        outcomes = tuple(grid[(scenario.name, corner_name)]
                         for scenario in self.scenarios
                         for corner_name in self.corners)
        return StandbyResult(
            circuit=self.circuit,
            technique=self.technique,
            compute_backend=self.compute_backend,
            clusters=len(self.network.clusters),
            settle_fraction=self.settle_fraction,
            scenarios=tuple(s.name for s in self.scenarios),
            corners=self.corners,
            transients=first_transients,
            schedule=first_schedule,
            corner_rows=tuple(corner_rows),
            outcomes=outcomes)

    # --- internals -----------------------------------------------------------

    def _corner_library(self, corner_name: str) -> Library:
        cached = self.corner_libraries.get(corner_name)
        if cached is not None:
            return cached
        from repro.variation.corners import (
            derive_corner_library_cached,
            resolve_corner,
        )

        corner = resolve_corner(corner_name, self.library.tech)
        derived = derive_corner_library_cached(self.library, corner)
        self.corner_libraries[corner_name] = derived
        return derived

    @staticmethod
    def _corner_row(corner_name: str,
                    transients: Sequence[ClusterTransient],
                    schedule: WakeupSchedule) -> StandbyCornerRow:
        cycle_energy = 0.0
        sleep_leak = 0.0
        active_leak = 0.0
        sleep_latency = 0.0
        for transient in transients:
            cycle_energy += transient.energy_per_cycle_pj
            sleep_leak += transient.sleep_leakage_nw
            active_leak += transient.active_leakage_nw
            sleep_latency = max(sleep_latency,
                                transient.sleep_latency_ns)
        saved = active_leak - sleep_leak
        overhead = sleep_latency + schedule.total_latency_ns
        if saved > 0.0:
            break_even = overhead + cycle_energy / (saved * _NW_NS_TO_PJ)
        else:
            break_even = math.inf
        return StandbyCornerRow(
            corner=corner_name,
            wake_latency_ns=schedule.total_latency_ns,
            serial_wake_latency_ns=schedule.serial_latency_ns,
            sleep_latency_ns=sleep_latency,
            peak_rush_ma=schedule.peak_aggregate_ma,
            rush_budget_ma=schedule.budget_ma,
            bins=schedule.bins,
            cycle_energy_pj=cycle_energy,
            sleep_leakage_nw=sleep_leak,
            active_leakage_nw=active_leak,
            break_even_ns=break_even)

    @staticmethod
    def _cluster_vectors(transients: Sequence[ClusterTransient],
                         schedule: WakeupSchedule
                         ) -> tuple[list[float], list[float], list[float]]:
        dp_nw = [tr.leakage_savings_nw for tr in transients]
        energy_pj = [tr.energy_per_cycle_pj for tr in transients]
        settles = {event.cluster_index: event.settle_ns
                   for event in schedule.events}
        overhead_ns = [transient.sleep_latency_ns
                       + settles[transient.cluster_index]
                       for transient in transients]
        return dp_nw, overhead_ns, energy_pj

    def _scenario_outcomes(self, corner_name: str, row: StandbyCornerRow,
                           acc: Sequence[float],
                           points: list[tuple[float, float]],
                           spans: list[tuple[int, int]]):
        for scenario, (start, stop) in zip(self.scenarios, spans):
            per_event = 0.0
            for p in range(start, stop):
                per_event += points[p][1] * acc[p]
            net = scenario.sleep_events * per_event
            active_energy = row.active_leakage_nw \
                * scenario.horizon_ns * _NW_NS_TO_PJ
            fraction = net / active_energy if active_energy > 0.0 else 0.0
            yield scenario.name, ScenarioOutcome(
                scenario=scenario.name,
                corner=corner_name,
                sleep_events=scenario.sleep_events,
                savings_per_event_pj=per_event,
                net_savings_pj=net,
                savings_fraction=fraction,
                break_even_ns=row.break_even_ns,
                worthwhile=net > 0.0)
