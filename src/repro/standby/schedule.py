"""Staged wake-up scheduling under a rush-current budget.

Enabling every cluster's MTE simultaneously dumps the sum of all
per-cluster rush currents into the ground grid at once — a di/dt and
electromigration hazard.  Enabling them one at a time (the serial
daisy-chain) is safe but slow.  The :class:`RushScheduler` finds the
middle ground deterministically:

1. **Greedy binning** (first-fit decreasing on peak rush current):
   clusters are packed into bins whose summed peaks fit the budget, so
   everything inside one bin may switch simultaneously.
2. **Bin ordering**: bins fire in descending order of their longest
   member settle latency, so the slowest-settling clusters start
   earliest (the makespan heuristic).
3. **Earliest feasible start**: each bin fires at the earliest instant
   at which the *residual* rush of everything already enabled — each
   cluster's exponentially decaying current, treated as zero once that
   cluster has settled — plus the bin's own peak fits the budget.  The
   residual is monotonically non-increasing, so the instant is found
   by deterministic bisection.

Because every bin could at worst wait for all previous clusters to
fully settle, the scheduled makespan is **never worse than the serial
daisy-chain** (the sum of all wake latencies) — an invariant the test
suite checks on every golden circuit.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Iterable, Sequence

from repro.errors import StandbyError
from repro.standby.transient import ClusterTransient

#: Bisection iterations for the earliest-feasible-start search (fixed
#: count => bit-deterministic schedules).
_BISECT_STEPS = 64

#: Default budget: this fraction of the all-at-once rush, floored at
#: the largest single-cluster peak (below which no schedule exists).
DEFAULT_BUDGET_FRACTION = 0.5


@dataclasses.dataclass(frozen=True)
class WakeupEvent:
    """One cluster's scheduled MTE enable."""

    cluster_index: int
    bin_index: int
    enable_ns: float
    settle_ns: float       # enable + the cluster's wake latency
    peak_rush_ma: float

    def as_dict(self) -> dict[str, Any]:
        from repro.api import schemas  # lazy: loads the registry

        return schemas.to_dict(self)


@dataclasses.dataclass(frozen=True)
class WakeupSchedule:
    """The staged wake-up plan for one VGND network."""

    budget_ma: float
    events: tuple[WakeupEvent, ...]    # enable-time order
    bins: int
    total_latency_ns: float            # last settle
    serial_latency_ns: float           # daisy-chain reference
    peak_aggregate_ma: float           # worst instantaneous rush

    def event_for(self, cluster_index: int) -> WakeupEvent:
        for event in self.events:
            if event.cluster_index == cluster_index:
                return event
        raise KeyError(f"no wake-up event for cluster {cluster_index}")

    def as_dict(self) -> dict[str, Any]:
        from repro.api import schemas  # lazy: loads the registry

        return schemas.to_dict(self)


def default_rush_budget_ma(
        transients: Sequence[ClusterTransient],
        fraction: float = DEFAULT_BUDGET_FRACTION) -> float:
    """The di/dt budget used when the designer does not set one.

    Half (by default) of the simultaneous-enable rush, floored at the
    largest single-cluster peak so a schedule always exists.
    """
    if not transients:
        return 0.0
    total = 0.0
    worst = 0.0
    for transient in transients:
        total += transient.peak_rush_ma
        worst = max(worst, transient.peak_rush_ma)
    return max(worst, fraction * total)


def _decayed_ma(event: WakeupEvent, tau_ns: float, t_ns: float) -> float:
    """Residual rush of one enabled cluster at time ``t``.

    Zero before its enable and after its settle (a settled cluster
    draws only residual leakage, which the budget does not count).
    """
    if t_ns < event.enable_ns or t_ns >= event.settle_ns:
        return 0.0
    if tau_ns <= 0.0:
        return 0.0
    return event.peak_rush_ma * math.exp(
        -(t_ns - event.enable_ns) / tau_ns)


def aggregate_rush_ma(transients: Iterable[ClusterTransient],
                      schedule: WakeupSchedule, t_ns: float) -> float:
    """Total instantaneous rush current of a schedule at time ``t``."""
    taus = {tr.cluster_index: tr.tau_wake_ns for tr in transients}
    return sum(_decayed_ma(event, taus[event.cluster_index], t_ns)
               for event in schedule.events)


class RushScheduler:
    """Builds the staged wake-up schedule for a set of transients."""

    def __init__(self, transients: Sequence[ClusterTransient],
                 budget_ma: float | None = None):
        self.transients = list(transients)
        self.budget_ma = default_rush_budget_ma(self.transients) \
            if budget_ma is None else float(budget_ma)
        if self.budget_ma < 0.0:
            raise StandbyError(
                f"rush budget must be non-negative, got {budget_ma!r}")

    # --- public -------------------------------------------------------------

    def schedule(self) -> WakeupSchedule:
        if not self.transients:
            return WakeupSchedule(budget_ma=self.budget_ma, events=(),
                                  bins=0, total_latency_ns=0.0,
                                  serial_latency_ns=0.0,
                                  peak_aggregate_ma=0.0)
        over = [tr for tr in self.transients
                if tr.peak_rush_ma > self.budget_ma]
        if over:
            worst = max(over, key=lambda tr: tr.peak_rush_ma)
            raise StandbyError(
                f"cluster {worst.cluster_index} alone rushes "
                f"{worst.peak_rush_ma:.3f} mA, above the "
                f"{self.budget_ma:.3f} mA budget; no wake-up order can "
                f"satisfy it")
        bins = self._pack_bins()
        return self._place_bins(bins)

    # --- internals -----------------------------------------------------------

    def _pack_bins(self) -> list[list[ClusterTransient]]:
        """First-fit decreasing on peak rush; deterministic ties."""
        ordered = sorted(self.transients,
                         key=lambda tr: (-tr.peak_rush_ma,
                                         tr.cluster_index))
        bins: list[list[ClusterTransient]] = []
        sums: list[float] = []
        for transient in ordered:
            for index, total in enumerate(sums):
                if total + transient.peak_rush_ma <= self.budget_ma:
                    bins[index].append(transient)
                    sums[index] = total + transient.peak_rush_ma
                    break
            else:
                bins.append([transient])
                sums.append(transient.peak_rush_ma)
        # Slowest-settling bins fire first (makespan heuristic).
        bins.sort(key=lambda members: (
            -max(tr.wake_latency_ns for tr in members),
            min(tr.cluster_index for tr in members)))
        return bins

    def _place_bins(self, bins: list[list[ClusterTransient]]
                    ) -> WakeupSchedule:
        events: list[WakeupEvent] = []
        taus: dict[int, float] = {}
        peak_aggregate = 0.0
        t_prev = 0.0
        for bin_index, members in enumerate(bins):
            bin_peak = sum(tr.peak_rush_ma for tr in members)
            start = self._earliest_start(events, taus, t_prev, bin_peak)
            for transient in sorted(members,
                                    key=lambda tr: tr.cluster_index):
                events.append(WakeupEvent(
                    cluster_index=transient.cluster_index,
                    bin_index=bin_index,
                    enable_ns=start,
                    settle_ns=start + transient.wake_latency_ns,
                    peak_rush_ma=transient.peak_rush_ma))
                taus[transient.cluster_index] = transient.tau_wake_ns
            aggregate = self._residual(events, taus, start)
            peak_aggregate = max(peak_aggregate, aggregate)
            t_prev = start
        total = max((event.settle_ns for event in events), default=0.0)
        serial = sum(tr.wake_latency_ns for tr in self.transients)
        return WakeupSchedule(
            budget_ma=self.budget_ma,
            events=tuple(events),
            bins=len(bins),
            total_latency_ns=total,
            serial_latency_ns=serial,
            peak_aggregate_ma=peak_aggregate)

    @staticmethod
    def _residual(events: list[WakeupEvent], taus: dict[int, float],
                  t_ns: float) -> float:
        return sum(_decayed_ma(event, taus[event.cluster_index], t_ns)
                   for event in events)

    def _earliest_start(self, events: list[WakeupEvent],
                        taus: dict[int, float], t_prev: float,
                        bin_peak: float) -> float:
        """Earliest ``t >= t_prev`` with residual + bin peak in budget."""
        headroom = self.budget_ma - bin_peak
        if self._residual(events, taus, t_prev) <= headroom:
            return t_prev
        # Past every settle the residual is exactly zero, so the upper
        # bracket is always feasible (bin_peak <= budget by packing).
        hi = max((event.settle_ns for event in events), default=t_prev)
        if hi <= t_prev:
            return t_prev
        lo = t_prev
        for _ in range(_BISECT_STEPS):
            mid = 0.5 * (lo + hi)
            if self._residual(events, taus, mid) <= headroom:
                hi = mid
            else:
                lo = mid
        return hi
