"""Standby-transition engine: the last unmodeled MTCMOS phase.

The rest of the system answers *how much* standby leakage the
Selective-MT structure saves; this package answers *when sleeping
actually pays*:

* :mod:`repro.standby.transient` — analytic RC transients per
  :class:`~repro.vgnd.network.VgndCluster`: sleep-entry / wake-up
  waveforms, peak rush current, settle latency and energy per
  transition, all from the same switch Ron, rail parasitics and
  leakage models the sizing and bounce analyses use.
* :mod:`repro.standby.schedule` — a staged wake-up scheduler that
  orders and delays per-cluster MTE enables so the aggregate rush
  current stays under a di/dt budget while total wake latency stays
  provably no worse than a serial daisy-chain.
* :mod:`repro.standby.scenario` — power-mode scenarios (ACTIVE /
  STANDBY / SLEEP state machine, idle-interval distributions, duty
  cycles) expressed as deterministic quantile grids.
* :mod:`repro.standby.engine` — the batched scenario engine: computes
  break-even standby time and net energy savings per
  ``(scenario x cluster x corner)`` with a vectorized numpy path and a
  bit-identical scalar fallback.

Integration points: the ``standby_signoff`` flow stage
(:mod:`repro.core.stages`), ``Design.standby()`` /
``Workspace.standby()`` (:mod:`repro.api.workspace`), the ``standby``
job kind of the service, and the ``repro-smt standby`` CLI subcommand.
"""

from repro.standby.engine import (
    ScenarioOutcome,
    StandbyCornerRow,
    StandbyEngine,
    StandbyResult,
)
from repro.standby.scenario import (
    PowerMode,
    PowerModeScenario,
    resolve_scenario,
    standard_scenarios,
)
from repro.standby.schedule import (
    RushScheduler,
    WakeupEvent,
    WakeupSchedule,
    aggregate_rush_ma,
    default_rush_budget_ma,
)
from repro.standby.transient import (
    ClusterTransient,
    TransientSolver,
    Waveform,
    sleep_waveform,
    wake_waveform,
)

__all__ = [
    "ClusterTransient",
    "PowerMode",
    "PowerModeScenario",
    "RushScheduler",
    "ScenarioOutcome",
    "StandbyCornerRow",
    "StandbyEngine",
    "StandbyResult",
    "TransientSolver",
    "Waveform",
    "WakeupEvent",
    "WakeupSchedule",
    "aggregate_rush_ma",
    "default_rush_budget_ma",
    "resolve_scenario",
    "sleep_waveform",
    "standard_scenarios",
    "wake_waveform",
]
