"""Clock tree synthesis."""

from repro.cts.tree import ClockTreeSynthesizer, CtsResult

__all__ = ["ClockTreeSynthesizer", "CtsResult"]
